#include "scenario/scenario.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {

double noise_factor(const Scenario& scenario, TaskId id) {
  if (!scenario.has_noise()) return 1.0;
  CB_CHECK(scenario.noise_lo > 0.0 && scenario.noise_hi >= scenario.noise_lo,
           "noise range must satisfy 0 < lo <= hi");
  // One throwaway generator per (seed, id): the factor depends on nothing
  // else, so the realized instance is invariant under schedule order and
  // submission batching.
  Rng rng(scenario.seed ^ (0x9e3779b97f4a7c15ULL *
                           (static_cast<std::uint64_t>(id) + 1)));
  return rng.uniform_real(scenario.noise_lo, scenario.noise_hi);
}

std::vector<std::string> scenario_family_names() {
  return {"none", "crash", "sleep", "noise"};
}

Scenario make_scenario(std::string_view family, int procs, Time horizon,
                       std::uint64_t seed) {
  CB_CHECK(procs >= 1, "scenario platform must have at least one processor");
  CB_CHECK(horizon > 0.0, "scenario horizon must be positive");
  Scenario s;
  s.seed = seed;
  const int lost = std::max(1, procs / 2);
  if (family == "none") {
    return s;
  }
  if (family == "crash") {
    s.events.push_back(
        CapacityEvent{0.25 * horizon, procs - lost, /*crash=*/true});
    s.events.push_back(CapacityEvent{0.6 * horizon, procs, /*crash=*/false});
    return s;
  }
  if (family == "sleep") {
    s.events.push_back(
        CapacityEvent{0.3 * horizon, procs - lost, /*crash=*/false});
    s.events.push_back(CapacityEvent{0.7 * horizon, procs, /*crash=*/false});
    return s;
  }
  if (family == "noise") {
    s.noise_lo = 0.75;
    s.noise_hi = 1.25;
    return s;
  }
  CB_CHECK(false, "unknown scenario family (use none|crash|sleep|noise)");
  return s;
}

Scenario random_scenario(Rng& rng, int procs, Time horizon) {
  CB_CHECK(procs >= 1, "scenario platform must have at least one processor");
  CB_CHECK(horizon > 0.0, "scenario horizon must be positive");
  Scenario s;
  s.seed = rng();
  if (rng.bernoulli(0.5)) {
    s.noise_lo = rng.uniform_real(0.5, 1.0);
    s.noise_hi = rng.uniform_real(1.0, 1.6);
  }
  const int pairs = static_cast<int>(rng.uniform_int(0, 3));
  Time t = 0.0;
  for (int i = 0; i < pairs; ++i) {
    // Each pair drops somewhere after the previous restore and restores
    // full capacity strictly later, so the script always ends wide open.
    const Time drop = t + rng.uniform_real(0.05, 0.4) * horizon;
    const Time restore = drop + rng.uniform_real(0.05, 0.4) * horizon;
    const int cap = static_cast<int>(rng.uniform_int(0, procs - 1));
    s.events.push_back(CapacityEvent{drop, cap, rng.bernoulli(0.5)});
    s.events.push_back(CapacityEvent{restore, procs, false});
    t = restore;
  }
  return s;
}

std::string scenario_contract_text() {
  // One statement per line; docs_check.sh byte-diffs docs/SCENARIOS.md
  // against exactly this text, so edits here must be mirrored there.
  return
      "scenario-contract version 1\n"
      "event capacity(procs,at): effective capacity := procs in [0,P] from"
      " at on; bounds dispatch only; never preempts running tasks\n"
      "event kill(task,at): victim must be running; work since start is"
      " lost; processors free at once; victim re-enters the ready set with"
      " resubmit set and precedence intact\n"
      "order: internal events at times <= t fire before a scenario event at"
      " t; a completion at t beats a kill at t\n"
      "kill state machine: started -> killed -> ready(resubmit) -> started"
      " -> done; successors wait for the final completion\n"
      "crash: a crash drop kills the most recently dispatched running tasks"
      " until the surviving occupancy fits the new capacity\n"
      "noise: realized work = declared work * factor(seed, task), factor"
      " uniform in [lo,hi]; same seed => bit-identical run\n"
      "no-op: the empty scenario is bit-identical to a run without the"
      " scenario layer, on both clocks and both schedule modes\n"
      "metric degradation = realized makespan / baseline makespan, baseline"
      " = same algorithm on the realized works, full capacity, no faults\n"
      "metric lost_work_ratio = lost area / (busy area + lost area)\n"
      "metric recovery_latency = mean over capacity restores of (first"
      " dispatch at or after the restore - restore time)\n";
}

}  // namespace catbatch
