// Fault-tolerance and dynamic-platform scenarios.
//
// A Scenario is a deterministic script of platform events — capacity drops
// and restores (node crash/return, machine sleep/wake), task kills implied
// by crashes, and seeded execution-time noise — applied on top of any
// instance/scheduler pair. The semantics the engine implements (dispatch-
// only capacity, kill/resubmit state machine, event ordering at equal
// times, noise-seed determinism) form the *scenario contract*:
// scenario_contract_text() below is the machine-readable statement of it,
// and tools/docs_check.sh byte-diffs docs/SCENARIOS.md against it, so the
// document cannot drift from the implementation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

class Rng;

/// One scripted change of the platform's effective capacity.
struct CapacityEvent {
  Time at = 0.0;
  /// Effective platform size in [0, P] from `at` on. The bound applies to
  /// *dispatch* only; running tasks are never preempted by the change.
  int capacity = 0;
  /// True marks the drop as a *crash*: tasks running at `at` are killed —
  /// most recently dispatched first — until the surviving occupancy fits
  /// the new capacity. False is a *sleep*: running tasks ride it out.
  bool crash = false;
};

/// A composable scenario script. `events` must be strictly increasing in
/// time; the last event of a script that drops capacity must restore it
/// (factories guarantee this), or a simulated run can legitimately wedge.
struct Scenario {
  std::vector<CapacityEvent> events;
  /// Realized execution time = declared work x a per-task factor drawn
  /// uniformly from [noise_lo, noise_hi]; 1.0/1.0 turns noise off.
  double noise_lo = 1.0;
  double noise_hi = 1.0;
  /// Seed of the noise draw. Same seed => bit-identical realized instance,
  /// independent of schedule order (noise_factor is a pure function of
  /// (seed, task id)).
  std::uint64_t seed = 0;

  [[nodiscard]] bool has_noise() const {
    return noise_lo != 1.0 || noise_hi != 1.0;
  }
  /// True for the empty scenario, which must be bit-identical to a run
  /// that never heard of scenarios (the no-op parity tests pin this).
  [[nodiscard]] bool is_noop() const { return events.empty() && !has_noise(); }
};

/// The per-task noise factor in [noise_lo, noise_hi]: a pure function of
/// (scenario.seed, id). Returns 1.0 when the scenario has no noise.
[[nodiscard]] double noise_factor(const Scenario& scenario, TaskId id);

/// The canonical scenario families, in presentation order:
/// "none", "crash", "sleep", "noise".
[[nodiscard]] std::vector<std::string> scenario_family_names();

/// Builds a family scenario scaled to a platform of `procs` processors and
/// a run of roughly `horizon` time units (use the fault-free makespan or a
/// work/P lower bound). Families:
///   none  — the empty scenario;
///   crash — lose half the platform at 0.25*horizon (running tasks on the
///           lost nodes are killed), full capacity back at 0.6*horizon;
///   sleep — half the platform sleeps over [0.3, 0.7]*horizon, running
///           tasks ride it out;
///   noise — no platform events; realized work = declared * U[0.75, 1.25].
/// Throws ContractViolation for an unknown family name.
[[nodiscard]] Scenario make_scenario(std::string_view family, int procs,
                                     Time horizon, std::uint64_t seed);

/// Random scenario for the fuzzing battery: 0-3 capacity drop/restore
/// pairs (each randomly crash or sleep) inside [0, horizon], optional
/// noise, always ending at full capacity. Deterministic in `rng`.
[[nodiscard]] Scenario random_scenario(Rng& rng, int procs, Time horizon);

/// The machine-readable scenario contract. Printed by
/// `sched_cli --scenario-spec`; tools/docs_check.sh diffs the
/// ```scenario-contract block of docs/SCENARIOS.md against it.
[[nodiscard]] std::string scenario_contract_text();

}  // namespace catbatch
