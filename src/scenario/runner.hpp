// Scenario runner: applies a Scenario to an (instance, algorithm, platform)
// triple, through any of the three drive paths the repo exposes —
//
//   Engine/Simulated — SessionEngine with the internal clock; scenario
//                      events are interleaved by time (the engine fires
//                      internal events up to each event's time first);
//   Engine/External  — SessionEngine with the caller-owned clock; the
//                      runner schedules every completion itself from the
//                      realized works;
//   Service          — the catbatchd wire protocol (ServiceHub +
//                      line-delimited JSON), exercising the `capacity` and
//                      `kill` messages end to end.
//
// All three produce the same decision stream for the same inputs (pinned
// by tests/scenario), because victim selection is a pure function of the
// decision stream plus the realized works: the runner mirrors occupancy
// and, at a crash, kills the most recently dispatched running tasks until
// occupancy fits the new capacity (scenario_contract_text()).
//
// The runner also computes the degradation metrics of docs/SCENARIOS.md
// against a clairvoyant baseline: the same algorithm re-run on the
// *realized* works at full capacity with no faults.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "scenario/scenario.hpp"
#include "sim/session.hpp"

namespace catbatch {

/// Degradation metrics (definitions: scenario_contract_text()).
struct ScenarioMetrics {
  Time realized_makespan = 0.0;
  /// Same algorithm on the realized works, full capacity, no faults.
  Time baseline_makespan = 0.0;
  /// realized / baseline (1.0 for a no-op scenario by construction).
  double degradation = 1.0;
  /// lost area / (busy area + lost area); 0 without kills.
  double lost_work_ratio = 0.0;
  /// Mean over capacity restores of (first dispatch >= restore) - restore;
  /// 0 when the scenario never restores or nothing dispatches after one.
  double recovery_latency = 0.0;
  std::size_t kills = 0;
  std::size_t capacity_changes = 0;
};

enum class ScenarioDrive {
  Engine,   // SessionEngine, clock per ScenarioRunOptions::clock
  Service,  // catbatchd protocol lines through a ServiceHub
};

struct ScenarioRunOptions {
  ScheduleMode mode = ScheduleMode::Counting;
  SessionClock clock = SessionClock::Simulated;
  ScenarioDrive drive = ScenarioDrive::Engine;
  /// Skip the baseline re-run (metrics.baseline_makespan stays 0 and
  /// degradation 1.0) — for fuzz loops that only need the realized run.
  bool compute_baseline = true;
};

struct ScenarioOutcome {
  /// The realized run. For the Service drive only `makespan` and `stats`
  /// fields reconstructible from the wire are filled (no Schedule).
  SimResult result;
  /// Every decision in dispatch order, identical across drive paths.
  std::vector<Decision> decisions;
  ScenarioMetrics metrics;
};

/// Runs `graph` under `scheduler_name` (any registry algorithm) on `procs`
/// processors with `scenario` applied. Throws ContractViolation on
/// scheduler misbehavior or an infeasible scenario script (e.g. one that
/// parks capacity at 0 forever).
[[nodiscard]] ScenarioOutcome run_scenario(const TaskGraph& graph,
                                           const std::string& scheduler_name,
                                           int procs,
                                           const Scenario& scenario,
                                           const ScenarioRunOptions& options = {});

/// The realized instance: every work multiplied by the scenario's noise
/// factor (structure, procs and names unchanged). Returns a plain copy for
/// noise-free scenarios.
[[nodiscard]] TaskGraph realized_graph(const TaskGraph& graph,
                                       const Scenario& scenario);

/// Scenario-aware feasibility validation of an Engine-drive outcome:
/// every task runs exactly once for its realized work, precedence holds
/// against *final* finishes, total occupancy (including killed attempts)
/// never exceeds the platform, and no dispatch exceeds the capacity in
/// effect at its start time. Throws ContractViolation on violation.
void check_scenario_feasible(const SimResult& result, const TaskGraph& graph,
                             const Scenario& scenario, int procs);

}  // namespace catbatch
