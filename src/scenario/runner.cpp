#include "scenario/runner.hpp"

#include <algorithm>
#include <initializer_list>
#include <limits>
#include <memory>
#include <utility>

#include "sched/registry.hpp"
#include "service/hub.hpp"
#include "service/protocol.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace catbatch {

namespace {

struct MirrorTask {
  TaskId id = kInvalidTask;
  Time start = 0.0;
  Time finish = 0.0;  // start + realized work
  int procs = 0;
  std::uint64_t order = 0;  // dispatch ordinal across the whole run
};

/// Runner-side occupancy model: a pure function of the decision stream and
/// the realized works, so every drive path selects identical crash victims
/// and (under the external clock) schedules identical completions.
class Mirror {
 public:
  explicit Mirror(const std::vector<Time>& works) : works_(works) {}

  void on_decisions(std::span<const Decision> decisions) {
    for (const Decision& d : decisions) {
      running_.push_back(
          MirrorTask{d.id, d.at, d.at + works_[d.id], d.procs, order_++});
    }
  }

  /// Drops tasks whose completion is at or before `t` — a completion at t
  /// beats a scenario event at t (scenario_contract_text()).
  void settle(Time t) {
    std::erase_if(running_,
                  [t](const MirrorTask& m) { return m.finish <= t; });
  }

  void remove(TaskId id) {
    std::erase_if(running_, [id](const MirrorTask& m) { return m.id == id; });
  }

  [[nodiscard]] int occupancy() const {
    int total = 0;
    for (const MirrorTask& m : running_) total += m.procs;
    return total;
  }

  /// Crash victims at time `t` under new capacity `cap`: among the tasks
  /// dispatched strictly before `t`, the most recently dispatched first,
  /// until the surviving occupancy fits `cap`.
  [[nodiscard]] std::vector<TaskId> crash_victims(Time t, int cap) const {
    std::vector<const MirrorTask*> candidates;
    for (const MirrorTask& m : running_) {
      if (m.start < t) candidates.push_back(&m);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const MirrorTask* a, const MirrorTask* b) {
                return a->order > b->order;
              });
    int occ = occupancy();
    std::vector<TaskId> victims;
    for (const MirrorTask* m : candidates) {
      if (occ <= cap) break;
      victims.push_back(m->id);
      occ -= m->procs;
    }
    return victims;
  }

  /// Earliest pending completion by (finish, dispatch order) — the same
  /// tie-break the simulated clock's internal queue applies. Nullptr when
  /// nothing is running.
  [[nodiscard]] const MirrorTask* next_completion() const {
    const MirrorTask* best = nullptr;
    for (const MirrorTask& m : running_) {
      if (best == nullptr || m.finish < best->finish ||
          (m.finish == best->finish && m.order < best->order)) {
        best = &m;
      }
    }
    return best;
  }

  [[nodiscard]] bool anything_running() const { return !running_.empty(); }

  /// Start time of a running task (for lost-area bookkeeping on the
  /// service drive, where no SimStats come back over the wire).
  [[nodiscard]] Time start_of(TaskId id) const {
    for (const MirrorTask& m : running_) {
      if (m.id == id) return m.start;
    }
    CB_CHECK(false, "mirror has no running entry for the victim");
    return 0.0;
  }

  [[nodiscard]] int procs_of(TaskId id) const {
    for (const MirrorTask& m : running_) {
      if (m.id == id) return m.procs;
    }
    return 0;
  }

 private:
  const std::vector<Time>& works_;
  std::vector<MirrorTask> running_;
  std::uint64_t order_ = 0;
};

/// The realized per-task works (declared work x noise factor).
std::vector<Time> realized_works(const TaskGraph& graph,
                                 const Scenario& scenario) {
  std::vector<Time> works(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    works[id] = graph.task(id).work * noise_factor(scenario, id);
  }
  return works;
}

/// Builds the generic-submit batch: realized execution times, declared
/// times equal to the instance's original works when noise is on.
std::vector<SourceTask> source_tasks(const TaskGraph& graph,
                                     const std::vector<Time>& works,
                                     bool noisy) {
  std::vector<SourceTask> tasks;
  tasks.reserve(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    SourceTask st;
    st.work = works[id];
    if (noisy) st.declared_work = graph.task(id).work;
    st.procs = graph.task(id).procs;
    const auto preds = graph.predecessors(id);
    st.predecessors.assign(preds.begin(), preds.end());
    tasks.push_back(std::move(st));
  }
  return tasks;
}

struct DriveResult {
  SimResult result;
  std::vector<Decision> decisions;
};

DriveResult drive_engine(const TaskGraph& graph,
                         const std::string& scheduler_name, int procs,
                         const Scenario& scenario,
                         const std::vector<Time>& works,
                         const ScenarioRunOptions& options) {
  // Offline algorithms are clairvoyant about the *declared* instance: the
  // plan is built from the original graph, and replay meets the realized
  // times online — the standard uncertainty treatment.
  const std::unique_ptr<OnlineScheduler> scheduler =
      make_scheduler(scheduler_name, graph);
  CB_CHECK(scheduler != nullptr,
           "unknown scheduler '" + scheduler_name + "'");
  SessionOptions engine_options;
  engine_options.mode = options.mode;
  engine_options.clock = options.clock;
  SessionEngine engine(*scheduler, procs, engine_options);

  Mirror mirror(works);
  DriveResult out;
  const auto absorb = [&](std::span<const Decision> decisions) {
    mirror.on_decisions(decisions);
    out.decisions.insert(out.decisions.end(), decisions.begin(),
                         decisions.end());
  };
  const auto apply_event = [&](const CapacityEvent& ev) {
    absorb(engine.set_capacity(ev.capacity, ev.at));
    mirror.settle(ev.at);
    if (!ev.crash) return;
    for (const TaskId victim : mirror.crash_victims(ev.at, ev.capacity)) {
      mirror.remove(victim);
      absorb(engine.kill(victim, ev.at));
    }
  };

  absorb(engine.submit(source_tasks(graph, works, scenario.has_noise()),
                       0.0));

  if (options.clock == SessionClock::Simulated) {
    for (const CapacityEvent& ev : scenario.events) apply_event(ev);
    while (!engine.idle()) absorb(engine.step());
  } else {
    // The runner owns the clock: completions come from the mirror, in the
    // same (finish, dispatch order) sequence the simulated clock would
    // pop, interleaved with the scenario script by time (completions first
    // at ties).
    std::size_t next_event = 0;
    while (true) {
      const MirrorTask* completion = mirror.next_completion();
      const bool have_event = next_event < scenario.events.size();
      if (completion == nullptr && !have_event) break;
      if (completion != nullptr &&
          (!have_event ||
           completion->finish <= scenario.events[next_event].at)) {
        const TaskId id = completion->id;
        const Time at = completion->finish;
        mirror.remove(id);
        absorb(engine.advance(SessionEvent::completion(id, at)));
      } else {
        apply_event(scenario.events[next_event++]);
      }
    }
  }
  CB_CHECK(engine.complete(),
           "scenario run wedged: work remains but nothing is running");
  out.result = engine.finish();
  return out;
}

// ---- service drive --------------------------------------------------------

/// Parses one service reply that must be a "decisions" line; turns error
/// envelopes into ContractViolations with the server's message.
std::vector<Decision> parse_decisions_reply(const std::string& line) {
  const std::optional<JsonValue> parsed = parse_json(line);
  CB_CHECK(parsed.has_value(), "service reply is not valid JSON");
  const JsonValue* type = parsed->find("type");
  CB_CHECK(type != nullptr && type->is_string(),
           "service reply carries no type");
  if (type->str_v == "error") {
    const JsonValue* message = parsed->find("message");
    CB_CHECK(false, "service drive failed: " +
                        (message != nullptr ? message->str_v
                                            : std::string("(no message)")));
  }
  CB_CHECK(type->str_v == "decisions", "expected a decisions reply");
  const JsonValue* array = parsed->find("decisions");
  CB_CHECK(array != nullptr && array->is_array(),
           "decisions reply carries no decisions array");
  std::vector<Decision> out;
  out.reserve(array->items.size());
  for (const JsonValue& d : array->items) {
    const JsonValue* task = d.find("task");
    const JsonValue* at = d.find("at");
    const JsonValue* procs = d.find("procs");
    CB_CHECK(task != nullptr && at != nullptr && procs != nullptr,
             "malformed decision in service reply");
    out.push_back(Decision{static_cast<TaskId>(task->num_v), at->num_v,
                           static_cast<int>(procs->num_v)});
  }
  return out;
}

class ServiceDriver {
 public:
  ServiceDriver() : conn_(hub_.open_connection()) {}
  ~ServiceDriver() { hub_.close_connection(conn_); }

  /// Sends one line, expects exactly one reply line and returns it.
  std::string send(const std::string& line) {
    replies_.clear();
    hub_.handle_line(conn_, line, replies_);
    CB_CHECK(replies_.size() == 1, "lockstep protocol must reply once");
    return std::move(replies_.front());
  }

 private:
  ServiceHub hub_;
  std::uint64_t conn_;
  std::vector<std::string> replies_;
};

std::string submit_line(const TaskGraph& graph,
                        const std::vector<Time>& works, bool noisy) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("submit");
  w.key("session").value("scenario");
  w.key("tasks").begin_array();
  for (TaskId id = 0; id < graph.size(); ++id) {
    w.begin_object();
    w.key("work").value(works[id]);
    if (noisy) w.key("declared").value(graph.task(id).work);
    w.key("procs").value(graph.task(id).procs);
    const auto preds = graph.predecessors(id);
    if (!preds.empty()) {
      w.key("preds").begin_array();
      for (const TaskId pred : preds) {
        w.value(static_cast<std::uint64_t>(pred));
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string simple_line(std::string_view type,
                        std::initializer_list<std::pair<const char*, double>>
                            numbers) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value(std::string(type));
  w.key("session").value("scenario");
  for (const auto& [key, value] : numbers) w.key(key).value(value);
  w.end_object();
  return w.str();
}

DriveResult drive_service(const TaskGraph& graph,
                          const std::string& scheduler_name, int procs,
                          const Scenario& scenario,
                          const std::vector<Time>& works,
                          const ScenarioRunOptions& options) {
  const SchedulerEntry* entry = find_scheduler(scheduler_name);
  CB_CHECK(entry != nullptr, "unknown scheduler '" + scheduler_name + "'");
  CB_CHECK(!(scenario.has_noise() && entry->kind == SchedulerKind::Offline),
           "the service drive cannot express a declared/realized split for "
           "offline algorithms (use the engine drive)");
  const bool external = options.clock == SessionClock::External;

  ServiceDriver driver;
  (void)driver.send(R"({"type":"hello","version":1})");
  {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("open");
    w.key("session").value("scenario");
    w.key("algo").value(scheduler_name);
    w.key("procs").value(procs);
    w.key("mode").value(options.mode == ScheduleMode::Identity
                            ? "identity"
                            : "counting");
    w.key("clock").value(external ? "external" : "simulated");
    w.end_object();
    (void)driver.send(w.str());
  }

  Mirror mirror(works);
  DriveResult out;
  Time lost_area = 0.0;
  std::size_t kills = 0;
  std::size_t capacity_changes = 0;
  int capacity = procs;
  const auto absorb = [&](std::vector<Decision> decisions) {
    mirror.on_decisions(decisions);
    out.decisions.insert(out.decisions.end(), decisions.begin(),
                         decisions.end());
  };
  const auto apply_event = [&](const CapacityEvent& ev) {
    absorb(parse_decisions_reply(driver.send(simple_line(
        "capacity",
        {{"procs", static_cast<double>(ev.capacity)}, {"at", ev.at}}))));
    if (ev.capacity != capacity) {
      capacity = ev.capacity;
      ++capacity_changes;
    }
    mirror.settle(ev.at);
    if (!ev.crash) return;
    for (const TaskId victim : mirror.crash_victims(ev.at, ev.capacity)) {
      lost_area += (ev.at - mirror.start_of(victim)) *
                   static_cast<Time>(mirror.procs_of(victim));
      ++kills;
      mirror.remove(victim);
      absorb(parse_decisions_reply(driver.send(simple_line(
          "kill",
          {{"task", static_cast<double>(victim)}, {"at", ev.at}}))));
    }
  };

  absorb(parse_decisions_reply(
      driver.send(submit_line(graph, works, scenario.has_noise()))));

  if (!external) {
    for (const CapacityEvent& ev : scenario.events) apply_event(ev);
    absorb(parse_decisions_reply(
        driver.send(R"({"type":"drain","session":"scenario"})")));
    // The drain completed everything inside the engine; the mirror only
    // hears about completions it feeds in itself (external clock) or
    // settles at event times, so settle the rest here before the wedge
    // check below.
    mirror.settle(std::numeric_limits<Time>::infinity());
  } else {
    std::size_t next_event = 0;
    while (true) {
      const MirrorTask* completion = mirror.next_completion();
      const bool have_event = next_event < scenario.events.size();
      if (completion == nullptr && !have_event) break;
      if (completion != nullptr &&
          (!have_event ||
           completion->finish <= scenario.events[next_event].at)) {
        const TaskId id = completion->id;
        const Time at = completion->finish;
        mirror.remove(id);
        absorb(parse_decisions_reply(driver.send(simple_line(
            "complete",
            {{"task", static_cast<double>(id)}, {"at", at}}))));
      } else {
        apply_event(scenario.events[next_event++]);
      }
    }
  }

  // Close: the "closed" line carries makespan and busy_area, the only
  // SimResult fields that cross the wire; kills/lost area come from the
  // runner's own bookkeeping above.
  const std::string closed =
      driver.send(R"({"type":"close","session":"scenario"})");
  const std::optional<JsonValue> parsed = parse_json(closed);
  CB_CHECK(parsed.has_value(), "close reply is not valid JSON");
  const JsonValue* type = parsed->find("type");
  CB_CHECK(type != nullptr && type->is_string() && type->str_v == "closed",
           "scenario service run did not close cleanly");
  CB_CHECK(!mirror.anything_running(),
           "scenario run wedged: work remains but nothing is running");
  out.result.makespan = parsed->find("makespan")->num_v;
  out.result.stats.task_count = graph.size();
  out.result.stats.busy_area = parsed->find("busy_area")->num_v;
  out.result.stats.lost_area = lost_area;
  out.result.stats.kills = kills;
  out.result.stats.capacity_changes = capacity_changes;
  return out;
}

ScenarioMetrics compute_metrics(const DriveResult& run,
                                const Scenario& scenario, int procs,
                                Time baseline) {
  ScenarioMetrics m;
  m.realized_makespan = run.result.makespan;
  m.baseline_makespan = baseline;
  m.degradation =
      baseline > 0.0 ? run.result.makespan / baseline : 1.0;
  const double occupied =
      run.result.stats.busy_area + run.result.stats.lost_area;
  m.lost_work_ratio =
      occupied > 0.0 ? run.result.stats.lost_area / occupied : 0.0;
  m.kills = run.result.stats.kills;
  m.capacity_changes = run.result.stats.capacity_changes;

  // Recovery latency: decisions are in dispatch order, so their times are
  // non-decreasing and a binary search finds the first dispatch at or
  // after each capacity restore.
  double total_latency = 0.0;
  std::size_t restores_hit = 0;
  int capacity = procs;
  for (const CapacityEvent& ev : scenario.events) {
    const bool restore = ev.capacity > capacity;
    capacity = ev.capacity;
    if (!restore) continue;
    const auto it = std::lower_bound(
        run.decisions.begin(), run.decisions.end(), ev.at,
        [](const Decision& d, Time t) { return d.at < t; });
    if (it == run.decisions.end()) continue;
    total_latency += it->at - ev.at;
    ++restores_hit;
  }
  if (restores_hit > 0) {
    m.recovery_latency = total_latency / static_cast<double>(restores_hit);
  }
  return m;
}

void check_scenario_script(const Scenario& scenario, int procs) {
  Time last = -1.0;
  for (const CapacityEvent& ev : scenario.events) {
    CB_CHECK(ev.at >= 0.0 && ev.at > last,
             "scenario events must be strictly increasing in time");
    CB_CHECK(ev.capacity >= 0 && ev.capacity <= procs,
             "scenario capacity must be within [0, platform size]");
    last = ev.at;
  }
}

}  // namespace

TaskGraph realized_graph(const TaskGraph& graph, const Scenario& scenario) {
  TaskGraph out;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& task = graph.task(id);
    (void)out.add_task(task.work * noise_factor(scenario, id), task.procs,
                       task.name);
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId pred : graph.predecessors(id)) {
      out.add_edge(pred, id);
    }
  }
  return out;
}

ScenarioOutcome run_scenario(const TaskGraph& graph,
                             const std::string& scheduler_name, int procs,
                             const Scenario& scenario,
                             const ScenarioRunOptions& options) {
  CB_CHECK(procs >= 1, "scenario platform must have at least one processor");
  check_scenario_script(scenario, procs);
  const std::vector<Time> works = realized_works(graph, scenario);

  DriveResult run =
      options.drive == ScenarioDrive::Engine
          ? drive_engine(graph, scheduler_name, procs, scenario, works,
                         options)
          : drive_service(graph, scheduler_name, procs, scenario, works,
                          options);

  Time baseline = 0.0;
  if (options.compute_baseline) {
    // Clairvoyant re-run on the realized trace: the same algorithm, told
    // the true execution times, at full capacity, fault-free.
    const TaskGraph realized = realized_graph(graph, scenario);
    const std::unique_ptr<OnlineScheduler> scheduler =
        make_scheduler(scheduler_name, realized);
    CB_CHECK(scheduler != nullptr,
             "unknown scheduler '" + scheduler_name + "'");
    SimOptions sim_options;
    sim_options.mode = options.mode;
    baseline = simulate(realized, *scheduler, procs, sim_options).makespan;
  }

  ScenarioOutcome outcome;
  outcome.metrics = compute_metrics(run, scenario, procs, baseline);
  outcome.result = std::move(run.result);
  outcome.decisions = std::move(run.decisions);
  return outcome;
}

void check_scenario_feasible(const SimResult& result, const TaskGraph& graph,
                             const Scenario& scenario, int procs) {
  const std::size_t n = graph.size();
  const std::span<const ScheduledTask> entries = result.schedule.entries();
  CB_CHECK(entries.size() == n,
           "every submitted task must run to completion exactly once");

  std::vector<Time> start(n, 0.0);
  std::vector<Time> finish(n, -1.0);
  for (const ScheduledTask& entry : entries) {
    CB_CHECK(entry.id < n, "schedule entry for an unknown task");
    CB_CHECK(finish[entry.id] < 0.0, "task scheduled twice");
    const Time work = graph.task(entry.id).work *
                      noise_factor(scenario, entry.id);
    CB_CHECK(entry.finish == entry.start + work,
             "finish must equal start + the realized work");
    CB_CHECK(entry.procs() == graph.task(entry.id).procs,
             "entry width must match the task requirement");
    start[entry.id] = entry.start;
    finish[entry.id] = entry.finish;
  }
  for (TaskId id = 0; id < n; ++id) {
    for (const TaskId pred : graph.predecessors(id)) {
      CB_CHECK(start[id] >= finish[pred],
               "precedence violated against the final completion");
    }
  }

  // Occupancy sweep over final and killed attempts together: frees sort
  // before allocations at equal times (completions and kills release
  // processors before any dispatch at the same instant).
  struct Boundary {
    Time at;
    bool is_start;
    int procs;
  };
  std::vector<Boundary> boundaries;
  boundaries.reserve(2 * (entries.size() + result.schedule.aborted().size()));
  const auto add_attempt = [&](const ScheduledTask& entry) {
    boundaries.push_back(Boundary{entry.start, true, entry.procs()});
    boundaries.push_back(Boundary{entry.finish, false, entry.procs()});
  };
  for (const ScheduledTask& entry : entries) add_attempt(entry);
  for (const ScheduledTask& entry : result.schedule.aborted()) {
    add_attempt(entry);
  }
  std::sort(boundaries.begin(), boundaries.end(),
            [](const Boundary& a, const Boundary& b) {
              if (a.at != b.at) return a.at < b.at;
              return !a.is_start && b.is_start;
            });
  // Capacity bound for a dispatch at time t. At exactly an event time both
  // the old and the new capacity are legitimately in force — internal
  // events at <= t run their decision points under the old capacity before
  // the scenario event applies (contract), while the event's own decision
  // point and kills dispatch under the new one — so the bound there is the
  // larger of the two.
  const auto capacity_at = [&](Time t) {
    int before = procs;
    int at_event = -1;
    for (const CapacityEvent& ev : scenario.events) {
      if (ev.at > t) break;
      if (ev.at == t) {
        at_event = ev.capacity;
        break;
      }
      before = ev.capacity;
    }
    return std::max(before, at_event);
  };
  int occupancy = 0;
  for (const Boundary& b : boundaries) {
    occupancy += b.is_start ? b.procs : -b.procs;
    CB_CHECK(occupancy <= procs,
             "occupancy exceeds the physical platform");
    if (b.is_start) {
      CB_CHECK(occupancy <= capacity_at(b.at),
               "dispatch exceeds the effective capacity at its start time");
    }
  }
  CB_CHECK(occupancy == 0, "occupancy sweep did not return to idle");
}

}  // namespace catbatch
