// Protocol drivers: a session-replay helper and a multi-threaded load
// generator, both speaking the wire protocol through any LineClient.
//
// replay_session() is the reference driver — it runs one TaskGraph through
// one protocol session and returns the decision sequence and makespan the
// server reported. The equivalence suite replays the golden corpus through
// it and asserts bit-identity with simulate(); under clock=="external" it
// also acts as the reference *client-side* clock: completions are replayed
// in (finish, dispatch-order) order, mirroring the engine's simulated
// event queue tie-break, which is what makes external-mode decision
// streams bit-identical to simulated ones.
//
// run_loadgen() drives many sessions from `concurrency` threads (each with
// its own connection) and reports throughput plus per-request latency
// percentiles. The service bench and examples/catbatch_loadgen wrap it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.hpp"
#include "service/client.hpp"
#include "sim/session.hpp"

namespace catbatch {

/// Sends "hello" and checks for "welcome". Throws std::runtime_error on
/// any other reply (carrying the server's error line).
void protocol_handshake(LineClient& client);

struct ReplayResult {
  std::vector<Decision> decisions;  // dispatch order, across all replies
  double makespan = 0.0;            // from the "closed" reply
  std::uint64_t decision_points = 0;
  std::uint64_t events = 0;
};

/// Runs `graph` through one protocol session on an already-handshaken
/// client: open, submit every task (ids map 1:1 to graph ids), drain (or,
/// for clock=="external", replay completions), close. Throws
/// std::runtime_error on any error reply.
ReplayResult replay_session(LineClient& client, const std::string& session,
                            const std::string& algo, int procs,
                            const TaskGraph& graph,
                            std::string_view mode = "counting",
                            std::string_view clock = "simulated");

struct LoadgenOptions {
  int sessions = 256;         // total sessions across all threads
  int concurrency = 8;        // client threads, one connection each
  int tasks_per_session = 64;
  int procs = 64;             // platform size per session
  std::string algo = "catbatch";
  std::string clock = "simulated";  // "simulated" | "external"
  std::uint64_t seed = 1;
};

struct LoadgenStats {
  std::uint64_t sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t decisions = 0;
  double elapsed_sec = 0.0;
  double sessions_per_sec = 0.0;
  double decisions_per_sec = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
};

using ClientFactory = std::function<std::unique_ptr<LineClient>()>;

/// Generates options.sessions pseudo-random layered DAGs (deterministic in
/// options.seed) and replays each through a protocol session, timing every
/// request. The factory is called once per thread. Throws on any error
/// reply — the generated traffic is always well-formed.
LoadgenStats run_loadgen(const ClientFactory& make_client,
                         const LoadgenOptions& options);

}  // namespace catbatch
