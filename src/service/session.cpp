#include "service/session.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

namespace {

/// Appends a bad-message error and returns false (for use in `return
/// fail(...)` chains).
bool fail(std::vector<std::string>& out, std::string_view code,
          std::string_view session, const std::string& message) {
  out.push_back(error_line(code, message, session));
  return false;
}

[[nodiscard]] bool finite_number(const JsonValue* v) {
  return v != nullptr && v->is_number() && std::isfinite(v->num_v);
}

/// Allowed members of one element of submit.tasks (the per-task schema of
/// docs/SERVICE.md).
[[nodiscard]] bool task_field_known(std::string_view name) {
  return name == "work" || name == "procs" || name == "preds" ||
         name == "release" || name == "declared" || name == "name";
}

}  // namespace

ServiceSession::ServiceSession(std::string name, const SchedulerEntry& entry,
                               int procs, SessionOptions options)
    : name_(std::move(name)),
      entry_(entry),
      procs_(procs),
      options_(options),
      external_(options.clock == SessionClock::External) {
  if (entry_.kind == SchedulerKind::Online) {
    scheduler_ = entry_.make(nullptr);
    engine_ = std::make_unique<SessionEngine>(*scheduler_, procs_, options_);
  }
  // Offline: construction waits for the first submit (the algorithm needs
  // the realized graph).
}

ServiceSession::~ServiceSession() = default;

bool ServiceSession::ensure_usable(std::vector<std::string>& out) {
  if (!poisoned_) return true;
  return fail(out, errc::kContract, name_,
              "session poisoned by an earlier contract violation");
}

template <typename Body>
bool ServiceSession::guarded(Body&& body, std::vector<std::string>& out) {
  try {
    body();
    return true;
  } catch (const ContractViolation& e) {
    poisoned_ = true;
    out.push_back(error_line(errc::kContract, e.what(), name_));
    return false;
  }
}

void ServiceSession::emit_decisions(std::span<const Decision> decisions,
                                    std::vector<std::string>& out) {
  out.push_back(decisions_line(name_, engine_->now(), decisions,
                               engine_->complete()));
}

void ServiceSession::handle_submit(const JsonValue& msg,
                                   std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  const JsonValue* tasks_field = msg.find("tasks");
  if (tasks_field == nullptr || !tasks_field->is_array()) {
    fail(out, errc::kBadMessage, name_, "submit requires a 'tasks' array");
    return;
  }
  const bool offline = entry_.kind == SchedulerKind::Offline;
  if (offline && engine_ != nullptr) {
    fail(out, errc::kBadSequence, name_,
         "an offline algorithm accepts a single submission");
    return;
  }

  Time now = engine_ != nullptr ? engine_->now() : pre_engine_clock_;
  if (const JsonValue* now_field = msg.find("now"); now_field != nullptr) {
    if (!finite_number(now_field)) {
      fail(out, errc::kBadMessage, name_, "'now' must be a finite number");
      return;
    }
    now = now_field->num_v;
    if (now < (engine_ != nullptr ? engine_->now() : pre_engine_clock_)) {
      fail(out, errc::kBadSequence, name_,
           "'now' moves the session clock backwards");
      return;
    }
    if (offline && now != 0.0) {
      fail(out, errc::kBadMessage, name_,
           "an offline algorithm requires submission at time 0");
      return;
    }
  }

  // Validate the whole batch before the engine sees any of it, so a
  // malformed element is a protocol error, not a poisoned session.
  const std::size_t base =
      engine_ != nullptr ? engine_->tasks_submitted() : 0;
  const std::size_t count = tasks_field->items.size();
  std::vector<SourceTask> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const JsonValue& t = tasks_field->items[i];
    const std::string at_task = " (task " + std::to_string(i) + ")";
    if (!t.is_object()) {
      fail(out, errc::kBadMessage, name_, "task must be an object" + at_task);
      return;
    }
    for (const auto& [field_name, field_value] : t.members) {
      if (!task_field_known(field_name)) {
        fail(out, errc::kBadMessage, name_,
             "unknown task field '" + field_name + "'" + at_task);
        return;
      }
    }
    SourceTask st;
    const JsonValue* work = t.find("work");
    if (!finite_number(work) || work->num_v <= 0.0) {
      fail(out, errc::kBadMessage, name_,
           "'work' must be a positive finite number" + at_task);
      return;
    }
    st.work = work->num_v;
    if (const JsonValue* procs = t.find("procs"); procs != nullptr) {
      const auto p = procs->is_number() ? json_to_uint(procs->num_v)
                                        : std::nullopt;
      if (!p.has_value() || *p < 1 ||
          *p > static_cast<std::uint64_t>(procs_)) {
        fail(out, errc::kBadMessage, name_,
             "'procs' must be an integer in [1, platform size]" + at_task);
        return;
      }
      st.procs = static_cast<int>(*p);
    }
    if (const JsonValue* preds = t.find("preds"); preds != nullptr) {
      if (!preds->is_array()) {
        fail(out, errc::kBadMessage, name_,
             "'preds' must be an array of task ids" + at_task);
        return;
      }
      st.predecessors.reserve(preds->items.size());
      for (const JsonValue& pred : preds->items) {
        const auto id = pred.is_number() ? json_to_uint(pred.num_v)
                                         : std::nullopt;
        if (!id.has_value() || *id >= base + count || *id == base + i) {
          fail(out, errc::kBadMessage, name_,
               "'preds' entries must reference other submitted tasks" +
                   at_task);
          return;
        }
        st.predecessors.push_back(static_cast<TaskId>(*id));
      }
    }
    if (const JsonValue* release = t.find("release"); release != nullptr) {
      if (!finite_number(release) || release->num_v < 0.0) {
        fail(out, errc::kBadMessage, name_,
             "'release' must be a non-negative finite number" + at_task);
        return;
      }
      st.release = release->num_v;
    }
    if (const JsonValue* declared = t.find("declared");
        declared != nullptr) {
      if (!finite_number(declared) || declared->num_v <= 0.0) {
        fail(out, errc::kBadMessage, name_,
             "'declared' must be a positive finite number" + at_task);
        return;
      }
      st.declared_work = declared->num_v;
    }
    if (const JsonValue* task_name = t.find("name"); task_name != nullptr) {
      if (!task_name->is_string()) {
        fail(out, errc::kBadMessage, name_, "'name' must be a string" +
                                                at_task);
        return;
      }
      st.name = task_name->str_v;
    }
    if (offline && (st.release != 0.0 || st.declared_work >= 0.0)) {
      fail(out, errc::kBadMessage, name_,
           "offline algorithms take neither 'release' nor 'declared'" +
               at_task);
      return;
    }
    if (entry_.independent_only && !st.predecessors.empty()) {
      fail(out, errc::kBadMessage, name_,
           "algorithm '" + entry_.name +
               "' accepts independent tasks only" + at_task);
      return;
    }
    tasks.push_back(std::move(st));
  }

  if (offline) {
    // Materialize the realized instance and construct the algorithm from
    // it — the service-side equivalent of make_scheduler(name, graph) +
    // simulate(graph). Construction failures (cycles, an independent-only
    // packer fed precedence edges) are message errors: no engine exists
    // yet, so nothing is poisoned.
    try {
      for (const SourceTask& st : tasks) {
        graph_.add_task(st.work, st.procs, st.name);
      }
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        for (const TaskId pred : tasks[i].predecessors) {
          graph_.add_edge(pred, static_cast<TaskId>(i));
        }
      }
      graph_.validate(procs_);
      scheduler_ = entry_.make(&graph_);
    } catch (const ContractViolation& e) {
      graph_ = TaskGraph{};
      scheduler_.reset();
      fail(out, errc::kBadMessage, name_, e.what());
      return;
    }
    engine_ = std::make_unique<SessionEngine>(*scheduler_, procs_, options_);
  }

  guarded(
      [&] {
        const auto decisions = engine_->submit(std::move(tasks), now);
        emit_decisions(decisions, out);
      },
      out);
}

void ServiceSession::handle_complete(const JsonValue& msg,
                                     std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  if (!external_) {
    fail(out, errc::kBadSequence, name_,
         "'complete' requires a session opened with the external clock");
    return;
  }
  const JsonValue* task = msg.find("task");
  const JsonValue* at = msg.find("at");
  const auto id = (task != nullptr && task->is_number())
                      ? json_to_uint(task->num_v)
                      : std::nullopt;
  if (!id.has_value() || !finite_number(at)) {
    fail(out, errc::kBadMessage, name_,
         "'complete' requires an integer 'task' and a finite 'at'");
    return;
  }
  if (engine_ == nullptr || *id >= engine_->tasks_submitted()) {
    fail(out, errc::kBadSequence, name_,
         "completion for a task this session never submitted");
    return;
  }
  if (at->num_v < engine_->now()) {
    fail(out, errc::kBadSequence, name_,
         "'at' moves the session clock backwards");
    return;
  }
  guarded(
      [&] {
        const auto decisions = engine_->advance(
            SessionEvent::completion(static_cast<TaskId>(*id), at->num_v));
        emit_decisions(decisions, out);
      },
      out);
}

void ServiceSession::handle_tick(const JsonValue& msg,
                                 std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  if (!external_) {
    fail(out, errc::kBadSequence, name_,
         "'tick' requires a session opened with the external clock");
    return;
  }
  const JsonValue* at = msg.find("at");
  if (!finite_number(at)) {
    fail(out, errc::kBadMessage, name_, "'tick' requires a finite 'at'");
    return;
  }
  if (engine_ == nullptr) {
    // No engine yet (offline algorithm before its submit), but the session
    // clock is already ticking: time must stay monotone across the whole
    // session, so a backwards pre-engine tick is the same bad-sequence
    // error the engine would report — not a silent clamp.
    if (at->num_v < pre_engine_clock_) {
      fail(out, errc::kBadSequence, name_,
           "'at' moves the session clock backwards");
      return;
    }
    pre_engine_clock_ = at->num_v;
    out.push_back(decisions_line(name_, at->num_v, {}, true));
    return;
  }
  if (at->num_v < engine_->now()) {
    fail(out, errc::kBadSequence, name_,
         "'at' moves the session clock backwards");
    return;
  }
  guarded(
      [&] {
        const auto decisions =
            engine_->advance(SessionEvent::tick(at->num_v));
        emit_decisions(decisions, out);
      },
      out);
}

void ServiceSession::handle_capacity(const JsonValue& msg,
                                     std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  const JsonValue* procs = msg.find("procs");
  const JsonValue* at = msg.find("at");
  const auto cap = (procs != nullptr && procs->is_number())
                       ? json_to_uint(procs->num_v)
                       : std::nullopt;
  if (!cap.has_value() || !finite_number(at)) {
    fail(out, errc::kBadMessage, name_,
         "'capacity' requires an integer 'procs' and a finite 'at'");
    return;
  }
  if (*cap > static_cast<std::uint64_t>(procs_)) {
    fail(out, errc::kBadMessage, name_,
         "'procs' must be in [0, platform size]");
    return;
  }
  if (engine_ == nullptr) {
    fail(out, errc::kBadSequence, name_,
         "'capacity' requires a submitted instance");
    return;
  }
  if (at->num_v < engine_->now()) {
    fail(out, errc::kBadSequence, name_,
         "'at' moves the session clock backwards");
    return;
  }
  guarded(
      [&] {
        const auto decisions =
            engine_->set_capacity(static_cast<int>(*cap), at->num_v);
        emit_decisions(decisions, out);
      },
      out);
}

void ServiceSession::handle_kill(const JsonValue& msg,
                                 std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  const JsonValue* task = msg.find("task");
  const JsonValue* at = msg.find("at");
  const auto id = (task != nullptr && task->is_number())
                      ? json_to_uint(task->num_v)
                      : std::nullopt;
  if (!id.has_value() || !finite_number(at)) {
    fail(out, errc::kBadMessage, name_,
         "'kill' requires an integer 'task' and a finite 'at'");
    return;
  }
  if (engine_ == nullptr || *id >= engine_->tasks_submitted()) {
    fail(out, errc::kBadSequence, name_,
         "kill for a task this session never submitted");
    return;
  }
  if (at->num_v < engine_->now()) {
    fail(out, errc::kBadSequence, name_,
         "'at' moves the session clock backwards");
    return;
  }
  // The victim must still be running once internal events up to 'at' have
  // fired; under the simulated clock a completion scheduled at or before
  // 'at' wins the race (docs/SCENARIOS.md), so check *after* catching the
  // engine up to 'at' would be ideal — but catching up is itself an engine
  // mutation. Instead kill only tasks running right now and let the engine
  // contract-check the rest; the common protocol mistakes (never started,
  // already completed externally) are caught here without poisoning.
  if (!engine_->task_running(static_cast<TaskId>(*id))) {
    fail(out, errc::kBadSequence, name_,
         "kill for a task that is not running");
    return;
  }
  guarded(
      [&] {
        const auto decisions =
            engine_->kill(static_cast<TaskId>(*id), at->num_v);
        emit_decisions(decisions, out);
      },
      out);
}

void ServiceSession::handle_step(std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  if (external_) {
    fail(out, errc::kBadSequence, name_,
         "'step' requires a session opened with the simulated clock");
    return;
  }
  if (engine_ == nullptr) {
    out.push_back(decisions_line(name_, 0.0, {}, true));
    return;
  }
  guarded(
      [&] {
        const auto decisions = engine_->step();
        emit_decisions(decisions, out);
      },
      out);
}

void ServiceSession::handle_drain(std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  if (external_) {
    fail(out, errc::kBadSequence, name_,
         "'drain' requires a session opened with the simulated clock");
    return;
  }
  if (engine_ == nullptr) {
    out.push_back(decisions_line(name_, 0.0, {}, true));
    return;
  }
  // Step-collect rather than SessionEngine::drain(): the client gets every
  // decision the drain produced, in dispatch order, in one reply.
  guarded(
      [&] {
        std::vector<Decision> all;
        while (!engine_->idle()) {
          const auto decisions = engine_->step();
          all.insert(all.end(), decisions.begin(), decisions.end());
        }
        emit_decisions(all, out);
      },
      out);
}

void ServiceSession::handle_query(std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  SessionStats stats;
  if (engine_ != nullptr) {
    stats.now = engine_->now();
    stats.submitted = engine_->tasks_submitted();
    stats.completed = engine_->tasks_completed();
    stats.decisions = engine_->decisions_made();
    stats.makespan = engine_->schedule().makespan();
  }
  out.push_back(stats_line(name_, entry_.name, stats));
}

void ServiceSession::handle_close(std::vector<std::string>& out) {
  if (!ensure_usable(out)) return;
  if (engine_ == nullptr) {
    out.push_back(closed_line(name_, SimResult{}));
    return;
  }
  guarded(
      [&] {
        if (!external_) {
          // Batch semantics: run the event loop dry (the deadlock check of
          // the simulated clock fires here if the scheduler wedged).
          while (!engine_->idle()) (void)engine_->step();
        }
        const SimResult result = engine_->finish();
        out.push_back(closed_line(name_, result));
      },
      out);
}

}  // namespace catbatch
