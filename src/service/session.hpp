// One protocol session: a named SessionEngine + scheduler pair driven by
// parsed protocol messages.
//
// A ServiceSession owns everything one client simulation needs — the
// scheduler (any registry algorithm by name), the stepwise engine, and for
// offline algorithms the realized TaskGraph the algorithm was constructed
// from. Handlers take the already-shape-checked message (service/hub.cpp
// validates type and field names against protocol.hpp's table) and append
// exactly one reply line.
//
// Error discipline: protocol-level misuse that the session can detect
// before touching the engine — wrong clock for the verb, unknown task id,
// clock moving backwards, a second submit to an offline algorithm —
// answers "bad-sequence"/"bad-message" and leaves the session usable. A
// ContractViolation escaping the engine (scheduler bug, or misuse only the
// engine can detect) answers "contract" and *poisons* the session: the
// engine's state is no longer trustworthy, so every later message on it
// answers "contract" until the client closes it.
//
// Threading: a ServiceSession is single-threaded by construction — the
// daemon serializes each connection onto one strand, and sessions belong
// to exactly one connection.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "sched/registry.hpp"
#include "service/protocol.hpp"
#include "sim/session.hpp"
#include "support/json_parse.hpp"

namespace catbatch {

class ServiceSession {
 public:
  /// `entry` must outlive the session (registry entries are static).
  /// Throws nothing; offline-scheduler construction is deferred to the
  /// first submit (it needs the realized graph).
  ServiceSession(std::string name, const SchedulerEntry& entry, int procs,
                 SessionOptions options);
  ~ServiceSession();

  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;

  void handle_submit(const JsonValue& msg, std::vector<std::string>& out);
  void handle_complete(const JsonValue& msg, std::vector<std::string>& out);
  void handle_tick(const JsonValue& msg, std::vector<std::string>& out);
  /// Capacity change ("capacity"): effective platform size in [0, procs]
  /// from `at` on. Works on both clocks (docs/SCENARIOS.md); dispatch-only,
  /// never preempts.
  void handle_capacity(const JsonValue& msg, std::vector<std::string>& out);
  /// Task kill ("kill"): the victim must be running at `at`; its partial
  /// work is lost and it re-enters the ready set with precedence intact.
  void handle_kill(const JsonValue& msg, std::vector<std::string>& out);
  void handle_step(std::vector<std::string>& out);
  void handle_drain(std::vector<std::string>& out);
  void handle_query(std::vector<std::string>& out);
  /// Simulated-clock sessions drain before finishing; a deadlocked
  /// scheduler therefore surfaces here as a "contract" error. On success
  /// appends the "closed" reply. The session must be destroyed afterwards
  /// (the hub erases it whether or not close succeeded).
  void handle_close(std::vector<std::string>& out);

 private:
  bool ensure_usable(std::vector<std::string>& out);
  void emit_decisions(std::span<const Decision> decisions,
                      std::vector<std::string>& out);
  /// Runs `body()` (an engine call sequence) translating ContractViolation
  /// into a "contract" error reply + poisoning. Returns false on poison.
  template <typename Body>
  bool guarded(Body&& body, std::vector<std::string>& out);

  std::string name_;
  const SchedulerEntry& entry_;
  int procs_;
  SessionOptions options_;
  bool external_;

  // Offline algorithms: the realized instance, owned here because the
  // scheduler captures a pointer to it. Declared before the scheduler and
  // engine so it outlives both (reverse destruction order).
  TaskGraph graph_;
  std::unique_ptr<OnlineScheduler> scheduler_;
  std::unique_ptr<SessionEngine> engine_;
  bool poisoned_ = false;
  /// Session clock before the engine exists (offline algorithm, nothing
  /// submitted yet): monotonicity must hold across the whole session, so
  /// pre-engine 'tick's advance this and may never move it backwards.
  Time pre_engine_clock_ = 0.0;
};

}  // namespace catbatch
