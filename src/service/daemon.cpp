#include "service/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <system_error>
#include <unordered_map>
#include <vector>

#include "service/protocol.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace catbatch {

void serve_stdio(ServiceHub& hub, std::istream& in, std::ostream& out) {
  const std::uint64_t conn = hub.open_connection();
  std::string line;
  std::vector<std::string> replies;
  while (std::getline(in, line)) {
    replies.clear();
    if (line.size() > kMaxLineBytes) {
      replies.push_back(
          error_line(errc::kBadMessage, "request line too long"));
    } else {
      hub.handle_line(conn, line, replies);
    }
    for (const std::string& reply : replies) out << reply << '\n';
    out.flush();
    if (hub.shutdown_requested()) break;
  }
  hub.close_connection(conn);
}

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Closes a file descriptor on scope exit (listener, wake pipe).
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

/// One accepted socket. The reactor thread owns fd/inbuf/eof; pending,
/// outbuf and busy are shared with the connection's strand task and
/// guarded by m.
struct UnixConn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string inbuf;
  bool eof = false;    // peer half-closed, or read error
  bool fatal = false;  // framing lost (overlong line): close after flush

  std::mutex m;
  std::deque<std::string> pending;  // complete lines awaiting the strand
  std::string outbuf;               // reply bytes awaiting the socket
  bool busy = false;                // a strand task is in flight
};

class UnixServer {
 public:
  UnixServer(ServiceHub& hub, const DaemonOptions& options)
      : hub_(hub),
        path_(options.socket_path),
        pool_(ThreadPool::resolve_jobs(options.jobs)) {}

  void run() {
    CB_CHECK(!path_.empty(), "serve_unix requires a socket path");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    CB_CHECK(path_.size() < sizeof(addr.sun_path),
             "socket path too long for sockaddr_un");
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    FdGuard listener{::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0)};
    if (listener.fd < 0) throw_errno("socket(AF_UNIX)");
    set_nonblocking(listener.fd);
    ::unlink(path_.c_str());
    if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind");
    }
    if (::listen(listener.fd, 128) < 0) throw_errno("listen");

    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) throw_errno("pipe2");
    FdGuard wake_read{pipe_fds[0]};
    FdGuard wake_write{pipe_fds[1]};
    wake_fd_ = pipe_fds[1];

    bool accepting = true;
    std::vector<pollfd> fds;
    std::vector<UnixConn*> polled;
    while (true) {
      // Stop point: shutdown served (or all input gone), every strand
      // drained, every reply flushed.
      if (hub_.shutdown_requested()) accepting = false;
      if (!accepting && conns_.empty()) break;

      fds.clear();
      polled.clear();
      fds.push_back({accepting ? listener.fd : -1, POLLIN, 0});
      fds.push_back({wake_read.fd, POLLIN, 0});
      for (const auto& [fd, conn] : conns_) {
        int events = 0;
        bool flushed = false;
        bool idle = false;
        {
          const std::lock_guard<std::mutex> lock(conn->m);
          if (!conn->outbuf.empty()) events |= POLLOUT;
          flushed = conn->outbuf.empty();
          idle = !conn->busy && conn->pending.empty();
        }
        const bool draining =
            conn->eof || conn->fatal || hub_.shutdown_requested();
        if (!draining) events |= POLLIN;
        if (draining && flushed && idle) {
          to_close_.push_back(conn.get());
          continue;
        }
        fds.push_back({conn->fd, static_cast<short>(events), 0});
        polled.push_back(conn.get());
      }
      reap();
      if (!accepting && conns_.empty()) break;

      if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), 250) < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll");
      }

      if ((fds[1].revents & POLLIN) != 0) drain_wake_pipe(wake_read.fd);
      if (accepting && (fds[0].revents & POLLIN) != 0) accept_all(listener.fd);
      for (std::size_t i = 0; i < polled.size(); ++i) {
        const short got = fds[i + 2].revents;
        UnixConn* conn = polled[i];
        if ((got & POLLOUT) != 0) flush_writes(*conn);
        if ((got & (POLLIN | POLLHUP | POLLERR)) != 0) read_input(*conn);
      }
    }
    pool_.wait();
    ::unlink(path_.c_str());
  }

 private:
  void wake() {
    const char byte = 0;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &byte, 1);
  }

  static void drain_wake_pipe(int fd) {
    char buf[256];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }

  void accept_all(int listener) {
    while (true) {
      const int fd = ::accept4(listener, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN, or a transient accept error: re-poll
      auto conn = std::make_unique<UnixConn>();
      conn->fd = fd;
      conn->id = hub_.open_connection();
      conns_.emplace(fd, std::move(conn));
    }
  }

  void read_input(UnixConn& conn) {
    char buf[1 << 16];
    while (true) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.inbuf.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn.eof = true;  // orderly close (n == 0) or a hard error
      break;
    }
    split_lines(conn);
  }

  void split_lines(UnixConn& conn) {
    bool dispatched = false;
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = conn.inbuf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = conn.inbuf.substr(start, nl - start);
      start = nl + 1;
      const std::lock_guard<std::mutex> lock(conn.m);
      conn.pending.push_back(std::move(line));
      if (!conn.busy) {
        conn.busy = true;
        dispatched = true;
        UnixConn* c = &conn;
        pool_.submit([this, c] { run_strand(c); });
      }
    }
    conn.inbuf.erase(0, start);
    if (conn.inbuf.size() > kMaxLineBytes && !conn.fatal) {
      conn.fatal = true;
      const std::lock_guard<std::mutex> lock(conn.m);
      conn.outbuf += error_line(errc::kBadMessage, "request line too long");
      conn.outbuf += '\n';
    }
    // A strand dispatched above may finish before we next build the poll
    // set; its own wake() covers that. Nothing to do here.
    (void)dispatched;
  }

  /// Strand body: drains the connection's pending lines one at a time.
  /// Exactly one instance runs per connection (the busy flag), so
  /// hub_.handle_line calls for this connection are serialized.
  void run_strand(UnixConn* conn) {
    std::vector<std::string> replies;
    while (true) {
      std::string line;
      {
        const std::lock_guard<std::mutex> lock(conn->m);
        if (conn->pending.empty()) {
          conn->busy = false;
          break;
        }
        line = std::move(conn->pending.front());
        conn->pending.pop_front();
      }
      replies.clear();
      hub_.handle_line(conn->id, line, replies);
      {
        const std::lock_guard<std::mutex> lock(conn->m);
        for (const std::string& reply : replies) {
          conn->outbuf += reply;
          conn->outbuf += '\n';
        }
      }
    }
    wake();  // reactor: flush outbuf, or close if this conn is draining
  }

  void flush_writes(UnixConn& conn) {
    std::string chunk;
    {
      const std::lock_guard<std::mutex> lock(conn.m);
      chunk = conn.outbuf;
    }
    if (chunk.empty()) return;
    const ssize_t n =
        ::send(conn.fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) conn.eof = true;
      return;
    }
    const std::lock_guard<std::mutex> lock(conn.m);
    conn.outbuf.erase(0, static_cast<std::size_t>(n));
  }

  /// Destroys connections found fully drained while building the poll set.
  /// Safe without their locks: busy was false and only the reactor
  /// dispatches new strands.
  void reap() {
    for (UnixConn* conn : to_close_) {
      hub_.close_connection(conn->id);
      ::close(conn->fd);
      conns_.erase(conn->fd);
    }
    to_close_.clear();
  }

  ServiceHub& hub_;
  std::string path_;
  ThreadPool pool_;
  int wake_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<UnixConn>> conns_;
  std::vector<UnixConn*> to_close_;
};

}  // namespace

void serve_unix(ServiceHub& hub, const DaemonOptions& options) {
  UnixServer server(hub, options);
  server.run();
}

}  // namespace catbatch
