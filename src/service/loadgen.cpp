#include "service/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "support/check.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/rng.hpp"

namespace catbatch {

namespace {

using SendFn = std::function<std::string(const std::string&)>;

/// Sends a line and parses the reply, throwing a descriptive error on an
/// "error" reply or a reply of the wrong type.
JsonValue exchange(const SendFn& send, const std::string& line,
                   std::string_view want_type) {
  const std::string reply = send(line);
  std::optional<JsonValue> parsed = parse_json(reply);
  if (!parsed.has_value() || !parsed->is_object()) {
    throw std::runtime_error("unparseable reply: " + reply);
  }
  const JsonValue* type = parsed->find("type");
  if (type == nullptr || !type->is_string() || type->str_v != want_type) {
    throw std::runtime_error("expected '" + std::string(want_type) +
                             "' reply, got: " + reply);
  }
  return std::move(*parsed);
}

std::string hello_request() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("hello");
  w.key("version").value(kProtocolVersion);
  w.end_object();
  return w.str();
}

std::string open_request(const std::string& session, const std::string& algo,
                         int procs, std::string_view mode,
                         std::string_view clock) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("open");
  w.key("session").value(session);
  w.key("algo").value(algo);
  w.key("procs").value(procs);
  w.key("mode").value(std::string(mode));
  w.key("clock").value(std::string(clock));
  w.end_object();
  return w.str();
}

std::string submit_request(const std::string& session,
                           const TaskGraph& graph) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("submit");
  w.key("session").value(session);
  w.key("tasks").begin_array();
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& task = graph.task(id);
    w.begin_object();
    w.key("work").value(task.work);
    w.key("procs").value(task.procs);
    const std::span<const TaskId> preds = graph.predecessors(id);
    if (!preds.empty()) {
      w.key("preds").begin_array();
      for (const TaskId pred : preds) {
        w.value(static_cast<std::uint64_t>(pred));
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string session_request(std::string_view type,
                            const std::string& session) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value(std::string(type));
  w.key("session").value(session);
  w.end_object();
  return w.str();
}

std::string complete_request(const std::string& session, TaskId task,
                             Time at) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("complete");
  w.key("session").value(session);
  w.key("task").value(static_cast<std::uint64_t>(task));
  w.key("at").value(at);
  w.end_object();
  return w.str();
}

/// Appends a "decisions" reply's entries to `out` and returns the
/// "complete" flag.
bool collect_decisions(const JsonValue& reply, std::vector<Decision>& out) {
  const JsonValue* list = reply.find("decisions");
  CB_CHECK(list != nullptr && list->is_array(),
           "decisions reply lacks a decisions array");
  for (const JsonValue& entry : list->items) {
    CB_CHECK(entry.is_object(), "decision entry must be an object");
    const JsonValue* task = entry.find("task");
    const JsonValue* at = entry.find("at");
    const JsonValue* procs = entry.find("procs");
    CB_CHECK(task != nullptr && task->is_number() && at != nullptr &&
                 at->is_number() && procs != nullptr && procs->is_number(),
             "decision entry lacks task/at/procs");
    const auto id = json_to_uint(task->num_v);
    const auto p = json_to_uint(procs->num_v);
    CB_CHECK(id.has_value() && p.has_value(), "non-integral decision field");
    out.push_back(Decision{static_cast<TaskId>(*id), at->num_v,
                           static_cast<int>(*p)});
  }
  const JsonValue* complete = reply.find("complete");
  return complete != nullptr && complete->is_bool() && complete->bool_v;
}

ReplayResult run_session(const SendFn& send, const std::string& session,
                         const std::string& algo, int procs,
                         const TaskGraph& graph, std::string_view mode,
                         std::string_view clock) {
  ReplayResult result;
  (void)exchange(send, open_request(session, algo, procs, mode, clock),
                 "opened");
  const JsonValue submitted =
      exchange(send, submit_request(session, graph), "decisions");
  collect_decisions(submitted, result.decisions);

  if (clock == "external") {
    // Client-side clock: complete dispatched tasks in (finish,
    // dispatch-order) order — exactly the engine's event-queue tie-break,
    // so the decision stream matches the simulated run bit for bit.
    std::size_t next_undispatched = 0;  // prefix of decisions completed
    std::vector<std::size_t> running;   // indices into result.decisions
    std::size_t completed = 0;
    auto absorb = [&] {
      for (; next_undispatched < result.decisions.size();
           ++next_undispatched) {
        running.push_back(next_undispatched);
      }
    };
    absorb();
    while (completed < graph.size()) {
      CB_CHECK(!running.empty(),
               "external replay stalled with tasks outstanding");
      std::size_t best = 0;
      Time best_finish = 0.0;
      for (std::size_t i = 0; i < running.size(); ++i) {
        const Decision& d = result.decisions[running[i]];
        const Time finish = d.at + graph.task(d.id).work;
        if (i == 0 || finish < best_finish) {
          best = i;
          best_finish = finish;
        }
      }
      const Decision done = result.decisions[running[best]];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(best));
      const JsonValue reply = exchange(
          send, complete_request(session, done.id, best_finish),
          "decisions");
      collect_decisions(reply, result.decisions);
      ++completed;
      absorb();
    }
  } else {
    const JsonValue drained =
        exchange(send, session_request("drain", session), "decisions");
    const bool complete = collect_decisions(drained, result.decisions);
    CB_CHECK(complete, "drain left a simulated session incomplete");
  }

  const JsonValue closed =
      exchange(send, session_request("close", session), "closed");
  const JsonValue* makespan = closed.find("makespan");
  const JsonValue* points = closed.find("decision_points");
  const JsonValue* events = closed.find("events");
  CB_CHECK(makespan != nullptr && makespan->is_number(),
           "closed reply lacks makespan");
  result.makespan = makespan->num_v;
  if (points != nullptr && points->is_number()) {
    result.decision_points = json_to_uint(points->num_v).value_or(0);
  }
  if (events != nullptr && events->is_number()) {
    result.events = json_to_uint(events->num_v).value_or(0);
  }
  return result;
}

/// A pseudo-random layered DAG: the traffic shape for the load generator.
TaskGraph make_loadgen_graph(Rng& rng, int tasks, int procs) {
  TaskGraph graph;
  for (int i = 0; i < tasks; ++i) {
    const Time work = rng.uniform_real(0.5, 8.0);
    const int p = static_cast<int>(rng.uniform_int(1, procs));
    const TaskId id = graph.add_task(work, p);
    if (i > 0 && rng.bernoulli(0.6)) {
      const std::int64_t fanin =
          rng.uniform_int(1, std::min<std::int64_t>(3, i));
      for (std::int64_t k = 0; k < fanin; ++k) {
        graph.add_edge(static_cast<TaskId>(rng.index(id)), id);
      }
    }
  }
  return graph;
}

}  // namespace

void protocol_handshake(LineClient& client) {
  const SendFn send = [&client](const std::string& line) {
    return client.request(line);
  };
  (void)exchange(send, hello_request(), "welcome");
}

ReplayResult replay_session(LineClient& client, const std::string& session,
                            const std::string& algo, int procs,
                            const TaskGraph& graph, std::string_view mode,
                            std::string_view clock) {
  const SendFn send = [&client](const std::string& line) {
    return client.request(line);
  };
  return run_session(send, session, algo, procs, graph, mode, clock);
}

LoadgenStats run_loadgen(const ClientFactory& make_client,
                         const LoadgenOptions& options) {
  CB_CHECK(options.sessions > 0, "loadgen needs at least one session");
  CB_CHECK(options.tasks_per_session > 0, "loadgen needs non-empty sessions");
  CB_CHECK(options.procs >= 1, "loadgen needs at least one processor");
  const int threads =
      std::clamp(options.concurrency, 1, options.sessions);

  struct ThreadResult {
    std::vector<double> latencies_us;
    std::uint64_t decisions = 0;
    std::uint64_t requests = 0;
  };
  std::vector<ThreadResult> results(static_cast<std::size_t>(threads));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadResult& mine = results[static_cast<std::size_t>(t)];
      try {
        const std::unique_ptr<LineClient> client = make_client();
        const SendFn timed = [&](const std::string& line) {
          const auto t0 = std::chrono::steady_clock::now();
          std::string reply = client->request(line);
          const auto t1 = std::chrono::steady_clock::now();
          mine.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          ++mine.requests;
          return reply;
        };
        (void)exchange(timed, hello_request(), "welcome");
        for (int s = t; s < options.sessions; s += threads) {
          Rng rng(options.seed + static_cast<std::uint64_t>(s) *
                                     std::uint64_t{0x9e3779b97f4a7c15});
          const TaskGraph graph = make_loadgen_graph(
              rng, options.tasks_per_session, options.procs);
          const ReplayResult run = run_session(
              timed, "s" + std::to_string(s), options.algo, options.procs,
              graph, "counting", options.clock);
          mine.decisions += run.decisions.size();
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
  const auto wall_end = std::chrono::steady_clock::now();

  LoadgenStats stats;
  stats.sessions = static_cast<std::uint64_t>(options.sessions);
  std::vector<double> latencies;
  for (const ThreadResult& r : results) {
    stats.decisions += r.decisions;
    stats.requests += r.requests;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
  }
  stats.elapsed_sec =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (stats.elapsed_sec > 0.0) {
    stats.sessions_per_sec =
        static_cast<double>(stats.sessions) / stats.elapsed_sec;
    stats.decisions_per_sec =
        static_cast<double>(stats.decisions) / stats.elapsed_sec;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto at = [&](double q) {
      const double pos = q * static_cast<double>(latencies.size() - 1);
      return latencies[static_cast<std::size_t>(pos)];
    };
    stats.p50_latency_us = at(0.50);
    stats.p99_latency_us = at(0.99);
    stats.max_latency_us = latencies.back();
  }
  return stats;
}

}  // namespace catbatch
