// Protocol clients: how tests, the load generator and the bench talk to a
// catbatchd.
//
// The protocol is lockstep (one reply line per request line), so the whole
// client surface is one call: request(line) -> reply line. Two transports:
//   * HubClient    — in-process, drives a ServiceHub directly. Measures
//     protocol + engine cost with zero I/O; the equivalence suite and the
//     service bench run on this.
//   * SocketClient — blocking AF_UNIX client for a spawned daemon; the
//     smoke test and the standalone loadgen binary use it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/hub.hpp"

namespace catbatch {

class LineClient {
 public:
  virtual ~LineClient() = default;

  /// Sends one request line (no trailing newline) and returns the single
  /// reply line. Throws std::runtime_error on transport failure.
  virtual std::string request(std::string_view line) = 0;
};

/// One in-process connection to a ServiceHub. Distinct HubClients on the
/// same hub may be driven from different threads (the hub serializes only
/// per connection); a single HubClient may not.
class HubClient final : public LineClient {
 public:
  explicit HubClient(ServiceHub& hub);
  ~HubClient() override;

  HubClient(const HubClient&) = delete;
  HubClient& operator=(const HubClient&) = delete;

  std::string request(std::string_view line) override;

 private:
  ServiceHub& hub_;
  std::uint64_t conn_;
  std::vector<std::string> replies_;
};

/// Blocking unix-socket connection to a running catbatchd.
class SocketClient final : public LineClient {
 public:
  /// Throws std::system_error if the connect fails.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  std::string request(std::string_view line) override;

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last returned newline
};

}  // namespace catbatch
