#include "service/protocol.hpp"

#include <array>
#include <cstddef>

#include "sched/registry.hpp"
#include "support/json.hpp"

namespace catbatch {

namespace {

constexpr std::array<std::string_view, 1> kHelloFields = {"version:int"};
constexpr std::array<std::string_view, 5> kOpenFields = {
    "session:string", "algo:string", "procs:int", "mode?:string",
    "clock?:string"};
constexpr std::array<std::string_view, 3> kSubmitFields = {
    "session:string", "tasks:array", "now?:number"};
constexpr std::array<std::string_view, 3> kCompleteFields = {
    "session:string", "task:int", "at:number"};
constexpr std::array<std::string_view, 2> kTickFields = {"session:string",
                                                         "at:number"};
constexpr std::array<std::string_view, 3> kCapacityFields = {
    "session:string", "procs:int", "at:number"};
constexpr std::array<std::string_view, 3> kKillFields = {
    "session:string", "task:int", "at:number"};
constexpr std::array<std::string_view, 1> kSessionOnly = {"session:string"};
constexpr std::array<std::string_view, 0> kNoFields = {};

// This table *is* the accepted message set — the hub validates incoming
// messages against it, and protocol_spec_text() renders it for docs_check.
constexpr std::array<RequestShape, 12> kRequests = {{
    {"hello", kHelloFields, "welcome"},
    {"open", kOpenFields, "opened"},
    {"submit", kSubmitFields, "decisions"},
    {"complete", kCompleteFields, "decisions"},
    {"tick", kTickFields, "decisions"},
    {"capacity", kCapacityFields, "decisions"},
    {"kill", kKillFields, "decisions"},
    {"step", kSessionOnly, "decisions"},
    {"drain", kSessionOnly, "decisions"},
    {"query", kSessionOnly, "stats"},
    {"close", kSessionOnly, "closed"},
    {"shutdown", kNoFields, "goodbye"},
}};

constexpr std::array<std::string_view, 8> kErrorCodes = {
    errc::kBadJson,          errc::kBadMessage,
    errc::kBadSequence,      errc::kUnsupportedVersion,
    errc::kUnknownSession,   errc::kDuplicateSession,
    errc::kUnknownAlgo,      errc::kContract,
};

}  // namespace

std::span<const RequestShape> request_shapes() { return kRequests; }

std::span<const std::string_view> error_codes() { return kErrorCodes; }

const RequestShape* find_request_shape(std::string_view type) {
  for (const RequestShape& shape : kRequests) {
    if (shape.type == type) return &shape;
  }
  return nullptr;
}

std::string_view first_unknown_field(const JsonValue& msg,
                                     const RequestShape& shape) {
  for (const auto& [name, value] : msg.members) {
    if (name == "type") continue;
    bool known = false;
    for (const std::string_view field : shape.fields) {
      // Compare against the name part of "name[?]:kind".
      std::string_view base = field.substr(0, field.find(':'));
      if (!base.empty() && base.back() == '?') base.remove_suffix(1);
      if (base == name) {
        known = true;
        break;
      }
    }
    if (!known) return name;
  }
  return {};
}

std::string protocol_spec_text() {
  std::string out;
  out += "version ";
  out += std::to_string(kProtocolVersion);
  out += '\n';
  for (const RequestShape& spec : kRequests) {
    out += "request ";
    out += spec.type;
    for (const std::string_view field : spec.fields) {
      out += ' ';
      out += field;
    }
    out += " -> ";
    out += spec.reply;
    out += '\n';
  }
  out += "errors";
  for (const std::string_view code : kErrorCodes) {
    out += ' ';
    out += code;
  }
  out += '\n';
  return out;
}

std::string error_line(std::string_view code, std::string_view message,
                       std::string_view session) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("error");
  w.key("code").value(std::string(code));
  w.key("message").value(std::string(message));
  if (!session.empty()) w.key("session").value(std::string(session));
  w.end_object();
  return w.str();
}

std::string welcome_line() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("welcome");
  w.key("version").value(kProtocolVersion);
  w.key("server").value("catbatchd");
  w.key("algos").begin_array();
  for (const std::string& name : scheduler_names()) w.value(name);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string opened_line(std::string_view session) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("opened");
  w.key("session").value(std::string(session));
  w.end_object();
  return w.str();
}

std::string decisions_line(std::string_view session, Time now,
                           std::span<const Decision> decisions,
                           bool complete) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("decisions");
  w.key("session").value(std::string(session));
  w.key("now").value(now);
  w.key("decisions").begin_array();
  for (const Decision& d : decisions) {
    w.begin_object();
    w.key("task").value(static_cast<std::uint64_t>(d.id));
    w.key("at").value(d.at);
    w.key("procs").value(d.procs);
    w.end_object();
  }
  w.end_array();
  w.key("complete").value(complete);
  w.end_object();
  return w.str();
}

std::string stats_line(std::string_view session, std::string_view algo,
                       const SessionStats& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("stats");
  w.key("session").value(std::string(session));
  w.key("algo").value(std::string(algo));
  w.key("now").value(stats.now);
  w.key("submitted").value(static_cast<std::uint64_t>(stats.submitted));
  w.key("completed").value(static_cast<std::uint64_t>(stats.completed));
  w.key("decisions").value(static_cast<std::uint64_t>(stats.decisions));
  w.key("makespan").value(stats.makespan);
  w.end_object();
  return w.str();
}

std::string closed_line(std::string_view session, const SimResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("closed");
  w.key("session").value(std::string(session));
  w.key("makespan").value(result.makespan);
  w.key("tasks").value(static_cast<std::uint64_t>(result.stats.task_count));
  w.key("decision_points")
      .value(static_cast<std::uint64_t>(result.stats.decision_points));
  w.key("events").value(static_cast<std::uint64_t>(result.stats.events));
  w.key("busy_area").value(result.stats.busy_area);
  w.end_object();
  return w.str();
}

std::string goodbye_line() {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("goodbye");
  w.end_object();
  return w.str();
}

}  // namespace catbatch
