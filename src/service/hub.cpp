#include "service/hub.hpp"

#include <utility>

#include "sched/registry.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

/// The "session" routing field, shared by every session-scoped request.
const std::string* session_name(const JsonValue& msg) {
  const JsonValue* field = msg.find("session");
  if (field == nullptr || !field->is_string()) return nullptr;
  return &field->str_v;
}

}  // namespace

ServiceHub::ServiceHub() = default;
ServiceHub::~ServiceHub() = default;

std::uint64_t ServiceHub::open_connection() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t conn = next_conn_++;
  conns_.emplace(conn, std::make_unique<Connection>());
  return conn;
}

void ServiceHub::close_connection(std::uint64_t conn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  conns_.erase(conn);
}

std::size_t ServiceHub::connection_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return conns_.size();
}

ServiceHub::Connection* ServiceHub::find_connection(std::uint64_t conn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : it->second.get();
}

void ServiceHub::handle_line(std::uint64_t conn, std::string_view line,
                             std::vector<std::string>& out) {
  // The pointer stays valid without the lock: only close_connection()
  // invalidates it, and the concurrency contract forbids racing it with
  // this connection's own traffic.
  Connection* c = find_connection(conn);
  CB_CHECK(c != nullptr, "handle_line for an unregistered connection");

  JsonParseError parse_error;
  const std::optional<JsonValue> parsed = parse_json(line, &parse_error);
  if (!parsed.has_value()) {
    out.push_back(error_line(
        errc::kBadJson, parse_error.message + " (byte " +
                            std::to_string(parse_error.offset) + ")"));
    return;
  }
  const JsonValue& msg = *parsed;
  if (!msg.is_object()) {
    out.push_back(
        error_line(errc::kBadMessage, "a message must be a JSON object"));
    return;
  }
  const JsonValue* type = msg.find("type");
  if (type == nullptr || !type->is_string()) {
    out.push_back(error_line(errc::kBadMessage,
                             "a message requires a string 'type' field"));
    return;
  }
  const RequestShape* shape = find_request_shape(type->str_v);
  if (shape == nullptr) {
    out.push_back(error_line(errc::kBadMessage,
                             "unknown message type '" + type->str_v + "'"));
    return;
  }
  if (const std::string_view unknown = first_unknown_field(msg, *shape);
      !unknown.empty()) {
    out.push_back(error_line(
        errc::kBadMessage, "unknown field '" + std::string(unknown) +
                               "' in '" + type->str_v + "'"));
    return;
  }

  if (type->str_v == "hello") {
    handle_hello(*c, msg, out);
    return;
  }
  if (!c->hello_done) {
    out.push_back(error_line(errc::kBadSequence,
                             "a connection must open with 'hello'"));
    return;
  }
  if (type->str_v == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    out.push_back(goodbye_line());
    return;
  }
  if (type->str_v == "open") {
    handle_open(*c, msg, out);
    return;
  }

  // Everything else is session-scoped.
  const std::string* name = session_name(msg);
  if (name == nullptr) {
    out.push_back(error_line(errc::kBadMessage,
                             "'" + type->str_v +
                                 "' requires a string 'session' field"));
    return;
  }
  const auto it = c->sessions.find(*name);
  if (it == c->sessions.end()) {
    out.push_back(error_line(errc::kUnknownSession,
                             "no open session named '" + *name + "'",
                             *name));
    return;
  }
  ServiceSession& session = *it->second;
  if (type->str_v == "submit") {
    session.handle_submit(msg, out);
  } else if (type->str_v == "complete") {
    session.handle_complete(msg, out);
  } else if (type->str_v == "tick") {
    session.handle_tick(msg, out);
  } else if (type->str_v == "capacity") {
    session.handle_capacity(msg, out);
  } else if (type->str_v == "kill") {
    session.handle_kill(msg, out);
  } else if (type->str_v == "step") {
    session.handle_step(out);
  } else if (type->str_v == "drain") {
    session.handle_drain(out);
  } else if (type->str_v == "query") {
    session.handle_query(out);
  } else {
    CB_CHECK(type->str_v == "close", "request shape table out of sync");
    session.handle_close(out);
    c->sessions.erase(it);
  }
}

void ServiceHub::handle_hello(Connection& c, const JsonValue& msg,
                              std::vector<std::string>& out) {
  if (c.hello_done) {
    out.push_back(
        error_line(errc::kBadSequence, "'hello' already exchanged"));
    return;
  }
  const JsonValue* version = msg.find("version");
  const auto v = (version != nullptr && version->is_number())
                     ? json_to_uint(version->num_v)
                     : std::nullopt;
  if (!v.has_value()) {
    out.push_back(error_line(errc::kBadMessage,
                             "'hello' requires an integer 'version'"));
    return;
  }
  if (*v != static_cast<std::uint64_t>(kProtocolVersion)) {
    out.push_back(error_line(
        errc::kUnsupportedVersion,
        "server speaks version " + std::to_string(kProtocolVersion)));
    return;
  }
  c.hello_done = true;
  out.push_back(welcome_line());
}

void ServiceHub::handle_open(Connection& c, const JsonValue& msg,
                             std::vector<std::string>& out) {
  const std::string* name = session_name(msg);
  if (name == nullptr || name->empty()) {
    out.push_back(error_line(
        errc::kBadMessage,
        "'open' requires a non-empty string 'session' field"));
    return;
  }
  if (c.sessions.size() >= kMaxSessionsPerConnection) {
    out.push_back(error_line(errc::kBadMessage,
                             "session limit reached for this connection",
                             *name));
    return;
  }
  if (c.sessions.contains(*name)) {
    out.push_back(error_line(errc::kDuplicateSession,
                             "session '" + *name + "' is already open",
                             *name));
    return;
  }
  const JsonValue* algo = msg.find("algo");
  if (algo == nullptr || !algo->is_string()) {
    out.push_back(error_line(errc::kBadMessage,
                             "'open' requires a string 'algo' field",
                             *name));
    return;
  }
  const SchedulerEntry* entry = find_scheduler(algo->str_v);
  if (entry == nullptr) {
    out.push_back(error_line(errc::kUnknownAlgo,
                             "no registered algorithm named '" +
                                 algo->str_v + "'",
                             *name));
    return;
  }
  const JsonValue* procs_field = msg.find("procs");
  const auto procs = (procs_field != nullptr && procs_field->is_number())
                         ? json_to_uint(procs_field->num_v)
                         : std::nullopt;
  if (!procs.has_value() || *procs < 1 ||
      *procs > static_cast<std::uint64_t>(kMaxProcs)) {
    out.push_back(error_line(
        errc::kBadMessage,
        "'open' requires an integer 'procs' in [1, " +
            std::to_string(kMaxProcs) + "]",
        *name));
    return;
  }

  SessionOptions options;
  options.mode = ScheduleMode::Counting;
  if (const JsonValue* mode = msg.find("mode"); mode != nullptr) {
    if (mode->is_string() && mode->str_v == "identity") {
      options.mode = ScheduleMode::Identity;
    } else if (mode->is_string() && mode->str_v == "counting") {
      options.mode = ScheduleMode::Counting;
    } else {
      out.push_back(error_line(errc::kBadMessage,
                               "'mode' must be 'identity' or 'counting'",
                               *name));
      return;
    }
  }
  if (const JsonValue* clock = msg.find("clock"); clock != nullptr) {
    if (clock->is_string() && clock->str_v == "external") {
      options.clock = SessionClock::External;
    } else if (clock->is_string() && clock->str_v == "simulated") {
      options.clock = SessionClock::Simulated;
    } else {
      out.push_back(error_line(errc::kBadMessage,
                               "'clock' must be 'simulated' or 'external'",
                               *name));
      return;
    }
  }

  c.sessions.emplace(*name, std::make_unique<ServiceSession>(
                                *name, *entry, static_cast<int>(*procs),
                                options));
  out.push_back(opened_line(*name));
}

}  // namespace catbatch
