// ServiceHub: the transport-free core of catbatchd.
//
// A hub multiplexes protocol connections, each holding its own namespace
// of sessions (one SessionEngine per session, any registry algorithm by
// name). Transports — the stdio loop, the unix-socket daemon, in-process
// test and bench clients, the protocol fuzzer — all reduce to the same
// three calls: open_connection(), handle_line() per request line,
// close_connection(). Everything protocol-visible therefore has exactly
// one implementation, and the equivalence/fuzz suites exercise the real
// serving code without sockets.
//
// Concurrency contract: handle_line() calls for the SAME connection must
// be serialized by the caller (the daemon runs one strand per connection);
// calls for DIFFERENT connections may run concurrently — the hub only
// locks the connection table, never a session. close_connection() for a
// connection may only race with nothing: callers close after that
// connection's strand drained.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "service/session.hpp"

namespace catbatch {

class ServiceHub {
 public:
  /// Sessions a single connection may hold open; an "open" past the cap
  /// answers bad-message. Keeps one misbehaving client from holding every
  /// engine.
  static constexpr std::size_t kMaxSessionsPerConnection = 4096;
  /// Platform-size bound accepted in "open" (matches sched_cli --procs).
  static constexpr std::int64_t kMaxProcs = 1 << 20;

  ServiceHub();
  ~ServiceHub();

  ServiceHub(const ServiceHub&) = delete;
  ServiceHub& operator=(const ServiceHub&) = delete;

  /// Registers a connection and returns its id.
  [[nodiscard]] std::uint64_t open_connection();

  /// Destroys a connection and every session it holds. See the
  /// concurrency contract above.
  void close_connection(std::uint64_t conn);

  /// Processes one request line, appending one (or, for unparseable
  /// traffic, exactly one error) reply line per request. Lines carry no
  /// trailing newline in either direction.
  void handle_line(std::uint64_t conn, std::string_view line,
                   std::vector<std::string>& out);

  /// True once any connection sent {"type":"shutdown"}. Transports poll
  /// this to stop accepting and exit after in-flight strands drain.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t connection_count() const;

 private:
  struct Connection {
    bool hello_done = false;
    std::unordered_map<std::string, std::unique_ptr<ServiceSession>>
        sessions;
  };

  Connection* find_connection(std::uint64_t conn);
  void handle_hello(Connection& c, const JsonValue& msg,
                    std::vector<std::string>& out);
  void handle_open(Connection& c, const JsonValue& msg,
                   std::vector<std::string>& out);

  mutable std::mutex mutex_;  // guards conns_ (the table, not the sessions)
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_ = 1;
  std::atomic<bool> shutdown_{false};
};

}  // namespace catbatch
