// catbatchd transports: the loops that move protocol lines between clients
// and a ServiceHub.
//
// Two transports share one hub implementation:
//   * serve_stdio — one connection over an istream/ostream pair. The
//     simplest deployment (spawn catbatchd as a child, talk over pipes)
//     and the reference loop the fuzzer drives.
//   * serve_unix  — an AF_UNIX listener multiplexing many connections with
//     a poll() reactor. Reads are non-blocking; each connection's request
//     lines are processed on a strand (at most one ThreadPool task in
//     flight per connection), which is what makes the hub's "serialize
//     per-connection" contract hold while different connections' engines
//     run concurrently.
//
// Both return once a client's {"type":"shutdown"} has been served (reply
// flushed) or input ends.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "service/hub.hpp"

namespace catbatch {

/// Longest request line either transport accepts. Longer lines answer
/// bad-message; on the socket transport the connection is then closed
/// (framing is unrecoverable once a line is dropped mid-stream).
inline constexpr std::size_t kMaxLineBytes = std::size_t{64} << 20;

struct DaemonOptions {
  /// Filesystem path to bind. An existing socket file is replaced.
  std::string socket_path;
  /// Worker threads for connection strands; <= 0 means
  /// ThreadPool::resolve_jobs default.
  int jobs = 0;
};

/// Serves one connection over (in, out): one request line in, its reply
/// lines out, flushed per request so a lockstep client never deadlocks.
void serve_stdio(ServiceHub& hub, std::istream& in, std::ostream& out);

/// Binds options.socket_path and serves until shutdown is requested.
/// Throws std::system_error on socket setup failure; removes the socket
/// file on exit.
void serve_unix(ServiceHub& hub, const DaemonOptions& options);

}  // namespace catbatch
