// catbatchd wire protocol, version 1: line-delimited JSON.
//
// Every message is one JSON object on one line, with a string "type"
// field. The protocol is lockstep per session: every request produces
// exactly one reply line (a "decisions", "stats", or lifecycle reply on
// success, an "error" envelope on failure), so clients can measure
// per-decision latency and pipeline across sessions with one outstanding
// request per session. Message schemas, the versioning rule, and the
// session lifecycle are documented in docs/SERVICE.md; the
// machine-readable spec below (protocol_spec_text) is what
// tools/docs_check.sh diffs that document against.
//
// Versioning rule: a connection opens with {"type":"hello","version":N}.
// The server accepts exactly the versions it implements (currently 1) and
// answers "unsupported-version" otherwise; within a version, servers may
// add optional reply fields but never remove or re-type existing ones, and
// unknown *request* fields are rejected (a client talking a newer dialect
// fails loudly, not silently).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "sim/session.hpp"
#include "support/json_parse.hpp"

namespace catbatch {

inline constexpr int kProtocolVersion = 1;

// Error-envelope codes ({"type":"error","code":...}).
namespace errc {
inline constexpr std::string_view kBadJson = "bad-json";
inline constexpr std::string_view kBadMessage = "bad-message";
inline constexpr std::string_view kBadSequence = "bad-sequence";
inline constexpr std::string_view kUnsupportedVersion = "unsupported-version";
inline constexpr std::string_view kUnknownSession = "unknown-session";
inline constexpr std::string_view kDuplicateSession = "duplicate-session";
inline constexpr std::string_view kUnknownAlgo = "unknown-algo";
inline constexpr std::string_view kContract = "contract";
}  // namespace errc

/// The machine-readable protocol spec: one line per request type
/// ("request <type> <field>[?]:<kind>... -> <reply>"), one line per error
/// code, one version line. Printed by `catbatchd --protocol-spec`; the
/// parser's accepted message set is generated from the same tables, so the
/// spec cannot drift from the implementation.
[[nodiscard]] std::string protocol_spec_text();

/// One accepted request type. `fields` entries are "name[?]:kind" — '?'
/// marks an optional field. The hub validates every incoming message
/// against this table (unknown type, unknown field) before dispatching, so
/// the table is authoritative, not documentation.
struct RequestShape {
  std::string_view type;
  std::span<const std::string_view> fields;
  std::string_view reply;
};

/// All accepted request shapes, in spec order.
[[nodiscard]] std::span<const RequestShape> request_shapes();

/// Every error-envelope code the server can emit, in spec order.
[[nodiscard]] std::span<const std::string_view> error_codes();

/// Shape for `type`, or nullptr if the type is not part of the protocol.
[[nodiscard]] const RequestShape* find_request_shape(std::string_view type);

/// Name of the first member of `msg` (other than "type") that the shape
/// does not accept; empty when every member is known.
[[nodiscard]] std::string_view first_unknown_field(const JsonValue& msg,
                                                   const RequestShape& shape);

// ---- reply builders -------------------------------------------------------
// Each returns one complete reply line (no trailing newline).

[[nodiscard]] std::string error_line(std::string_view code,
                                     std::string_view message,
                                     std::string_view session = {});
[[nodiscard]] std::string welcome_line();
[[nodiscard]] std::string opened_line(std::string_view session);
[[nodiscard]] std::string decisions_line(std::string_view session, Time now,
                                         std::span<const Decision> decisions,
                                         bool complete);
struct SessionStats {
  Time now = 0.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t decisions = 0;
  Time makespan = 0.0;
};
[[nodiscard]] std::string stats_line(std::string_view session,
                                     std::string_view algo,
                                     const SessionStats& stats);
[[nodiscard]] std::string closed_line(std::string_view session,
                                      const SimResult& result);
[[nodiscard]] std::string goodbye_line();

}  // namespace catbatch
