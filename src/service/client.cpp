#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "support/check.hpp"

namespace catbatch {

HubClient::HubClient(ServiceHub& hub)
    : hub_(hub), conn_(hub.open_connection()) {}

HubClient::~HubClient() { hub_.close_connection(conn_); }

std::string HubClient::request(std::string_view line) {
  replies_.clear();
  hub_.handle_line(conn_, line, replies_);
  CB_CHECK(replies_.size() == 1, "protocol is lockstep: one reply per line");
  return std::move(replies_.front());
}

SocketClient::SocketClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CB_CHECK(socket_path.size() < sizeof(addr.sun_path),
           "socket path too long for sockaddr_un");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(saved, std::generic_category(),
                            "connect " + socket_path);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string SocketClient::request(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "send");
    }
    sent += static_cast<std::size_t>(n);
  }

  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return reply;
    }
    char chunk[1 << 16];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "recv");
    }
    if (n == 0) {
      throw std::runtime_error("catbatchd closed the connection mid-reply");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace catbatch
