#include "analysis/flow_metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

FlowMetrics compute_flow_metrics(const TaskGraph& graph,
                                 const SimResult& result) {
  CB_CHECK(result.ready_times.size() == graph.size(),
           "result does not belong to this instance");
  FlowMetrics m;
  m.task_count = graph.size();
  if (graph.empty()) return m;

  double wait_sum = 0.0;
  double stretch_sum = 0.0;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const ScheduledTask& e = result.schedule.entry_for(id);
    const Time ready = result.ready_times[id];
    CB_CHECK(e.start >= ready - 1e-12,
             "task started before it became ready");
    const Time wait = e.start - ready;
    const double stretch = static_cast<double>(e.finish - ready) /
                           static_cast<double>(graph.task(id).work);
    wait_sum += static_cast<double>(wait);
    stretch_sum += stretch;
    m.max_wait = std::max(m.max_wait, wait);
    m.max_stretch = std::max(m.max_stretch, stretch);
  }
  m.mean_wait = wait_sum / static_cast<double>(graph.size());
  m.mean_stretch = stretch_sum / static_cast<double>(graph.size());
  return m;
}

}  // namespace catbatch
