#include "analysis/flow_metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

namespace {

FlowMetrics compute(std::span<const Time> work, const SimResult& result) {
  CB_CHECK(result.ready_times.size() == work.size(),
           "result does not belong to this instance");
  FlowMetrics m;
  m.task_count = work.size();
  if (work.empty()) return m;

  double wait_sum = 0.0;
  double flow_sum = 0.0;
  double stretch_sum = 0.0;
  for (TaskId id = 0; id < work.size(); ++id) {
    const ScheduledTask& e = result.schedule.entry_for(id);
    const Time ready = result.ready_times[id];
    CB_CHECK(e.start >= ready - 1e-12,
             "task started before it became ready");
    const Time wait = e.start - ready;
    const Time flow = e.finish - ready;
    wait_sum += static_cast<double>(wait);
    flow_sum += static_cast<double>(flow);
    m.max_wait = std::max(m.max_wait, wait);
    m.max_flow = std::max(m.max_flow, flow);
    if (work[id] <= 0.0) {
      // Stretch divides by work: undefined here. Count the exclusion
      // instead of letting one degenerate task turn the aggregates into
      // inf/nan (the zero-work policy in the header).
      ++m.stretch_skipped;
      continue;
    }
    const double stretch =
        static_cast<double>(flow) / static_cast<double>(work[id]);
    stretch_sum += stretch;
    m.max_stretch = std::max(m.max_stretch, stretch);
  }
  m.mean_wait = wait_sum / static_cast<double>(work.size());
  m.mean_flow = flow_sum / static_cast<double>(work.size());
  const std::size_t stretched = work.size() - m.stretch_skipped;
  if (stretched > 0) {
    m.mean_stretch = stretch_sum / static_cast<double>(stretched);
  }
  return m;
}

}  // namespace

FlowMetrics compute_flow_metrics(const TaskGraph& graph,
                                 const SimResult& result) {
  CB_CHECK(result.ready_times.size() == graph.size(),
           "result does not belong to this instance");
  std::vector<Time> work(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) work[id] = graph.task(id).work;
  return compute(work, result);
}

FlowMetrics compute_flow_metrics(std::span<const Time> work,
                                 const SimResult& result) {
  return compute(work, result);
}

}  // namespace catbatch
