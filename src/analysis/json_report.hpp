// Machine-readable bench results: BENCH_*.json emission.
//
// Every sweep-driven bench serializes its aggregates (and, with keep_runs,
// per-run metrics/timings) into a small stable JSON document so that ratio
// and wall-clock trajectories are trackable across PRs by tooling instead
// of by diffing text tables. The dialect is deliberately tiny: objects,
// arrays, strings, bools and finite doubles (non-finite values render as
// the tagged string sentinels "NaN"/"Infinity"/"-Infinity", so strict
// numeric parse-back fails loudly). Schema (schema = 1):
//
//   {
//     "bench": "thm1_ratio_vs_n", "schema": 1,
//     "procs": 16, "trials": 5, "base_seed": 42, "jobs": 8,
//     "wall_ms": 123.4,
//     "families": [
//       { "family": "layered", "wall_ms": 17.2,
//         "schedulers": [
//           { "scheduler": "catbatch", "runs": 5,
//             "max_ratio": 1.8, "mean_ratio": 1.5,
//             "max_theorem1_margin": 0.25, "max_theorem2_margin": 0.21,
//             "total_wall_ms": 15.1 }, ... ],
//         "runs": [ { "scheduler": "catbatch", "seed": 42, "tasks": 256,
//                     "makespan": 91.0, "lower_bound": 61.2,
//                     "ratio": 1.49, "wall_ms": 3.0 }, ... ] }, ... ]
//   }
//
// Benches that opt into observability (docs/OBSERVABILITY.md) append one
// top-level `"metrics"` object — the flat MetricsRegistry snapshot of
// obs/metrics_export.hpp — via the overload taking a MetricsRegistry.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "support/json.hpp"

namespace catbatch {

class MetricsRegistry;  // obs/metrics.hpp

/// Serializes a grid sweep into the document described above.
[[nodiscard]] std::string sweep_report_json(
    const std::string& bench_id, const SweepOptions& options,
    std::span<const FamilySweep> families, double wall_ms);

/// Same document with an additional top-level `"metrics"` object holding a
/// flat snapshot of `metrics` (see obs/metrics_export.hpp for the schema:
/// `counters`, `gauges`, `histograms`). Passing nullptr is equivalent to
/// the overload above — benches opt into observability without forking the
/// report path.
[[nodiscard]] std::string sweep_report_json(
    const std::string& bench_id, const SweepOptions& options,
    std::span<const FamilySweep> families, double wall_ms,
    const MetricsRegistry* metrics);

/// Writes `json` to `<dir>/BENCH_<bench_id>.json` and returns the path.
/// `dir` defaults to CATBATCH_BENCH_DIR if set, else the working directory.
std::string write_bench_report(const std::string& bench_id,
                               const std::string& json,
                               std::string dir = {});

}  // namespace catbatch
