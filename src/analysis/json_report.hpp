// Machine-readable bench results: BENCH_*.json emission.
//
// Every sweep-driven bench serializes its aggregates (and, with keep_runs,
// per-run metrics/timings) into a small stable JSON document so that ratio
// and wall-clock trajectories are trackable across PRs by tooling instead
// of by diffing text tables. The dialect is deliberately tiny: objects,
// arrays, strings, bools and finite doubles (non-finite values render as
// null). Schema (schema = 1):
//
//   {
//     "bench": "thm1_ratio_vs_n", "schema": 1,
//     "procs": 16, "trials": 5, "base_seed": 42, "jobs": 8,
//     "wall_ms": 123.4,
//     "families": [
//       { "family": "layered", "wall_ms": 17.2,
//         "schedulers": [
//           { "scheduler": "catbatch", "runs": 5,
//             "max_ratio": 1.8, "mean_ratio": 1.5,
//             "max_theorem1_margin": 0.25, "max_theorem2_margin": 0.21,
//             "total_wall_ms": 15.1 }, ... ],
//         "runs": [ { "scheduler": "catbatch", "seed": 42, "tasks": 256,
//                     "makespan": 91.0, "lower_bound": 61.2,
//                     "ratio": 1.49, "wall_ms": 3.0 }, ... ] }, ... ]
//   }
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"

namespace catbatch {

/// Incremental JSON writer with correct string escaping and shortest
/// round-trip double formatting. Keys/values must be emitted in a valid
/// order (the writer tracks comma placement, not grammar).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Emits `"name":` — must be followed by a value (or begin_*).
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);  // non-finite -> null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void separate();
  std::string out_;
  std::vector<bool> needs_comma_;  // one level per open container
  bool after_key_ = false;
};

/// Escapes `raw` as a JSON string literal (with surrounding quotes).
[[nodiscard]] std::string json_quote(const std::string& raw);

/// Serializes a grid sweep into the document described above.
[[nodiscard]] std::string sweep_report_json(
    const std::string& bench_id, const SweepOptions& options,
    std::span<const FamilySweep> families, double wall_ms);

/// Writes `json` to `<dir>/BENCH_<bench_id>.json` and returns the path.
/// `dir` defaults to CATBATCH_BENCH_DIR if set, else the working directory.
std::string write_bench_report(const std::string& bench_id,
                               const std::string& json,
                               std::string dir = {});

}  // namespace catbatch
