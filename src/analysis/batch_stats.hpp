// Batch-level decomposition of a CatBatch run — the measurable counterpart
// of Lemma 7's analysis:
//     T = Σ_ζ T(B_ζ)   with   T(B_ζ) <= 2·A(B_ζ)/P + L_ζ.
// For each executed batch we report its area, duration, category length,
// the Lemma 6 bound, and the idle processor-time the barrier caused; the
// totals show how much of the makespan the Σ L_ζ term actually claimed.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "support/table.hpp"

namespace catbatch {

struct BatchStats {
  Category category;
  std::size_t task_count = 0;
  Time started = 0.0;
  Time finished = 0.0;
  Time area = 0.0;          // Σ t·p over the batch
  Time category_length = 0.0;  // L_ζ for the realized critical path
  Time lemma6_bound = 0.0;  // 2·A/P + L_ζ
  Time idle_area = 0.0;     // P·duration − area

  [[nodiscard]] Time duration() const { return finished - started; }
};

struct CatBatchDecomposition {
  std::vector<BatchStats> batches;
  Time makespan = 0.0;
  Time total_area = 0.0;
  Time sum_category_lengths = 0.0;  // Σ L_ζ over non-empty categories
  Time lemma7_bound = 0.0;          // 2·A/P + Σ L_ζ
  int procs = 0;
};

/// Computes the decomposition from a finished CatBatch run. The batch
/// history must come from a simulation of exactly `graph` on `procs`.
[[nodiscard]] CatBatchDecomposition decompose_batches(
    const TaskGraph& graph, const std::vector<BatchRecord>& history,
    int procs);

/// Renders the decomposition as a text table (one row per batch + totals).
[[nodiscard]] TextTable decomposition_table(
    const CatBatchDecomposition& decomposition);

/// Color-group table for sim/svg.hpp: task id -> index of its batch in the
/// history, so an SVG Gantt chart shows the batch structure (Figure 6's
/// coloring). Tasks missing from the history map to group 0.
[[nodiscard]] std::vector<std::size_t> batch_color_groups(
    const std::vector<BatchRecord>& history, std::size_t task_count);

}  // namespace catbatch
