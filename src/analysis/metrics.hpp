// Evaluation of a scheduler on an instance: makespan, the lower bound
// Lb(I), the resulting worst-case ratio T/Lb (Section 3.2), utilization and
// theorem-bound comparisons. Every run is machine-validated before metrics
// are reported.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "sim/engine.hpp"

namespace catbatch {

struct RunMetrics {
  std::string scheduler;
  std::size_t task_count = 0;
  Time makespan = 0.0;
  Time lower_bound = 0.0;   // Lb(I)
  double ratio = 0.0;       // makespan / Lb(I) — upper bound on T/T_Opt
  double utilization = 0.0;  // time-averaged busy fraction
  Time critical_path = 0.0;
  Time area = 0.0;
  double theorem1_bound = 0.0;  // log2(n) + 3
  double theorem2_bound = 0.0;  // log2(M/m) + 6
};

/// Simulates `scheduler` on the static `graph`, validates the schedule, and
/// computes the metrics above. `options` is forwarded to the engine, so an
/// instrumented evaluation (SimOptions::observer) reports the same metrics
/// as a plain one.
[[nodiscard]] RunMetrics evaluate(const TaskGraph& graph,
                                  OnlineScheduler& scheduler, int procs,
                                  const SimOptions& options = {});

/// Same for an adaptive source; the realized graph provides the bounds.
[[nodiscard]] RunMetrics evaluate(InstanceSource& source,
                                  OnlineScheduler& scheduler, int procs,
                                  const SimOptions& options = {});

/// Factory for a named scheduler lineup used by the comparison benches.
struct NamedScheduler {
  std::string label;
  std::function<std::unique_ptr<OnlineScheduler>()> make;
};

/// CatBatch, RelaxedCatBatch and the list-scheduling family.
[[nodiscard]] std::vector<NamedScheduler> standard_scheduler_lineup();

}  // namespace catbatch
