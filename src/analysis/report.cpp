#include "analysis/report.hpp"

#include <cstdlib>
#include <cstring>
#include <ostream>

#include "support/text.hpp"
#include "support/thread_pool.hpp"

namespace catbatch {

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& title) {
  os << "\n=== " << id << ": " << title << " ===\n";
}

TextTable make_metrics_table() {
  return TextTable(
      {"scheduler", "n", "makespan", "Lb", "ratio", "util", "log2(n)+3"});
}

void add_metrics_row(TextTable& table, const RunMetrics& m) {
  table.add_row({m.scheduler, std::to_string(m.task_count),
                 format_number(static_cast<double>(m.makespan), 4),
                 format_number(static_cast<double>(m.lower_bound), 4),
                 format_number(m.ratio, 3), format_number(m.utilization, 3),
                 format_number(m.theorem1_bound, 3)});
}

int bench_jobs(int argc, char** argv) {
  for (int k = 1; k + 1 < argc; ++k) {
    if (std::strcmp(argv[k], "--jobs") == 0) {
      const int parsed = std::atoi(argv[k + 1]);
      if (parsed > 0) return parsed;
    }
  }
  return ThreadPool::default_jobs();
}

}  // namespace catbatch
