#include "analysis/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "instances/random_dags.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace catbatch {

namespace {

struct RunSlot {
  RunMetrics metrics;
  double wall_ms = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// Executes one (family, scheduler, trial) run. The instance is
/// re-derived from Rng(base_seed + trial) inside the run, so concurrent
/// runs share no RNG state and every scheduler sees the identical graph
/// for a given trial.
RunSlot execute_run(const InstanceFamily& family,
                    const NamedScheduler& named, int procs,
                    std::uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(seed);
  const TaskGraph graph = family.make(rng);
  const auto scheduler = named.make();
  RunSlot slot;
  slot.metrics = evaluate(graph, *scheduler, procs);
  slot.wall_ms = ms_since(t0);
  return slot;
}

/// Serial reduction in trial order — replicates the historical incremental
/// formulas exactly, so aggregates are bit-identical for any job count.
std::vector<RatioAggregate> reduce(const std::vector<NamedScheduler>& lineup,
                                   std::span<const RunSlot> slots,
                                   std::size_t trials) {
  std::vector<RatioAggregate> out;
  out.reserve(lineup.size());
  for (const NamedScheduler& named : lineup) {
    out.push_back(RatioAggregate{named.label, 0, 0.0, 0.0, 0.0, 0.0, 0.0});
  }
  for (std::size_t trial = 0; trial < trials; ++trial) {
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const RunSlot& slot = slots[trial * lineup.size() + s];
      const RunMetrics& m = slot.metrics;
      RatioAggregate& agg = out[s];
      ++agg.runs;
      agg.max_ratio = std::max(agg.max_ratio, m.ratio);
      agg.mean_ratio +=
          (m.ratio - agg.mean_ratio) / static_cast<double>(agg.runs);
      if (m.theorem1_bound > 0.0) {
        agg.max_theorem1_margin =
            std::max(agg.max_theorem1_margin, m.ratio / m.theorem1_bound);
      }
      if (m.theorem2_bound > 0.0) {
        agg.max_theorem2_margin =
            std::max(agg.max_theorem2_margin, m.ratio / m.theorem2_bound);
      }
      agg.total_wall_ms += slot.wall_ms;
    }
  }
  return out;
}

}  // namespace

std::vector<FamilySweep> sweep_grid(std::span<const InstanceFamily> families,
                                    const std::vector<NamedScheduler>& lineup,
                                    const SweepOptions& options) {
  CB_CHECK(options.trials >= 1, "sweep needs at least one trial");
  CB_CHECK(!lineup.empty(), "sweep needs at least one scheduler");
  const std::size_t per_family = options.trials * lineup.size();
  const std::size_t total = families.size() * per_family;

  // One flat slot per (family, trial, scheduler) run; workers only ever
  // touch their own slot.
  std::vector<RunSlot> slots(total);
  const auto grid_t0 = std::chrono::steady_clock::now();

  parallel_for(options.jobs, total, [&](std::size_t flat) {
    const std::size_t f = flat / per_family;
    const std::size_t rest = flat % per_family;
    const std::size_t trial = rest / lineup.size();
    const std::size_t s = rest % lineup.size();
    slots[flat] = execute_run(families[f], lineup[s], options.procs,
                              options.base_seed + trial);
  });

  const double grid_ms = ms_since(grid_t0);
  double total_busy = 0.0;
  for (const RunSlot& slot : slots) total_busy += slot.wall_ms;

  std::vector<FamilySweep> out;
  out.reserve(families.size());
  for (std::size_t f = 0; f < families.size(); ++f) {
    FamilySweep fs;
    fs.family = families[f].label;
    const std::span<const RunSlot> family_slots(
        slots.data() + f * per_family, per_family);
    fs.aggregates = reduce(lineup, family_slots, options.trials);
    double busy = 0.0;
    for (const RunSlot& slot : family_slots) busy += slot.wall_ms;
    // Per-family wall clock is attributed proportionally to run cost when
    // families share the pool; the sum over families equals the grid's
    // elapsed time.
    fs.wall_ms = total_busy > 0.0 ? grid_ms * (busy / total_busy) : 0.0;
    if (options.keep_runs) {
      fs.runs.reserve(per_family);
      for (std::size_t trial = 0; trial < options.trials; ++trial) {
        for (std::size_t s = 0; s < lineup.size(); ++s) {
          const RunSlot& slot = family_slots[trial * lineup.size() + s];
          fs.runs.push_back(RunRecord{lineup[s].label,
                                      options.base_seed + trial, slot.metrics,
                                      slot.wall_ms});
        }
      }
    }
    out.push_back(std::move(fs));
  }
  return out;
}

std::vector<RatioAggregate> sweep_family(
    const InstanceFamily& family, const std::vector<NamedScheduler>& lineup,
    const SweepOptions& options) {
  const std::vector<FamilySweep> grid =
      sweep_grid(std::span<const InstanceFamily>(&family, 1), lineup,
                 options);
  return grid.front().aggregates;
}

std::vector<RatioAggregate> sweep_family(
    const InstanceFamily& family, const std::vector<NamedScheduler>& lineup,
    int procs, std::size_t trials, std::uint64_t base_seed) {
  SweepOptions options;
  options.procs = procs;
  options.trials = trials;
  options.base_seed = base_seed;
  options.jobs = 1;
  return sweep_family(family, lineup, options);
}

std::vector<InstanceFamily> standard_families(std::size_t task_count,
                                              int max_procs) {
  CB_CHECK(task_count >= 4, "families need at least 4 tasks");
  RandomTaskParams params;
  params.procs.max_procs = max_procs;

  std::vector<InstanceFamily> out;
  out.push_back(InstanceFamily{
      "layered", [task_count, params](Rng& rng) {
        const std::size_t layers = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(task_count))));
        return random_layered_dag(rng, task_count, layers, params);
      }});
  out.push_back(InstanceFamily{
      "order-dag", [task_count, params](Rng& rng) {
        const double p =
            std::min(0.5, 4.0 / static_cast<double>(task_count));
        return random_order_dag(rng, task_count, p, params);
      }});
  out.push_back(InstanceFamily{
      "series-parallel", [task_count, params](Rng& rng) {
        return random_series_parallel(rng, task_count, 0.5, params);
      }});
  out.push_back(InstanceFamily{
      "fork-join", [task_count, params](Rng& rng) {
        const std::size_t width = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(task_count))));
        const std::size_t stages =
            std::max<std::size_t>(1, task_count / (width + 1));
        return random_fork_join(rng, stages, width, params);
      }});
  out.push_back(InstanceFamily{
      "chains", [task_count, params](Rng& rng) {
        const std::size_t chains = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(task_count))));
        return random_chains(rng, chains,
                             std::max<std::size_t>(1, task_count / chains),
                             params);
      }});
  out.push_back(InstanceFamily{
      "out-tree", [task_count, params](Rng& rng) {
        return random_out_tree(rng, task_count, 3, params);
      }});
  out.push_back(InstanceFamily{
      "independent", [task_count, params](Rng& rng) {
        return random_independent(rng, task_count, params);
      }});
  return out;
}

InstanceFamily standard_family(const std::string& label,
                               std::size_t task_count, int max_procs) {
  for (InstanceFamily& family : standard_families(task_count, max_procs)) {
    if (family.label == label) return std::move(family);
  }
  CB_CHECK(false, "unknown instance family: " + label);
  return {};  // unreachable
}

}  // namespace catbatch
