#include "analysis/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {

std::vector<RatioAggregate> sweep_family(
    const InstanceFamily& family, const std::vector<NamedScheduler>& lineup,
    int procs, std::size_t trials, std::uint64_t base_seed) {
  CB_CHECK(trials >= 1, "sweep needs at least one trial");
  std::vector<RatioAggregate> out;
  out.reserve(lineup.size());
  for (const NamedScheduler& named : lineup) {
    out.push_back(RatioAggregate{named.label, 0, 0.0, 0.0, 0.0});
  }

  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(base_seed + trial);
    const TaskGraph graph = family.make(rng);
    for (std::size_t s = 0; s < lineup.size(); ++s) {
      const auto scheduler = lineup[s].make();
      const RunMetrics m = evaluate(graph, *scheduler, procs);
      RatioAggregate& agg = out[s];
      ++agg.runs;
      agg.max_ratio = std::max(agg.max_ratio, m.ratio);
      agg.mean_ratio += (m.ratio - agg.mean_ratio) /
                        static_cast<double>(agg.runs);
      if (m.theorem1_bound > 0.0) {
        agg.max_theorem1_margin =
            std::max(agg.max_theorem1_margin, m.ratio / m.theorem1_bound);
      }
    }
  }
  return out;
}

std::vector<InstanceFamily> standard_families(std::size_t task_count,
                                              int max_procs) {
  CB_CHECK(task_count >= 4, "families need at least 4 tasks");
  RandomTaskParams params;
  params.procs.max_procs = max_procs;

  std::vector<InstanceFamily> out;
  out.push_back(InstanceFamily{
      "layered", [task_count, params](Rng& rng) {
        const std::size_t layers = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(task_count))));
        return random_layered_dag(rng, task_count, layers, params);
      }});
  out.push_back(InstanceFamily{
      "order-dag", [task_count, params](Rng& rng) {
        const double p =
            std::min(0.5, 4.0 / static_cast<double>(task_count));
        return random_order_dag(rng, task_count, p, params);
      }});
  out.push_back(InstanceFamily{
      "series-parallel", [task_count, params](Rng& rng) {
        return random_series_parallel(rng, task_count, 0.5, params);
      }});
  out.push_back(InstanceFamily{
      "fork-join", [task_count, params](Rng& rng) {
        const std::size_t width = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(task_count))));
        const std::size_t stages =
            std::max<std::size_t>(1, task_count / (width + 1));
        return random_fork_join(rng, stages, width, params);
      }});
  out.push_back(InstanceFamily{
      "chains", [task_count, params](Rng& rng) {
        const std::size_t chains = std::max<std::size_t>(
            2, static_cast<std::size_t>(std::sqrt(
                   static_cast<double>(task_count))));
        return random_chains(rng, chains,
                             std::max<std::size_t>(1, task_count / chains),
                             params);
      }});
  out.push_back(InstanceFamily{
      "out-tree", [task_count, params](Rng& rng) {
        return random_out_tree(rng, task_count, 3, params);
      }});
  out.push_back(InstanceFamily{
      "independent", [task_count, params](Rng& rng) {
        return random_independent(rng, task_count, params);
      }});
  return out;
}

}  // namespace catbatch
