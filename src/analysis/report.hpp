// Report helpers shared by the bench binaries: uniform experiment headers
// and metric-row formatting, so every regenerated figure/table reads the
// same way and diffs cleanly against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/metrics.hpp"
#include "support/table.hpp"

namespace catbatch {

/// Prints a framed experiment header:
///   === E5: Figure 6 — CatBatch schedule of the running example ===
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& title);

/// Appends a metrics row (scheduler, n, makespan, Lb, ratio, util) to a
/// table created with metrics_table_header().
[[nodiscard]] TextTable make_metrics_table();
void add_metrics_row(TextTable& table, const RunMetrics& metrics);

/// Shared `--jobs N` knob for the bench mains: returns N when present in
/// argv, otherwise ThreadPool::default_jobs() (CATBATCH_JOBS environment
/// override, else hardware concurrency).
[[nodiscard]] int bench_jobs(int argc, char** argv);

}  // namespace catbatch
