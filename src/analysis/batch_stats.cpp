#include "analysis/batch_stats.hpp"

#include "core/criticality.hpp"
#include "core/lmatrix.hpp"
#include "support/check.hpp"
#include "support/text.hpp"

namespace catbatch {

CatBatchDecomposition decompose_batches(
    const TaskGraph& graph, const std::vector<BatchRecord>& history,
    int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CatBatchDecomposition out;
  out.procs = procs;
  out.total_area = graph.total_area();
  if (history.empty()) return out;

  const Time critical = critical_path_length(graph);
  for (const BatchRecord& record : history) {
    BatchStats stats;
    stats.category = record.category;
    stats.task_count = record.tasks.size();
    stats.started = record.started;
    stats.finished = record.finished;
    for (const TaskId id : record.tasks) {
      stats.area += graph.task(id).area();
    }
    stats.category_length = category_length(record.category, critical);
    stats.lemma6_bound =
        2.0 * stats.area / static_cast<Time>(procs) + stats.category_length;
    stats.idle_area =
        static_cast<Time>(procs) * stats.duration() - stats.area;
    CB_DCHECK(stats.duration() <= stats.lemma6_bound + 1e-9,
              "Lemma 6 violated by a recorded batch");
    out.sum_category_lengths += stats.category_length;
    out.makespan = stats.finished;
    out.batches.push_back(stats);
  }
  out.lemma7_bound = 2.0 * out.total_area / static_cast<Time>(procs) +
                     out.sum_category_lengths;
  return out;
}

std::vector<std::size_t> batch_color_groups(
    const std::vector<BatchRecord>& history, std::size_t task_count) {
  std::vector<std::size_t> groups(task_count, 0);
  for (std::size_t k = 0; k < history.size(); ++k) {
    for (const TaskId id : history[k].tasks) {
      CB_CHECK(id < task_count, "batch history references an unknown task");
      groups[id] = k;
    }
  }
  return groups;
}

TextTable decomposition_table(const CatBatchDecomposition& d) {
  TextTable table({"zeta", "tasks", "duration", "area", "L_zeta",
                   "2A/P+L (Lemma 6)", "idle area"});
  for (const BatchStats& b : d.batches) {
    table.add_row({format_number(b.category.value(), 4),
                   std::to_string(b.task_count),
                   format_number(b.duration(), 4), format_number(b.area, 4),
                   format_number(b.category_length, 4),
                   format_number(b.lemma6_bound, 4),
                   format_number(b.idle_area, 4)});
  }
  table.add_separator();
  table.add_row({"total", std::to_string(d.batches.size()),
                 format_number(d.makespan, 4), format_number(d.total_area, 4),
                 format_number(d.sum_category_lengths, 4),
                 format_number(d.lemma7_bound, 4), ""});
  return table;
}

}  // namespace catbatch
