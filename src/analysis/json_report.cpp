#include "analysis/json_report.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/metrics_export.hpp"
#include "support/check.hpp"

namespace catbatch {

std::string sweep_report_json(const std::string& bench_id,
                              const SweepOptions& options,
                              std::span<const FamilySweep> families,
                              double wall_ms) {
  return sweep_report_json(bench_id, options, families, wall_ms, nullptr);
}

std::string sweep_report_json(const std::string& bench_id,
                              const SweepOptions& options,
                              std::span<const FamilySweep> families,
                              double wall_ms, const MetricsRegistry* metrics) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_id);
  w.key("schema").value(1);
  w.key("procs").value(options.procs);
  w.key("trials").value(options.trials);
  w.key("base_seed").value(options.base_seed);
  w.key("jobs").value(options.jobs);
  w.key("wall_ms").value(wall_ms);
  w.key("families").begin_array();
  for (const FamilySweep& fs : families) {
    w.begin_object();
    w.key("family").value(fs.family);
    w.key("wall_ms").value(fs.wall_ms);
    w.key("schedulers").begin_array();
    for (const RatioAggregate& agg : fs.aggregates) {
      w.begin_object();
      w.key("scheduler").value(agg.scheduler);
      w.key("runs").value(agg.runs);
      w.key("max_ratio").value(agg.max_ratio);
      w.key("mean_ratio").value(agg.mean_ratio);
      w.key("max_theorem1_margin").value(agg.max_theorem1_margin);
      w.key("max_theorem2_margin").value(agg.max_theorem2_margin);
      w.key("total_wall_ms").value(agg.total_wall_ms);
      w.end_object();
    }
    w.end_array();
    if (!fs.runs.empty()) {
      w.key("runs").begin_array();
      for (const RunRecord& run : fs.runs) {
        w.begin_object();
        w.key("scheduler").value(run.scheduler);
        w.key("seed").value(run.seed);
        w.key("tasks").value(run.metrics.task_count);
        w.key("makespan").value(static_cast<double>(run.metrics.makespan));
        w.key("lower_bound")
            .value(static_cast<double>(run.metrics.lower_bound));
        w.key("ratio").value(run.metrics.ratio);
        w.key("wall_ms").value(run.wall_ms);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  if (metrics != nullptr) {
    w.key("metrics");
    write_metrics_object(w, *metrics);
  }
  w.end_object();
  return w.str();
}

std::string write_bench_report(const std::string& bench_id,
                               const std::string& json, std::string dir) {
  if (dir.empty()) {
    if (const char* env = std::getenv("CATBATCH_BENCH_DIR")) dir = env;
    if (dir.empty()) dir = ".";
  }
  const std::string path = dir + "/BENCH_" + bench_id + ".json";
  std::ofstream out(path);
  CB_CHECK(out.good(), "cannot open bench report for writing: " + path);
  out << json << "\n";
  out.close();
  CB_CHECK(out.good(), "failed to write bench report: " + path);
  return path;
}

}  // namespace catbatch
