#include "analysis/json_report.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/check.hpp"

namespace catbatch {

namespace {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), v);
  CB_CHECK(ec == std::errc(), "double formatting failed");
  return std::string(buffer, ptr);
}

}  // namespace

std::string json_quote(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CB_CHECK(!needs_comma_.empty(), "end_object without begin_object");
  needs_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CB_CHECK(!needs_comma_.empty(), "end_array without begin_array");
  needs_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separate();
  out_ += json_quote(name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

std::string sweep_report_json(const std::string& bench_id,
                              const SweepOptions& options,
                              std::span<const FamilySweep> families,
                              double wall_ms) {
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_id);
  w.key("schema").value(1);
  w.key("procs").value(options.procs);
  w.key("trials").value(options.trials);
  w.key("base_seed").value(options.base_seed);
  w.key("jobs").value(options.jobs);
  w.key("wall_ms").value(wall_ms);
  w.key("families").begin_array();
  for (const FamilySweep& fs : families) {
    w.begin_object();
    w.key("family").value(fs.family);
    w.key("wall_ms").value(fs.wall_ms);
    w.key("schedulers").begin_array();
    for (const RatioAggregate& agg : fs.aggregates) {
      w.begin_object();
      w.key("scheduler").value(agg.scheduler);
      w.key("runs").value(agg.runs);
      w.key("max_ratio").value(agg.max_ratio);
      w.key("mean_ratio").value(agg.mean_ratio);
      w.key("max_theorem1_margin").value(agg.max_theorem1_margin);
      w.key("max_theorem2_margin").value(agg.max_theorem2_margin);
      w.key("total_wall_ms").value(agg.total_wall_ms);
      w.end_object();
    }
    w.end_array();
    if (!fs.runs.empty()) {
      w.key("runs").begin_array();
      for (const RunRecord& run : fs.runs) {
        w.begin_object();
        w.key("scheduler").value(run.scheduler);
        w.key("seed").value(run.seed);
        w.key("tasks").value(run.metrics.task_count);
        w.key("makespan").value(static_cast<double>(run.metrics.makespan));
        w.key("lower_bound")
            .value(static_cast<double>(run.metrics.lower_bound));
        w.key("ratio").value(run.metrics.ratio);
        w.key("wall_ms").value(run.wall_ms);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string write_bench_report(const std::string& bench_id,
                               const std::string& json, std::string dir) {
  if (dir.empty()) {
    if (const char* env = std::getenv("CATBATCH_BENCH_DIR")) dir = env;
    if (dir.empty()) dir = ".";
  }
  const std::string path = dir + "/BENCH_" + bench_id + ".json";
  std::ofstream out(path);
  CB_CHECK(out.good(), "cannot open bench report for writing: " + path);
  out << json << "\n";
  out.close();
  CB_CHECK(out.good(), "failed to write bench report: " + path);
  return path;
}

}  // namespace catbatch
