#include "analysis/metrics.hpp"

#include "core/lmatrix.hpp"
#include "sched/backfill.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {
RunMetrics metrics_from(const TaskGraph& graph, OnlineScheduler& scheduler,
                        int procs, const SimResult& result) {
  require_valid_schedule(graph, result.schedule, procs);
  const InstanceBounds bounds = compute_bounds(graph, procs);

  RunMetrics m;
  m.scheduler = scheduler.name();
  m.task_count = bounds.task_count;
  m.makespan = result.makespan;
  m.lower_bound = bounds.lower_bound();
  m.ratio = m.lower_bound > 0.0
                ? static_cast<double>(m.makespan) /
                      static_cast<double>(m.lower_bound)
                : 0.0;
  m.utilization = result.average_utilization(procs);
  m.critical_path = bounds.critical_path;
  m.area = bounds.area;
  if (bounds.task_count > 0) {
    m.theorem1_bound = theorem1_bound(bounds.task_count);
    m.theorem2_bound = theorem2_bound(bounds.max_work, bounds.min_work);
  }
  return m;
}
}  // namespace

RunMetrics evaluate(const TaskGraph& graph, OnlineScheduler& scheduler,
                    int procs) {
  const SimResult result = simulate(graph, scheduler, procs);
  return metrics_from(graph, scheduler, procs, result);
}

RunMetrics evaluate(InstanceSource& source, OnlineScheduler& scheduler,
                    int procs) {
  const SimResult result = simulate(source, scheduler, procs);
  return metrics_from(source.realized_graph(), scheduler, procs, result);
}

std::vector<NamedScheduler> standard_scheduler_lineup() {
  std::vector<NamedScheduler> out;
  out.push_back(NamedScheduler{
      "catbatch", [] { return std::make_unique<CatBatchScheduler>(); }});
  out.push_back(NamedScheduler{
      "relaxed-catbatch", [] { return std::make_unique<RelaxedCatBatch>(); }});
  const auto add_list = [&out](ListPriority priority) {
    ListSchedulerOptions options;
    options.priority = priority;
    out.push_back(NamedScheduler{
        std::string("list-") + to_string(priority), [options] {
          return std::make_unique<ListScheduler>(options);
        }});
  };
  add_list(ListPriority::Fifo);
  add_list(ListPriority::LongestFirst);
  add_list(ListPriority::WidestFirst);
  add_list(ListPriority::SmallestCriticality);
  out.push_back(NamedScheduler{
      "easy-backfill", [] { return std::make_unique<EasyBackfill>(); }});
  return out;
}

}  // namespace catbatch
