#include "analysis/metrics.hpp"

#include "core/lmatrix.hpp"
#include "sched/registry.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {
RunMetrics metrics_from(const TaskGraph& graph, OnlineScheduler& scheduler,
                        int procs, const SimResult& result) {
  require_valid_schedule(graph, result.schedule, procs);
  const InstanceBounds bounds = compute_bounds(graph, procs);

  RunMetrics m;
  m.scheduler = scheduler.name();
  m.task_count = bounds.task_count;
  m.makespan = result.makespan;
  m.lower_bound = bounds.lower_bound();
  m.ratio = m.lower_bound > 0.0
                ? static_cast<double>(m.makespan) /
                      static_cast<double>(m.lower_bound)
                : 0.0;
  m.utilization = result.average_utilization(procs);
  m.critical_path = bounds.critical_path;
  m.area = bounds.area;
  if (bounds.task_count > 0) {
    m.theorem1_bound = theorem1_bound(bounds.task_count);
    m.theorem2_bound = theorem2_bound(bounds.max_work, bounds.min_work);
  }
  return m;
}
}  // namespace

RunMetrics evaluate(const TaskGraph& graph, OnlineScheduler& scheduler,
                    int procs, const SimOptions& options) {
  const SimResult result = simulate(graph, scheduler, procs, options);
  return metrics_from(graph, scheduler, procs, result);
}

RunMetrics evaluate(InstanceSource& source, OnlineScheduler& scheduler,
                    int procs, const SimOptions& options) {
  const SimResult result = simulate(source, scheduler, procs, options);
  return metrics_from(source.realized_graph(), scheduler, procs, result);
}

std::vector<NamedScheduler> standard_scheduler_lineup() {
  // The lineup *is* the registry's standard set: one construction API for
  // benches, examples and tests (ISSUE 2's single-factory invariant).
  std::vector<NamedScheduler> out;
  for (const std::string& name : standard_lineup()) {
    CB_CHECK(find_scheduler(name) != nullptr,
             "standard lineup names a scheduler missing from the registry");
    out.push_back(NamedScheduler{
        name, [name] { return make_scheduler(name); }});
  }
  return out;
}

}  // namespace catbatch
