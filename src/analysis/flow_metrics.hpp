// Flow metrics: per-task waiting time and stretch, computed from a
// simulation result. Makespan is the paper's objective; waiting time and
// stretch are what users of a shared HPC system feel — and where strict
// CatBatch's batch barrier pays for its worst-case guarantee (tasks sit
// ready while the current batch drains).
#pragma once

#include "core/graph.hpp"
#include "sim/engine.hpp"

namespace catbatch {

struct FlowMetrics {
  double mean_wait = 0.0;  // start − ready, averaged over tasks
  Time max_wait = 0.0;
  /// Stretch of a task = (finish − ready) / work: 1 means "ran the moment
  /// it became ready".
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
  std::size_t task_count = 0;
};

/// Computes flow metrics for a finished run of `graph`. The result must
/// come from simulating exactly this instance (ready_times indexed by id).
[[nodiscard]] FlowMetrics compute_flow_metrics(const TaskGraph& graph,
                                               const SimResult& result);

}  // namespace catbatch
