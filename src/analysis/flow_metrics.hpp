// Flow metrics: per-task waiting time, flow (response) time and stretch,
// computed from a simulation result. Makespan is the paper's objective;
// waiting time, flow and stretch are what users of a shared HPC system
// feel — and where strict CatBatch's batch barrier pays for its worst-case
// guarantee (tasks sit ready while the current batch drains).
//
// Zero-work policy: stretch divides by the task's work, so a task with
// non-positive work has no defined stretch. Such tasks are excluded from
// the stretch aggregates and counted in `stretch_skipped`; their wait and
// flow still count (both are well-defined regardless of work), and
// mean_stretch divides by the tasks that actually contributed.
#pragma once

#include <span>

#include "core/graph.hpp"
#include "sim/engine.hpp"

namespace catbatch {

struct FlowMetrics {
  double mean_wait = 0.0;  // start − ready, averaged over tasks
  Time max_wait = 0.0;
  /// Flow (response) time of a task = finish − ready.
  double mean_flow = 0.0;
  Time max_flow = 0.0;
  /// Stretch of a task = (finish − ready) / work: 1 means "ran the moment
  /// it became ready".
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
  std::size_t task_count = 0;
  /// Tasks excluded from the stretch aggregates by the zero-work policy
  /// (file comment).
  std::size_t stretch_skipped = 0;
};

/// Computes flow metrics for a finished run of `graph`. The result must
/// come from simulating exactly this instance (ready_times indexed by id).
[[nodiscard]] FlowMetrics compute_flow_metrics(const TaskGraph& graph,
                                               const SimResult& result);

/// Same, from a bare work column (task id -> actual work) — the trace
/// replay path, where no TaskGraph is materialized. `work.size()` must
/// equal the result's task count.
[[nodiscard]] FlowMetrics compute_flow_metrics(std::span<const Time> work,
                                               const SimResult& result);

}  // namespace catbatch
