// Reusable experiment drivers: run a scheduler lineup over families of
// random instances and aggregate worst-case / average ratios. Used by the
// Theorem 1/2 benches, the workload comparison, and sched_cli --trials.
//
// Sweeps fan the (scheduler, seed) cross product out over a thread pool
// (SweepOptions::jobs). Determinism is a hard contract: every run derives
// its instance from its own Rng(base_seed + trial) stream (never shared
// between runs), workers write into pre-sized result slots, and aggregation
// happens serially in trial order afterwards — so the aggregates are
// bit-identical for every job count, and identical to the historical serial
// implementation. Wall-clock timings are the only fields that vary between
// runs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/graph.hpp"
#include "support/rng.hpp"

namespace catbatch {

/// A named instance family: seed -> instance.
struct InstanceFamily {
  std::string label;
  std::function<TaskGraph(Rng&)> make;
};

/// Aggregated ratios of one scheduler over many instances. All fields
/// except `total_wall_ms` are deterministic in (family, procs, trials,
/// base_seed) and independent of the job count.
struct RatioAggregate {
  std::string scheduler;
  std::size_t runs = 0;
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
  double max_theorem1_margin = 0.0;  // max over runs of ratio / (log2(n)+3)
  double max_theorem2_margin = 0.0;  // max over runs of ratio / (log2(M/m)+6)
  double total_wall_ms = 0.0;        // summed per-run wall clock (not deterministic)
};

/// One (scheduler, seed) run, retained when SweepOptions::keep_runs is set.
struct RunRecord {
  std::string scheduler;
  std::uint64_t seed = 0;
  RunMetrics metrics;
  double wall_ms = 0.0;
};

/// Results of one family in a sweep.
struct FamilySweep {
  std::string family;
  std::vector<RatioAggregate> aggregates;  // one per lineup entry, in order
  std::vector<RunRecord> runs;             // empty unless keep_runs
  double wall_ms = 0.0;                    // wall clock spent on this family
};

struct SweepOptions {
  int procs = 16;
  std::size_t trials = 1;
  std::uint64_t base_seed = 0;
  /// Worker threads for the (scheduler, seed) fan-out; <= 0 resolves to
  /// ThreadPool::default_jobs() (CATBATCH_JOBS env, else hardware
  /// concurrency). 1 executes serially on the calling thread.
  int jobs = 1;
  /// Retain per-run metrics/timings in FamilySweep::runs (trial-major,
  /// scheduler-minor order) for detailed JSON reports.
  bool keep_runs = false;
};

/// Runs every scheduler of `lineup` on `trials` instances of `family`
/// (seeds base_seed, base_seed+1, ...), fanning runs out over
/// `options.jobs` workers.
[[nodiscard]] std::vector<RatioAggregate> sweep_family(
    const InstanceFamily& family, const std::vector<NamedScheduler>& lineup,
    const SweepOptions& options);

/// Historical signature (serial semantics = jobs 1). Kept so call sites
/// that don't care about parallelism stay terse.
[[nodiscard]] std::vector<RatioAggregate> sweep_family(
    const InstanceFamily& family, const std::vector<NamedScheduler>& lineup,
    int procs, std::size_t trials, std::uint64_t base_seed);

/// Cross product: every family × every lineup entry × every seed, one
/// shared worker pool across the whole grid. Results are returned per
/// family, in input order.
[[nodiscard]] std::vector<FamilySweep> sweep_grid(
    std::span<const InstanceFamily> families,
    const std::vector<NamedScheduler>& lineup, const SweepOptions& options);

/// The default family lineup over `max_procs`-wide tasks used by the
/// Theorem 1 bench: layered, order-DAG, series-parallel, fork-join, chains,
/// out-tree and independent instances of roughly `task_count` tasks.
[[nodiscard]] std::vector<InstanceFamily> standard_families(
    std::size_t task_count, int max_procs);

/// The family named `label` from standard_families(); throws on unknown
/// labels. Used by sched_cli --random.
[[nodiscard]] InstanceFamily standard_family(const std::string& label,
                                             std::size_t task_count,
                                             int max_procs);

}  // namespace catbatch
