// Reusable experiment drivers: run a scheduler lineup over a family of
// random instances and aggregate worst-case / average ratios. Used by the
// Theorem 1/2 benches and by the workload comparison.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/metrics.hpp"
#include "core/graph.hpp"
#include "support/rng.hpp"

namespace catbatch {

/// A named instance family: seed -> instance.
struct InstanceFamily {
  std::string label;
  std::function<TaskGraph(Rng&)> make;
};

/// Aggregated ratios of one scheduler over many instances.
struct RatioAggregate {
  std::string scheduler;
  std::size_t runs = 0;
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
  double max_theorem1_margin = 0.0;  // max over runs of ratio / (log2(n)+3)
};

/// Runs every scheduler of `lineup` on `trials` instances of `family`
/// (seeds base_seed, base_seed+1, ...) on `procs` processors.
[[nodiscard]] std::vector<RatioAggregate> sweep_family(
    const InstanceFamily& family, const std::vector<NamedScheduler>& lineup,
    int procs, std::size_t trials, std::uint64_t base_seed);

/// The default family lineup over `max_procs`-wide tasks used by the
/// Theorem 1 bench: layered, order-DAG, series-parallel, fork-join, chains,
/// out-tree and independent instances of roughly `task_count` tasks.
[[nodiscard]] std::vector<InstanceFamily> standard_families(
    std::size_t task_count, int max_procs);

}  // namespace catbatch
