// Criticality (Definition 1 and Lemma 1): for each task, the interval
// (s∞, f∞) in which it would run under an ASAP schedule with unlimited
// processors. s∞ equals the longest path length from any root to the task.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/task.hpp"

namespace catbatch {

/// The (s∞, f∞) interval of Definition 1.
struct Criticality {
  Time earliest_start = 0.0;   // s∞
  Time earliest_finish = 0.0;  // f∞ = s∞ + t

  friend bool operator==(const Criticality&, const Criticality&) = default;
};

/// Computes (s∞, f∞) for every task of `graph` by the recurrence of
/// Lemma 1: s∞(T) = max over predecessors of f∞, or 0 for roots.
/// Result is indexed by TaskId. Throws on a cyclic graph.
[[nodiscard]] std::vector<Criticality> compute_criticalities(
    const TaskGraph& graph);

/// Critical-path length C(I) = max_j f∞_j (Definition 1). Returns 0 for an
/// empty graph.
[[nodiscard]] Time critical_path_length(const TaskGraph& graph);

/// Same, reusing previously computed criticalities.
[[nodiscard]] Time critical_path_length(
    const std::vector<Criticality>& criticalities);

/// Incremental online variant of Lemma 1, as used by the CatBatch scheduler:
/// given the earliest-finish times of a task's predecessors (already
/// revealed), returns the task's criticality. The scheduler maintains its own
/// f∞ record and never needs the full graph.
[[nodiscard]] Criticality criticality_from_predecessors(
    Time work, const std::vector<Time>& predecessor_finish_times);

}  // namespace catbatch
