#include "core/criticality.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

std::vector<Criticality> compute_criticalities(const TaskGraph& graph) {
  std::vector<Criticality> crit(graph.size());
  for (const TaskId id : graph.topological_order()) {
    Time start = 0.0;
    for (const TaskId pred : graph.predecessors(id)) {
      start = std::max(start, crit[pred].earliest_finish);
    }
    crit[id].earliest_start = start;
    crit[id].earliest_finish = start + graph.task(id).work;
  }
  return crit;
}

Time critical_path_length(const TaskGraph& graph) {
  return critical_path_length(compute_criticalities(graph));
}

Time critical_path_length(const std::vector<Criticality>& criticalities) {
  Time best = 0.0;
  for (const Criticality& c : criticalities) {
    best = std::max(best, c.earliest_finish);
  }
  return best;
}

Criticality criticality_from_predecessors(
    Time work, const std::vector<Time>& predecessor_finish_times) {
  CB_CHECK(work > 0.0, "task execution time must be strictly positive");
  Time start = 0.0;
  for (const Time f : predecessor_finish_times) {
    CB_CHECK(f >= 0.0, "predecessor finish time must be non-negative");
    start = std::max(start, f);
  }
  return Criticality{start, start + work};
}

}  // namespace catbatch
