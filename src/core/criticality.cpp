#include "core/criticality.hpp"

#include <algorithm>

#include "core/soa_graph.hpp"
#include "support/check.hpp"

namespace catbatch {

std::vector<Criticality> compute_criticalities(const TaskGraph& graph) {
  // One implementation of Lemma 1: freeze to SoA and run the level sweep.
  // Identical results to the old per-task Kahn walk — max over a task's
  // predecessors is evaluation-order-insensitive — with the CSR layout
  // doing the memory traffic.
  const SoaGraph soa = build_soa_graph(graph);
  const CriticalityArrays arrays = compute_criticalities(soa);
  std::vector<Criticality> crit(graph.size());
  for (std::size_t i = 0; i < crit.size(); ++i) {
    crit[i] = Criticality{arrays.earliest_start[i],
                          arrays.earliest_finish[i]};
  }
  return crit;
}

Time critical_path_length(const TaskGraph& graph) {
  return critical_path_length(compute_criticalities(graph));
}

Time critical_path_length(const std::vector<Criticality>& criticalities) {
  Time best = 0.0;
  for (const Criticality& c : criticalities) {
    best = std::max(best, c.earliest_finish);
  }
  return best;
}

Criticality criticality_from_predecessors(
    Time work, const std::vector<Time>& predecessor_finish_times) {
  CB_CHECK(work > 0.0, "task execution time must be strictly positive");
  Time start = 0.0;
  for (const Time f : predecessor_finish_times) {
    CB_CHECK(f >= 0.0, "predecessor finish time must be non-negative");
    start = std::max(start, f);
  }
  return Criticality{start, start + work};
}

}  // namespace catbatch
