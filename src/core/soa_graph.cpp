#include "core/soa_graph.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/graph.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace catbatch {
namespace {

// Fixed block size for intra-level parallelism. The partition depends only
// on the level size — never on the worker count — which is what makes the
// sweeps bit-identical at any --jobs. Below one block the dispatch
// overhead dwarfs the work, so short ranges stay on the calling thread.
constexpr std::size_t kSweepBlock = 4096;

template <typename Body>
void blocked_parallel(int jobs, std::size_t count, const Body& body) {
  if (count == 0) return;
  const std::size_t blocks = (count + kSweepBlock - 1) / kSweepBlock;
  if (jobs <= 1 || blocks < 2) {
    body(std::size_t{0}, count);
    return;
  }
  parallel_for(jobs, blocks, [&](std::size_t b) {
    body(b * kSweepBlock, std::min(count, (b + 1) * kSweepBlock));
  });
}

/// Derives the successor CSR from the predecessor CSR by counting sort.
/// Iterating successors in ascending id keeps every row ascending. The
/// parallel variant partitions the *target* id space into ranges: each
/// worker scans the whole predecessor arena but counts/scatters only the
/// edges whose predecessor falls in its range, so writes are disjoint and
/// every edge lands at the same counting-sort position it would serially —
/// the output is bit-identical for any thread count.
void build_succ_csr(SoaGraph& g, const ParallelOptions& par) {
  const std::size_t n = g.size();
  g.succ_offsets.assign(n + 1, 0);
  g.succ_data.resize(g.pred_data.size());
  const std::size_t ranges = static_cast<std::size_t>(
      std::max(1, std::min<int>(par.threads, 16)));
  if (ranges < 2 || n < 2 * kSweepBlock || g.pred_data.empty()) {
    for (const TaskId pred : g.pred_data) {
      CB_CHECK(pred < n, "predecessor id out of range");
      ++g.succ_offsets[pred + 1];
    }
    for (std::size_t i = 0; i < n; ++i) {
      g.succ_offsets[i + 1] += g.succ_offsets[i];
    }
    std::vector<std::uint32_t> cursor(g.succ_offsets.begin(),
                                      g.succ_offsets.end() - 1);
    for (std::size_t s = 0; s < n; ++s) {
      const auto begin = g.pred_offsets[s];
      const auto end = g.pred_offsets[s + 1];
      for (std::uint32_t k = begin; k < end; ++k) {
        g.succ_data[cursor[g.pred_data[k]]++] = static_cast<TaskId>(s);
      }
    }
    return;
  }
  const std::size_t span = (n + ranges - 1) / ranges;
  // Count phase: worker r touches only succ_offsets[pred + 1] for preds in
  // its id range — disjoint writes, no atomics.
  parallel_for(static_cast<int>(ranges), ranges, [&](std::size_t r) {
    const std::size_t lo = r * span;
    const std::size_t hi = std::min(n, lo + span);
    for (const TaskId pred : g.pred_data) {
      CB_CHECK(pred < n, "predecessor id out of range");
      if (pred >= lo && pred < hi) ++g.succ_offsets[pred + 1];
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    g.succ_offsets[i + 1] += g.succ_offsets[i];
  }
  // Scatter phase: each worker owns the cursor entries (and therefore the
  // succ_data regions) of its target range; scanning sources in ascending
  // order keeps every row ascending, exactly as the serial sort does.
  std::vector<std::uint32_t> cursor(g.succ_offsets.begin(),
                                    g.succ_offsets.end() - 1);
  parallel_for(static_cast<int>(ranges), ranges, [&](std::size_t r) {
    const std::size_t lo = r * span;
    const std::size_t hi = std::min(n, lo + span);
    for (std::size_t s = 0; s < n; ++s) {
      const auto begin = g.pred_offsets[s];
      const auto end = g.pred_offsets[s + 1];
      for (std::uint32_t k = begin; k < end; ++k) {
        const TaskId pred = g.pred_data[k];
        if (pred >= lo && pred < hi) {
          g.succ_data[cursor[pred]++] = static_cast<TaskId>(s);
        }
      }
    }
  });
}

/// BFS level decomposition (Kahn's algorithm in layers). Doubles as the
/// cycle check: a cycle leaves tasks with positive in-degree unplaced.
void build_levels_bfs(SoaGraph& g) {
  const std::size_t n = g.size();
  std::vector<std::uint32_t> indegree(n);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = g.pred_offsets[i + 1] - g.pred_offsets[i];
  }
  g.level_order.clear();
  g.level_order.reserve(n);
  g.level_offsets.assign(1, 0);

  std::vector<TaskId> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(static_cast<TaskId>(i));
  }
  std::vector<TaskId> next;
  while (!frontier.empty()) {
    g.level_order.insert(g.level_order.end(), frontier.begin(),
                         frontier.end());
    g.level_offsets.push_back(
        static_cast<std::uint32_t>(g.level_order.size()));
    next.clear();
    for (const TaskId id : frontier) {
      for (const TaskId succ : g.successors(id)) {
        if (--indegree[succ] == 0) next.push_back(succ);
      }
    }
    std::sort(next.begin(), next.end());
    frontier.swap(next);
  }
  CB_CHECK(g.level_order.size() == n, "task graph contains a cycle");
}

/// Topological-id fast path: the Kahn layer of a task is exactly
/// 1 + max(layer of its predecessors) (0 for roots), so when every pred id
/// is smaller than its task's id one id-order scan computes all layers
/// without a queue, and a stable counting sort by layer reproduces the BFS
/// output — ascending ids within each level — bit for bit. Cycles are
/// impossible with strictly-smaller predecessor ids, so the BFS cycle
/// check has nothing to detect here.
void build_levels_topo(SoaGraph& g) {
  const std::size_t n = g.size();
  g.level_order.clear();
  g.level_offsets.assign(1, 0);
  if (n == 0) return;
  std::vector<std::uint32_t> level(n);
  std::uint32_t max_level = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t lvl = 0;
    const auto begin = g.pred_offsets[i];
    const auto end = g.pred_offsets[i + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      lvl = std::max(lvl, level[g.pred_data[k]] + 1);
    }
    level[i] = lvl;
    max_level = std::max(max_level, lvl);
  }
  g.level_offsets.assign(max_level + 2, 0);
  for (std::size_t i = 0; i < n; ++i) ++g.level_offsets[level[i] + 1];
  for (std::size_t k = 0; k <= max_level; ++k) {
    g.level_offsets[k + 1] += g.level_offsets[k];
  }
  g.level_order.resize(n);
  std::vector<std::uint32_t> cursor(g.level_offsets.begin(),
                                    g.level_offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    g.level_order[cursor[level[i]]++] = static_cast<TaskId>(i);
  }
}

void finish_build(SoaGraph& g, const ParallelOptions& par) {
  const std::size_t n = g.size();
  CB_CHECK(g.procs.size() == n, "procs array does not match task count");
  CB_CHECK(g.pred_offsets.size() == n + 1,
           "predecessor offsets must have size n + 1");
  CB_CHECK(g.pred_offsets.front() == 0 &&
               g.pred_offsets.back() == g.pred_data.size(),
           "predecessor offsets do not span the data array");
  CB_CHECK(g.names.empty() || g.names.size() == n,
           "names array must be empty or match the task count");
  // Per-task validation and the two whole-graph facts it feeds (max procs,
  // id topology) run over fixed chunk-sized blocks: each block writes its
  // own reduction slot and the slots merge serially in block order, so the
  // results never depend on the thread count. (Both reductions — integer
  // max and boolean AND — are order-insensitive anyway.)
  const std::size_t chunk = std::max<std::size_t>(1, par.chunk);
  const std::size_t blocks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  std::vector<int> block_max(blocks, 0);
  std::vector<std::uint8_t> block_topo(blocks, 1);
  parallel_chunks(par, n, [&](std::size_t lo, std::size_t hi) {
    int pmax = 0;
    bool topo = true;
    for (std::size_t i = lo; i < hi; ++i) {
      CB_CHECK(g.pred_offsets[i] <= g.pred_offsets[i + 1],
               "predecessor offsets must be non-decreasing");
      CB_CHECK(g.work[i] > 0.0,
               "task execution time must be strictly positive");
      CB_CHECK(g.procs[i] >= 1, "task processor requirement must be >= 1");
      pmax = std::max(pmax, g.procs[i]);
      const auto begin = g.pred_offsets[i];
      const auto end = g.pred_offsets[i + 1];
      for (std::uint32_t k = begin; k < end; ++k) {
        CB_CHECK(g.pred_data[k] < n, "predecessor id out of range");
        CB_CHECK(g.pred_data[k] != i, "self-loop in task graph");
        CB_CHECK(k == begin || g.pred_data[k - 1] < g.pred_data[k],
                 "predecessor rows must be strictly ascending");
        topo = topo && g.pred_data[k] < i;
      }
    }
    block_max[lo / chunk] = pmax;
    block_topo[lo / chunk] = topo ? 1 : 0;
  });
  g.max_procs = 0;
  g.ids_topological = true;
  for (std::size_t b = 0; b < blocks; ++b) {
    g.max_procs = std::max(g.max_procs, block_max[b]);
    g.ids_topological = g.ids_topological && block_topo[b] != 0;
  }
  g.edge_count = g.pred_data.size();
  build_succ_csr(g, par);
  if (g.ids_topological) {
    build_levels_topo(g);
  } else {
    build_levels_bfs(g);
  }
}

}  // namespace

SoaGraph build_soa_graph(const TaskGraph& graph, bool with_names,
                         const ParallelOptions& parallel) {
  const std::size_t n = graph.size();
  SoaGraph g;
  g.work.resize(n);
  g.procs.resize(n);
  g.pred_offsets.resize(n + 1);
  g.pred_offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& task = graph.task(static_cast<TaskId>(i));
    g.work[i] = task.work;
    g.procs[i] = task.procs;
    const auto preds = graph.predecessors(static_cast<TaskId>(i));
    g.pred_offsets[i + 1] =
        g.pred_offsets[i] + static_cast<std::uint32_t>(preds.size());
  }
  g.pred_data.resize(g.pred_offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    const auto preds = graph.predecessors(static_cast<TaskId>(i));
    std::copy(preds.begin(), preds.end(),
              g.pred_data.begin() + g.pred_offsets[i]);
    std::sort(g.pred_data.begin() + g.pred_offsets[i],
              g.pred_data.begin() + g.pred_offsets[i + 1]);
  }
  if (with_names) {
    // One arena string for every label; per-task views index into it.
    auto arena = std::make_shared<std::string>();
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += graph.task(static_cast<TaskId>(i)).name.size();
    }
    arena->reserve(total);
    std::vector<std::pair<std::size_t, std::size_t>> spans(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& name = graph.task(static_cast<TaskId>(i)).name;
      spans[i] = {arena->size(), name.size()};
      arena->append(name);
    }
    g.names.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      g.names[i] = std::string_view(*arena).substr(spans[i].first,
                                                   spans[i].second);
    }
    g.name_storage = std::move(arena);
  }
  finish_build(g, parallel);
  return g;
}

SoaGraph build_soa_graph(std::vector<Time> work, std::vector<int> procs,
                         std::vector<std::uint32_t> pred_offsets,
                         std::vector<TaskId> pred_data,
                         std::vector<std::string_view> names,
                         std::shared_ptr<const void> name_storage,
                         const ParallelOptions& parallel) {
  SoaGraph g;
  g.work = std::move(work);
  g.procs = std::move(procs);
  g.pred_offsets = std::move(pred_offsets);
  g.pred_data = std::move(pred_data);
  g.names = std::move(names);
  g.name_storage = std::move(name_storage);
  finish_build(g, parallel);
  return g;
}

CriticalityArrays compute_criticalities(const SoaGraph& graph, int jobs) {
  const std::size_t n = graph.size();
  CriticalityArrays out;
  out.earliest_start.resize(n);
  out.earliest_finish.resize(n);
  Time* const start = out.earliest_start.data();
  Time* const finish = out.earliest_finish.data();
  for (std::size_t lvl = 0; lvl < graph.level_count(); ++lvl) {
    const std::span<const TaskId> ids = graph.level(lvl);
    blocked_parallel(jobs, ids.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const TaskId id = ids[k];
        Time s = 0.0;
        for (const TaskId pred : graph.predecessors(id)) {
          s = std::max(s, finish[pred]);
        }
        start[id] = s;
        finish[id] = s + graph.work[id];
      }
    });
  }
  return out;
}

CriticalityArrays compute_criticalities(const SoaGraph& graph,
                                        const ParallelOptions& parallel) {
  const std::size_t n = graph.size();
  CriticalityArrays out;
  out.earliest_start.resize(n);
  out.earliest_finish.resize(n);
  Time* const start = out.earliest_start.data();
  Time* const finish = out.earliest_finish.data();
  const std::size_t levels = graph.level_count();
  const std::size_t chunk = std::max<std::size_t>(1, parallel.chunk);
  // Narrow levels (average width below one chunk) never fan out, so a
  // graph with topological ids is better served by one prefetched id-order
  // scan — same recurrence, same unique fixpoint, identical IEEE values.
  const bool level_parallel =
      !parallel.serial() && levels > 0 && n / levels >= chunk;
  if (graph.ids_topological && !level_parallel) {
    constexpr std::size_t kPrefetch = 16;
    const std::uint32_t* const offsets = graph.pred_offsets.data();
    const TaskId* const preds = graph.pred_data.data();
    const Time* const work = graph.work.data();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetch < n) {
        __builtin_prefetch(&preds[offsets[i + kPrefetch]]);
      }
      Time s = 0.0;
      const std::uint32_t end = offsets[i + 1];
      for (std::uint32_t k = offsets[i]; k < end; ++k) {
        s = std::max(s, finish[preds[k]]);
      }
      start[i] = s;
      finish[i] = s + work[i];
    }
    return out;
  }
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    const std::span<const TaskId> ids = graph.level(lvl);
    parallel_chunks(parallel, ids.size(),
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t k = lo; k < hi; ++k) {
                        const TaskId id = ids[k];
                        Time s = 0.0;
                        for (const TaskId pred : graph.predecessors(id)) {
                          s = std::max(s, finish[pred]);
                        }
                        start[id] = s;
                        finish[id] = s + graph.work[id];
                      }
                    });
  }
  return out;
}

std::vector<Category> compute_categories(const SoaGraph& graph,
                                         const CriticalityArrays& crit,
                                         int jobs) {
  const std::size_t n = graph.size();
  CB_CHECK(crit.size() == n, "criticality arrays do not match graph");
  std::vector<Category> cats(n);
  blocked_parallel(jobs, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      cats[i] = compute_category(
          Criticality{crit.earliest_start[i], crit.earliest_finish[i]});
    }
  });
  return cats;
}

Time critical_path_length(const CriticalityArrays& criticalities) {
  Time best = 0.0;
  for (const Time f : criticalities.earliest_finish) {
    best = std::max(best, f);
  }
  return best;
}

InstanceBounds compute_bounds(const SoaGraph& graph, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CB_CHECK(graph.max_procs <= procs,
           "instance contains a task wider than the platform");
  InstanceBounds b;
  b.task_count = graph.size();
  b.procs = procs;
  if (graph.empty()) return b;
  // Serial id-order sum: floating-point addition is order-sensitive, and
  // this order is the one TaskGraph::total_area() and the golden corpus pin.
  Time area = 0.0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    area += graph.work[i] * static_cast<Time>(graph.procs[i]);
  }
  b.area = area;
  b.critical_path = critical_path_length(compute_criticalities(graph));
  Time lo = graph.work[0], hi = graph.work[0];
  for (const Time w : graph.work) {
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  b.min_work = lo;
  b.max_work = hi;
  return b;
}

}  // namespace catbatch
