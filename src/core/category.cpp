#include "core/category.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "support/check.hpp"

namespace catbatch {

namespace {

// std::ldexp/std::ilogb compile to libc calls, and compute_category sits on
// the per-task reveal path of the simulation engine — at 1M+ tasks the call
// overhead is measurable. For normal-range exponents the same exact values
// fall out of direct IEEE-754 bit manipulation; the subnormal/huge tails
// (never produced by sane instances, but allowed by the contract) fall back
// to libm.

/// 2^e, exact. Fast path covers every normal double power of two.
[[nodiscard]] inline Time pow2(int e) {
  if (e >= -1022 && e <= 1023) [[likely]] {
    return std::bit_cast<double>(static_cast<std::uint64_t>(e + 1023) << 52);
  }
  return std::ldexp(1.0, e);
}

/// x·2^e. The multiply is exact whenever x is an integer < 2^53 and the
/// product stays normal — both guaranteed by the longitude checks below —
/// so the fast path is bit-identical to ldexp.
[[nodiscard]] inline Time mul_pow2(Time x, int e) {
  if (e >= -1022 && e <= 1023) [[likely]] {
    return x * std::bit_cast<double>(static_cast<std::uint64_t>(e + 1023)
                                     << 52);
  }
  return std::ldexp(x, e);
}

/// Largest e with 2^e <= x, for finite positive x (ilogb without the call).
[[nodiscard]] inline int floor_log2(Time x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  const auto biased = static_cast<int>((bits >> 52) & 0x7ff);
  if (biased != 0) [[likely]] return biased - 1023;
  return std::ilogb(x);  // subnormal
}

}  // namespace

Time Category::value() const {
  CB_DCHECK(longitude >= 1 && (longitude & 1) == 1,
            "category longitude must be odd and positive");
  CB_DCHECK(longitude < (std::int64_t{1} << 53),
            "category longitude too large for exact double representation");
  return mul_pow2(static_cast<Time>(longitude), power_level);
}

Time category_value(int power_level, std::int64_t longitude) {
  return mul_pow2(static_cast<Time>(longitude), power_level);
}

Category compute_category(const Criticality& criticality) {
  const Time s = criticality.earliest_start;
  const Time f = criticality.earliest_finish;
  CB_CHECK(s >= 0.0, "earliest start time must be non-negative");
  CB_CHECK(f > s, "criticality interval must have positive length");
  CB_CHECK(std::isfinite(s) && std::isfinite(f),
           "criticality interval must be finite");

  // Largest χ with 2^χ < f: no larger χ can admit any λ >= 1 with
  // λ·2^χ < f. Descend from there; Lemma 2's existence argument guarantees
  // we find a multiple once 2^χ < f - s, so the loop terminates after at
  // most a few iterations beyond log2(f / (f - s)).
  int chi = floor_log2(f);
  if (pow2(chi) >= f) --chi;

  for (;; --chi) {
    CB_CHECK(chi > -1060, "category search failed to converge (interval "
                          "narrower than double resolution)");
    const Time step = pow2(chi);
    // Smallest integer λ with λ·step > s. floor(s/step) is exact: dividing
    // by a power of two only changes the exponent.
    const Time lambda_real = std::floor(s / step) + 1.0;
    if (lambda_real * step < f) {
      CB_CHECK(lambda_real < 0x1.0p53,
               "longitude exceeds exact integer range of double");
      const auto lambda = static_cast<std::int64_t>(lambda_real);
      // Lemma 2: λ is odd and the interval is contained in
      // [(λ-1)·2^χ, (λ+1)·2^χ].
      CB_DCHECK((lambda & 1) == 1, "Lemma 2 violated: even longitude");
      CB_DCHECK(static_cast<Time>(lambda - 1) * step <= s,
                "Lemma 2 violated: (λ-1)·2^χ > s∞");
      CB_DCHECK(f <= static_cast<Time>(lambda + 1) * step,
                "Lemma 2 violated: f∞ > (λ+1)·2^χ");
      return Category{chi, lambda};
    }
  }
}

std::vector<Category> compute_categories(
    const TaskGraph& graph, const std::vector<Criticality>& criticalities) {
  CB_CHECK(criticalities.size() == graph.size(),
           "criticality vector does not match graph");
  std::vector<Category> cats;
  cats.reserve(graph.size());
  for (const Criticality& c : criticalities) {
    cats.push_back(compute_category(c));
  }
  return cats;
}

std::vector<Category> compute_categories(const TaskGraph& graph) {
  return compute_categories(graph, compute_criticalities(graph));
}

}  // namespace catbatch
