#include "core/category.hpp"

#include <cmath>

#include "support/check.hpp"

namespace catbatch {

Time Category::value() const {
  CB_DCHECK(longitude >= 1 && (longitude & 1) == 1,
            "category longitude must be odd and positive");
  CB_DCHECK(longitude < (std::int64_t{1} << 53),
            "category longitude too large for exact double representation");
  return std::ldexp(static_cast<Time>(longitude), power_level);
}

Time category_value(int power_level, std::int64_t longitude) {
  return std::ldexp(static_cast<Time>(longitude), power_level);
}

Category compute_category(const Criticality& criticality) {
  const Time s = criticality.earliest_start;
  const Time f = criticality.earliest_finish;
  CB_CHECK(s >= 0.0, "earliest start time must be non-negative");
  CB_CHECK(f > s, "criticality interval must have positive length");
  CB_CHECK(std::isfinite(s) && std::isfinite(f),
           "criticality interval must be finite");

  // Largest χ with 2^χ < f: no larger χ can admit any λ >= 1 with
  // λ·2^χ < f. Descend from there; Lemma 2's existence argument guarantees
  // we find a multiple once 2^χ < f - s, so the loop terminates after at
  // most a few iterations beyond log2(f / (f - s)).
  int chi = std::ilogb(f);
  if (std::ldexp(1.0, chi) >= f) --chi;

  for (;; --chi) {
    CB_CHECK(chi > -1060, "category search failed to converge (interval "
                          "narrower than double resolution)");
    const Time step = std::ldexp(1.0, chi);
    // Smallest integer λ with λ·step > s. floor(s/step) is exact: dividing
    // by a power of two only changes the exponent.
    const Time lambda_real = std::floor(s / step) + 1.0;
    if (lambda_real * step < f) {
      CB_CHECK(lambda_real < 0x1.0p53,
               "longitude exceeds exact integer range of double");
      const auto lambda = static_cast<std::int64_t>(lambda_real);
      // Lemma 2: λ is odd and the interval is contained in
      // [(λ-1)·2^χ, (λ+1)·2^χ].
      CB_DCHECK((lambda & 1) == 1, "Lemma 2 violated: even longitude");
      CB_DCHECK(static_cast<Time>(lambda - 1) * step <= s,
                "Lemma 2 violated: (λ-1)·2^χ > s∞");
      CB_DCHECK(f <= static_cast<Time>(lambda + 1) * step,
                "Lemma 2 violated: f∞ > (λ+1)·2^χ");
      return Category{chi, lambda};
    }
  }
}

std::vector<Category> compute_categories(
    const TaskGraph& graph, const std::vector<Criticality>& criticalities) {
  CB_CHECK(criticalities.size() == graph.size(),
           "criticality vector does not match graph");
  std::vector<Category> cats;
  cats.reserve(graph.size());
  for (const Criticality& c : criticalities) {
    cats.push_back(compute_category(c));
  }
  return cats;
}

std::vector<Category> compute_categories(const TaskGraph& graph) {
  return compute_categories(graph, compute_criticalities(graph));
}

}  // namespace catbatch
