// Directed acyclic graph of rigid tasks (Section 3.1).
//
// The graph is the *offline* description of an instance: the full set of
// tasks and precedence edges. Online schedulers never see a TaskGraph; the
// simulation engine (src/sim) reveals tasks one by one as their predecessors
// complete.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

/// A DAG of rigid tasks. Tasks are created with add_task() and wired with
/// add_edge(pred, succ). Acyclicity is enforced lazily: topological_order()
/// and validate() throw ContractViolation on a cycle.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Creates a task and returns its id. `work` must be > 0, `procs` >= 1.
  TaskId add_task(Time work, int procs, std::string name = {});

  /// Adds a precedence edge: `succ` cannot start until `pred` completes.
  /// Parallel edges are ignored (idempotent); self-loops are rejected.
  void add_edge(TaskId pred, TaskId succ);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& task(TaskId id);

  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const;
  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const;

  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Tasks with no predecessors (the initially-ready set).
  [[nodiscard]] std::vector<TaskId> roots() const;

  /// Tasks with no successors.
  [[nodiscard]] std::vector<TaskId> sinks() const;

  /// A topological order of all tasks (Kahn's algorithm). Throws if cyclic.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Returns true iff the graph is acyclic.
  [[nodiscard]] bool is_acyclic() const;

  /// Full structural validation: acyclic, all works > 0, all procs >= 1, and
  /// (if max_procs > 0) all procs <= max_procs. Throws on violation.
  void validate(int max_procs = 0) const;

  /// Largest processor requirement over all tasks (0 for an empty graph).
  [[nodiscard]] int max_procs_required() const noexcept;

  /// Sum of t_i * p_i over all tasks: the area A(I) (Section 3.2).
  [[nodiscard]] Time total_area() const noexcept;

  /// Shortest / longest execution time over all tasks (m and M in Thm. 2).
  [[nodiscard]] Time min_work() const;
  [[nodiscard]] Time max_work() const;

  /// Number of tasks on the longest path counted in hops (depth of the DAG).
  [[nodiscard]] std::size_t depth() const;

  /// True iff there is a directed path from `from` to `to` (BFS). Intended
  /// for tests and validators, not hot paths.
  [[nodiscard]] bool reaches(TaskId from, TaskId to) const;

  /// Merges `other` into this graph. Returns the id offset that was applied
  /// to every task of `other` (its task k becomes offset + k here).
  TaskId append(const TaskGraph& other);

  /// Removes every edge implied by a longer path (transitive reduction of
  /// the DAG — the canonical minimal instance with identical precedence
  /// semantics). Returns the number of edges removed. Imported instances
  /// often carry redundant edges; criticalities, categories and schedules
  /// are invariant under this operation (property-tested).
  std::size_t transitive_reduction();

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
  std::size_t edges_ = 0;
};

}  // namespace catbatch
