// task.hpp is header-only; this translation unit only anchors the target.
#include "core/task.hpp"

namespace catbatch {
static_assert(sizeof(Task) > 0);
}  // namespace catbatch
