#include "core/lmatrix.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace catbatch {

Time category_length(const Category& cat, Time critical_path) {
  CB_CHECK(critical_path > 0.0, "critical path length must be positive");
  const Time zeta = cat.value();
  if (critical_path <= zeta) return 0.0;
  const Time two_chi = std::ldexp(1.0, cat.power_level);
  const Time cap = std::ldexp(1.0, cat.power_level + 1);  // 2^{χ+1}
  const Time tail =
      critical_path - static_cast<Time>(cat.longitude - 1) * two_chi;
  return std::min(cap, tail);
}

Time bounded_category_length(const Category& cat, Time critical_path,
                             Time min_work, Time max_work) {
  CB_CHECK(min_work > 0.0 && max_work >= min_work,
           "task length bounds require 0 < m <= M");
  const Time len = category_length(cat, critical_path);
  if (len < min_work) return 0.0;
  return std::min(max_work, len);
}

LMatrix::LMatrix(Time critical_path) : critical_path_(critical_path) {
  CB_CHECK(critical_path > 0.0, "critical path length must be positive");
  CB_CHECK(std::isfinite(critical_path), "critical path must be finite");
  // X with 2^X < C <= 2^{X+1}. ilogb gives the largest e with 2^e <= C;
  // decrement when C is exactly a power of two.
  x_ = std::ilogb(critical_path);
  if (std::ldexp(1.0, x_) >= critical_path) --x_;
  CB_DCHECK(std::ldexp(1.0, x_) < critical_path &&
                critical_path <= std::ldexp(1.0, x_ + 1),
            "X bracket invariant violated");
}

Category LMatrix::category_at(std::size_t i, std::size_t j) const {
  CB_CHECK(i >= 1 && j >= 1, "L-matrix indices are 1-based");
  const int chi = x_ + 1 - static_cast<int>(i);
  const auto lambda = static_cast<std::int64_t>(2 * j - 1);
  return Category{chi, lambda};
}

Time LMatrix::at(std::size_t i, std::size_t j) const {
  const Category cat = category_at(i, j);
  // Closed form of Lemma 4; equal by construction to
  // category_length(cat, C), which the unit tests verify exhaustively.
  const Time step = std::ldexp(1.0, x_ + 2 - static_cast<int>(i));  // 2^{χ+1}
  const Time jd = static_cast<Time>(j);
  if (jd * step <= critical_path_) return step;
  if (static_cast<Time>(2 * j - 1) * (step / 2) < critical_path_) {
    return critical_path_ - (jd - 1.0) * step;
  }
  (void)cat;
  return 0.0;
}

std::size_t LMatrix::positive_count_in_row(std::size_t i) const {
  CB_CHECK(i >= 1, "L-matrix indices are 1-based");
  // Entries in a row are positive for a prefix of columns; the count is
  // bounded by 2^{i-1} (Theorem 2 proof, Claim 3), so a linear scan is fine.
  std::size_t count = 0;
  for (std::size_t j = 1; at(i, j) > 0.0; ++j) ++count;
  return count;
}

Time LMatrix::row_sum(std::size_t i) const {
  Time sum = 0.0;
  for (std::size_t j = 1;; ++j) {
    const Time v = at(i, j);
    if (v <= 0.0) break;
    sum += v;
  }
  return sum;
}

std::vector<Time> LMatrix::top_values(std::size_t n) const {
  std::vector<Time> out;
  out.reserve(n);
  for (std::size_t i = 1; out.size() < n; ++i) {
    // Every row below the first has at least one positive entry
    // (ℓ_{i,1} = 2^{X+2-i} <= C for i >= 2), so the loop always progresses.
    const std::size_t row_positives = positive_count_in_row(i);
    for (std::size_t j = 1; j <= row_positives && out.size() < n; ++j) {
      out.push_back(at(i, j));
    }
  }
  return out;
}

Time LMatrix::top_sum(std::size_t n) const {
  Time sum = 0.0;
  for (const Time v : top_values(n)) sum += v;
  return sum;
}

double theorem1_bound(std::size_t n) {
  CB_CHECK(n >= 1, "Theorem 1 bound requires at least one task");
  return std::log2(static_cast<double>(n)) + 3.0;
}

double theorem2_bound(Time max_work, Time min_work) {
  CB_CHECK(min_work > 0.0 && max_work >= min_work,
           "Theorem 2 bound requires 0 < m <= M");
  return std::log2(max_work / min_work) + 6.0;
}

double theorem3_bound_n(std::size_t n) {
  CB_CHECK(n >= 1, "Theorem 3 bound requires at least one task");
  return std::log2(static_cast<double>(n)) / 5.0;
}

double theorem3_bound_ratio(Time max_work, Time min_work) {
  CB_CHECK(min_work > 0.0 && max_work >= min_work,
           "Theorem 3 bound requires 0 < m <= M");
  return std::log2(max_work / min_work) / 5.0;
}

}  // namespace catbatch
