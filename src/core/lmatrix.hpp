// Category lengths and the L-matrix (Definitions 4-5, Lemma 4), plus the
// bounded L*-matrix used in the proof of Theorem 2.
//
// For an instance with critical-path length C, the length of category
// ζ = λ·2^χ is
//     L_ζ = min(2^{χ+1}, C − (λ−1)·2^χ)   if ζ < C,   and 0 otherwise,
// an upper bound on the execution time of any task in that category
// (Lemma 3). The L-matrix arranges these values with one row per power
// level (descending from χ = X, where 2^X < C <= 2^{X+1}) and one column
// per odd longitude λ = 2j−1.
#pragma once

#include <cstddef>
#include <vector>

#include "core/category.hpp"
#include "core/task.hpp"

namespace catbatch {

/// L_ζ for category `cat` in any instance of critical-path length
/// `critical_path` (Definition 4).
[[nodiscard]] Time category_length(const Category& cat, Time critical_path);

/// L*_ζ: the category length sharpened by task-length bounds m and M
/// (Section 5, before Theorem 2): min(M, L_ζ) if L_ζ >= m, else 0.
[[nodiscard]] Time bounded_category_length(const Category& cat,
                                           Time critical_path, Time min_work,
                                           Time max_work);

/// The (conceptually infinite) L-matrix of Definition 5, materialized
/// lazily: rows and columns are 1-based as in the paper (row i has power
/// level χ = X+1−i, column j has longitude λ = 2j−1).
class LMatrix {
 public:
  /// Requires critical_path > 0.
  explicit LMatrix(Time critical_path);

  [[nodiscard]] Time critical_path() const noexcept { return critical_path_; }

  /// X such that 2^X < C <= 2^{X+1}.
  [[nodiscard]] int X() const noexcept { return x_; }

  /// Category of cell (i, j): power level X+1−i, longitude 2j−1. 1-based.
  [[nodiscard]] Category category_at(std::size_t i, std::size_t j) const;

  /// ℓ_{i,j}, computed by the closed form of Lemma 4. 1-based.
  [[nodiscard]] Time at(std::size_t i, std::size_t j) const;

  /// Number of strictly positive entries in row i (at most 2^{i-1}; the
  /// paper's Theorem 2 proof, Claim 3).
  [[nodiscard]] std::size_t positive_count_in_row(std::size_t i) const;

  /// Sum of row i (at most C; Theorem 1 proof, Claim 2).
  [[nodiscard]] Time row_sum(std::size_t i) const;

  /// Sum of the n largest entries of the matrix. By Theorem 1's Claim 1 the
  /// maximum is attained by walking rows top to bottom, left to right over
  /// positive entries; this is what the function does.
  [[nodiscard]] Time top_sum(std::size_t n) const;

  /// The n largest entries themselves, in the row-major order above.
  [[nodiscard]] std::vector<Time> top_values(std::size_t n) const;

 private:
  Time critical_path_;
  int x_;
};

/// Theorem bound helpers (right-hand sides of the paper's main results).
/// Theorem 1: T_CatBatch / Lb <= log2(n) + 3 for any instance with n >= 1.
[[nodiscard]] double theorem1_bound(std::size_t n);

/// Theorem 2: T_CatBatch / Lb <= log2(M/m) + 6.
[[nodiscard]] double theorem2_bound(Time max_work, Time min_work);

/// Theorem 3 lower-bound curves: log2(n)/5 and log2(M/m)/5.
[[nodiscard]] double theorem3_bound_n(std::size_t n);
[[nodiscard]] double theorem3_bound_ratio(Time max_work, Time min_work);

}  // namespace catbatch
