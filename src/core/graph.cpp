#include "core/graph.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "support/check.hpp"

namespace catbatch {

TaskId TaskGraph::add_task(Time work, int procs, std::string name) {
  CB_CHECK(work > 0.0, "task execution time must be strictly positive");
  CB_CHECK(procs >= 1, "task processor requirement must be at least 1");
  CB_CHECK(tasks_.size() < std::numeric_limits<TaskId>::max(),
           "task id space exhausted");
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(Task{work, procs, std::move(name)});
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void TaskGraph::add_edge(TaskId pred, TaskId succ) {
  CB_CHECK(pred < tasks_.size() && succ < tasks_.size(),
           "edge endpoint out of range");
  CB_CHECK(pred != succ, "self-loops are not allowed in a DAG");
  auto& out = succs_[pred];
  if (std::find(out.begin(), out.end(), succ) != out.end()) return;
  out.push_back(succ);
  preds_[succ].push_back(pred);
  ++edges_;
}

const Task& TaskGraph::task(TaskId id) const {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

Task& TaskGraph::task(TaskId id) {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

std::span<const TaskId> TaskGraph::predecessors(TaskId id) const {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return preds_[id];
}

std::span<const TaskId> TaskGraph::successors(TaskId id) const {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return succs_[id];
}

std::vector<TaskId> TaskGraph::roots() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (preds_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (succs_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size());
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    in_degree[id] = preds_[id].size();
  }
  std::deque<TaskId> ready;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (in_degree[id] == 0) ready.push_back(id);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const TaskId succ : succs_[id]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  CB_CHECK(order.size() == tasks_.size(), "task graph contains a cycle");
  return order;
}

bool TaskGraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const ContractViolation&) {
    return false;
  }
}

void TaskGraph::validate(int max_procs) const {
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& t = tasks_[id];
    CB_CHECK(t.work > 0.0, "task has non-positive execution time");
    CB_CHECK(t.procs >= 1, "task has processor requirement below 1");
    if (max_procs > 0) {
      CB_CHECK(t.procs <= max_procs,
               "task requires more processors than the platform has");
    }
  }
  (void)topological_order();  // throws on cycle
}

int TaskGraph::max_procs_required() const noexcept {
  int best = 0;
  for (const Task& t : tasks_) best = std::max(best, t.procs);
  return best;
}

Time TaskGraph::total_area() const noexcept {
  Time area = 0.0;
  for (const Task& t : tasks_) area += t.area();
  return area;
}

Time TaskGraph::min_work() const {
  CB_CHECK(!tasks_.empty(), "min_work of an empty graph");
  Time best = tasks_.front().work;
  for (const Task& t : tasks_) best = std::min(best, t.work);
  return best;
}

Time TaskGraph::max_work() const {
  CB_CHECK(!tasks_.empty(), "max_work of an empty graph");
  Time best = tasks_.front().work;
  for (const Task& t : tasks_) best = std::max(best, t.work);
  return best;
}

std::size_t TaskGraph::depth() const {
  std::vector<std::size_t> level(tasks_.size(), 0);
  std::size_t best = tasks_.empty() ? 0 : 1;
  for (const TaskId id : topological_order()) {
    std::size_t lvl = 1;
    for (const TaskId pred : preds_[id]) lvl = std::max(lvl, level[pred] + 1);
    level[id] = lvl;
    best = std::max(best, lvl);
  }
  return best;
}

bool TaskGraph::reaches(TaskId from, TaskId to) const {
  CB_CHECK(from < tasks_.size() && to < tasks_.size(),
           "task id out of range");
  if (from == to) return true;
  std::vector<bool> seen(tasks_.size(), false);
  std::deque<TaskId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const TaskId id = frontier.front();
    frontier.pop_front();
    for (const TaskId succ : succs_[id]) {
      if (succ == to) return true;
      if (!seen[succ]) {
        seen[succ] = true;
        frontier.push_back(succ);
      }
    }
  }
  return false;
}

std::size_t TaskGraph::transitive_reduction() {
  // An edge (u, v) is redundant iff v is reachable from u through some
  // other successor of u. O(E * (V + E)) via per-edge BFS — fine for the
  // instance sizes this library targets; hot paths never call this.
  std::size_t removed = 0;
  for (TaskId u = 0; u < tasks_.size(); ++u) {
    std::vector<TaskId>& out = succs_[u];
    for (std::size_t k = 0; k < out.size();) {
      const TaskId v = out[k];
      bool redundant = false;
      for (const TaskId mid : out) {
        if (mid == v) continue;
        if (reaches(mid, v)) {
          redundant = true;
          break;
        }
      }
      if (redundant) {
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(k));
        auto& in = preds_[v];
        in.erase(std::find(in.begin(), in.end(), u));
        --edges_;
        ++removed;
      } else {
        ++k;
      }
    }
  }
  return removed;
}

TaskId TaskGraph::append(const TaskGraph& other) {
  const auto offset = static_cast<TaskId>(tasks_.size());
  for (TaskId id = 0; id < other.size(); ++id) {
    const Task& t = other.task(id);
    add_task(t.work, t.procs, t.name);
  }
  for (TaskId id = 0; id < other.size(); ++id) {
    for (const TaskId succ : other.successors(id)) {
      add_edge(offset + id, offset + succ);
    }
  }
  return offset;
}

}  // namespace catbatch
