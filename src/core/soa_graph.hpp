// Structure-of-arrays snapshot of a task DAG (the 10M-task layout).
//
// TaskGraph is the mutable, builder-friendly description: one Task struct
// and two adjacency vectors per task — convenient, but ~5 heap blocks and
// a std::string per task, which is what caps the AoS engine at a few
// hundred thousand tasks. SoaGraph is the frozen counterpart: parallel
// arrays (work, procs) plus CSR predecessor/successor adjacency and a
// level-by-level topological decomposition, all in O(1) allocations total.
// The simulation engine borrows these arrays by span (sim/source.hpp
// `soa_graph()` fast path), and the core analysis passes — criticality,
// category, bounds — run as SIMD-friendly sweeps over them.
//
// Determinism contract: every pass here is bit-identical for any `jobs`
// value. Levels are swept in order; within a level, tasks are partitioned
// into fixed-size blocks (independent of the worker count) and each task
// writes only its own slots, reading only finished levels. Floating-point
// max is insensitive to evaluation order; the one order-sensitive
// reduction (the area sum in compute_bounds) is always serial in id order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/bounds.hpp"
#include "core/category.hpp"
#include "core/criticality.hpp"
#include "core/task.hpp"
#include "support/parallel.hpp"

namespace catbatch {

/// Frozen SoA/CSR view of a validated DAG. Invariants (established by the
/// builders, relied upon everywhere): arrays are consistently sized,
/// adjacency rows are ascending, `level_order` lists every task exactly
/// once grouped by level with ascending ids inside each level, and every
/// predecessor of a task lives in a strictly earlier level.
struct SoaGraph {
  std::vector<Time> work;   // t_i, indexed by TaskId
  std::vector<int> procs;   // p_i

  // CSR adjacency: row i is data[offsets[i] .. offsets[i+1]), ascending.
  std::vector<std::uint32_t> pred_offsets;  // size n + 1
  std::vector<TaskId> pred_data;
  std::vector<std::uint32_t> succ_offsets;  // size n + 1
  std::vector<TaskId> succ_data;

  // Level decomposition: level k is
  //   level_order[level_offsets[k] .. level_offsets[k+1]),
  // ids ascending within the level. Level 0 holds exactly the roots.
  std::vector<std::uint32_t> level_offsets;  // size L + 1
  std::vector<TaskId> level_order;           // size n

  int max_procs = 0;          // max_i p_i (0 for an empty graph)
  std::size_t edge_count = 0;
  /// True when every predecessor id is smaller than its task's id (the
  /// streaming builders guarantee this by construction). Enables the
  /// id-order level/criticality fast paths, which are bit-identical to
  /// the level-by-level algorithms they replace.
  bool ids_topological = false;

  // Optional task names: either empty or one view per task. The views
  // point into `name_storage` (or into storage the producer guarantees to
  // outlive this graph); tasks never own a std::string each.
  std::vector<std::string_view> names;
  std::shared_ptr<const void> name_storage;

  [[nodiscard]] std::size_t size() const noexcept { return work.size(); }
  [[nodiscard]] bool empty() const noexcept { return work.empty(); }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_offsets.empty() ? 0 : level_offsets.size() - 1;
  }

  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const {
    return {pred_data.data() + pred_offsets[id],
            pred_data.data() + pred_offsets[id + 1]};
  }
  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const {
    return {succ_data.data() + succ_offsets[id],
            succ_data.data() + succ_offsets[id + 1]};
  }
  [[nodiscard]] std::span<const TaskId> level(std::size_t k) const {
    return {level_order.data() + level_offsets[k],
            level_order.data() + level_offsets[k + 1]};
  }
  [[nodiscard]] std::string_view name(TaskId id) const {
    return names.empty() ? std::string_view{} : names[id];
  }
};

/// One incremental slice of a streaming instance: tasks
/// [base, base + size()) with chunk-local predecessor offsets over
/// *global* predecessor ids (which may reference any earlier chunk).
/// Produced by StreamingGraphBuilder::freeze_chunk() and consumed by
/// SessionEngine::submit(SoaChunk, now) — the path that streams a 10M-task
/// adaptive source through resolve/criticality without the full-resolve
/// pause. Chunks are nameless (the interner stays with the full-freeze
/// path).
struct SoaChunk {
  TaskId base = 0;
  std::vector<Time> work;
  std::vector<int> procs;
  std::vector<std::uint32_t> pred_offsets{0};  // size() + 1, chunk-local
  std::vector<TaskId> pred_data;               // global ids, ascending rows

  [[nodiscard]] std::size_t size() const noexcept { return work.size(); }
  [[nodiscard]] bool empty() const noexcept { return work.empty(); }
  [[nodiscard]] std::span<const TaskId> predecessors(std::size_t k) const {
    return {pred_data.data() + pred_offsets[k],
            pred_data.data() + pred_offsets[k + 1]};
  }
};

/// Freezes `graph` into SoA form. Throws ContractViolation on a cycle
/// (detected by the level decomposition). With `with_names`, task names
/// are packed into one arena string owned by the result; otherwise the
/// result is nameless regardless of the graph's labels. `parallel` drives
/// the validation / successor-CSR passes; the result is bit-identical for
/// any thread count.
[[nodiscard]] SoaGraph build_soa_graph(const TaskGraph& graph,
                                       bool with_names = false,
                                       const ParallelOptions& parallel = {});

/// Builds directly from raw arrays — the streaming path, which never
/// materializes a TaskGraph. `pred_offsets` must have size work.size()+1
/// with ascending rows; works must be > 0, procs >= 1. Successor CSR and
/// levels are derived here; throws ContractViolation on any violation or
/// cycle. Names (optional) follow the same borrowing rule as SoaGraph.
[[nodiscard]] SoaGraph build_soa_graph(
    std::vector<Time> work, std::vector<int> procs,
    std::vector<std::uint32_t> pred_offsets, std::vector<TaskId> pred_data,
    std::vector<std::string_view> names = {},
    std::shared_ptr<const void> name_storage = nullptr,
    const ParallelOptions& parallel = {});

/// Criticalities (s∞, f∞) as two parallel arrays — the SoA pass behind
/// compute_criticalities(TaskGraph).
struct CriticalityArrays {
  std::vector<Time> earliest_start;
  std::vector<Time> earliest_finish;

  [[nodiscard]] std::size_t size() const noexcept {
    return earliest_start.size();
  }
};

/// Lemma 1 as a level-by-level sweep: level k reads only finishes of
/// levels < k, so each level parallelizes freely. Bit-identical for any
/// `jobs` (fixed block partition; max is order-insensitive). `jobs <= 1`
/// runs serially on the calling thread.
[[nodiscard]] CriticalityArrays compute_criticalities(const SoaGraph& graph,
                                                      int jobs = 1);

/// ParallelOptions-driven variant of the same sweep: levels are
/// partitioned into fixed `parallel.chunk`-sized blocks claimed by the
/// caller plus global-pool helpers; graphs with topological ids and
/// levels narrower than one block take a prefetched id-order scan
/// instead. Every path computes the identical IEEE-754 values (the
/// recurrence has a unique fixpoint and max is order-insensitive), so
/// the arrays are bit-identical for any {threads, chunk}.
[[nodiscard]] CriticalityArrays compute_criticalities(
    const SoaGraph& graph, const ParallelOptions& parallel);

/// Definitions 2-3 for every task, from the SoA criticalities. Tasks are
/// independent; parallelized over fixed blocks, bit-identical at any jobs.
[[nodiscard]] std::vector<Category> compute_categories(
    const SoaGraph& graph, const CriticalityArrays& criticalities,
    int jobs = 1);

/// C(I) = max f∞ over the SoA arrays (order-insensitive max).
[[nodiscard]] Time critical_path_length(const CriticalityArrays& criticalities);

/// Instance summary over the SoA layout. The area sum runs serially in id
/// order — the one reduction whose floating-point result depends on
/// order, pinned to match TaskGraph::total_area() exactly.
[[nodiscard]] InstanceBounds compute_bounds(const SoaGraph& graph, int procs);

}  // namespace catbatch
