#include "core/bounds.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

Time InstanceBounds::lower_bound() const {
  if (task_count == 0) return 0.0;
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  return std::max(area / static_cast<Time>(procs), critical_path);
}

InstanceBounds compute_bounds(const TaskGraph& graph, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CB_CHECK(graph.max_procs_required() <= procs,
           "instance contains a task wider than the platform");
  InstanceBounds b;
  b.task_count = graph.size();
  b.procs = procs;
  if (graph.empty()) return b;
  b.area = graph.total_area();
  b.critical_path = critical_path_length(graph);
  b.min_work = graph.min_work();
  b.max_work = graph.max_work();
  return b;
}

Time makespan_lower_bound(const TaskGraph& graph, int procs) {
  return compute_bounds(graph, procs).lower_bound();
}

}  // namespace catbatch
