// Makespan lower bound Lb(I) = max(A(I)/P, C(I)) (Equation 1) and the
// instance summary used throughout the analysis and experiments.
#pragma once

#include <cstddef>

#include "core/criticality.hpp"
#include "core/graph.hpp"
#include "core/task.hpp"

namespace catbatch {

/// Scalar summary of an instance: everything the paper's bounds depend on.
struct InstanceBounds {
  std::size_t task_count = 0;  // n
  Time area = 0.0;             // A(I) = Σ t_i p_i
  Time critical_path = 0.0;    // C(I) = max f∞
  Time min_work = 0.0;         // m
  Time max_work = 0.0;         // M
  int procs = 0;               // P

  /// Lb(I) = max(A/P, C) (Equation 1). 0 for an empty instance.
  [[nodiscard]] Time lower_bound() const;
};

/// Computes the summary for `graph` scheduled on `procs` processors.
/// Requires procs >= max_i p_i (throws otherwise).
[[nodiscard]] InstanceBounds compute_bounds(const TaskGraph& graph, int procs);

/// Lb(I) directly (Equation 1).
[[nodiscard]] Time makespan_lower_bound(const TaskGraph& graph, int procs);

}  // namespace catbatch
