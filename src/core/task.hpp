// Basic task model for rigid parallel tasks (Section 3.1 of the paper).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace catbatch {

/// Dense task identifier: the index of the task inside its TaskGraph.
using TaskId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// Simulated time. The paper works over the reals; we use double and keep
/// the category computation exact (see core/category.hpp for the argument).
using Time = double;

/// A rigid task T_i: executes for `work` time units on exactly `procs`
/// processors, which are held for the task's entire execution (Section 3.1).
struct Task {
  /// Execution time t_i. Must be strictly positive.
  Time work = 0.0;

  /// Processor requirement p_i. Must be in [1, P] for the target platform.
  int procs = 1;

  /// Optional human-readable label (used by examples and traces).
  std::string name;

  /// Area contribution t_i * p_i of this task (Section 3.2).
  [[nodiscard]] Time area() const noexcept {
    return work * static_cast<Time>(procs);
  }

  friend bool operator==(const Task&, const Task&) = default;
};

}  // namespace catbatch
