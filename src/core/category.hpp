// Power level, longitude and category of a task (Definitions 2-3, Lemma 2).
//
// Given a criticality interval (s∞, f∞), the power level is
//     χ = max{ χ' ∈ Z : ∃λ ∈ N, s∞ < λ·2^χ' < f∞ },
// the longitude λ is the unique (odd, by Lemma 2) integer with
// s∞ < λ·2^χ < f∞, and the category is ζ = λ·2^χ.
//
// Exactness: the computation below uses only comparisons of s∞/f∞ against
// integer multiples of powers of two. Powers of two, divisions by them, and
// small-integer multiples of them are exact in IEEE-754 binary doubles, so
// the strict inequalities of Definition 2 are evaluated exactly whenever the
// inputs s∞ and f∞ are exact. Instance generators in this repository emit
// task lengths as multiples of 2^-20 to keep the criticality recurrence
// (sums of lengths) exact as well.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

#include "core/criticality.hpp"
#include "core/task.hpp"

namespace catbatch {

/// A category ζ = λ·2^χ, stored as the exact pair (χ, λ) with λ odd.
/// Distinct (χ, odd λ) pairs denote distinct real values, so the pair is a
/// canonical representation.
struct Category {
  int power_level = 0;         // χ
  std::int64_t longitude = 1;  // λ, odd and >= 1

  /// The real value ζ = λ·2^χ. Exact as long as λ < 2^53 (checked).
  [[nodiscard]] Time value() const;

  /// Categories are totally ordered by their real value ζ; CatBatch
  /// processes batches in increasing category order (Algorithm 3).
  [[nodiscard]] std::partial_ordering operator<=>(const Category& o) const {
    return value() <=> o.value();
  }
  [[nodiscard]] bool operator==(const Category& o) const {
    return power_level == o.power_level && longitude == o.longitude;
  }
};

/// Computes the category of a task from its criticality interval
/// (Definitions 2-3). Requires 0 <= s∞ < f∞. Verifies Lemma 2's guarantees
/// (λ odd; (λ-1)·2^χ <= s∞ and f∞ <= (λ+1)·2^χ) in debug builds.
[[nodiscard]] Category compute_category(const Criticality& criticality);

/// Convenience overload.
[[nodiscard]] inline Category compute_category(Time earliest_start,
                                               Time earliest_finish) {
  return compute_category(Criticality{earliest_start, earliest_finish});
}

/// ζ value of an explicit (χ, λ) pair; λ need not be odd here (used when
/// enumerating lattice points as in Figure 2).
[[nodiscard]] Time category_value(int power_level, std::int64_t longitude);

/// Categories of all tasks of a graph, indexed by TaskId.
[[nodiscard]] std::vector<Category> compute_categories(const TaskGraph& graph);
[[nodiscard]] std::vector<Category> compute_categories(
    const TaskGraph& graph, const std::vector<Criticality>& criticalities);

}  // namespace catbatch
