#include "qa/fuzzer.hpp"

#include <sstream>
#include <utility>

#include "qa/mutator.hpp"
#include "support/thread_pool.hpp"

namespace catbatch {
namespace {

/// Everything one iteration produces, written into its own slot; the
/// serial reduction below walks the slots in index order.
struct IterationResult {
  bool ran = false;
  std::uint64_t seed = 0;
  std::uint64_t hash = 0;
  FuzzInstance instance;
  std::vector<OracleFailure> failures;
};

FuzzInstance build_instance(std::uint64_t iteration_seed,
                            const FuzzOptions& options) {
  Rng rng(iteration_seed);
  FuzzInstance instance = generate_instance(rng, options.generator);
  if (options.mutations > 0) {
    const std::size_t count =
        rng.index(options.mutations + 1);  // uniform in [0, mutations]
    for (std::size_t m = 0; m < count; ++m) {
      mutate_instance(rng, instance, options.generator);
    }
  }
  return instance;
}

}  // namespace

FuzzReport run_fuzzer(const FuzzOptions& options) {
  FuzzReport report;
  std::vector<IterationResult> slots(options.iterations);
  // Every iteration always runs; max_findings is applied only in the serial
  // index-ordered reduction below. Capping inside the parallel loop would
  // make *which* iterations get skipped depend on completion order — i.e.
  // on --jobs — and break the bit-identical-report contract.
  parallel_for(
      ThreadPool::resolve_jobs(options.jobs), options.iterations,
      [&](std::size_t index) {
        IterationResult& slot = slots[index];
        slot.seed = mix_seed(options.seed, index);
        slot.instance = build_instance(slot.seed, options);
        slot.hash = instance_hash(slot.instance);
        slot.failures = check_all_schedulers(slot.instance, options.oracles);
        slot.ran = true;
      });

  // Serial, index-ordered reduction: fingerprint, then shrink + record
  // findings up to the cap.
  for (IterationResult& slot : slots) {
    if (!slot.ran) continue;
    ++report.iterations_run;
    report.instance_fingerprint ^= slot.hash;
    if (slot.failures.empty()) continue;
    ++report.instances_with_failures;
    if (options.max_findings > 0 &&
        report.findings.size() >= options.max_findings) {
      continue;
    }

    FuzzFinding finding;
    finding.iteration_seed = slot.seed;
    finding.instance = std::move(slot.instance);
    finding.failures = std::move(slot.failures);

    if (options.shrink && !finding.instance.graph.empty()) {
      // Preserve the instance's *first* failure signature while shrinking:
      // an instance failing a different oracle after deletion is a
      // different bug and must not hijack this repro.
      const std::string oracle = finding.failures.front().oracle;
      const std::string scheduler = finding.failures.front().scheduler;
      const OracleOptions& oracle_options = options.oracles;
      const auto still_fails = [&](const FuzzInstance& candidate) {
        const auto failures =
            check_all_schedulers(candidate, oracle_options);
        for (const OracleFailure& f : failures) {
          if (f.oracle == oracle && f.scheduler == scheduler) return true;
        }
        return false;
      };
      const ShrinkResult shrunk =
          shrink_instance(finding.instance, still_fails,
                          options.shrink_options);
      finding.instance = shrunk.instance;
      finding.shrink_checks = shrunk.checks;
      finding.shrink_minimal = shrunk.minimal;
      finding.failures = check_all_schedulers(finding.instance,
                                              oracle_options);
    }

    if (!options.corpus_dir.empty() && !finding.failures.empty()) {
      CorpusCase repro;
      repro.oracle = finding.failures.front().oracle;
      repro.scheduler = finding.failures.front().scheduler;
      repro.seed = finding.iteration_seed;
      repro.note = finding.instance.origin;
      repro.instance = finding.instance;
      finding.corpus_path = write_corpus_case(options.corpus_dir, repro);
    }

    if (options.on_progress) {
      options.on_progress(describe_finding(finding));
    }
    report.findings.push_back(std::move(finding));
  }
  return report;
}

std::string describe_finding(const FuzzFinding& finding) {
  std::ostringstream os;
  os << "finding: seed=" << finding.iteration_seed << " origin='"
     << finding.instance.origin << "' tasks="
     << finding.instance.graph.size() << " edges="
     << finding.instance.graph.edge_count() << " procs="
     << finding.instance.procs;
  if (finding.shrink_checks > 0) {
    os << " (shrunk in " << finding.shrink_checks << " checks"
       << (finding.shrink_minimal ? ", minimal" : ", budget hit") << ")";
  }
  os << "\n";
  for (const OracleFailure& f : finding.failures) {
    os << "  [" << f.oracle << "] "
       << (f.scheduler.empty() ? "<instance>" : f.scheduler) << ": "
       << f.detail << "\n";
  }
  if (!finding.corpus_path.empty()) {
    os << "  repro written to " << finding.corpus_path << "\n";
  }
  return os.str();
}

}  // namespace catbatch
