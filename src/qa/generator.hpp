// Instance generation for the differential fuzzer (docs/FUZZING.md).
//
// The paper's guarantees are exact inequalities, so every scheduler bug is
// machine-detectable if the instance space is searched systematically
// (Chatterjee et al.'s automated competitive analysis framing). The
// generator draws from a deliberately wide family mix: the seven random-DAG
// families, the synthetic HPC workload DAGs, the Section 6 lower-bound
// constructions (X, Y and a realized Z run), and degenerate shapes —
// single-task graphs, full-width p_i = P tasks, minimum-work chains — that
// hand-written example suites never cover.
#pragma once

#include <cstdint>
#include <string>

#include "core/graph.hpp"
#include "support/rng.hpp"

namespace catbatch {

/// One instance under test: the DAG, the platform width it targets, and a
/// human-readable lineage (family name plus any mutation trail) used for
/// triage and corpus notes.
struct FuzzInstance {
  TaskGraph graph;
  int procs = 8;
  std::string origin;
};

struct GeneratorOptions {
  /// Soft cap on instance size: families are parameterized to land at or
  /// under this, so oracle batteries stay fast enough for 10k-iteration
  /// smoke runs.
  std::size_t max_tasks = 48;
  /// Largest platform width drawn. Instances always get procs >= the
  /// widest task they contain.
  int max_procs = 16;
  /// Draw exclusively from the huge-dag family: streaming-scale shapes
  /// (deep/wide layered, stencil grids, chain bundles, out-trees,
  /// independent sets) sized near max_tasks with O(n) edges and bounded
  /// in-degree. The standard mix is unusable at this scale — the
  /// transitive-order family alone is Theta(n^2) in candidate edges.
  bool huge = false;
};

/// Draws one instance from the family mix. Deterministic in `rng`.
[[nodiscard]] FuzzInstance generate_instance(Rng& rng,
                                             const GeneratorOptions& options);

/// SplitMix64-style mix of the base seed and an iteration index. The
/// fuzzer seeds iteration k with mix_seed(seed, k), which makes every
/// iteration independent of execution order — the basis of the bit-identical
/// report at any --jobs.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index);

/// FNV-1a over the instance's serialized form (instances/io.hpp dialect).
/// Order-insensitive accumulation of these per-iteration hashes gives the
/// fuzzer's jobs-invariant fingerprint.
[[nodiscard]] std::uint64_t instance_hash(const FuzzInstance& instance);

}  // namespace catbatch
