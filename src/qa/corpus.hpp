// Persistent regression corpus for fuzzer findings (tests/corpus/).
//
// Each file is one shrunk repro: which oracle fired, for which scheduler,
// under which seed, plus the instance itself embedded verbatim in the
// instances/io.hpp dialect. Files are written once when a finding is
// shrunk and then replayed forever by the catbatch_corpus_replay ctest —
// a corpus entry documents a *fixed* bug, so replay expects the whole
// oracle battery to pass.
//
//   {
//     "schema": 1,
//     "oracle": "feasibility",
//     "scheduler": "catbatch",
//     "seed": 12345,
//     "note": "layered+edge+shrunk",
//     "instance": { "procs": 4, "tasks": [...], "edges": [...] }
//   }
//
// corpus_to_json embeds to_json(graph, procs) byte-for-byte, so a
// write/parse/write cycle is bit-identical (tested).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qa/generator.hpp"
#include "qa/oracles.hpp"

namespace catbatch {

struct CorpusCase {
  int schema = 1;
  std::string oracle;     // oracle that originally fired
  std::string scheduler;  // registry name ("" for instance-level findings)
  std::uint64_t seed = 0;  // fuzzer iteration seed that found it
  std::string note;        // instance lineage (FuzzInstance::origin)
  FuzzInstance instance;
};

[[nodiscard]] std::string corpus_to_json(const CorpusCase& c);

/// Parses what corpus_to_json emits. Throws ContractViolation on malformed
/// input. The embedded instance text is re-parsed with instance_from_json.
[[nodiscard]] CorpusCase corpus_from_json(std::string_view text);

/// Deterministic file name: <oracle>-<scheduler>-<hash8>.json where hash8
/// is the first 16 hex digits of instance_hash (collision-free in practice
/// and stable across runs and --jobs).
[[nodiscard]] std::string corpus_file_name(const CorpusCase& c);

/// Loads every *.json under `directory`, sorted by file name. Throws on
/// unreadable or malformed files (a broken corpus should fail loudly).
[[nodiscard]] std::vector<std::pair<std::string, CorpusCase>> load_corpus(
    const std::string& directory);

/// Re-runs the full oracle battery on the case's instance. Empty result
/// means every invariant holds (the recorded bug stays fixed).
[[nodiscard]] std::vector<OracleFailure> replay_case(const CorpusCase& c);

/// Writes the case into `directory` under corpus_file_name(). Returns the
/// full path. Overwrites an existing file with the same name.
std::string write_corpus_case(const std::string& directory,
                              const CorpusCase& c);

}  // namespace catbatch
