#include "qa/protocol_fuzz.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <string_view>

#include "service/hub.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"
#include "support/rng.hpp"

namespace catbatch {

namespace {

constexpr std::array<std::string_view, 7> kReplyTypes = {
    "welcome", "opened", "decisions", "stats", "closed", "goodbye", "error"};

constexpr std::array<std::string_view, 5> kAlgoPool = {
    "catbatch", "easy-backfill", "shelf-nfdh", "divide-conquer",
    "no-such-algo"};

constexpr std::array<std::string_view, 4> kSessionPool = {"s0", "s1", "s2",
                                                          "ghost"};

/// A small random JSON value — the payload for fuzzed fields.
std::string random_json_value(Rng& rng, int depth) {
  switch (rng.index(depth > 1 ? 8 : 6)) {
    case 0:
      return "null";
    case 1:
      return rng.bernoulli(0.5) ? "true" : "false";
    case 2:
      return std::to_string(rng.uniform_int(-5, 1000));
    case 3: {
      JsonWriter w;
      w.value(rng.uniform_real(-1e9, 1e9));
      return w.str();
    }
    case 4:
      return "\"" + std::string(rng.index(8), 'x') + "\"";
    case 5:
      return "1e999";  // overflows double: parser must reject the line
    case 6:
      return "[" + random_json_value(rng, depth - 1) + "]";
    default:
      return "{\"k\":" + random_json_value(rng, depth - 1) + "}";
  }
}

/// A message matching a random spec shape, each field filled with either a
/// plausible or a random value.
std::string shaped_message(Rng& rng) {
  const std::span<const RequestShape> shapes = request_shapes();
  const RequestShape& shape = shapes[rng.index(shapes.size())];
  std::string out = "{\"type\":\"" + std::string(shape.type) + "\"";
  for (const std::string_view field : shape.fields) {
    std::string_view name = field.substr(0, field.find(':'));
    if (!name.empty() && name.back() == '?') name.remove_suffix(1);
    if (rng.bernoulli(0.2)) continue;  // sometimes omit (even required)
    out += ",\"" + std::string(name) + "\":";
    if (rng.bernoulli(0.5)) {
      out += random_json_value(rng, 2);
    } else if (name == "session") {
      out += "\"" + std::string(kSessionPool[rng.index(4)]) + "\"";
    } else if (name == "algo") {
      out += "\"" + std::string(kAlgoPool[rng.index(5)]) + "\"";
    } else if (name == "version") {
      out += std::to_string(rng.uniform_int(0, 3));
    } else if (name == "tasks") {
      out += "[{\"work\":1.5,\"procs\":1}]";
    } else if (name == "procs" || name == "task") {
      out += std::to_string(rng.uniform_int(-1, 64));
    } else {
      JsonWriter w;  // now / at
      w.value(rng.uniform_real(-1.0, 100.0));
      out += w.str();
    }
  }
  out += "}";
  return out;
}

/// A protocol-plausible next line for a conversation that opened sessions
/// from kSessionPool with small fixed task batches.
std::string plausible_message(Rng& rng) {
  const std::string session(kSessionPool[rng.index(4)]);
  switch (rng.index(9)) {
    case 0:
      return "{\"type\":\"hello\",\"version\":1}";
    case 1:
      return "{\"type\":\"open\",\"session\":\"" + session +
             "\",\"algo\":\"catbatch\",\"procs\":4" +
             (rng.bernoulli(0.4) ? ",\"clock\":\"external\"}" : "}");
    case 2:
      return "{\"type\":\"submit\",\"session\":\"" + session +
             "\",\"tasks\":[{\"work\":2.0,\"procs\":1},{\"work\":1.0,"
             "\"procs\":" +
             std::to_string(rng.uniform_int(1, 5)) + ",\"preds\":[0]}]}";
    case 3:
      return "{\"type\":\"complete\",\"session\":\"" + session +
             "\",\"task\":" + std::to_string(rng.uniform_int(0, 3)) +
             ",\"at\":" + std::to_string(rng.uniform_int(0, 9)) + "}";
    case 4:
      return "{\"type\":\"tick\",\"session\":\"" + session +
             "\",\"at\":" + std::to_string(rng.uniform_int(0, 9)) + "}";
    case 5:
      return "{\"type\":\"step\",\"session\":\"" + session + "\"}";
    case 6:
      return "{\"type\":\"drain\",\"session\":\"" + session + "\"}";
    case 7:
      return "{\"type\":\"query\",\"session\":\"" + session + "\"}";
    default:
      return "{\"type\":\"close\",\"session\":\"" + session + "\"}";
  }
}

std::string garbage_line(Rng& rng) {
  std::string out;
  const std::size_t len = rng.index(40);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.uniform_int(1, 255)));
  }
  std::erase(out, '\n');  // a line, by definition, has none
  return out;
}

std::string next_line(Rng& rng) {
  const std::size_t roll = rng.index(100);
  if (roll < 10) return garbage_line(rng);
  if (roll < 20) {  // truncation
    std::string line = plausible_message(rng);
    return line.substr(0, rng.index(line.size() + 1));
  }
  if (roll < 35) {  // unknown field injected after the opening brace
    std::string line = plausible_message(rng);
    if (line.size() > 1 && line.front() == '{') {
      line.insert(1, "\"unexpected-field\":" + random_json_value(rng, 2) +
                         (line.size() > 2 ? "," : ""));
    }
    return line;
  }
  if (roll < 60) return shaped_message(rng);
  return plausible_message(rng);
}

class InvariantChecker {
 public:
  explicit InvariantChecker(ProtocolFuzzReport& report) : report_(report) {}

  void check(const std::string& line,
             const std::vector<std::string>& replies) {
    ++report_.lines_sent;
    if (replies.size() != 1) {
      record("lockstep violated: " + std::to_string(replies.size()) +
             " replies to line: " + preview(line));
      return;
    }
    const std::string& reply = replies.front();
    const std::optional<JsonValue> parsed = parse_json(reply);
    if (!parsed.has_value() || !parsed->is_object()) {
      record("reply is not a JSON object: " + preview(reply));
      return;
    }
    const JsonValue* type = parsed->find("type");
    if (type == nullptr || !type->is_string() ||
        std::find(kReplyTypes.begin(), kReplyTypes.end(), type->str_v) ==
            kReplyTypes.end()) {
      record("reply has unknown type: " + preview(reply));
      return;
    }
    if (type->str_v == "error") {
      ++report_.error_replies;
      const JsonValue* code = parsed->find("code");
      const std::span<const std::string_view> codes = error_codes();
      if (code == nullptr || !code->is_string() ||
          std::find(codes.begin(), codes.end(), code->str_v) ==
              codes.end()) {
        record("error reply has unknown code: " + preview(reply));
      }
    }
  }

  void record(std::string what) {
    if (report_.findings.size() < 16) {
      report_.findings.push_back(std::move(what));
    }
  }

 private:
  static std::string preview(std::string_view text) {
    std::string out(text.substr(0, 120));
    for (char& ch : out) {
      if (static_cast<unsigned char>(ch) < 0x20) ch = '.';
    }
    return out;
  }

  ProtocolFuzzReport& report_;
};

/// After abuse, a fresh connection must still run a clean session; any
/// error reply means the hub's shared state was corrupted.
void check_recovery(ServiceHub& hub, InvariantChecker& checker) {
  const std::uint64_t conn = hub.open_connection();
  const std::array<std::string, 5> script = {
      std::string("{\"type\":\"hello\",\"version\":1}"),
      std::string("{\"type\":\"open\",\"session\":\"probe\","
                  "\"algo\":\"catbatch\",\"procs\":4}"),
      std::string("{\"type\":\"submit\",\"session\":\"probe\","
                  "\"tasks\":[{\"work\":1.0,\"procs\":2},"
                  "{\"work\":2.0,\"procs\":1,\"preds\":[0]}]}"),
      std::string("{\"type\":\"drain\",\"session\":\"probe\"}"),
      std::string("{\"type\":\"close\",\"session\":\"probe\"}")};
  std::vector<std::string> replies;
  for (const std::string& line : script) {
    replies.clear();
    hub.handle_line(conn, line, replies);
    if (replies.size() != 1 ||
        replies.front().find("\"type\":\"error\"") != std::string::npos) {
      checker.record("clean session failed after fuzz traffic, on '" +
                     line + "' got: " +
                     (replies.empty() ? "<nothing>" : replies.front()));
      break;
    }
  }
  hub.close_connection(conn);
}

}  // namespace

ProtocolFuzzReport run_protocol_fuzz(const ProtocolFuzzOptions& options) {
  ProtocolFuzzReport report;
  InvariantChecker checker(report);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    if (report.findings.size() >= 16) break;
    Rng rng(options.seed + iter * std::uint64_t{0x9e3779b97f4a7c15});
    ServiceHub hub;
    const std::uint64_t conn = hub.open_connection();
    const std::size_t lines = 1 + rng.index(40);
    std::vector<std::string> replies;
    for (std::size_t i = 0; i < lines; ++i) {
      const std::string line = next_line(rng);
      replies.clear();
      try {
        hub.handle_line(conn, line, replies);
      } catch (const std::exception& e) {
        checker.record(std::string("exception escaped handle_line: ") +
                       e.what());
        break;
      }
      checker.check(line, replies);
    }
    hub.close_connection(conn);
    check_recovery(hub, checker);
    ++report.iterations_run;
  }
  return report;
}

}  // namespace catbatch
