// Structure-preserving instance mutations for the fuzzer, plus the graph
// surgery helpers the shrinker reuses.
//
// Every mutation keeps the instance well-formed (acyclic, work > 0,
// 1 <= p_i, procs >= max_procs_required): the fuzzer tests schedulers, not
// the graph validator, so invalid instances would only waste iterations.
#pragma once

#include <utility>
#include <vector>

#include "qa/generator.hpp"

namespace catbatch {

/// Applies one randomly chosen mutation to `instance` in place and appends
/// a "+<mutation>" tag to its origin. Mutations: insert a forward edge
/// (topological order keeps it acyclic), delete an edge, perturb a task's
/// work (quantized, x[0.5, 2]), perturb a task's width by +-1, widen a task
/// to the full platform, splice a second generated instance behind a sink,
/// or drop a task. No-ops (e.g. deleting an edge from an edgeless graph)
/// fall through to another mutation kind.
void mutate_instance(Rng& rng, FuzzInstance& instance,
                     const GeneratorOptions& options);

/// Copy of `graph` restricted to the tasks in `keep` (any order, no
/// duplicates); kept tasks are renumbered by ascending old id and edges
/// between kept tasks survive. The shrinker's task-deletion step.
[[nodiscard]] TaskGraph induced_subgraph(const TaskGraph& graph,
                                         const std::vector<TaskId>& keep);

/// Copy of `graph` without the edge pred -> succ (all tasks kept).
[[nodiscard]] TaskGraph without_edge(const TaskGraph& graph, TaskId pred,
                                     TaskId succ);

/// All edges of `graph` as (pred, succ) pairs, ascending by pred then succ.
[[nodiscard]] std::vector<std::pair<TaskId, TaskId>> all_edges(
    const TaskGraph& graph);

}  // namespace catbatch
