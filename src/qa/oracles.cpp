#include "qa/oracles.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <sstream>
#include <utility>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "sched/catbatch_contiguous.hpp"
#include "sched/divide_conquer.hpp"
#include "sched/shelf.hpp"
#include "instances/streaming.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

/// Absolute slack for comparisons between two independently computed
/// floating-point quantities (bound vs makespan). Everything the engine
/// itself produces is compared exactly.
constexpr Time kCompareSlack = 1e-9;

/// Generic-path source over a fixed graph: emits every task up front via
/// start() and keeps static_graph() == nullptr, forcing the engine through
/// the copying SourceTask ingest. Differentially testing this against
/// GraphSource (the zero-copy path) checks the two ingest paths agree.
class HiddenGraphSource final : public InstanceSource {
 public:
  explicit HiddenGraphSource(const TaskGraph& graph) : graph_(graph) {}

  std::vector<SourceTask> start() override {
    std::vector<SourceTask> tasks;
    tasks.reserve(graph_.size());
    for (TaskId id = 0; id < graph_.size(); ++id) {
      const Task& task = graph_.task(id);
      SourceTask emitted;
      emitted.work = task.work;
      emitted.procs = task.procs;
      emitted.name = task.name;
      const auto preds = graph_.predecessors(id);
      emitted.predecessors.assign(preds.begin(), preds.end());
      tasks.push_back(std::move(emitted));
    }
    return tasks;
  }

  std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }

  const TaskGraph& realized_graph() const override { return graph_; }

 private:
  const TaskGraph& graph_;
};

std::string describe_entry(const ScheduledTask& e) {
  std::ostringstream out;
  out << "task " << e.id << " [" << e.start << ", " << e.finish << ") x"
      << e.procs();
  return out.str();
}

/// Bit-exact comparison of two runs' timing decisions. Processor
/// *identities* are compared only when both sides carry them.
std::optional<std::string> compare_schedules(const Schedule& a,
                                             const Schedule& b,
                                             bool compare_identities) {
  if (a.size() != b.size()) {
    return "entry counts differ: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (std::size_t k = 0; k < a.size(); ++k) {
    const ScheduledTask& ea = a.entries()[k];
    const ScheduledTask& eb = b.entries()[k];
    if (ea.id != eb.id || ea.start != eb.start || ea.finish != eb.finish ||
        ea.procs() != eb.procs()) {
      return "entry " + std::to_string(k) + " differs: " +
             describe_entry(ea) + " vs " + describe_entry(eb);
    }
    if (compare_identities && ea.processors != eb.processors) {
      return "entry " + std::to_string(k) + " processor sets differ for " +
             describe_entry(ea);
    }
  }
  return std::nullopt;
}

/// Schedulers whose per-decision cost stays near-constant (or amortizes to
/// it): CatBatch sorts once per batch activation, FIFO never sorts, EASY
/// keeps a queue, and the offline builders construct once. The rest —
/// relaxed-catbatch, the non-FIFO list priorities, and rank — re-sort or
/// re-scan the whole ready backlog at every decision point, which the
/// huge-instance smoke tier cannot afford (measured: 15-60+ seconds each
/// on a 100k-task wide-layered DAG vs. under a second for these).
bool practical_at_scale(const std::string& name) {
  // The EASY estimator variants share easy-backfill's amortized-O(1)
  // queue; conservative-backfill is excluded because it rebuilds a
  // per-queued-job reservation profile at every decision point.
  return name == "catbatch" || name == "offline-catbatch" ||
         name == "list-fifo" || name == "easy-backfill" ||
         name == "easy-backfill-padded" || name == "easy-backfill-adaptive" ||
         name == "divide-conquer" || name == "contiguous-catbatch" ||
         name == "shelf-nfdh" || name == "shelf-ffdh";
}

bool is_catbatch_bound_carrier(const std::string& name) {
  // Theorems 1-2 bound T against Lb for the paper's algorithm itself; the
  // offline formulation produces the identical batch structure (Lemma 1).
  return name == "catbatch" || name == "offline-catbatch";
}

SimResult run_identity(const FuzzInstance& instance,
                       const SchedulerEntry& entry) {
  const auto scheduler = entry.make(
      entry.kind == SchedulerKind::Offline ? &instance.graph : nullptr);
  CB_CHECK(scheduler != nullptr, "registry returned null scheduler");
  return simulate(instance.graph, *scheduler, instance.procs);
}

void check_offline_builder(
    const FuzzInstance& instance, const std::string& name,
    const Schedule& built, const std::optional<SimResult>& replay,
    bool check_identities, std::vector<OracleFailure>& failures) {
  const auto error = validate_schedule(
      instance.graph, built, instance.procs,
      ValidationOptions{.check_processor_sets = check_identities});
  if (error.has_value()) {
    failures.push_back({"offline-replay", name, "built schedule invalid: " +
                                                    *error});
    return;
  }
  if (replay.has_value() &&
      replay->makespan > built.makespan() + kCompareSlack) {
    std::ostringstream detail;
    detail << "engine replay finishes later than the plan: " <<
        replay->makespan << " vs " << built.makespan();
    failures.push_back({"offline-replay", name, detail.str()});
  }
}

}  // namespace

std::vector<OracleFailure> check_scheduler(const FuzzInstance& instance,
                                           const SchedulerEntry& entry,
                                           const OracleOptions& options) {
  std::vector<OracleFailure> failures;
  const std::string& name = entry.name;

  SimResult identity;
  try {
    identity = run_identity(instance, entry);
  } catch (const ContractViolation& e) {
    failures.push_back({"engine-contract", name, e.what()});
    return failures;
  } catch (const std::exception& e) {
    failures.push_back({"exception", name, e.what()});
    return failures;
  }

  // Feasibility, checked exactly: the engine only ever hands out free
  // processors at event times it computed itself.
  if (const auto error = validate_schedule(instance.graph, identity.schedule,
                                           instance.procs)) {
    failures.push_back({"feasibility", name, *error});
    return failures;  // downstream oracles would re-report the same defect
  }

  // No schedule beats Lb(I) = max(A/P, C) (Equation 1). The bound and the
  // makespan come from different arithmetic, so allow the comparison slack.
  const InstanceBounds bounds = compute_bounds(instance.graph, instance.procs);
  const Time lb = bounds.lower_bound();
  if (identity.makespan < lb - kCompareSlack) {
    std::ostringstream detail;
    detail << "makespan " << identity.makespan << " < Lb " << lb;
    failures.push_back({"lower-bound", name, detail.str()});
  }

  if (options.check_theorem_bounds && is_catbatch_bound_carrier(name) &&
      lb > 0.0) {
    const double t1 = theorem1_bound(bounds.task_count);
    const double t2 = theorem2_bound(bounds.max_work, bounds.min_work);
    const double bound = std::min(t1, t2);
    if (identity.makespan > bound * lb + kCompareSlack) {
      std::ostringstream detail;
      detail << "ratio " << identity.makespan / lb
             << " exceeds min(theorem1 " << t1 << ", theorem2 " << t2 << ")";
      failures.push_back({"theorem-bound", name, detail.str()});
    }
  }

  if (options.check_counting) {
    try {
      const auto scheduler = entry.make(
          entry.kind == SchedulerKind::Offline ? &instance.graph : nullptr);
      SimOptions sim;
      sim.mode = ScheduleMode::Counting;
      const SimResult counting =
          simulate(instance.graph, *scheduler, instance.procs, sim);
      if (const auto diff = compare_schedules(identity.schedule,
                                              counting.schedule,
                                              /*compare_identities=*/false)) {
        failures.push_back({"counting", name, *diff});
      }
      ValidationOptions counted;
      counted.check_processor_sets = false;
      if (const auto error = validate_schedule(
              instance.graph, counting.schedule, instance.procs, counted)) {
        failures.push_back({"counting", name, "counted run invalid: " +
                                                  *error});
      }
    } catch (const std::exception& e) {
      failures.push_back({"counting", name, e.what()});
    }
  }

  if (options.check_source_parity) {
    try {
      const auto scheduler = entry.make(
          entry.kind == SchedulerKind::Offline ? &instance.graph : nullptr);
      HiddenGraphSource source(instance.graph);
      const SimResult generic =
          simulate(source, *scheduler, instance.procs);
      if (const auto diff = compare_schedules(identity.schedule,
                                              generic.schedule,
                                              /*compare_identities=*/true)) {
        failures.push_back({"source-parity", name, *diff});
      }
    } catch (const std::exception& e) {
      failures.push_back({"source-parity", name, e.what()});
    }
  }

  if (options.parallel.threads > 1) {
    // The determinism contract, fuzzed: the same instance through the
    // parallel SoA build + parallel engine ingest must reproduce the
    // serial identity schedule bit-for-bit (processor identities
    // included). Catches any partition- or thread-count-dependence that
    // slips into the parallel passes.
    try {
      const auto scheduler = entry.make(
          entry.kind == SchedulerKind::Offline ? &instance.graph : nullptr);
      const SoaGraph soa =
          build_soa_graph(instance.graph, /*with_names=*/false,
                          options.parallel);
      SoaSource source(soa);
      SimOptions sim;
      sim.parallel = options.parallel;
      const SimResult par =
          simulate(source, *scheduler, instance.procs, sim);
      if (const auto diff = compare_schedules(identity.schedule,
                                              par.schedule,
                                              /*compare_identities=*/true)) {
        failures.push_back({"parallel-ingest", name, *diff});
      }
    } catch (const std::exception& e) {
      failures.push_back({"parallel-ingest", name, e.what()});
    }
  }

  if (options.check_determinism) {
    try {
      const SimResult again = run_identity(instance, entry);
      if (const auto diff = compare_schedules(identity.schedule,
                                              again.schedule,
                                              /*compare_identities=*/true)) {
        failures.push_back({"determinism", name, *diff});
      }
    } catch (const std::exception& e) {
      failures.push_back({"determinism", name, e.what()});
    }
  }

  return failures;
}

std::vector<OracleFailure> check_all_schedulers(const FuzzInstance& instance,
                                                const OracleOptions& options) {
  std::vector<OracleFailure> failures;
  const bool has_edges = instance.graph.edge_count() > 0;
  const bool gate_scale = options.scale_gate_tasks != 0 &&
                          instance.graph.size() >= options.scale_gate_tasks;
  for (const SchedulerEntry& entry : scheduler_registry()) {
    if (entry.independent_only && has_edges) continue;
    if (gate_scale && !practical_at_scale(entry.name)) continue;
    auto found = check_scheduler(instance, entry, options);
    failures.insert(failures.end(), found.begin(), found.end());
  }

  if (options.check_offline_builders && !instance.graph.empty()) {
    // The offline constructions, built directly (not through the replay
    // adapter) and validated; the replay through the registry above must
    // not finish later than the plan it replays.
    try {
      const auto built =
          divide_conquer_schedule(instance.graph, instance.procs);
      std::optional<SimResult> replay;
      if (const SchedulerEntry* e = find_scheduler("divide-conquer")) {
        replay = run_identity(instance, *e);
      }
      check_offline_builder(instance, "divide-conquer", built.schedule,
                            replay, /*check_identities=*/true, failures);
    } catch (const std::exception& e) {
      failures.push_back({"offline-replay", "divide-conquer", e.what()});
    }
    try {
      const auto built =
          catbatch_contiguous_schedule(instance.graph, instance.procs);
      std::optional<SimResult> replay;
      if (const SchedulerEntry* e = find_scheduler("contiguous-catbatch")) {
        replay = run_identity(instance, *e);
      }
      check_offline_builder(instance, "contiguous-catbatch", built.schedule,
                            replay, /*check_identities=*/true, failures);
    } catch (const std::exception& e) {
      failures.push_back({"offline-replay", "contiguous-catbatch", e.what()});
    }
    if (!has_edges) {
      try {
        std::vector<Task> tasks;
        tasks.reserve(instance.graph.size());
        for (TaskId id = 0; id < instance.graph.size(); ++id) {
          tasks.push_back(instance.graph.task(id));
        }
        const Schedule nfdh = packing_to_schedule(
            pack_nfdh(tasks, instance.procs), tasks);
        check_offline_builder(instance, "shelf-nfdh", nfdh, std::nullopt,
                              /*check_identities=*/true, failures);
        const Schedule ffdh = packing_to_schedule(
            pack_ffdh(tasks, instance.procs), tasks);
        check_offline_builder(instance, "shelf-ffdh", ffdh, std::nullopt,
                              /*check_identities=*/true, failures);
      } catch (const std::exception& e) {
        failures.push_back({"offline-replay", "shelf", e.what()});
      }
    }
  }
  return failures;
}

}  // namespace catbatch
