#include "qa/generator.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "instances/adversary.hpp"
#include "instances/io.hpp"
#include "instances/random_dags.hpp"
#include "instances/trace.hpp"
#include "instances/workloads.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"

namespace catbatch {
namespace {

RandomTaskParams draw_params(Rng& rng, int max_procs) {
  RandomTaskParams params;
  switch (rng.index(3)) {
    case 0: params.work.law = WorkDistribution::Law::Uniform; break;
    case 1: params.work.law = WorkDistribution::Law::LogUniform; break;
    default: params.work.law = WorkDistribution::Law::BoundedPareto; break;
  }
  switch (rng.index(3)) {
    case 0: params.procs.law = ProcDistribution::Law::Uniform; break;
    case 1: params.procs.law = ProcDistribution::Law::PowerOfTwo; break;
    default: params.procs.law = ProcDistribution::Law::MostlyNarrow; break;
  }
  params.procs.max_procs =
      static_cast<int>(rng.uniform_int(1, std::max(1, max_procs)));
  return params;
}

FuzzInstance random_family(Rng& rng, const GeneratorOptions& options) {
  const std::size_t n =
      static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(std::max<std::size_t>(
                 2, options.max_tasks))));
  const RandomTaskParams params = draw_params(rng, options.max_procs);
  FuzzInstance out;
  switch (rng.index(7)) {
    case 0: {
      const std::size_t layers =
          static_cast<std::size_t>(rng.uniform_int(
              1, static_cast<std::int64_t>(std::max<std::size_t>(1, n / 2))));
      out.graph = random_layered_dag(rng, n, layers, params);
      out.origin = "layered";
      break;
    }
    case 1:
      out.graph = random_order_dag(rng, n, rng.uniform_real(0.0, 0.5), params);
      out.origin = "order";
      break;
    case 2:
      out.graph = random_series_parallel(rng, n, rng.uniform_real(0.0, 1.0),
                                         params);
      out.origin = "series-parallel";
      break;
    case 3: {
      const std::size_t width =
          static_cast<std::size_t>(rng.uniform_int(1, 6));
      const std::size_t stages = std::max<std::size_t>(
          1, std::min<std::size_t>(4, n / std::max<std::size_t>(1, width)));
      out.graph = random_fork_join(rng, stages, width, params);
      out.origin = "fork-join";
      break;
    }
    case 4: {
      const std::size_t chains =
          static_cast<std::size_t>(rng.uniform_int(1, 6));
      const std::size_t length = std::max<std::size_t>(
          1, std::min<std::size_t>(8, n / std::max<std::size_t>(1, chains)));
      out.graph = random_chains(rng, chains, length, params);
      out.origin = "chains";
      break;
    }
    case 5:
      out.graph = random_out_tree(
          rng, n, static_cast<std::size_t>(rng.uniform_int(1, 4)), params);
      out.origin = "out-tree";
      break;
    default:
      out.graph = random_independent(rng, n, params);
      out.origin = "independent";
      break;
  }
  return out;
}

FuzzInstance workload_family(Rng& rng, const GeneratorOptions& options) {
  FuzzInstance out;
  KernelCosts costs;
  costs.jitter = rng.uniform_real(0.0, 0.3);
  costs.seed = rng();
  const int gemm_cap = std::max(1, std::min(4, options.max_procs));
  costs.trsm_procs = std::min(costs.trsm_procs, gemm_cap);
  costs.gemm_procs = gemm_cap;
  switch (rng.index(6)) {
    case 0:
      // 4 tiles -> 20 tasks, 5 tiles -> 35; stay near the budget.
      out.graph = cholesky_dag(static_cast<int>(rng.uniform_int(2, 4)), costs);
      out.origin = "cholesky";
      break;
    case 1:
      out.graph = lu_dag(static_cast<int>(rng.uniform_int(2, 3)), costs);
      out.origin = "lu";
      break;
    case 2:
      out.graph = stencil_dag(static_cast<int>(rng.uniform_int(2, 6)),
                              static_cast<int>(rng.uniform_int(2, 6)),
                              quantize_time(rng.uniform_real(0.25, 2.0)),
                              static_cast<int>(rng.uniform_int(
                                  1, std::max(1, options.max_procs / 2))));
      out.origin = "stencil";
      break;
    case 3:
      out.graph = fft_dag(static_cast<int>(rng.uniform_int(1, 3)),
                          quantize_time(rng.uniform_real(0.25, 2.0)), 1);
      out.origin = "fft";
      break;
    case 4:
      out.graph = map_reduce_dag(static_cast<int>(rng.uniform_int(1, 12)),
                                 static_cast<int>(rng.uniform_int(1, 4)));
      out.origin = "map-reduce";
      break;
    default:
      out.graph = montage_dag(static_cast<int>(rng.uniform_int(2, 4)),
                              std::min(4, std::max(1, options.max_procs)));
      out.origin = "montage";
      break;
  }
  return out;
}

FuzzInstance adversary_family(Rng& rng, const GeneratorOptions& options) {
  // Parameter grid filtered to the task budget; X_P(K) has
  // 2(K^P - 1)/(K - 1) tasks, Z has P times that.
  const Time epsilon = quantize_time(rng.uniform_real(0.001, 0.1));
  FuzzInstance out;
  switch (rng.index(3)) {
    case 0: {
      int procs = static_cast<int>(rng.uniform_int(2, 4));
      int base = static_cast<int>(rng.uniform_int(2, 3));
      while (x_task_count(procs, base) >
             static_cast<std::int64_t>(options.max_tasks)) {
        if (base > 2) {
          --base;
        } else {
          --procs;
        }
      }
      XInstance x = make_x_instance(procs, base, epsilon);
      out.graph = std::move(x.graph);
      out.origin = "adversary-x";
      break;
    }
    case 1: {
      const int procs = static_cast<int>(rng.uniform_int(2, 4));
      const int type = static_cast<int>(rng.uniform_int(0, procs - 1));
      YInstance y = make_y_instance(procs, type, 2, epsilon);
      out.graph = std::move(y.graph);
      out.origin = "adversary-y";
      break;
    }
    default: {
      // The realized graph of a Z run depends on the driving algorithm; a
      // list-FIFO run gives a representative adversarial DAG to replay
      // against every scheduler.
      const int procs = 2;
      ZAdversarySource source(procs, 2, epsilon);
      ListScheduler driver;
      (void)simulate(source, driver, procs);
      out.graph = source.realized_graph();
      out.origin = "adversary-z";
      break;
    }
  }
  return out;
}

FuzzInstance degenerate_family(Rng& rng, const GeneratorOptions& options) {
  const int width = std::max(1, options.max_procs);
  FuzzInstance out;
  switch (rng.index(4)) {
    case 0:
      out.graph.add_task(quantize_time(rng.uniform_real(0.25, 4.0)),
                         static_cast<int>(rng.uniform_int(1, width)),
                         "solo");
      out.origin = "degenerate-single";
      break;
    case 1: {
      // Full-width chain: every task needs the whole platform.
      const std::int64_t n = rng.uniform_int(2, 6);
      TaskId prev = kInvalidTask;
      for (std::int64_t i = 0; i < n; ++i) {
        const TaskId id = out.graph.add_task(
            quantize_time(rng.uniform_real(0.25, 2.0)), width);
        if (prev != kInvalidTask) out.graph.add_edge(prev, id);
        prev = id;
      }
      out.origin = "degenerate-full-width-chain";
      break;
    }
    case 2: {
      // Minimum representable work everywhere: stresses the category
      // arithmetic near the quantization floor.
      const std::int64_t n = rng.uniform_int(2, 10);
      TaskId prev = kInvalidTask;
      for (std::int64_t i = 0; i < n; ++i) {
        // quantize_time clamps to its floor of 2^-20, the minimum work.
        const TaskId id = out.graph.add_task(quantize_time(1e-12), 1);
        if (prev != kInvalidTask) out.graph.add_edge(prev, id);
        prev = id;
      }
      out.origin = "degenerate-min-work-chain";
      break;
    }
    default: {
      // Independent tasks all as wide as the platform: forces strict
      // serialization and exercises the capacity boundary on every start.
      const std::int64_t n = rng.uniform_int(2, 6);
      for (std::int64_t i = 0; i < n; ++i) {
        out.graph.add_task(quantize_time(rng.uniform_real(0.25, 2.0)), width);
      }
      out.origin = "degenerate-all-wide";
      break;
    }
  }
  return out;
}

FuzzInstance swf_trace_family(Rng& rng, const GeneratorOptions& options) {
  // SWF-shaped rigid jobs: archive-like width/run distributions drawn by
  // the trace generator, then pushed through the write_swf -> parse_swf
  // round trip so the battery also exercises the parser's field fallbacks
  // and submit-order sort on every draw. The jobs land as an independent
  // task set (release times are a SessionEngine concern; the oracle
  // battery replays graphs), with procs clamped to the platform the same
  // way replay_trace clamps them.
  const std::size_t jobs = static_cast<std::size_t>(rng.uniform_int(
      2, static_cast<std::int64_t>(std::max<std::size_t>(2, options.max_tasks))));
  const int procs = std::max(1, options.max_procs);
  const double load = rng.uniform_real(0.3, 1.2);
  const TraceWorkload drawn = generate_swf_workload(rng, jobs, procs, load);
  std::ostringstream text;
  write_swf(drawn, text);
  std::istringstream in(text.str());
  const TraceWorkload trace = parse_swf(in);
  FuzzInstance out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // Archive runs are whole seconds, far above the quantization floor;
    // quantize anyway to keep the battery's exact-arithmetic invariant.
    (void)out.graph.add_task(quantize_time(trace.run[i]),
                             std::min(trace.procs[i], procs));
  }
  out.origin = "swf-trace";
  return out;
}

FuzzInstance huge_family(Rng& rng, const GeneratorOptions& options) {
  // Streaming-scale shapes: every family here is O(n) in tasks AND edges
  // with bounded in-degree, so a ~100k-task draw generates, ingests and
  // simulates in seconds — the whole point of the smoke tier is exercising
  // the SoA ingest, calendar queue and batch slabs at a size where an
  // accidental O(n^2) (or a per-task allocation) is unmissable.
  const std::size_t cap = std::max<std::size_t>(2, options.max_tasks);
  const std::size_t n =
      static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(cap / 2), static_cast<std::int64_t>(cap)));
  const RandomTaskParams params = draw_params(rng, options.max_procs);
  FuzzInstance out;
  switch (rng.index(6)) {
    case 0:
      // Deep: ~8 tasks per layer, tens of thousands of decision points.
      out.graph = random_layered_dag(
          rng, n, std::max<std::size_t>(2, n / 8), params);
      out.origin = "huge-layered-deep";
      break;
    case 1:
      // Wide: ~1k tasks per layer, stresses ready-backlog and batch sizes.
      out.graph = random_layered_dag(
          rng, n, std::max<std::size_t>(2, n / 1024), params);
      out.origin = "huge-layered-wide";
      break;
    case 2: {
      // Square stencil sized to ~n tasks: regular 2-predecessor mesh.
      std::size_t side = 2;
      while ((side + 1) * (side + 1) <= n) ++side;
      out.graph = stencil_dag(static_cast<int>(side), static_cast<int>(side),
                              quantize_time(rng.uniform_real(0.25, 2.0)),
                              static_cast<int>(rng.uniform_int(
                                  1, std::max(1, options.max_procs / 2))));
      out.origin = "huge-stencil";
      break;
    }
    case 3: {
      // Bundle of long independent chains: maximal event-queue churn with a
      // near-empty ready backlog.
      std::size_t chains = 2;
      while ((chains + 1) * (chains + 1) <= n) ++chains;
      out.graph = random_chains(rng, chains,
                                std::max<std::size_t>(1, n / chains), params);
      out.origin = "huge-chains";
      break;
    }
    case 4:
      out.graph = random_out_tree(
          rng, n, static_cast<std::size_t>(rng.uniform_int(2, 4)), params);
      out.origin = "huge-out-tree";
      break;
    default:
      // Edge-free: the one shape where the shelf packers join the battery.
      out.graph = random_independent(rng, n, params);
      out.origin = "huge-independent";
      break;
  }
  return out;
}

}  // namespace

FuzzInstance generate_instance(Rng& rng, const GeneratorOptions& options) {
  FuzzInstance out;
  if (options.huge) {
    out = huge_family(rng, options);
    const int floor = std::max(1, out.graph.max_procs_required());
    out.procs = static_cast<int>(
        rng.uniform_int(floor, std::max(floor, options.max_procs)));
    return out;
  }
  // Random families dominate; the structured families keep the paper's
  // constructions, realistic DAG shapes and archive-shaped rigid job
  // mixes in every run's diet.
  const std::size_t roll = rng.index(11);
  if (roll < 5) {
    out = random_family(rng, options);
  } else if (roll < 7) {
    out = workload_family(rng, options);
  } else if (roll < 9) {
    out = adversary_family(rng, options);
  } else if (roll < 10) {
    out = degenerate_family(rng, options);
  } else {
    out = swf_trace_family(rng, options);
  }
  const int floor = std::max(1, out.graph.max_procs_required());
  const int ceiling = std::max(floor, options.max_procs);
  out.procs = static_cast<int>(rng.uniform_int(floor, ceiling));
  return out;
}

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 finalizer over the pair; any fixed mixing works, this one
  // matches the Rng's own seeding discipline.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t instance_hash(const FuzzInstance& instance) {
  const std::string text = to_json(instance.graph, instance.procs);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace catbatch
