// Scenario fuzzing: random fault/dynamic-platform scripts (crash, sleep,
// seeded noise — scenario/scenario.hpp's random_scenario family) applied
// to random generator instances across the scheduler registry, checking
// the scenario contract's own oracle battery (docs/FUZZING.md):
//
//   * feasibility-under-capacity — the realized schedule (final plus
//     killed attempts) never exceeds the physical platform, respects the
//     capacity in force at every dispatch, runs each task once for its
//     realized work, and keeps precedence against final completions
//     (check_scenario_feasible);
//   * determinism-under-noise-seed — the same (instance, scenario, seed)
//     reproduces the decision stream and makespan bit-for-bit;
//   * clock-parity — the external-clock drive replays the simulated-clock
//     decision stream bit-for-bit;
//   * no-op-parity — the empty scenario is bit-identical to a plain
//     simulate() run.
//
// Deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace catbatch {

struct ScenarioFuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 200;  // one (instance, scenario, algorithm) each
};

struct ScenarioFuzzReport {
  std::size_t iterations_run = 0;
  std::size_t kills_applied = 0;
  std::size_t capacity_events = 0;
  /// One human-readable description per violated invariant, capped at 16
  /// (the run that triggered it is reproducible from the seed).
  std::vector<std::string> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

[[nodiscard]] ScenarioFuzzReport run_scenario_fuzz(
    const ScenarioFuzzOptions& options);

}  // namespace catbatch
