#include "qa/scenario_fuzz.hpp"

#include <memory>
#include <string>
#include <vector>

#include "qa/generator.hpp"
#include "scenario/runner.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {

namespace {

constexpr std::size_t kMaxFindings = 16;

void record(ScenarioFuzzReport& report, std::uint64_t iteration,
            const std::string& oracle, const std::string& scheduler,
            const std::string& detail) {
  if (report.findings.size() >= kMaxFindings) return;
  report.findings.push_back("[" + oracle + "] iter " +
                            std::to_string(iteration) + " " + scheduler +
                            ": " + detail);
}

bool same_decisions(const std::vector<Decision>& a,
                    const std::vector<Decision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].id != b[k].id || a[k].at != b[k].at ||
        a[k].procs != b[k].procs) {
      return false;
    }
  }
  return true;
}

}  // namespace

ScenarioFuzzReport run_scenario_fuzz(const ScenarioFuzzOptions& options) {
  ScenarioFuzzReport report;
  GeneratorOptions generator;
  generator.max_tasks = 24;
  generator.max_procs = 8;

  const std::vector<SchedulerEntry>& registry = scheduler_registry();
  for (std::uint64_t k = 0; k < options.iterations; ++k) {
    Rng rng(mix_seed(options.seed, k));
    const FuzzInstance instance = generate_instance(rng, generator);
    const SchedulerEntry& entry = registry[rng.index(registry.size())];
    if (entry.independent_only && instance.graph.edge_count() > 0) continue;
    ++report.iterations_run;

    // Horizon from the instance itself (area/P plus the longest task) —
    // coarse, but it only scales the script, and random_scenario spreads
    // events across it anyway.
    const Time horizon =
        instance.graph.total_area() / static_cast<Time>(instance.procs) +
        instance.graph.max_work();
    const Scenario scenario = random_scenario(rng, instance.procs, horizon);

    ScenarioRunOptions run_options;
    run_options.mode = ScheduleMode::Identity;
    run_options.compute_baseline = false;
    ScenarioOutcome simulated;
    try {
      simulated = run_scenario(instance.graph, entry.name, instance.procs,
                               scenario, run_options);
      check_scenario_feasible(simulated.result, instance.graph, scenario,
                              instance.procs);
    } catch (const ContractViolation& e) {
      record(report, k, "feasibility-under-capacity", entry.name, e.what());
      continue;
    }
    report.kills_applied += simulated.result.stats.kills;
    report.capacity_events += simulated.result.stats.capacity_changes;

    try {
      // Determinism under the noise seed: a second identical run must
      // reproduce the decision stream and makespan bit-for-bit.
      const ScenarioOutcome again = run_scenario(
          instance.graph, entry.name, instance.procs, scenario, run_options);
      if (!same_decisions(simulated.decisions, again.decisions) ||
          simulated.result.makespan != again.result.makespan) {
        record(report, k, "determinism-under-noise-seed", entry.name,
               "a second run diverged");
      }

      // Clock parity: the external-clock drive replays the simulated
      // decision stream bit-for-bit.
      ScenarioRunOptions external = run_options;
      external.clock = SessionClock::External;
      const ScenarioOutcome ext = run_scenario(
          instance.graph, entry.name, instance.procs, scenario, external);
      if (!same_decisions(simulated.decisions, ext.decisions) ||
          simulated.result.makespan != ext.result.makespan) {
        record(report, k, "clock-parity", entry.name,
               "external-clock drive diverged from the simulated clock");
      }

      // No-op parity: the empty scenario is bit-identical to a plain
      // simulate() run of the same instance.
      const ScenarioOutcome noop =
          run_scenario(instance.graph, entry.name, instance.procs,
                       Scenario{}, run_options);
      const std::unique_ptr<OnlineScheduler> plain =
          make_scheduler(entry.name, instance.graph);
      SimOptions sim_options;
      sim_options.mode = ScheduleMode::Identity;
      const SimResult direct =
          simulate(instance.graph, *plain, instance.procs, sim_options);
      bool match = noop.result.makespan == direct.makespan &&
                   noop.result.schedule.size() == direct.schedule.size();
      if (match) {
        const auto lhs = noop.result.schedule.entries();
        const auto rhs = direct.schedule.entries();
        for (std::size_t i = 0; i < lhs.size(); ++i) {
          if (lhs[i].id != rhs[i].id || lhs[i].start != rhs[i].start ||
              lhs[i].finish != rhs[i].finish ||
              lhs[i].processors != rhs[i].processors) {
            match = false;
            break;
          }
        }
      }
      if (!match) {
        record(report, k, "no-op-parity", entry.name,
               "the empty scenario diverged from plain simulate()");
      }
    } catch (const ContractViolation& e) {
      record(report, k, "scenario-contract", entry.name, e.what());
    }
  }
  return report;
}

}  // namespace catbatch
