#include "qa/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "instances/io.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace catbatch {
namespace {

/// Returns the [start, end) span of the balanced JSON object beginning at
/// `start` (which must index a '{'), honoring string literals and escapes.
std::size_t balanced_object_end(std::string_view text, std::size_t start) {
  CB_CHECK(start < text.size() && text[start] == '{',
           "corpus: expected '{' at instance value");
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++depth;
    else if (c == '}' && --depth == 0) return i + 1;
  }
  CB_CHECK(false, "corpus: unterminated instance object");
  return 0;  // unreachable
}

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    CB_CHECK(try_consume(c),
             std::string("corpus: expected '") + c + "' at offset " +
                 std::to_string(pos_));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;  // \" \\ \/ and friends
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  std::uint64_t parse_uint() {
    skip_ws();
    CB_CHECK(pos_ < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_])),
             "corpus: expected a number at offset " + std::to_string(pos_));
    std::uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    }
    return value;
  }

  /// Captures the balanced object starting at the cursor.
  std::string_view capture_object() {
    skip_ws();
    const std::size_t start = pos_;
    pos_ = balanced_object_end(text_, start);
    return text_.substr(start, pos_ - start);
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string corpus_to_json(const CorpusCase& c) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": " << c.schema << ",\n";
  os << "  \"oracle\": " << json_quote(c.oracle) << ",\n";
  os << "  \"scheduler\": " << json_quote(c.scheduler) << ",\n";
  os << "  \"seed\": " << c.seed << ",\n";
  os << "  \"note\": " << json_quote(c.note) << ",\n";
  // The instance text is embedded verbatim (to_json is deterministic, so a
  // parse/re-emit cycle reproduces the file byte-for-byte). The trailing
  // newline of to_json is dropped to keep the outer object tidy.
  std::string instance = to_json(c.instance.graph, c.instance.procs);
  while (!instance.empty() && instance.back() == '\n') instance.pop_back();
  os << "  \"instance\": " << instance << "\n";
  os << "}\n";
  return os.str();
}

CorpusCase corpus_from_json(std::string_view text) {
  CorpusCase out;
  Scanner scan(text);
  scan.expect('{');
  bool first = true;
  bool saw_instance = false;
  while (!scan.try_consume('}')) {
    if (!first) scan.expect(',');
    first = false;
    const std::string key = scan.parse_string();
    scan.expect(':');
    if (key == "schema") {
      out.schema = static_cast<int>(scan.parse_uint());
      CB_CHECK(out.schema == 1, "corpus: unsupported schema version");
    } else if (key == "oracle") {
      out.oracle = scan.parse_string();
    } else if (key == "scheduler") {
      out.scheduler = scan.parse_string();
    } else if (key == "seed") {
      out.seed = scan.parse_uint();
    } else if (key == "note") {
      out.note = scan.parse_string();
    } else if (key == "instance") {
      const std::string_view span = scan.capture_object();
      const ParsedInstance parsed = instance_from_json(span);
      out.instance.graph = parsed.graph;
      out.instance.procs = parsed.procs > 0 ? parsed.procs : 1;
      saw_instance = true;
    } else {
      CB_CHECK(false, "corpus: unknown field '" + key + "'");
    }
  }
  CB_CHECK(saw_instance, "corpus: missing 'instance'");
  out.instance.origin = out.note;
  return out;
}

std::string corpus_file_name(const CorpusCase& c) {
  const std::uint64_t hash = instance_hash(c.instance);
  std::ostringstream os;
  os << (c.oracle.empty() ? "finding" : c.oracle) << "-"
     << (c.scheduler.empty() ? "all" : c.scheduler) << "-" << std::hex
     << std::setw(16) << std::setfill('0') << hash << ".json";
  return os.str();
}

std::vector<std::pair<std::string, CorpusCase>> load_corpus(
    const std::string& directory) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, CorpusCase>> cases;
  CB_CHECK(fs::is_directory(directory),
           "corpus: not a directory: " + directory);
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  cases.reserve(files.size());
  for (const fs::path& path : files) {
    std::ifstream in(path);
    CB_CHECK(in.good(), "corpus: cannot read " + path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    cases.emplace_back(path.filename().string(),
                       corpus_from_json(buffer.str()));
  }
  return cases;
}

std::vector<OracleFailure> replay_case(const CorpusCase& c) {
  return check_all_schedulers(c.instance);
}

std::string write_corpus_case(const std::string& directory,
                              const CorpusCase& c) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const fs::path path = fs::path(directory) / corpus_file_name(c);
  std::ofstream out(path, std::ios::trunc);
  CB_CHECK(out.good(), "corpus: cannot write " + path.string());
  out << corpus_to_json(c);
  return path.string();
}

}  // namespace catbatch
