// Delta-debugging shrinker: reduces a failing instance to a locally
// minimal repro before it is written to the corpus.
//
// Classic ddmin structure specialized to DAG instances: chunked task
// deletion (halving chunk sizes), then single-task deletion, then edge
// deletion, iterated to a fixpoint. The predicate re-runs the oracle that
// originally failed, so the shrunk instance provably still fails. The
// result is 1-minimal with respect to the moves tried: removing any single
// remaining task or edge makes the failure disappear (or the check budget
// ran out first).
#pragma once

#include <cstddef>
#include <functional>

#include "qa/generator.hpp"

namespace catbatch {

/// Returns true iff `instance` still exhibits the failure being minimized.
using FailurePredicate = std::function<bool(const FuzzInstance&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations; shrinking stops (keeping the
  /// smallest failing instance so far) when exhausted.
  std::size_t max_checks = 2000;
};

struct ShrinkResult {
  FuzzInstance instance;
  std::size_t checks = 0;     // predicate evaluations spent
  bool minimal = false;       // fixpoint reached within the budget
};

/// Shrinks `instance` under `still_fails`. Requires
/// still_fails(instance) == true on entry; the returned instance also
/// satisfies it and is never empty.
[[nodiscard]] ShrinkResult shrink_instance(const FuzzInstance& instance,
                                           const FailurePredicate& still_fails,
                                           const ShrinkOptions& options = {});

}  // namespace catbatch
