// The fuzzer's invariant battery: everything the paper and the engine
// promise about a scheduler run, re-checked from first principles on every
// instance (docs/FUZZING.md lists the battery with rationale).
//
//   feasibility     — validate_schedule() on the identity-mode run, exact;
//   lower-bound     — makespan >= Lb(I) = max(A/P, C) (Equation 1);
//   theorem-bound   — CatBatch variants stay within Theorem 1 AND 2;
//   counting        — counting-mode times/widths bit-identical to identity,
//                     and the counted schedule passes the exact sweep;
//   source-parity   — the generic InstanceSource ingest path produces the
//                     same schedule as the zero-copy static-graph path;
//   determinism     — a second identity run is bit-identical;
//   parallel-ingest — (opt-in via OracleOptions::parallel) a run through
//                     the parallel SoA build + parallel engine ingest is
//                     bit-identical to the serial identity run;
//   offline-replay  — a directly built offline schedule validates, and its
//                     engine replay finishes no later than the plan;
//   engine-contract — any ContractViolation out of the engine or scheduler.
#pragma once

#include <string>
#include <vector>

#include "qa/generator.hpp"
#include "sched/registry.hpp"
#include "support/parallel.hpp"

namespace catbatch {

struct OracleOptions {
  bool check_theorem_bounds = true;
  bool check_counting = true;
  bool check_source_parity = true;
  bool check_determinism = true;
  bool check_offline_builders = true;
  /// When non-zero, instances with at least this many tasks skip the
  /// schedulers that are impractical at streaming scale (sort-per-decision
  /// policies: O(decisions x backlog log backlog), i.e. minutes per run on
  /// a 100k-task wide-layered DAG — and the battery runs each scheduler
  /// four times). The survivors still exercise every oracle kind.
  /// 0 = run the full registry regardless of size.
  std::size_t scale_gate_tasks = 0;
  /// With threads > 1, every instance additionally runs through the
  /// parallel SoA build and parallel engine ingest (SoaSource +
  /// SessionOptions::parallel) and the schedule is compared bit-for-bit
  /// against the serial identity run — the fuzzing face of the
  /// determinism contract. Default (serial) skips the extra run.
  ParallelOptions parallel = {};
};

/// One broken invariant. `scheduler` is the registry name; empty for
/// instance-level failures (e.g. a builder that threw).
struct OracleFailure {
  std::string oracle;
  std::string scheduler;
  std::string detail;
};

/// Runs the full battery for one registry entry on one instance.
[[nodiscard]] std::vector<OracleFailure> check_scheduler(
    const FuzzInstance& instance, const SchedulerEntry& entry,
    const OracleOptions& options = {});

/// Runs every registry scheduler (skipping independent-only packers on
/// instances with precedence edges) plus the direct offline builders.
[[nodiscard]] std::vector<OracleFailure> check_all_schedulers(
    const FuzzInstance& instance, const OracleOptions& options = {});

}  // namespace catbatch
