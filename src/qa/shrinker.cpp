#include "qa/shrinker.hpp"

#include <algorithm>

#include "qa/mutator.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

struct Budget {
  std::size_t remaining;
  std::size_t spent = 0;

  bool charge() {
    if (remaining == 0) return false;
    --remaining;
    ++spent;
    return true;
  }
};

/// Tries dropping `chunk`-sized runs of tasks; returns true if any drop
/// kept the failure (instance updated in place).
bool try_drop_chunks(FuzzInstance& instance, std::size_t chunk,
                     const FailurePredicate& still_fails, Budget& budget) {
  bool shrunk = false;
  std::size_t begin = 0;
  while (begin < instance.graph.size() && instance.graph.size() > 1) {
    const std::size_t end =
        std::min(instance.graph.size(), begin + chunk);
    if (end - begin >= instance.graph.size()) break;  // never drop everything
    std::vector<TaskId> keep;
    keep.reserve(instance.graph.size() - (end - begin));
    for (TaskId id = 0; id < instance.graph.size(); ++id) {
      if (id < begin || id >= end) keep.push_back(id);
    }
    if (!budget.charge()) return shrunk;
    FuzzInstance candidate;
    candidate.graph = induced_subgraph(instance.graph, keep);
    candidate.procs = instance.procs;
    candidate.origin = instance.origin;
    if (still_fails(candidate)) {
      instance.graph = std::move(candidate.graph);
      shrunk = true;
      // Do not advance: the ids shifted down, re-test the same position.
    } else {
      begin += chunk;
    }
  }
  return shrunk;
}

bool try_drop_edges(FuzzInstance& instance,
                    const FailurePredicate& still_fails, Budget& budget) {
  bool shrunk = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& [pred, succ] : all_edges(instance.graph)) {
      if (!budget.charge()) return shrunk;
      FuzzInstance candidate;
      candidate.graph = without_edge(instance.graph, pred, succ);
      candidate.procs = instance.procs;
      candidate.origin = instance.origin;
      if (still_fails(candidate)) {
        instance.graph = std::move(candidate.graph);
        shrunk = progress = true;
        break;  // edge list invalidated; rescan
      }
    }
  }
  return shrunk;
}

}  // namespace

ShrinkResult shrink_instance(const FuzzInstance& instance,
                             const FailurePredicate& still_fails,
                             const ShrinkOptions& options) {
  CB_CHECK(!instance.graph.empty(), "cannot shrink an empty instance");
  ShrinkResult result;
  result.instance = instance;
  Budget budget{options.max_checks};

  bool progress = true;
  while (progress) {
    progress = false;
    // Large-to-small chunked task deletion, ddmin style.
    for (std::size_t chunk = std::max<std::size_t>(
             1, result.instance.graph.size() / 2);
         ; chunk /= 2) {
      if (try_drop_chunks(result.instance, chunk, still_fails, budget)) {
        progress = true;
      }
      if (chunk <= 1) break;
    }
    if (try_drop_edges(result.instance, still_fails, budget)) {
      progress = true;
    }
    if (budget.remaining == 0) break;
  }

  result.checks = budget.spent;
  result.minimal = budget.remaining > 0;
  if (!result.instance.origin.empty()) {
    result.instance.origin += "+shrunk";
  }
  return result;
}

}  // namespace catbatch
