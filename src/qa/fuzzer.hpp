// The differential fuzzing loop: generate -> (optionally mutate) ->
// run every registry scheduler -> check the oracle battery -> shrink and
// record failures. Drives everything in src/qa; the catbatch_fuzz binary
// is a thin flag-parser around run_fuzzer().
//
// Determinism contract: iteration k derives its Rng from
// mix_seed(options.seed, k), results are written into per-iteration slots
// and reduced serially in index order, and the report fingerprint
// accumulates per-iteration hashes with a commutative fold — so the
// FuzzReport is bit-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qa/corpus.hpp"
#include "qa/generator.hpp"
#include "qa/oracles.hpp"
#include "qa/shrinker.hpp"

namespace catbatch {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 1000;
  /// Worker threads; <= 0 resolves to the platform default.
  int jobs = 0;
  GeneratorOptions generator;
  OracleOptions oracles;
  /// Mutations applied after generation, uniform in [0, mutations].
  std::size_t mutations = 2;
  /// Shrink failing instances before reporting (disable for triage speed).
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Stop scheduling new iterations once this many findings exist
  /// (existing iterations still finish; 0 = unlimited).
  std::size_t max_findings = 16;
  /// When non-empty, every shrunk finding is written here as a corpus file.
  std::string corpus_dir;
  /// Progress callback (e.g. a line per finding); may be empty.
  std::function<void(const std::string&)> on_progress;
};

/// One distinct failure, post-shrink. `failures` holds every oracle that
/// fired on the *shrunk* instance (at least one).
struct FuzzFinding {
  std::uint64_t iteration_seed = 0;
  FuzzInstance instance;
  std::vector<OracleFailure> failures;
  std::size_t shrink_checks = 0;
  bool shrink_minimal = false;
  std::string corpus_path;  // set when the finding was persisted
};

struct FuzzReport {
  std::size_t iterations_run = 0;
  std::size_t instances_with_failures = 0;
  std::vector<FuzzFinding> findings;
  /// Commutative (XOR) fold of per-iteration instance hashes: identical for
  /// identical (seed, iters, generator) regardless of --jobs.
  std::uint64_t instance_fingerprint = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

[[nodiscard]] FuzzReport run_fuzzer(const FuzzOptions& options);

/// Renders one finding as a short human-readable block for the CLI.
[[nodiscard]] std::string describe_finding(const FuzzFinding& finding);

}  // namespace catbatch
