#include "qa/mutator.hpp"

#include <algorithm>
#include <utility>

#include "instances/random_dags.hpp"

namespace catbatch {
namespace {

/// Rebuilds `graph` with one task's work/procs rewritten. TaskGraph has no
/// task mutation beyond task(), which is enough here.
void set_work(TaskGraph& graph, TaskId id, Time work) {
  graph.task(id).work = work;
}

void set_procs(TaskGraph& graph, TaskId id, int procs) {
  graph.task(id).procs = procs;
}

bool try_insert_edge(Rng& rng, FuzzInstance& instance) {
  const std::size_t n = instance.graph.size();
  if (n < 2) return false;
  // An edge from earlier to later in a topological order can never create
  // a cycle.
  const std::vector<TaskId> order = instance.graph.topological_order();
  const std::size_t a = rng.index(n - 1);
  const std::size_t b = a + 1 + rng.index(n - a - 1);
  instance.graph.add_edge(order[a], order[b]);
  instance.origin += "+edge";
  return true;
}

bool try_delete_edge(Rng& rng, FuzzInstance& instance) {
  const auto edges = all_edges(instance.graph);
  if (edges.empty()) return false;
  const auto [pred, succ] = edges[rng.index(edges.size())];
  instance.graph = without_edge(instance.graph, pred, succ);
  instance.origin += "+deledge";
  return true;
}

bool try_perturb_work(Rng& rng, FuzzInstance& instance) {
  if (instance.graph.empty()) return false;
  const TaskId id = static_cast<TaskId>(rng.index(instance.graph.size()));
  const Time work = instance.graph.task(id).work;
  set_work(instance.graph, id,
           quantize_time(work * rng.uniform_real(0.5, 2.0)));
  instance.origin += "+work";
  return true;
}

bool try_perturb_procs(Rng& rng, FuzzInstance& instance) {
  if (instance.graph.empty()) return false;
  const TaskId id = static_cast<TaskId>(rng.index(instance.graph.size()));
  const int procs = instance.graph.task(id).procs;
  const int next = rng.bernoulli(0.5) ? procs + 1 : procs - 1;
  if (next < 1 || next > instance.procs) return false;
  set_procs(instance.graph, id, next);
  instance.origin += "+procs";
  return true;
}

bool try_widen_to_platform(Rng& rng, FuzzInstance& instance) {
  if (instance.graph.empty()) return false;
  const TaskId id = static_cast<TaskId>(rng.index(instance.graph.size()));
  if (instance.graph.task(id).procs == instance.procs) return false;
  set_procs(instance.graph, id, instance.procs);
  instance.origin += "+widen";
  return true;
}

bool try_splice(Rng& rng, FuzzInstance& instance,
                const GeneratorOptions& options) {
  if (instance.graph.empty()) return false;
  GeneratorOptions small = options;
  small.max_tasks = std::max<std::size_t>(2, options.max_tasks / 4);
  small.max_procs = instance.procs;
  const FuzzInstance extra = generate_instance(rng, small);
  if (extra.graph.empty() || extra.graph.max_procs_required() > instance.procs)
    return false;
  const std::vector<TaskId> sinks = instance.graph.sinks();
  const TaskId anchor = sinks[rng.index(sinks.size())];
  const TaskId offset = instance.graph.append(extra.graph);
  for (const TaskId root : extra.graph.roots()) {
    instance.graph.add_edge(anchor, offset + root);
  }
  instance.origin += "+splice";
  return true;
}

bool try_drop_task(Rng& rng, FuzzInstance& instance) {
  if (instance.graph.size() < 2) return false;
  const TaskId victim = static_cast<TaskId>(rng.index(instance.graph.size()));
  std::vector<TaskId> keep;
  keep.reserve(instance.graph.size() - 1);
  for (TaskId id = 0; id < instance.graph.size(); ++id) {
    if (id != victim) keep.push_back(id);
  }
  instance.graph = induced_subgraph(instance.graph, keep);
  instance.origin += "+drop";
  return true;
}

}  // namespace

void mutate_instance(Rng& rng, FuzzInstance& instance,
                     const GeneratorOptions& options) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool applied = false;
    switch (rng.index(7)) {
      case 0: applied = try_insert_edge(rng, instance); break;
      case 1: applied = try_delete_edge(rng, instance); break;
      case 2: applied = try_perturb_work(rng, instance); break;
      case 3: applied = try_perturb_procs(rng, instance); break;
      case 4: applied = try_widen_to_platform(rng, instance); break;
      case 5: applied = try_splice(rng, instance, options); break;
      default: applied = try_drop_task(rng, instance); break;
    }
    if (applied) return;
  }
  // Every kind declined (tiny degenerate instance); leave it unchanged.
}

TaskGraph induced_subgraph(const TaskGraph& graph,
                           const std::vector<TaskId>& keep) {
  std::vector<TaskId> sorted = keep;
  std::sort(sorted.begin(), sorted.end());
  std::vector<TaskId> remap(graph.size(), kInvalidTask);
  TaskGraph out;
  for (const TaskId old : sorted) {
    const Task& task = graph.task(old);
    remap[old] = out.add_task(task.work, task.procs, task.name);
  }
  for (const TaskId old : sorted) {
    for (const TaskId succ : graph.successors(old)) {
      if (remap[succ] != kInvalidTask) {
        out.add_edge(remap[old], remap[succ]);
      }
    }
  }
  return out;
}

TaskGraph without_edge(const TaskGraph& graph, TaskId pred, TaskId succ) {
  TaskGraph out;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& task = graph.task(id);
    (void)out.add_task(task.work, task.procs, task.name);
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId s : graph.successors(id)) {
      if (id == pred && s == succ) continue;
      out.add_edge(id, s);
    }
  }
  return out;
}

std::vector<std::pair<TaskId, TaskId>> all_edges(const TaskGraph& graph) {
  std::vector<std::pair<TaskId, TaskId>> edges;
  edges.reserve(graph.edge_count());
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId succ : graph.successors(id)) {
      edges.emplace_back(id, succ);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace catbatch
