// Protocol fuzzing: throw adversarial wire traffic at the real serving
// code (ServiceHub::handle_line — the same path both transports use) and
// check the server-side invariants no client can be trusted to respect:
//
//   * lockstep  — exactly one reply line per request line;
//   * typed     — every reply parses as a JSON object whose "type" is a
//                 known reply type, and every "error" carries a code from
//                 the spec's error list;
//   * contained — no exception ever escapes handle_line (engine contract
//                 violations must be converted into "contract" replies);
//   * recovery  — after arbitrary abuse, the connection still serves a
//                 well-formed session correctly.
//
// The traffic mixes raw garbage, truncated and junk-injected JSON,
// spec-shaped messages with fuzzed field values, and stateful
// protocol-plausible conversations (out-of-order completions, double
// opens, unknown sessions). Deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace catbatch {

struct ProtocolFuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 1000;  // one connection conversation each
};

struct ProtocolFuzzReport {
  std::size_t iterations_run = 0;
  std::size_t lines_sent = 0;
  std::size_t error_replies = 0;
  /// One human-readable description per violated invariant, capped at 16
  /// (the traffic that triggered it is reproducible from the seed).
  std::vector<std::string> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

[[nodiscard]] ProtocolFuzzReport run_protocol_fuzz(
    const ProtocolFuzzOptions& options);

}  // namespace catbatch
