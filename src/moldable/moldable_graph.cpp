#include "moldable/moldable_graph.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace catbatch {

Time MoldableTask::execution_time(int procs) const {
  CB_CHECK(procs >= 1 && procs <= max_procs,
           "allotment outside the task's [1, max_procs] range");
  return model.execution_time(seq_work, procs);
}

TaskId MoldableGraph::add_task(Time seq_work, int max_procs,
                               SpeedupModel model, std::string name) {
  CB_CHECK(seq_work > 0.0, "sequential work must be positive");
  CB_CHECK(max_procs >= 1, "allotment cap must be at least 1");
  model.validate();
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(MoldableTask{seq_work, max_procs, model, std::move(name)});
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void MoldableGraph::add_edge(TaskId pred, TaskId succ) {
  CB_CHECK(pred < tasks_.size() && succ < tasks_.size(),
           "edge endpoint out of range");
  CB_CHECK(pred != succ, "self-loops are not allowed");
  auto& out = succs_[pred];
  if (std::find(out.begin(), out.end(), succ) != out.end()) return;
  out.push_back(succ);
  preds_[succ].push_back(pred);
}

const MoldableTask& MoldableGraph::task(TaskId id) const {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return tasks_[id];
}

std::span<const TaskId> MoldableGraph::predecessors(TaskId id) const {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return preds_[id];
}

std::span<const TaskId> MoldableGraph::successors(TaskId id) const {
  CB_CHECK(id < tasks_.size(), "task id out of range");
  return succs_[id];
}

std::vector<TaskId> MoldableGraph::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size());
  std::deque<TaskId> ready;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    in_degree[id] = preds_[id].size();
    if (in_degree[id] == 0) ready.push_back(id);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const TaskId succ : succs_[id]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  CB_CHECK(order.size() == tasks_.size(), "moldable graph contains a cycle");
  return order;
}

Time moldable_lower_bound(const MoldableGraph& graph, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  if (graph.size() == 0) return 0.0;

  // Area bound: each task contributes at least its minimum-area allotment.
  Time min_area_total = 0.0;
  std::vector<Time> min_time(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    const MoldableTask& t = graph.task(id);
    const int cap = std::min(procs, t.max_procs);
    Time best_area = t.model.area(t.seq_work, 1);
    Time best_time = t.model.execution_time(t.seq_work, 1);
    for (int p = 2; p <= cap; ++p) {
      best_area = std::min(best_area, t.model.area(t.seq_work, p));
      best_time = std::min(best_time, t.model.execution_time(t.seq_work, p));
    }
    min_area_total += best_area;
    min_time[id] = best_time;
  }

  // Critical-path bound with minimum times.
  std::vector<Time> finish(graph.size(), 0.0);
  Time critical = 0.0;
  for (const TaskId id : graph.topological_order()) {
    Time start = 0.0;
    for (const TaskId pred : graph.predecessors(id)) {
      start = std::max(start, finish[pred]);
    }
    finish[id] = start + min_time[id];
    critical = std::max(critical, finish[id]);
  }

  return std::max(min_area_total / static_cast<Time>(procs), critical);
}

}  // namespace catbatch
