#include "moldable/speedup.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace catbatch {

const char* to_string(SpeedupLaw law) {
  switch (law) {
    case SpeedupLaw::Linear:
      return "linear";
    case SpeedupLaw::Roofline:
      return "roofline";
    case SpeedupLaw::Amdahl:
      return "amdahl";
    case SpeedupLaw::CommOverhead:
      return "comm-overhead";
    case SpeedupLaw::PowerLaw:
      return "power-law";
  }
  return "unknown";
}

void SpeedupModel::validate() const {
  switch (law) {
    case SpeedupLaw::Linear:
      break;
    case SpeedupLaw::Roofline:
      CB_CHECK(parameter >= 1.0, "roofline parallelism bound must be >= 1");
      break;
    case SpeedupLaw::Amdahl:
      CB_CHECK(parameter >= 0.0 && parameter <= 1.0,
               "Amdahl serial fraction must be in [0, 1]");
      break;
    case SpeedupLaw::CommOverhead:
      CB_CHECK(parameter >= 0.0, "communication cost must be >= 0");
      break;
    case SpeedupLaw::PowerLaw:
      CB_CHECK(parameter > 0.0 && parameter <= 1.0,
               "power-law exponent must be in (0, 1]");
      break;
  }
}

Time SpeedupModel::execution_time(Time seq_work, int procs) const {
  CB_CHECK(seq_work > 0.0, "sequential work must be positive");
  CB_CHECK(procs >= 1, "allotment must be at least one processor");
  validate();
  const auto p = static_cast<double>(procs);
  switch (law) {
    case SpeedupLaw::Linear:
      return seq_work / p;
    case SpeedupLaw::Roofline: {
      const double effective = std::min(p, parameter);
      return seq_work / effective;
    }
    case SpeedupLaw::Amdahl:
      return seq_work * (parameter + (1.0 - parameter) / p);
    case SpeedupLaw::CommOverhead:
      return seq_work / p + parameter * (p - 1.0);
    case SpeedupLaw::PowerLaw:
      return seq_work / std::pow(p, parameter);
  }
  CB_CHECK(false, "unreachable speedup law");
  return seq_work;
}

}  // namespace catbatch
