// Moldable instance generators: random DAGs with mixed speedup models and
// a moldable rendition of the tiled-Cholesky workload (kernels scale with
// realistic rooflines).
#pragma once

#include "moldable/moldable_graph.hpp"
#include "support/rng.hpp"

namespace catbatch {

struct MoldableTaskDistribution {
  double min_seq_work = 1.0;
  double max_seq_work = 64.0;
  int max_procs = 16;
  /// Mixture over speedup laws: each task draws one uniformly from the
  /// enabled set.
  bool use_linear = true;
  bool use_roofline = true;
  bool use_amdahl = true;
  bool use_comm_overhead = true;
  bool use_power_law = true;
};

/// One random moldable task (work log-uniform, model mix per the flags).
[[nodiscard]] MoldableTask draw_moldable_task(
    Rng& rng, const MoldableTaskDistribution& dist);

/// Layered random moldable DAG (shape mirrors random_layered_dag).
[[nodiscard]] MoldableGraph random_moldable_layered(
    Rng& rng, std::size_t task_count, std::size_t layer_count,
    const MoldableTaskDistribution& dist);

/// Moldable tiled Cholesky: gemm-like kernels get near-linear rooflines,
/// panel kernels saturate early.
[[nodiscard]] MoldableGraph moldable_cholesky(int tiles, int max_procs);

}  // namespace catbatch
