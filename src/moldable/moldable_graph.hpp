// DAGs of moldable tasks (Section 2.2; the paper's Section 7 names online
// moldable scheduling as the natural next target for the category
// machinery). A moldable task carries sequential work, a speedup model and
// an allotment cap; the scheduler chooses p before launch.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "moldable/speedup.hpp"

namespace catbatch {

struct MoldableTask {
  Time seq_work = 0.0;  // w: time on one processor
  int max_procs = 1;    // allotment cap (task-specific, <= P)
  SpeedupModel model;
  std::string name;

  /// t(p) under the task's model. Requires 1 <= procs <= max_procs.
  [[nodiscard]] Time execution_time(int procs) const;
};

class MoldableGraph {
 public:
  TaskId add_task(Time seq_work, int max_procs, SpeedupModel model,
                  std::string name = {});
  void add_edge(TaskId pred, TaskId succ);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] const MoldableTask& task(TaskId id) const;
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const;
  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const;
  [[nodiscard]] std::vector<TaskId> topological_order() const;

 private:
  std::vector<MoldableTask> tasks_;
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
};

/// Makespan lower bound for a moldable instance on P processors
/// (moldable analogue of Equation 1): the area bound uses each task's
/// *minimum-area* allotment, the critical-path bound its *minimum-time*
/// allotment — both relaxations of any feasible schedule.
[[nodiscard]] Time moldable_lower_bound(const MoldableGraph& graph, int procs);

}  // namespace catbatch
