#include "moldable/allocation.hpp"

#include <algorithm>
#include <cmath>

#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {

const char* to_string(AllotmentPolicy policy) {
  switch (policy) {
    case AllotmentPolicy::Sequential:
      return "sequential";
    case AllotmentPolicy::MaxParallel:
      return "max-parallel";
    case AllotmentPolicy::MinTime:
      return "min-time";
    case AllotmentPolicy::Efficiency50:
      return "efficiency-50";
    case AllotmentPolicy::SquareRoot:
      return "sqrt-p";
  }
  return "unknown";
}

int choose_allotment(const MoldableTask& task, int procs,
                     AllotmentPolicy policy) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  const int cap = std::min(procs, task.max_procs);
  switch (policy) {
    case AllotmentPolicy::Sequential:
      return 1;
    case AllotmentPolicy::MaxParallel:
      return cap;
    case AllotmentPolicy::MinTime: {
      int best = 1;
      Time best_time = task.model.execution_time(task.seq_work, 1);
      for (int p = 2; p <= cap; ++p) {
        const Time t = task.model.execution_time(task.seq_work, p);
        if (t < best_time) {
          best_time = t;
          best = p;
        }
      }
      return best;
    }
    case AllotmentPolicy::Efficiency50: {
      const Time t1 = task.model.execution_time(task.seq_work, 1);
      int best = 1;
      for (int p = 2; p <= cap; ++p) {
        const Time tp = task.model.execution_time(task.seq_work, p);
        const double speedup = static_cast<double>(t1 / tp);
        if (speedup >= 0.5 * static_cast<double>(p)) best = p;
      }
      return best;
    }
    case AllotmentPolicy::SquareRoot: {
      const int root = static_cast<int>(
          std::ceil(std::sqrt(static_cast<double>(procs))));
      return std::min(cap, std::max(1, root));
    }
  }
  return 1;
}

TaskGraph rigidify(const MoldableGraph& graph, int procs,
                   AllotmentPolicy policy) {
  TaskGraph rigid;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const MoldableTask& t = graph.task(id);
    const int p = choose_allotment(t, procs, policy);
    rigid.add_task(quantize_time(static_cast<double>(t.execution_time(p))),
                   p, t.name);
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId succ : graph.successors(id)) {
      rigid.add_edge(id, succ);
    }
  }
  return rigid;
}

}  // namespace catbatch
