// Local allotment policies for moldable tasks, in the spirit of the local-
// decision algorithms analysed by Perotin & Sun [28]: each task's allotment
// is chosen from the task's own parameters only (no global view), which is
// exactly the regime whose limits the paper's category machinery is meant
// to break.
//
// rigidify() turns a moldable DAG plus a policy into a rigid instance; any
// scheduler in this library (CatBatch included) then runs it online. Since
// both the policy and CatBatch's categories use only locally available
// information, the composition is a legitimate online moldable scheduler —
// the paper's Section 7 proposal, made concrete.
#pragma once

#include "core/graph.hpp"
#include "moldable/moldable_graph.hpp"

namespace catbatch {

enum class AllotmentPolicy {
  Sequential,    // p = 1 (baseline)
  MaxParallel,   // p = min(max_procs, P)
  MinTime,       // p = argmin_p t(p) (ties -> smallest p)
  Efficiency50,  // largest p with speedup(p)/p >= 1/2
  SquareRoot,    // p = min(max_procs, ceil(sqrt(P)))
};

[[nodiscard]] const char* to_string(AllotmentPolicy policy);

/// The allotment the policy picks for one task on a P-processor platform.
/// Always in [1, min(max_procs, P)].
[[nodiscard]] int choose_allotment(const MoldableTask& task, int procs,
                                   AllotmentPolicy policy);

/// Rigid instance induced by the policy: same DAG, execution times t(p)
/// and processor requirements p fixed by choose_allotment(). Times are
/// quantized (instances/random_dags.hpp) so the category arithmetic stays
/// exact downstream.
[[nodiscard]] TaskGraph rigidify(const MoldableGraph& graph, int procs,
                                 AllotmentPolicy policy);

}  // namespace catbatch
