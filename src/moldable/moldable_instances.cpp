#include "moldable/moldable_instances.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace catbatch {

MoldableTask draw_moldable_task(Rng& rng,
                                const MoldableTaskDistribution& dist) {
  CB_CHECK(dist.min_seq_work > 0.0 &&
               dist.max_seq_work >= dist.min_seq_work,
           "seq work range requires 0 < min <= max");
  CB_CHECK(dist.max_procs >= 1, "max_procs must be at least 1");

  std::vector<SpeedupLaw> laws;
  if (dist.use_linear) laws.push_back(SpeedupLaw::Linear);
  if (dist.use_roofline) laws.push_back(SpeedupLaw::Roofline);
  if (dist.use_amdahl) laws.push_back(SpeedupLaw::Amdahl);
  if (dist.use_comm_overhead) laws.push_back(SpeedupLaw::CommOverhead);
  if (dist.use_power_law) laws.push_back(SpeedupLaw::PowerLaw);
  CB_CHECK(!laws.empty(), "at least one speedup law must be enabled");

  MoldableTask task;
  const double lo = std::log(dist.min_seq_work);
  const double hi = std::log(dist.max_seq_work);
  task.seq_work = std::exp(rng.uniform_real(lo, hi));
  task.max_procs = static_cast<int>(rng.uniform_int(1, dist.max_procs));
  task.model.law = laws[rng.index(laws.size())];
  switch (task.model.law) {
    case SpeedupLaw::Linear:
      task.model.parameter = 0.0;
      break;
    case SpeedupLaw::Roofline:
      task.model.parameter =
          static_cast<double>(rng.uniform_int(1, dist.max_procs));
      break;
    case SpeedupLaw::Amdahl:
      task.model.parameter = rng.uniform_real(0.0, 0.3);
      break;
    case SpeedupLaw::CommOverhead:
      task.model.parameter =
          rng.uniform_real(0.0, 0.05) * task.seq_work;
      break;
    case SpeedupLaw::PowerLaw:
      task.model.parameter = rng.uniform_real(0.5, 1.0);
      break;
  }
  return task;
}

MoldableGraph random_moldable_layered(Rng& rng, std::size_t task_count,
                                      std::size_t layer_count,
                                      const MoldableTaskDistribution& dist) {
  CB_CHECK(task_count >= 1, "need at least one task");
  CB_CHECK(layer_count >= 1 && layer_count <= task_count,
           "layer count must be in [1, task_count]");
  MoldableGraph g;
  std::vector<std::vector<TaskId>> layers(layer_count);
  for (std::size_t k = 0; k < task_count; ++k) {
    const std::size_t layer = k < layer_count ? k : rng.index(layer_count);
    const MoldableTask t = draw_moldable_task(rng, dist);
    const TaskId id = g.add_task(t.seq_work, t.max_procs, t.model);
    layers[layer].push_back(id);
    if (layer > 0 && !layers[layer - 1].empty()) {
      const std::size_t pred_count = 1 + rng.index(3);
      for (std::size_t e = 0; e < pred_count; ++e) {
        g.add_edge(layers[layer - 1][rng.index(layers[layer - 1].size())],
                   id);
      }
    }
  }
  return g;
}

MoldableGraph moldable_cholesky(int tiles, int max_procs) {
  CB_CHECK(tiles >= 1, "cholesky needs at least one tile");
  CB_CHECK(max_procs >= 1, "max_procs must be at least 1");
  MoldableGraph g;

  const SpeedupModel potrf_model{SpeedupLaw::Amdahl, 0.4};
  const SpeedupModel trsm_model{
      SpeedupLaw::Roofline,
      std::max(1.0, static_cast<double>(max_procs) / 4.0)};
  const SpeedupModel gemm_model{
      SpeedupLaw::Roofline, static_cast<double>(max_procs)};

  // Same last-writer dataflow as instances/workloads.cpp, with moldable
  // kernels.
  std::vector<TaskId> writer(
      static_cast<std::size_t>(tiles) * static_cast<std::size_t>(tiles),
      kInvalidTask);
  const auto tile_index = [tiles](int i, int j) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(tiles) +
           static_cast<std::size_t>(j);
  };
  const auto depend = [&](TaskId task, int i, int j) {
    if (writer[tile_index(i, j)] != kInvalidTask) {
      g.add_edge(writer[tile_index(i, j)], task);
    }
  };

  for (int k = 0; k < tiles; ++k) {
    const TaskId potrf = g.add_task(
        1.0, max_procs, potrf_model,
        "potrf(" + std::to_string(k) + ")");
    depend(potrf, k, k);
    writer[tile_index(k, k)] = potrf;
    for (int i = k + 1; i < tiles; ++i) {
      const TaskId trsm = g.add_task(
          2.0, max_procs, trsm_model,
          "trsm(" + std::to_string(i) + "," + std::to_string(k) + ")");
      depend(trsm, k, k);
      depend(trsm, i, k);
      writer[tile_index(i, k)] = trsm;
    }
    for (int i = k + 1; i < tiles; ++i) {
      const TaskId syrk = g.add_task(
          4.0, max_procs, gemm_model,
          "syrk(" + std::to_string(i) + ")");
      depend(syrk, i, k);
      depend(syrk, i, i);
      writer[tile_index(i, i)] = syrk;
      for (int j = k + 1; j < i; ++j) {
        const TaskId gemm = g.add_task(
            4.0, max_procs, gemm_model,
            "gemm(" + std::to_string(i) + "," + std::to_string(j) + ")");
        depend(gemm, i, k);
        depend(gemm, j, k);
        depend(gemm, i, j);
        writer[tile_index(i, j)] = gemm;
      }
    }
  }
  return g;
}

}  // namespace catbatch
