// Speedup models for moldable tasks (Section 2.2 of the paper): a moldable
// task's execution time is a function of its processor allotment, fixed at
// launch. The models below cover the families used in the related work the
// paper builds on:
//   * Linear        — perfect speedup, t(p) = w / p            [13]
//   * Roofline      — linear up to a parallelism bound p̄, flat beyond [13]
//   * Amdahl        — serial fraction s: t(p) = w·(s + (1-s)/p)
//   * CommOverhead  — t(p) = w/p + c·(p-1) (linear model with
//                     per-processor communication cost)          [5]
//   * PowerLaw      — t(p) = w / p^α, α ∈ (0, 1]
//
// All models are *monotonic* in the sense of Belkhale et al. [4]: execution
// time is non-increasing and area p·t(p) is non-decreasing in p (verified
// by property tests).
#pragma once

#include <string>

#include "core/task.hpp"

namespace catbatch {

enum class SpeedupLaw {
  Linear,
  Roofline,
  Amdahl,
  CommOverhead,
  PowerLaw,
};

[[nodiscard]] const char* to_string(SpeedupLaw law);

struct SpeedupModel {
  SpeedupLaw law = SpeedupLaw::Linear;
  /// Meaning depends on `law`: Roofline -> maximum useful parallelism
  /// (>= 1); Amdahl -> serial fraction in [0, 1]; CommOverhead -> per-
  /// processor cost c >= 0 (in time units); PowerLaw -> exponent α in
  /// (0, 1]. Ignored for Linear.
  double parameter = 0.0;

  /// Execution time of a task with sequential work `seq_work` on `procs`
  /// processors. Requires seq_work > 0 and procs >= 1.
  [[nodiscard]] Time execution_time(Time seq_work, int procs) const;

  /// p * t(p): the area consumed by the allotment.
  [[nodiscard]] Time area(Time seq_work, int procs) const {
    return static_cast<Time>(procs) * execution_time(seq_work, procs);
  }

  /// Validates the parameter for the law; throws ContractViolation.
  void validate() const;
};

}  // namespace catbatch
