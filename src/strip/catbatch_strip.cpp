#include "strip/catbatch_strip.hpp"

#include <algorithm>
#include <map>

#include "core/criticality.hpp"
#include "core/lmatrix.hpp"
#include "strip/strip_packers.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

/// Criticalities over the strip instance (heights as execution times).
std::vector<Criticality> strip_criticalities(const StripInstance& instance) {
  std::vector<Criticality> crit(instance.size());
  for (const TaskId id : instance.topological_order()) {
    Time start = 0.0;
    for (const TaskId pred : instance.predecessors(id)) {
      start = std::max(start, crit[pred].earliest_finish);
    }
    crit[id].earliest_start = start;
    crit[id].earliest_finish = start + instance.rect(id).height;
  }
  return crit;
}

}  // namespace

CatBatchStripResult catbatch_strip_pack(const StripInstance& instance,
                                        StripBatchPacker packer) {
  CatBatchStripResult out;
  if (instance.size() == 0) return out;

  const std::vector<Criticality> crit = strip_criticalities(instance);
  std::map<Time, std::pair<Category, std::vector<TaskId>>> batches;
  for (TaskId id = 0; id < instance.size(); ++id) {
    const Category cat = compute_category(crit[id]);
    auto& slot = batches[cat.value()];
    slot.first = cat;
    slot.second.push_back(id);
  }

  Time base = 0.0;
  for (const auto& entry : batches) {
    const auto& [category, ids] = entry.second;
    std::vector<Rect> rects;
    rects.reserve(ids.size());
    for (const TaskId id : ids) rects.push_back(instance.rect(id));
    const StripShelfResult shelves = packer == StripBatchPacker::Nfdh
                                         ? strip_nfdh(rects)
                                         : strip_ffdh(rects);
    for (const PlacedRect& p : shelves.placements) {
      out.packing.place(ids[p.id], p.x, base + p.y);
    }
    out.batches.push_back(StripBatchRecord{category, base,
                                           base + shelves.total_height, ids});
    base += shelves.total_height;
  }
  out.total_height = base;
  return out;
}

Time catbatch_strip_bound(const StripInstance& instance) {
  if (instance.size() == 0) return 0.0;
  const Time critical = instance.critical_path();
  const std::vector<Criticality> crit = strip_criticalities(instance);
  std::map<Time, Time> length_by_category;  // ζ -> L_ζ
  for (TaskId id = 0; id < instance.size(); ++id) {
    const Category cat = compute_category(crit[id]);
    length_by_category[cat.value()] = category_length(cat, critical);
  }
  Time sum_lengths = 0.0;
  for (const auto& entry : length_by_category) sum_lengths += entry.second;
  return 2.0 * static_cast<Time>(instance.total_area()) + sum_lengths;
}

}  // namespace catbatch
