#include "strip/strip_instance.hpp"

#include <algorithm>
#include <deque>

#include "support/check.hpp"

namespace catbatch {

TaskId StripInstance::add_rect(double width, Time height, std::string name) {
  CB_CHECK(width > 0.0 && width <= 1.0, "rectangle width must be in (0, 1]");
  CB_CHECK(height > 0.0, "rectangle height must be positive");
  const auto id = static_cast<TaskId>(rects_.size());
  rects_.push_back(Rect{width, height, std::move(name)});
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void StripInstance::add_edge(TaskId pred, TaskId succ) {
  CB_CHECK(pred < rects_.size() && succ < rects_.size(),
           "edge endpoint out of range");
  CB_CHECK(pred != succ, "self-loops are not allowed");
  auto& out = succs_[pred];
  if (std::find(out.begin(), out.end(), succ) != out.end()) return;
  out.push_back(succ);
  preds_[succ].push_back(pred);
}

const Rect& StripInstance::rect(TaskId id) const {
  CB_CHECK(id < rects_.size(), "rect id out of range");
  return rects_[id];
}

std::span<const TaskId> StripInstance::predecessors(TaskId id) const {
  CB_CHECK(id < rects_.size(), "rect id out of range");
  return preds_[id];
}

std::span<const TaskId> StripInstance::successors(TaskId id) const {
  CB_CHECK(id < rects_.size(), "rect id out of range");
  return succs_[id];
}

std::vector<TaskId> StripInstance::topological_order() const {
  std::vector<std::size_t> in_degree(rects_.size());
  std::deque<TaskId> ready;
  for (TaskId id = 0; id < rects_.size(); ++id) {
    in_degree[id] = preds_[id].size();
    if (in_degree[id] == 0) ready.push_back(id);
  }
  std::vector<TaskId> order;
  order.reserve(rects_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const TaskId succ : succs_[id]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  CB_CHECK(order.size() == rects_.size(), "strip instance contains a cycle");
  return order;
}

double StripInstance::total_area() const noexcept {
  double area = 0.0;
  for (const Rect& r : rects_) area += r.area();
  return area;
}

Time StripInstance::critical_path() const {
  std::vector<Time> finish(rects_.size(), 0.0);
  Time best = 0.0;
  for (const TaskId id : topological_order()) {
    Time start = 0.0;
    for (const TaskId pred : preds_[id]) {
      start = std::max(start, finish[pred]);
    }
    finish[id] = start + rects_[id].height;
    best = std::max(best, finish[id]);
  }
  return best;
}

Time StripInstance::height_lower_bound() const {
  return std::max(static_cast<Time>(total_area()), critical_path());
}

void StripPacking::place(TaskId id, double x, Time y) {
  CB_CHECK(id != kInvalidTask, "cannot place the invalid id");
  CB_CHECK(x >= 0.0 && y >= 0.0, "placement must be inside the strip");
  CB_CHECK(!contains(id), "rectangle placed twice");
  if (index_.size() <= id) index_.resize(id + 1, npos);
  index_[id] = entries_.size();
  entries_.push_back(PlacedRect{id, x, y});
}

bool StripPacking::contains(TaskId id) const noexcept {
  return id < index_.size() && index_[id] != npos;
}

const PlacedRect& StripPacking::entry_for(TaskId id) const {
  CB_CHECK(contains(id), "rectangle was never placed");
  return entries_[index_[id]];
}

Time StripPacking::total_height(const StripInstance& instance) const {
  Time best = 0.0;
  for (const PlacedRect& e : entries_) {
    best = std::max(best, e.y + instance.rect(e.id).height);
  }
  return best;
}

}  // namespace catbatch
