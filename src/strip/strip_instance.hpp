// Strip packing with precedence constraints (Remark 1 and the comparison in
// Section 1): rectangles of fractional width in (0, 1] and positive height
// must be placed without overlap in a strip of width 1; an edge (i, j)
// requires rectangle j to lie entirely above rectangle i. Height plays the
// role of execution time, width the role of (fractional, contiguous)
// processor share.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

struct Rect {
  double width = 0.0;  // in (0, 1]
  Time height = 0.0;   // > 0
  std::string name;

  [[nodiscard]] double area() const noexcept {
    return width * static_cast<double>(height);
  }
};

/// A DAG of rectangles (the strip-packing analogue of TaskGraph).
class StripInstance {
 public:
  TaskId add_rect(double width, Time height, std::string name = {});
  void add_edge(TaskId pred, TaskId succ);

  [[nodiscard]] std::size_t size() const noexcept { return rects_.size(); }
  [[nodiscard]] const Rect& rect(TaskId id) const;
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const;
  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const;

  /// Topological order (throws on cycles).
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  [[nodiscard]] double total_area() const noexcept;

  /// Critical-path height: the strip-packing analogue of C(I).
  [[nodiscard]] Time critical_path() const;

  /// Lower bound on the achievable strip height: max(total area, critical
  /// path) — widths are relative to a strip of width 1.
  [[nodiscard]] Time height_lower_bound() const;

 private:
  std::vector<Rect> rects_;
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
};

/// One placed rectangle: horizontal span [x, x + width), vertical span
/// [y, y + height).
struct PlacedRect {
  TaskId id = kInvalidTask;
  double x = 0.0;
  Time y = 0.0;
};

/// A (partial or complete) packing.
class StripPacking {
 public:
  void place(TaskId id, double x, Time y);
  [[nodiscard]] std::span<const PlacedRect> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool contains(TaskId id) const noexcept;
  [[nodiscard]] const PlacedRect& entry_for(TaskId id) const;

  /// Height of the packing given the instance (max y + height).
  [[nodiscard]] Time total_height(const StripInstance& instance) const;

 private:
  std::vector<PlacedRect> entries_;
  std::vector<std::size_t> index_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace catbatch
