#include "strip/strip_validate.hpp"

#include <sstream>

#include "support/check.hpp"

namespace catbatch {

namespace {
// Widths/coordinates in this repository are exact binary fractions; the
// epsilon only guards instances loaded from external text.
constexpr double kEps = 1e-12;
}  // namespace

std::optional<std::string> validate_strip_packing(
    const StripInstance& instance, const StripPacking& packing) {
  if (packing.entries().size() != instance.size()) {
    std::ostringstream os;
    os << "packing has " << packing.entries().size()
       << " rectangles but the instance has " << instance.size();
    return os.str();
  }
  for (TaskId id = 0; id < instance.size(); ++id) {
    if (!packing.contains(id)) {
      return "rectangle " + std::to_string(id) + " was never placed";
    }
  }

  for (const PlacedRect& e : packing.entries()) {
    const Rect& r = instance.rect(e.id);
    if (e.x < -kEps || e.x + r.width > 1.0 + kEps) {
      std::ostringstream os;
      os << "rectangle " << e.id << " leaves the strip horizontally: x="
         << e.x << " width=" << r.width;
      return os.str();
    }
    if (e.y < -kEps) {
      return "rectangle " + std::to_string(e.id) + " below the strip";
    }
    for (const TaskId pred : instance.predecessors(e.id)) {
      const PlacedRect& pe = packing.entry_for(pred);
      const Time pred_top = pe.y + instance.rect(pred).height;
      if (e.y + kEps < pred_top) {
        std::ostringstream os;
        os << "rectangle " << e.id << " (y=" << e.y
           << ") is not above its predecessor " << pred
           << " (top=" << pred_top << ")";
        return os.str();
      }
    }
  }

  // Pairwise overlap (O(n^2), fine for validation duty).
  const auto entries = packing.entries();
  for (std::size_t a = 0; a < entries.size(); ++a) {
    const Rect& ra = instance.rect(entries[a].id);
    for (std::size_t b = a + 1; b < entries.size(); ++b) {
      const Rect& rb = instance.rect(entries[b].id);
      const bool x_overlap =
          entries[a].x + ra.width > entries[b].x + kEps &&
          entries[b].x + rb.width > entries[a].x + kEps;
      const bool y_overlap =
          entries[a].y + ra.height > entries[b].y + kEps &&
          entries[b].y + rb.height > entries[a].y + kEps;
      if (x_overlap && y_overlap) {
        std::ostringstream os;
        os << "rectangles " << entries[a].id << " and " << entries[b].id
           << " overlap";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

void require_valid_strip_packing(const StripInstance& instance,
                                 const StripPacking& packing) {
  const auto error = validate_strip_packing(instance, packing);
  CB_CHECK(!error.has_value(), error.has_value() ? error->c_str() : "valid");
}

}  // namespace catbatch
