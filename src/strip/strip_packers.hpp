// Shelf packers for *independent* rectangles: NFDH and FFDH (Coffman et
// al. [8]), operating on fractional widths in a strip of width 1. NFDH is
// the subroutine Remark 1 plugs into CatBatch: its height is at most twice
// the total area plus the tallest rectangle.
#pragma once

#include <span>

#include "strip/strip_instance.hpp"

namespace catbatch {

struct StripShelfResult {
  /// Placement of each input rectangle (ids = indices into the input span).
  std::vector<PlacedRect> placements;
  Time total_height = 0.0;
  std::size_t shelf_count = 0;
};

/// Next-Fit Decreasing Height on a width-1 strip starting at height 0.
[[nodiscard]] StripShelfResult strip_nfdh(std::span<const Rect> rects);

/// First-Fit Decreasing Height.
[[nodiscard]] StripShelfResult strip_ffdh(std::span<const Rect> rects);

/// Bottom-Left in decreasing-width order (Baker, Coffman & Rivest [3],
/// 3-approximation): each rectangle drops to the lowest y where it fits,
/// then slides left. Not shelf-based — it can interlock rectangles — so
/// it often beats NFDH/FFDH on mixed widths. Quadratic per rectangle in
/// the number of already-placed rectangles.
[[nodiscard]] StripShelfResult strip_bottom_left(std::span<const Rect> rects);

}  // namespace catbatch
