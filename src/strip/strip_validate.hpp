// Independent validation of strip packings: coverage, strip bounds,
// pairwise non-overlap, and the precedence rule (a successor lies entirely
// above each of its predecessors).
#pragma once

#include <optional>
#include <string>

#include "strip/strip_instance.hpp"

namespace catbatch {

[[nodiscard]] std::optional<std::string> validate_strip_packing(
    const StripInstance& instance, const StripPacking& packing);

void require_valid_strip_packing(const StripInstance& instance,
                                 const StripPacking& packing);

}  // namespace catbatch
