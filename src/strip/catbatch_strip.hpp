// CatBatch for online strip packing with precedence constraints (Remark 1):
// categories are computed from the rectangles' criticalities exactly as for
// rigid tasks, batches are packed in increasing category order, and the
// independent-batch subroutine is NFDH (which guarantees contiguous
// horizontal space). Each batch occupies its own horizontal band of the
// strip, stacked bottom-up, so a rectangle is always strictly above all of
// its predecessors (they live in lower bands by Lemma 5).
//
// The categories only depend on information available online (Lemma 1), so
// even though this routine runs in one pass over the instance, the packing
// it produces is exactly what the online algorithm would build.
#pragma once

#include <vector>

#include "core/category.hpp"
#include "strip/strip_instance.hpp"

namespace catbatch {

struct StripBatchRecord {
  Category category;
  Time band_bottom = 0.0;
  Time band_top = 0.0;
  std::vector<TaskId> rects;
};

struct CatBatchStripResult {
  StripPacking packing;
  Time total_height = 0.0;
  std::vector<StripBatchRecord> batches;
};

/// Which shelf packer handles each category band. NFDH carries Remark 1's
/// proof; FFDH is never taller and is offered as the practical variant.
enum class StripBatchPacker { Nfdh, Ffdh };

/// Packs `instance` with the CatBatch/shelf combination of Remark 1.
[[nodiscard]] CatBatchStripResult catbatch_strip_pack(
    const StripInstance& instance,
    StripBatchPacker packer = StripBatchPacker::Nfdh);

/// Remark 1's bound on the resulting height: 2·A + Σ_ζ L_ζ over non-empty
/// categories (strip width 1).
[[nodiscard]] Time catbatch_strip_bound(const StripInstance& instance);

}  // namespace catbatch
