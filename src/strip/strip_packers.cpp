#include "strip/strip_packers.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace catbatch {

namespace {
std::vector<std::size_t> decreasing_height_order(std::span<const Rect> rects) {
  std::vector<std::size_t> order(rects.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rects[a].height > rects[b].height;
                   });
  return order;
}

void check_rects(std::span<const Rect> rects) {
  for (const Rect& r : rects) {
    CB_CHECK(r.width > 0.0 && r.width <= 1.0,
             "rectangle width must be in (0, 1]");
    CB_CHECK(r.height > 0.0, "rectangle height must be positive");
  }
}

// Guard against accumulated floating-point error when summing widths: a
// shelf is declared full slightly before exact width 1. Widths in this
// repository are exact binary fractions, so the epsilon never triggers for
// well-formed instances; it only protects externally loaded ones.
constexpr double kWidthSlack = 1e-12;
}  // namespace

StripShelfResult strip_nfdh(std::span<const Rect> rects) {
  check_rects(rects);
  StripShelfResult out;
  out.placements.reserve(rects.size());
  double used = 0.0;
  Time shelf_y = 0.0;
  bool shelf_open = false;
  for (const std::size_t idx : decreasing_height_order(rects)) {
    const Rect& r = rects[idx];
    if (!shelf_open || used + r.width > 1.0 + kWidthSlack) {
      shelf_y = out.total_height;
      out.total_height += r.height;  // first rect of a shelf is the tallest
      used = 0.0;
      shelf_open = true;
      ++out.shelf_count;
    }
    out.placements.push_back(
        PlacedRect{static_cast<TaskId>(idx), used, shelf_y});
    used += r.width;
  }
  return out;
}

StripShelfResult strip_bottom_left(std::span<const Rect> rects) {
  check_rects(rects);
  StripShelfResult out;
  out.placements.reserve(rects.size());

  // Decreasing-width order (Baker-Coffman-Rivest's 3-approx ordering).
  std::vector<std::size_t> order(rects.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rects[a].width > rects[b].width;
                   });

  // For a candidate y, the leftmost feasible x for a (w x h) rectangle, or
  // a negative value if none exists.
  const auto leftmost_fit = [&](double y, double w, Time h) -> double {
    struct Span {
      double lo, hi;
    };
    std::vector<Span> blocked;
    for (const PlacedRect& p : out.placements) {
      const Rect& r = rects[p.id];
      if (p.y + r.height > y + kWidthSlack &&
          y + static_cast<double>(h) > p.y + kWidthSlack) {
        blocked.push_back(Span{p.x, p.x + r.width});
      }
    }
    std::sort(blocked.begin(), blocked.end(),
              [](const Span& a, const Span& b) { return a.lo < b.lo; });
    double x = 0.0;
    for (const Span& s : blocked) {
      if (s.lo - x >= w - kWidthSlack) break;  // gap before this block
      x = std::max(x, s.hi);
    }
    return x + w <= 1.0 + kWidthSlack ? x : -1.0;
  };

  for (const std::size_t idx : order) {
    const Rect& r = rects[idx];
    // Candidate drop heights: the floor plus every placed rectangle's top.
    std::vector<double> candidates{0.0};
    for (const PlacedRect& p : out.placements) {
      candidates.push_back(p.y + rects[p.id].height);
    }
    std::sort(candidates.begin(), candidates.end());
    double best_y = -1.0, best_x = -1.0;
    for (const double y : candidates) {
      const double x = leftmost_fit(y, r.width, r.height);
      if (x >= 0.0) {
        best_y = y;
        best_x = x;
        break;  // candidates ascend: first feasible y is the lowest
      }
    }
    CB_CHECK(best_y >= 0.0, "bottom-left failed to place a rectangle");
    out.placements.push_back(PlacedRect{static_cast<TaskId>(idx), best_x,
                                        best_y});
    out.total_height =
        std::max(out.total_height, static_cast<Time>(best_y) + r.height);
  }
  out.shelf_count = 0;  // not shelf-based
  return out;
}

StripShelfResult strip_ffdh(std::span<const Rect> rects) {
  check_rects(rects);
  StripShelfResult out;
  out.placements.reserve(rects.size());
  struct Shelf {
    Time y;
    double used;
  };
  std::vector<Shelf> shelves;
  for (const std::size_t idx : decreasing_height_order(rects)) {
    const Rect& r = rects[idx];
    std::size_t shelf = shelves.size();
    for (std::size_t k = 0; k < shelves.size(); ++k) {
      if (shelves[k].used + r.width <= 1.0 + kWidthSlack) {
        shelf = k;
        break;
      }
    }
    if (shelf == shelves.size()) {
      shelves.push_back(Shelf{out.total_height, 0.0});
      out.total_height += r.height;
      ++out.shelf_count;
    }
    out.placements.push_back(
        PlacedRect{static_cast<TaskId>(idx), shelves[shelf].used,
                   shelves[shelf].y});
    shelves[shelf].used += r.width;
  }
  return out;
}

}  // namespace catbatch
