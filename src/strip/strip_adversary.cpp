#include "strip/strip_adversary.hpp"

#include "support/check.hpp"

namespace catbatch {

StripInstance to_strip_instance(const TaskGraph& graph, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  graph.validate(procs);
  StripInstance strip;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& t = graph.task(id);
    strip.add_rect(static_cast<double>(t.procs) / procs, t.work, t.name);
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId succ : graph.successors(id)) {
      strip.add_edge(id, succ);
    }
  }
  return strip;
}

}  // namespace catbatch
