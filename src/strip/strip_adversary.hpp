// Remark 2: the Section 6 lower-bound instances transfer to strip packing
// because they only use tasks of 1 or P processors — i.e. rectangles of
// width 1/P or 1. This module materializes that reduction: any rigid
// instance whose tasks are 1-or-P wide becomes a strip instance on a strip
// of width 1.
#pragma once

#include "core/graph.hpp"
#include "strip/strip_instance.hpp"

namespace catbatch {

/// Converts a rigid instance into a strip instance with widths p_i / P.
/// Requires every task to satisfy 1 <= p_i <= P. The Section 6 graphs use
/// only p_i ∈ {1, P}, matching Remark 2 exactly, but the conversion is
/// defined for any widths.
[[nodiscard]] StripInstance to_strip_instance(const TaskGraph& graph,
                                              int procs);

}  // namespace catbatch
