#include "obs/metrics_export.hpp"

namespace catbatch {

void write_metrics_object(JsonWriter& w, const MetricsRegistry& registry) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const MetricsRegistry::MetricInfo& info : registry.metrics()) {
    if (info.kind != MetricKind::Counter) continue;
    w.key(info.name).value(registry.counter_value(info.id));
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const MetricsRegistry::MetricInfo& info : registry.metrics()) {
    if (info.kind != MetricKind::Gauge) continue;
    w.key(info.name).value(registry.gauge_value(info.id));
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const MetricsRegistry::MetricInfo& info : registry.metrics()) {
    if (info.kind != MetricKind::Histogram) continue;
    const MetricsRegistry::HistogramView h = registry.histogram_view(info.id);
    w.key(info.name).begin_object();
    w.key("upper_bounds").begin_array();
    for (const double bound : h.upper_bounds) w.value(bound);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t count : h.counts) w.value(count);
    w.end_array();
    w.key("total").value(h.total);
    w.key("sum").value(h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string metrics_json(const MetricsRegistry& registry) {
  JsonWriter w;
  write_metrics_object(w, registry);
  return w.str();
}

}  // namespace catbatch
