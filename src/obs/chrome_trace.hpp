// Chrome trace_event exporter: serializes an EventTracer's retained events
// into the JSON Array Format consumed by chrome://tracing and Perfetto
// (ui.perfetto.dev). One document per simulation run.
//
// Mapping (docs/OBSERVABILITY.md, "Chrome trace export"):
//   * Dispatch events become "X" (complete) slices on pid 1 ("tasks"),
//     packed onto execution lanes by a greedy interval partition — the
//     rendered lanes are a Gantt chart whose lane count equals the maximal
//     concurrency, valid for counting-mode runs that have no processor
//     identities.
//   * BatchOpen/BatchClose become "B"/"E" spans ("busy period") on pid 2.
//   * TaskReveal/TaskReady/Select become "i" instants on pid 2; Select
//     carries its wall-clock duration and pick count in args.
//   * ProcAcquire/ProcRelease drive a "C" counter track ("procs_in_use").
// The timeline is *simulated* time scaled by us_per_time_unit (default:
// 1 sim unit = 1000 µs, so Perfetto's "ms" readout equals sim units).
#pragma once

#include <string>

#include "core/graph.hpp"
#include "obs/tracer.hpp"

namespace catbatch {

struct ChromeTraceOptions {
  /// Resolves task names for slice labels; null renders "task <id>".
  const TaskGraph* graph = nullptr;
  /// Microseconds per simulated time unit on the trace timeline.
  double us_per_time_unit = 1000.0;
};

/// The full trace document: {"traceEvents": [...], "displayTimeUnit":
/// "ms", "otherData": {...}}. otherData records total/dropped event counts
/// so wraparound truncation is visible in the artifact itself.
[[nodiscard]] std::string chrome_trace_json(
    const EventTracer& tracer, const ChromeTraceOptions& options = {});

}  // namespace catbatch
