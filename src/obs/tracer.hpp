// EventTracer: a preallocated ring buffer of engine lifecycle events.
//
// The taxonomy (docs/OBSERVABILITY.md, "Events") mirrors the engine's
// event-loop transitions: a task becoming known (Reveal), revealed to the
// scheduler (Ready), every select() call with its wall-clock duration
// (Select), task dispatch/completion, processor acquire/release, and the
// busy-period boundaries the Chrome exporter renders as batch open/close
// spans (BatchOpen/BatchClose).
//
// Contract: the buffer is allocated once, in the constructor. record() is
// O(1), never allocates and never fails — when the buffer is full it
// overwrites the oldest event and counts the overwrite in dropped().
// Events read back oldest-first; total_recorded() is exact even after
// wraparound, so exporters can report the truncation honestly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

enum class TraceEventKind : std::uint8_t {
  TaskReveal,   // engine learned of the task (ingest / release fired)
  TaskReady,    // task revealed to the scheduler (all preds done)
  BatchOpen,    // platform went from idle to busy (busy-period start)
  BatchClose,   // platform drained back to idle (busy-period end)
  Select,       // one scheduler select() call; wall_us holds its duration
  Dispatch,     // task started; duration spans its execution in sim time
  Completion,   // task finished
  ProcAcquire,  // procs processors left the free pool
  ProcRelease,  // procs processors returned to the free pool
};

/// Printable name of a trace event kind (stable; used by the exporters).
[[nodiscard]] const char* trace_event_kind_name(TraceEventKind kind);

/// One recorded event. Plain data; which fields are meaningful depends on
/// the kind (see docs/OBSERVABILITY.md for the full field matrix).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::TaskReveal;
  TaskId id = kInvalidTask;  // task-scoped kinds; kInvalidTask otherwise
  Time at = 0.0;             // simulated time of the event
  Time duration = 0.0;       // sim-time span length (Dispatch), else 0
  double wall_us = 0.0;      // wall-clock µs (Select), else 0
  int procs = 0;  // width (Dispatch/Completion/Proc*), picks (Select)
};

class EventTracer {
 public:
  /// Preallocates space for `capacity` events (>= 1).
  explicit EventTracer(std::size_t capacity = 1 << 16);

  /// Appends `ev`, overwriting the oldest retained event when full.
  /// O(1), zero allocation, noexcept.
  void record(const TraceEvent& ev) noexcept;

  /// Retained events, oldest first; `i < size()`.
  [[nodiscard]] const TraceEvent& event(std::size_t i) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.size();
  }
  /// Every record() call ever made, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return total_;
  }
  /// Events lost to wraparound (total_recorded() - size()).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - size_;
  }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Forgets all retained events and resets the counters. Keeps the buffer.
  void clear() noexcept;

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace catbatch
