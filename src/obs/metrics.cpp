#include "obs/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

MetricsRegistry::Id MetricsRegistry::register_metric(std::string_view name,
                                                     MetricKind kind) {
  CB_CHECK(!name.empty(), "metric name must be non-empty");
  for (const MetricInfo& info : directory_) {
    if (info.name == name) {
      CB_CHECK(info.kind == kind,
               "metric '" + info.name + "' re-registered with another kind");
      return info.id;
    }
  }
  return kNoMetric;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  if (const Id existing = register_metric(name, MetricKind::Counter);
      existing != kNoMetric) {
    return existing;
  }
  const Id id = static_cast<Id>(counters_.size());
  counters_.push_back(0);
  directory_.push_back(MetricInfo{std::string(name), MetricKind::Counter, id});
  return id;
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  if (const Id existing = register_metric(name, MetricKind::Gauge);
      existing != kNoMetric) {
    return existing;
  }
  const Id id = static_cast<Id>(gauges_.size());
  gauges_.push_back(0.0);
  directory_.push_back(MetricInfo{std::string(name), MetricKind::Gauge, id});
  return id;
}

MetricsRegistry::Id MetricsRegistry::histogram(
    std::string_view name, std::span<const double> upper_bounds) {
  if (const Id existing = register_metric(name, MetricKind::Histogram);
      existing != kNoMetric) {
    return existing;
  }
  CB_CHECK(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
           "histogram bucket bounds must be ascending");
  const Id id = static_cast<Id>(histograms_.size());
  Histogram h;
  h.upper_bounds.assign(upper_bounds.begin(), upper_bounds.end());
  h.counts.assign(upper_bounds.size() + 1, 0);
  histograms_.push_back(std::move(h));
  directory_.push_back(
      MetricInfo{std::string(name), MetricKind::Histogram, id});
  return id;
}

void MetricsRegistry::add(Id id, std::uint64_t delta) noexcept {
  if (id < counters_.size()) counters_[id] += delta;
}

void MetricsRegistry::set(Id id, double value) noexcept {
  if (id < gauges_.size()) gauges_[id] = value;
}

void MetricsRegistry::max_of(Id id, double value) noexcept {
  if (id < gauges_.size() && value > gauges_[id]) gauges_[id] = value;
}

void MetricsRegistry::observe(Id id, double value) noexcept {
  if (id >= histograms_.size()) return;
  Histogram& h = histograms_[id];
  // Buckets are *inclusive* upper bounds: value v lands in the first bucket
  // with v <= bound (lower_bound, not upper_bound, so v == bound counts).
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(h.upper_bounds.begin(), h.upper_bounds.end(), value) -
      h.upper_bounds.begin());
  ++h.counts[bucket];
  h.sum += value;
  ++h.total;
}

std::uint64_t MetricsRegistry::counter_value(Id id) const {
  CB_CHECK(id < counters_.size(), "unknown counter id");
  return counters_[id];
}

double MetricsRegistry::gauge_value(Id id) const {
  CB_CHECK(id < gauges_.size(), "unknown gauge id");
  return gauges_[id];
}

MetricsRegistry::HistogramView MetricsRegistry::histogram_view(Id id) const {
  CB_CHECK(id < histograms_.size(), "unknown histogram id");
  const Histogram& h = histograms_[id];
  return HistogramView{h.upper_bounds, h.counts, h.total, h.sum};
}

const MetricsRegistry::MetricInfo* MetricsRegistry::find(
    std::string_view name) const {
  for (const MetricInfo& info : directory_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace catbatch
