// EngineObserver: the hook object the simulation engine drives at each
// event-loop transition (sim/engine.cpp). Bundles an optional EventTracer
// and an optional MetricsRegistry behind one pointer in SimOptions.
//
// Overhead contract (docs/OBSERVABILITY.md, "Overhead"): with no observer
// installed (SimOptions::observer == nullptr, the default) every hook site
// in the engine is a single predictable-false branch — the PR 2 zero-alloc
// guarantee and the perf gate are unaffected. With an observer installed,
// every callback is O(1) (observe() is O(log buckets)) and allocation-free:
// the tracer's ring buffer is preallocated and all engine metrics are
// registered in the constructor, before the first event. Wall-clock select
// timing is only taken when an observer is installed (wants_select_timing).
#pragma once

#include <cstdint>

#include "core/task.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace catbatch {

class EngineObserver {
 public:
  /// Either pointer may be null; the observer records into whichever sinks
  /// exist. The pointees must outlive the observer.
  EngineObserver(EventTracer* tracer, MetricsRegistry* metrics);

  /// True when select() calls should be wall-clock timed (any sink set).
  [[nodiscard]] bool wants_select_timing() const noexcept {
    return tracer_ != nullptr || metrics_ != nullptr;
  }

  // -- engine callbacks (all O(1), allocation-free) -----------------------

  /// The engine learned of `id` (ingest, or its release time fired).
  void on_task_revealed(TaskId id, Time now) noexcept;
  /// `id` was revealed to the scheduler (all predecessors complete).
  void on_task_ready(TaskId id, Time now) noexcept;
  /// One select() call returned: `picks` tasks chosen out of `free_procs`
  /// free processors, taking `wall_us` microseconds of wall clock.
  void on_select(Time now, int free_procs, double wall_us,
                 std::size_t picks) noexcept;
  /// `id` started on `width` processors, to run over [start, finish).
  void on_dispatch(TaskId id, Time start, Time finish, int width) noexcept;
  /// `id` finished, freeing `width` processors.
  void on_complete(TaskId id, Time now, int width) noexcept;
  /// The platform transitioned idle -> busy (a busy period / batch opened).
  void on_busy_open(Time now) noexcept;
  /// The platform drained back to idle (the busy period closed).
  void on_busy_close(Time now) noexcept;
  /// Simulation finished: final whole-run gauges (idle area, makespan).
  void on_run_end(Time makespan, Time busy_area, int procs,
                  std::size_t tasks) noexcept;

  [[nodiscard]] EventTracer* tracer() const noexcept { return tracer_; }
  [[nodiscard]] MetricsRegistry* metrics() const noexcept { return metrics_; }

 private:
  void trace(TraceEventKind kind, TaskId id, Time at, Time duration,
             double wall_us, int procs) noexcept;

  EventTracer* tracer_;
  MetricsRegistry* metrics_;
  int procs_in_use_ = 0;

  // Pre-registered metric ids (kNoMetric when metrics_ == nullptr).
  MetricsRegistry::Id tasks_ready_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id tasks_dispatched_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id tasks_completed_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id select_calls_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id busy_periods_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id procs_acquired_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id procs_in_use_gauge_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id max_procs_in_use_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id makespan_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id busy_area_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id idle_area_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id select_us_hist_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id picks_hist_ = MetricsRegistry::kNoMetric;
};

}  // namespace catbatch
