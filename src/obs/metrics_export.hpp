// MetricsRegistry serialization: the flat JSON snapshot merged into
// BENCH_*.json reports (analysis/json_report.hpp) and written standalone by
// sched_cli --metrics-json. Schema (docs/OBSERVABILITY.md, "Metrics JSON"):
//
//   {
//     "counters":   { "engine.tasks_dispatched": 100, ... },
//     "gauges":     { "engine.idle_area": 12.5, ... },
//     "histograms": { "engine.select_us": {
//         "upper_bounds": [0.25, 0.5, ...],   // +inf bucket implied
//         "counts": [90, 7, ...],             // upper_bounds.size() + 1
//         "total": 101, "sum": 17.25 }, ... }
//   }
//
// Keys appear in registration order within each section.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "support/json.hpp"

namespace catbatch {

/// Writes the snapshot object above at the writer's current position
/// (the caller has emitted the surrounding key, if any).
void write_metrics_object(JsonWriter& w, const MetricsRegistry& registry);

/// The snapshot as a standalone document.
[[nodiscard]] std::string metrics_json(const MetricsRegistry& registry);

}  // namespace catbatch
