// MetricsRegistry: named counters, gauges and fixed-bucket histograms for
// engine- and scheduler-level instrumentation.
//
// Contract (docs/OBSERVABILITY.md, "Metrics"): registration may allocate
// (it interns the name and sizes the slot); every *update* — add(), set(),
// max_of(), observe() — touches only preallocated plain slots
// (std::uint64_t / double) and performs zero heap allocation, so metrics
// can sit inside the simulate() hot loop without disturbing the zero-alloc
// guarantee of DESIGN.md "Engine complexity". Updates are O(1) except
// observe(), which is O(log buckets) (a binary search over at most a few
// dozen inclusive upper bounds).
//
// Ids are dense indices per metric kind; registering an existing name of
// the same kind returns the existing id (re-registering under a different
// kind throws). The registry is not thread-safe: one registry per
// simulation/bench thread, merged at the edges if needed.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace catbatch {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNoMetric = std::numeric_limits<Id>::max();

  // -- registration (may allocate; do this before the hot loop) -----------

  /// Registers (or finds) a monotonically increasing uint64 counter.
  Id counter(std::string_view name);
  /// Registers (or finds) a last-value-wins double gauge.
  Id gauge(std::string_view name);
  /// Registers (or finds) a histogram with the given finite ascending
  /// bucket upper bounds; an implicit +inf overflow bucket is appended, so
  /// the histogram has `upper_bounds.size() + 1` counts. Bounds are
  /// *inclusive*: a sample lands in the first bucket with value <= bound.
  Id histogram(std::string_view name, std::span<const double> upper_bounds);

  // -- zero-allocation updates --------------------------------------------

  void add(Id id, std::uint64_t delta = 1) noexcept;  // counter += delta
  void set(Id id, double value) noexcept;             // gauge = value
  void max_of(Id id, double value) noexcept;          // gauge = max(gauge, v)
  void observe(Id id, double value) noexcept;         // histogram sample

  // -- readback / export --------------------------------------------------

  struct HistogramView {
    std::span<const double> upper_bounds;   // finite bounds (no +inf)
    std::span<const std::uint64_t> counts;  // upper_bounds.size() + 1 slots
    std::uint64_t total = 0;                // number of samples
    double sum = 0.0;                       // sum of samples
  };

  /// One directory row per registered metric, in registration order.
  struct MetricInfo {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    Id id = kNoMetric;  // kind-specific dense id
  };

  [[nodiscard]] std::span<const MetricInfo> metrics() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::uint64_t counter_value(Id id) const;
  [[nodiscard]] double gauge_value(Id id) const;
  [[nodiscard]] HistogramView histogram_view(Id id) const;

  /// Directory row for `name`, or nullptr if never registered.
  [[nodiscard]] const MetricInfo* find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return directory_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return directory_.empty(); }

 private:
  struct Histogram {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> counts;  // upper_bounds.size() + 1
    double sum = 0.0;
    std::uint64_t total = 0;
  };

  Id register_metric(std::string_view name, MetricKind kind);

  std::vector<MetricInfo> directory_;
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Histogram> histograms_;
};

}  // namespace catbatch
