// Process-level memory statistics for the perf bench and its bytes/task
// gate.
//
// The 10M-task work is budgeted in *bytes per task*: a layout regression
// (say, a per-task std::string creeping back in) shows up as a peak-RSS
// jump long before it shows up as a throughput loss. Linux exposes what we
// need in /proc/self/status (VmRSS, VmHWM); the high-water mark can be
// reset via /proc/self/clear_refs, which is what lets one bench process
// measure several tiers independently. Everything degrades gracefully:
// unavailable proc files yield 0 / false and callers skip the gate rather
// than fail it.
#pragma once

#include <cstddef>

namespace catbatch {

/// Current resident set size (VmRSS) in bytes; falls back to 0 when
/// /proc/self/status is unavailable (non-Linux).
[[nodiscard]] std::size_t current_rss_bytes();

/// Peak resident set size in bytes: VmHWM from /proc/self/status, falling
/// back to getrusage(RUSAGE_SELF).ru_maxrss, else 0.
[[nodiscard]] std::size_t peak_rss_bytes();

/// Resets the kernel's RSS high-water mark to the current RSS (writes "5"
/// to /proc/self/clear_refs). Returns true on success; false means
/// peak_rss_bytes() still reports the all-time peak and per-phase memory
/// measurements are not possible.
bool reset_peak_rss();

}  // namespace catbatch
