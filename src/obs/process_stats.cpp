#include "obs/process_stats.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace catbatch {

namespace {

/// Reads a "<key>:  <kB> kB" line from /proc/self/status; 0 if absent.
std::size_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) {
        kb = static_cast<std::size_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::size_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() {
  if (const std::size_t kb = proc_status_kb("VmHWM"); kb != 0) {
    return kb * 1024;
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
  }
#endif
  return 0;
}

bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "we");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace catbatch
