#include "obs/summary.hpp"

#include <sstream>

#include "support/table.hpp"
#include "support/text.hpp"

namespace catbatch {

namespace {

std::string bucket_label(std::span<const double> bounds, std::size_t i) {
  if (i == 0) return "<= " + format_number(bounds[0], 3);
  if (i == bounds.size()) return "> " + format_number(bounds.back(), 3);
  return "<= " + format_number(bounds[i], 3);
}

}  // namespace

std::string obs_summary(const MetricsRegistry* registry,
                        const EventTracer* tracer) {
  std::ostringstream os;
  if (registry == nullptr && tracer == nullptr) {
    return "(observability disabled: no metrics registry or tracer)\n";
  }

  if (registry != nullptr && !registry->empty()) {
    TextTable scalars({"metric", "kind", "value"});
    for (const MetricsRegistry::MetricInfo& info : registry->metrics()) {
      if (info.kind == MetricKind::Counter) {
        scalars.add_row({info.name, "counter",
                         std::to_string(registry->counter_value(info.id))});
      } else if (info.kind == MetricKind::Gauge) {
        scalars.add_row({info.name, "gauge",
                         format_number(registry->gauge_value(info.id), 4)});
      }
    }
    if (scalars.row_count() > 0) os << scalars.render();

    for (const MetricsRegistry::MetricInfo& info : registry->metrics()) {
      if (info.kind != MetricKind::Histogram) continue;
      const MetricsRegistry::HistogramView h =
          registry->histogram_view(info.id);
      os << "\n" << info.name << "  (total " << h.total << ", mean "
         << format_number(h.total > 0
                              ? h.sum / static_cast<double>(h.total)
                              : 0.0,
                          4)
         << ")\n";
      TextTable buckets({"bucket", "count"});
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;  // one screen: skip empty buckets
        buckets.add_row({bucket_label(h.upper_bounds, i),
                         std::to_string(h.counts[i])});
      }
      os << buckets.render();
    }
  }

  if (tracer != nullptr) {
    os << "\ntrace ring: " << tracer->size() << " retained / "
       << tracer->total_recorded() << " recorded";
    if (tracer->dropped() > 0) {
      os << " (" << tracer->dropped() << " dropped to wraparound)";
    }
    os << ", capacity " << tracer->capacity() << "\n";
  }
  return os.str();
}

}  // namespace catbatch
