#include "obs/chrome_trace.hpp"

#include <string>
#include <vector>

#include "support/json.hpp"

namespace catbatch {

namespace {

constexpr int kTaskPid = 1;    // dispatch slices, one lane per tid
constexpr int kEnginePid = 2;  // lifecycle instants, busy spans, counters

void begin_event(JsonWriter& w, const char* name, const char* ph, double ts,
                 int pid, int tid) {
  w.begin_object();
  w.key("name").value(name);
  w.key("ph").value(ph);
  w.key("ts").value(ts);
  w.key("pid").value(pid);
  w.key("tid").value(tid);
}

void metadata(JsonWriter& w, const char* kind, int pid, int tid,
              const char* label) {
  begin_event(w, kind, "M", 0.0, pid, tid);
  w.key("args").begin_object().key("name").value(label).end_object();
  w.end_object();
}

std::string slice_name(const ChromeTraceOptions& options, TaskId id) {
  if (options.graph != nullptr && id < options.graph->size()) {
    const std::string& name = options.graph->task(id).name;
    if (!name.empty()) return name;
  }
  return "task " + std::to_string(id);
}

/// Greedy interval partition: the first lane whose previous slice has
/// finished takes the task; a new lane opens only at peak concurrency.
int assign_lane(std::vector<Time>& lane_free, Time start, Time finish) {
  for (std::size_t lane = 0; lane < lane_free.size(); ++lane) {
    if (lane_free[lane] <= start) {
      lane_free[lane] = finish;
      return static_cast<int>(lane);
    }
  }
  lane_free.push_back(finish);
  return static_cast<int>(lane_free.size()) - 1;
}

}  // namespace

std::string chrome_trace_json(const EventTracer& tracer,
                              const ChromeTraceOptions& options) {
  const double scale = options.us_per_time_unit;
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  metadata(w, "process_name", kTaskPid, 0, "tasks");
  metadata(w, "process_name", kEnginePid, 0, "engine");
  metadata(w, "thread_name", kEnginePid, 0, "lifecycle");
  metadata(w, "thread_name", kEnginePid, 1, "scheduler");
  metadata(w, "thread_name", kEnginePid, 2, "busy periods");

  std::vector<Time> lane_free;
  int procs_in_use = 0;
  int busy_depth = 0;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const TraceEvent& ev = tracer.event(i);
    const double ts = static_cast<double>(ev.at) * scale;
    switch (ev.kind) {
      case TraceEventKind::Dispatch: {
        const std::string name = slice_name(options, ev.id);
        const int lane =
            assign_lane(lane_free, ev.at, ev.at + ev.duration);
        begin_event(w, name.c_str(), "X", ts, kTaskPid, lane);
        w.key("dur").value(static_cast<double>(ev.duration) * scale);
        w.key("args").begin_object();
        w.key("task").value(static_cast<std::uint64_t>(ev.id));
        w.key("procs").value(ev.procs);
        w.end_object();
        w.end_object();
        break;
      }
      case TraceEventKind::TaskReveal:
      case TraceEventKind::TaskReady:
      case TraceEventKind::Completion: {
        begin_event(w, trace_event_kind_name(ev.kind), "i", ts, kEnginePid,
                    0);
        w.key("s").value("t");
        w.key("args").begin_object();
        w.key("task").value(static_cast<std::uint64_t>(ev.id));
        w.end_object();
        w.end_object();
        break;
      }
      case TraceEventKind::Select: {
        begin_event(w, "select", "i", ts, kEnginePid, 1);
        w.key("s").value("t");
        w.key("args").begin_object();
        w.key("wall_us").value(ev.wall_us);
        w.key("picks").value(ev.procs);
        w.end_object();
        w.end_object();
        break;
      }
      case TraceEventKind::BatchOpen: {
        begin_event(w, "busy period", "B", ts, kEnginePid, 2);
        w.end_object();
        ++busy_depth;
        break;
      }
      case TraceEventKind::BatchClose: {
        // An open lost to ring wraparound would leave this unbalanced;
        // skip the orphan instead of emitting an invalid trace.
        if (busy_depth > 0) {
          begin_event(w, "busy period", "E", ts, kEnginePid, 2);
          w.end_object();
          --busy_depth;
        }
        break;
      }
      case TraceEventKind::ProcAcquire:
      case TraceEventKind::ProcRelease: {
        procs_in_use += ev.kind == TraceEventKind::ProcAcquire ? ev.procs
                                                               : -ev.procs;
        begin_event(w, "procs_in_use", "C", ts, kEnginePid, 0);
        w.key("args").begin_object();
        w.key("procs").value(procs_in_use);
        w.end_object();
        w.end_object();
        break;
      }
    }
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("generator").value("catbatch");
  w.key("events_recorded").value(tracer.total_recorded());
  w.key("events_dropped").value(tracer.dropped());
  w.key("us_per_time_unit").value(scale);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace catbatch
