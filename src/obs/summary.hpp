// One-screen text rendering of an observability session: metric tables
// (counters, gauges, histograms with bucket counts) plus the tracer's
// retention statistics. Printed by sched_cli --metrics and by benches that
// want the instrumented view next to their figure tables.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace catbatch {

/// Renders `registry` (and, when non-null, `tracer`'s retention stats)
/// as aligned text tables. Either argument may be null; both null yields
/// an explanatory one-liner.
[[nodiscard]] std::string obs_summary(const MetricsRegistry* registry,
                                      const EventTracer* tracer = nullptr);

}  // namespace catbatch
