#include "obs/observer.hpp"

namespace catbatch {

namespace {

// Engine-level bucket layouts. Select durations are wall-clock µs; picks
// per call are small integers.
constexpr double kSelectUsBounds[] = {0.25, 0.5, 1.0,  2.0,   5.0,
                                      10.0, 25.0, 50.0, 100.0, 1000.0};
constexpr double kPicksBounds[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};

}  // namespace

EngineObserver::EngineObserver(EventTracer* tracer, MetricsRegistry* metrics)
    : tracer_(tracer), metrics_(metrics) {
  if (metrics_ == nullptr) return;
  tasks_ready_ = metrics_->counter("engine.tasks_ready");
  tasks_dispatched_ = metrics_->counter("engine.tasks_dispatched");
  tasks_completed_ = metrics_->counter("engine.tasks_completed");
  select_calls_ = metrics_->counter("engine.select_calls");
  busy_periods_ = metrics_->counter("engine.busy_periods");
  procs_acquired_ = metrics_->counter("engine.procs_acquired");
  procs_in_use_gauge_ = metrics_->gauge("engine.procs_in_use");
  max_procs_in_use_ = metrics_->gauge("engine.max_procs_in_use");
  makespan_ = metrics_->gauge("engine.makespan");
  busy_area_ = metrics_->gauge("engine.busy_area");
  idle_area_ = metrics_->gauge("engine.idle_area");
  select_us_hist_ = metrics_->histogram("engine.select_us", kSelectUsBounds);
  picks_hist_ = metrics_->histogram("engine.picks_per_select", kPicksBounds);
}

void EngineObserver::trace(TraceEventKind kind, TaskId id, Time at,
                           Time duration, double wall_us,
                           int procs) noexcept {
  if (tracer_ == nullptr) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.id = id;
  ev.at = at;
  ev.duration = duration;
  ev.wall_us = wall_us;
  ev.procs = procs;
  tracer_->record(ev);
}

void EngineObserver::on_task_revealed(TaskId id, Time now) noexcept {
  trace(TraceEventKind::TaskReveal, id, now, 0.0, 0.0, 0);
}

void EngineObserver::on_task_ready(TaskId id, Time now) noexcept {
  trace(TraceEventKind::TaskReady, id, now, 0.0, 0.0, 0);
  if (metrics_ != nullptr) metrics_->add(tasks_ready_);
}

void EngineObserver::on_select(Time now, int free_procs, double wall_us,
                               std::size_t picks) noexcept {
  trace(TraceEventKind::Select, kInvalidTask, now, 0.0, wall_us,
        static_cast<int>(picks));
  if (metrics_ == nullptr) return;
  metrics_->add(select_calls_);
  metrics_->observe(select_us_hist_, wall_us);
  metrics_->observe(picks_hist_, static_cast<double>(picks));
  (void)free_procs;
}

void EngineObserver::on_dispatch(TaskId id, Time start, Time finish,
                                 int width) noexcept {
  trace(TraceEventKind::Dispatch, id, start, finish - start, 0.0, width);
  trace(TraceEventKind::ProcAcquire, id, start, 0.0, 0.0, width);
  procs_in_use_ += width;
  if (metrics_ == nullptr) return;
  metrics_->add(tasks_dispatched_);
  metrics_->add(procs_acquired_, static_cast<std::uint64_t>(width));
  metrics_->set(procs_in_use_gauge_, static_cast<double>(procs_in_use_));
  metrics_->max_of(max_procs_in_use_, static_cast<double>(procs_in_use_));
}

void EngineObserver::on_complete(TaskId id, Time now, int width) noexcept {
  trace(TraceEventKind::Completion, id, now, 0.0, 0.0, width);
  trace(TraceEventKind::ProcRelease, id, now, 0.0, 0.0, width);
  procs_in_use_ -= width;
  if (metrics_ == nullptr) return;
  metrics_->add(tasks_completed_);
  metrics_->set(procs_in_use_gauge_, static_cast<double>(procs_in_use_));
}

void EngineObserver::on_busy_open(Time now) noexcept {
  trace(TraceEventKind::BatchOpen, kInvalidTask, now, 0.0, 0.0, 0);
  if (metrics_ != nullptr) metrics_->add(busy_periods_);
}

void EngineObserver::on_busy_close(Time now) noexcept {
  trace(TraceEventKind::BatchClose, kInvalidTask, now, 0.0, 0.0, 0);
}

void EngineObserver::on_run_end(Time makespan, Time busy_area, int procs,
                                std::size_t tasks) noexcept {
  if (metrics_ == nullptr) return;
  metrics_->set(makespan_, static_cast<double>(makespan));
  metrics_->set(busy_area_, static_cast<double>(busy_area));
  metrics_->set(idle_area_,
                static_cast<double>(procs) * static_cast<double>(makespan) -
                    static_cast<double>(busy_area));
  (void)tasks;
}

}  // namespace catbatch
