#include "obs/tracer.hpp"

#include "support/check.hpp"

namespace catbatch {

const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::TaskReveal: return "task.reveal";
    case TraceEventKind::TaskReady: return "task.ready";
    case TraceEventKind::BatchOpen: return "batch.open";
    case TraceEventKind::BatchClose: return "batch.close";
    case TraceEventKind::Select: return "select";
    case TraceEventKind::Dispatch: return "task.dispatch";
    case TraceEventKind::Completion: return "task.complete";
    case TraceEventKind::ProcAcquire: return "proc.acquire";
    case TraceEventKind::ProcRelease: return "proc.release";
  }
  return "unknown";
}

EventTracer::EventTracer(std::size_t capacity) {
  CB_CHECK(capacity >= 1, "tracer needs capacity for at least one event");
  buffer_.resize(capacity);
}

void EventTracer::record(const TraceEvent& ev) noexcept {
  const std::size_t cap = buffer_.size();
  buffer_[(head_ + size_) % cap] = ev;
  if (size_ < cap) {
    ++size_;
  } else {
    head_ = (head_ + 1) % cap;  // overwrote the oldest
  }
  ++total_;
}

const TraceEvent& EventTracer::event(std::size_t i) const noexcept {
  return buffer_[(head_ + i) % buffer_.size()];
}

void EventTracer::clear() noexcept {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

}  // namespace catbatch
