// Instance sources: where the simulated DAG comes from.
//
// A static instance is just a TaskGraph. The lower-bound construction
// Z^Alg_P(K) (Definition 9), however, is *adaptive*: the next layer of the
// DAG depends on which task the algorithm happened to finish last. The
// InstanceSource interface models both: the engine asks the source for the
// initial tasks and notifies it of every completion; the source may respond
// with newly created tasks whose predecessors are already-emitted tasks.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "core/task.hpp"

namespace catbatch {

struct SoaGraph;  // core/soa_graph.hpp

/// A task emitted by a source. Ids must be dense and ascending (task k is
/// the k-th emitted task), matching the ids of `realized_graph()`.
struct SourceTask {
  Time work = 0.0;          // actual (simulated) execution time
  Time declared_work = -1;  // what the scheduler is told; <0 means `work`
  int procs = 1;
  std::vector<TaskId> predecessors;
  std::string name;
  /// Release time (Section 2.3's first online setting): the task cannot be
  /// revealed nor started before this time, even if its predecessors are
  /// done. 0 reproduces the paper's pure precedence model.
  Time release = 0.0;

  [[nodiscard]] Time declared() const {
    return declared_work < 0 ? work : declared_work;
  }
};

class InstanceSource {
 public:
  virtual ~InstanceSource() = default;

  /// Resets internal state and returns the tasks known at time 0.
  [[nodiscard]] virtual std::vector<SourceTask> start() = 0;

  /// Called when task `id` completes at time `now`; returns any tasks the
  /// instance creates in response (possibly none). Predecessor lists may
  /// reference any previously emitted task.
  [[nodiscard]] virtual std::vector<SourceTask> on_complete(TaskId id,
                                                            Time now) = 0;

  /// The DAG emitted so far (all tasks from start() and on_complete()).
  /// After the simulation drains, this is the full realized instance, used
  /// for validation and lower-bound computation.
  [[nodiscard]] virtual const TaskGraph& realized_graph() const = 0;

  /// Zero-copy fast path: a source whose whole instance is a fixed
  /// TaskGraph may return it here, promising that on_complete() always
  /// returns no tasks. The engine then ingests tasks straight from the
  /// graph — no SourceTask materialization, no per-task name/predecessor
  /// copies — and never calls start(). Adaptive sources keep the default.
  [[nodiscard]] virtual const TaskGraph* static_graph() const {
    return nullptr;
  }

  /// Zero-copy *SoA* fast path, preferred over static_graph() when both
  /// are non-null: a source whose instance is already frozen in SoA/CSR
  /// form (core/soa_graph.hpp) returns it here, promising — like
  /// static_graph() — that on_complete() never emits tasks. The engine
  /// then borrows the work/procs/adjacency arrays by pointer for the whole
  /// run: no per-task ingest at all, which is what 1M-10M-task instances
  /// require. The returned graph must outlive the simulation.
  [[nodiscard]] virtual const SoaGraph* soa_graph() const { return nullptr; }
};

/// Source wrapping a fixed TaskGraph: the engine ingests every task up
/// front via static_graph() (it still reveals them to the scheduler only
/// when they become ready). start() remains as the generic (copying)
/// InstanceSource fallback but is not used by the engine.
class GraphSource final : public InstanceSource {
 public:
  explicit GraphSource(const TaskGraph& graph);

  [[nodiscard]] std::vector<SourceTask> start() override;
  [[nodiscard]] std::vector<SourceTask> on_complete(TaskId id,
                                                    Time now) override;
  [[nodiscard]] const TaskGraph& realized_graph() const override {
    return graph_;
  }
  [[nodiscard]] const TaskGraph* static_graph() const override {
    return &graph_;
  }

 private:
  const TaskGraph& graph_;
};

}  // namespace catbatch
