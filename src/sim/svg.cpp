#include "sim/svg.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"
#include "support/text.hpp"

namespace catbatch {

namespace {

/// A qualitative palette (12 colors, colorblind-aware ordering).
constexpr const char* kPalette[] = {
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948",
    "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string svg_gantt(const TaskGraph& graph, const Schedule& schedule,
                      int procs, const SvgGanttOptions& options) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CB_CHECK(options.width_px >= 100 && options.lane_height_px >= 8,
           "SVG dimensions too small");
  CB_CHECK(options.color_groups.empty() ||
               options.color_groups.size() >= graph.size(),
           "color group table does not cover the instance");

  const Time makespan = schedule.makespan();
  const int margin_left = 48;
  const int margin_top = 24;
  const int chart_width = options.width_px - margin_left - 12;
  const int height =
      margin_top + procs * options.lane_height_px + 36;

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << options.width_px << "\" height=\"" << height
     << "\" font-family=\"sans-serif\" font-size=\"11\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Lane backgrounds + processor labels.
  for (int p = 0; p < procs; ++p) {
    const int y =
        margin_top + (procs - 1 - p) * options.lane_height_px;
    os << "<rect x=\"" << margin_left << "\" y=\"" << y << "\" width=\""
       << chart_width << "\" height=\"" << options.lane_height_px
       << "\" fill=\"" << (p % 2 == 0 ? "#f7f7f7" : "#efefef")
       << "\"/>\n";
    os << "<text x=\"" << margin_left - 6 << "\" y=\""
       << y + options.lane_height_px / 2 + 4
       << "\" text-anchor=\"end\">P" << p << "</text>\n";
  }

  if (makespan > 0.0) {
    for (const ScheduledTask& e : schedule.entries()) {
      // Counting-mode entries carry no identities; rendering them here
      // would silently draw an empty chart. Fail clearly instead (the
      // ASCII Gantt has an occupancy fallback; SVG lanes do not).
      CB_CHECK(!e.processors.empty(),
               "SVG Gantt needs processor identities: re-run the schedule "
               "in ScheduleMode::Identity (counting-mode entries have none)");
      const double x0 =
          static_cast<double>(e.start) / static_cast<double>(makespan);
      const double x1 =
          static_cast<double>(e.finish) / static_cast<double>(makespan);
      const std::size_t group = options.color_groups.empty()
                                    ? static_cast<std::size_t>(e.id)
                                    : options.color_groups[e.id];
      const char* fill = kPalette[group % kPaletteSize];
      for (const int p : e.processors) {
        CB_CHECK(p >= 0 && p < procs, "processor index out of range");
        const int y =
            margin_top + (procs - 1 - p) * options.lane_height_px + 1;
        os << "<rect x=\""
           << margin_left + x0 * chart_width << "\" y=\"" << y
           << "\" width=\"" << std::max(1.0, (x1 - x0) * chart_width)
           << "\" height=\"" << options.lane_height_px - 2 << "\" fill=\""
           << fill << "\" stroke=\"white\" stroke-width=\"0.5\"/>\n";
      }
      if (options.show_labels && !graph.task(e.id).name.empty() &&
          !e.processors.empty()) {
        const int top_proc =
            *std::max_element(e.processors.begin(), e.processors.end());
        const int y = margin_top +
                      (procs - 1 - top_proc) * options.lane_height_px +
                      options.lane_height_px / 2 + 4;
        os << "<text x=\"" << margin_left + x0 * chart_width + 3
           << "\" y=\"" << y << "\" fill=\"white\">"
           << escape_xml(graph.task(e.id).name) << "</text>\n";
      }
    }
  }

  // Time axis.
  const int axis_y = margin_top + procs * options.lane_height_px + 16;
  os << "<text x=\"" << margin_left << "\" y=\"" << axis_y
     << "\">0</text>\n";
  os << "<text x=\"" << margin_left + chart_width << "\" y=\"" << axis_y
     << "\" text-anchor=\"end\">" << format_number(makespan, 4)
     << "</text>\n";
  os << "</svg>\n";
  return os.str();
}

}  // namespace catbatch
