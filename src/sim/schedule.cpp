#include "sim/schedule.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

void Schedule::add(TaskId id, Time start, Time finish,
                   std::vector<int> processors) {
  CB_CHECK(!processors.empty(), "scheduled task must hold processors");
  dup_scratch_.assign(processors.begin(), processors.end());
  std::sort(dup_scratch_.begin(), dup_scratch_.end());
  CB_CHECK(std::adjacent_find(dup_scratch_.begin(), dup_scratch_.end()) ==
               dup_scratch_.end(),
           "processor set contains duplicates");
  if (!materialized_) materialize();
  add_entry(id, start, finish, std::move(processors), 0);
}

void Schedule::add_counted(TaskId id, Time start, Time finish, int procs) {
  CB_CHECK(procs >= 1, "scheduled task must hold processors");
  if (materialized_) {
    add_entry(id, start, finish, {}, procs);
    return;
  }
  // Cheap validity checks only; the scheduled-once contract is enforced
  // lazily by ensure_index() so the hot path touches nothing but the
  // sequential columns (no random-access index write per task).
  CB_CHECK(id != kInvalidTask, "cannot schedule the invalid task id");
  CB_CHECK(finish > start, "scheduled task must have positive duration");
  CB_CHECK(start >= 0.0, "scheduled task cannot start before time 0");
  ids_.push_back(id);
  starts_.push_back(start);
  finishes_.push_back(finish);
  widths_.push_back(procs);
  makespan_ = std::max(makespan_, finish);
}

void Schedule::check_new_entry(TaskId id, Time start, Time finish) const {
  CB_CHECK(id != kInvalidTask, "cannot schedule the invalid task id");
  CB_CHECK(finish > start, "scheduled task must have positive duration");
  CB_CHECK(start >= 0.0, "scheduled task cannot start before time 0");
  CB_CHECK(!contains(id), "task scheduled twice");
}

void Schedule::add_entry(TaskId id, Time start, Time finish,
                         std::vector<int> processors, int width) {
  check_new_entry(id, start, finish);  // contains() indexed everything prior
  if (index_.size() <= id) index_.resize(id + 1, npos);
  index_[id] = entries_.size();
  entries_.push_back(
      ScheduledTask{id, start, finish, std::move(processors), width});
  indexed_ = entries_.size();
  makespan_ = std::max(makespan_, finish);
}

bool Schedule::contains(TaskId id) const {
  ensure_index();
  return id < index_.size() && index_[id] != npos;
}

void Schedule::ensure_index() const {
  const std::size_t total = materialized_ ? entries_.size() : ids_.size();
  for (; indexed_ < total; ++indexed_) {
    const TaskId id = materialized_ ? entries_[indexed_].id : ids_[indexed_];
    if (index_.size() <= id) index_.resize(id + 1, npos);
    CB_CHECK(index_[id] == npos, "task scheduled twice");
    index_[id] = indexed_;
  }
}

void Schedule::materialize() const {
  ensure_index();
  entries_.reserve(entries_.size() + ids_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    entries_.push_back(
        ScheduledTask{ids_[i], starts_[i], finishes_[i], {}, widths_[i]});
  }
  ids_.clear();
  ids_.shrink_to_fit();
  starts_.clear();
  starts_.shrink_to_fit();
  finishes_.clear();
  finishes_.shrink_to_fit();
  widths_.clear();
  widths_.shrink_to_fit();
  materialized_ = true;
}

void Schedule::supersede(TaskId id, Time at) {
  CB_CHECK(contains(id), "cannot supersede a task that was never scheduled");
  if (!materialized_) materialize();
  const std::size_t ord = index_[id];
  ScheduledTask row = std::move(entries_[ord]);
  CB_CHECK(at >= row.start, "cannot supersede before the attempt started");
  CB_CHECK(at <= row.finish, "cannot supersede after the attempt finished");
  row.finish = at;
  aborted_.push_back(std::move(row));
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(ord));
  index_[id] = npos;
  for (std::size_t i = ord; i < entries_.size(); ++i) {
    index_[entries_[i].id] = i;
  }
  indexed_ = entries_.size();
  makespan_ = 0.0;
  for (const ScheduledTask& e : entries_) {
    makespan_ = std::max(makespan_, e.finish);
  }
  for (const ScheduledTask& e : aborted_) {
    makespan_ = std::max(makespan_, e.finish);
  }
}

void Schedule::reserve(std::size_t tasks) {
  if (materialized_) {
    entries_.reserve(tasks);
  } else {
    ids_.reserve(tasks);
    starts_.reserve(tasks);
    finishes_.reserve(tasks);
    widths_.reserve(tasks);
  }
  // index_ is NOT pre-sized: a counting run that is never queried by id
  // should not pay 8 bytes/task for an index it never builds.
}

std::span<const ScheduledTask> Schedule::entries() const {
  if (!materialized_) materialize();
  return entries_;
}

const ScheduledTask& Schedule::entry_for(TaskId id) const {
  CB_CHECK(contains(id), "task was never scheduled");
  if (!materialized_) materialize();
  return entries_[index_[id]];
}

}  // namespace catbatch
