#include "sim/schedule.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

void Schedule::add(TaskId id, Time start, Time finish,
                   std::vector<int> processors) {
  CB_CHECK(!processors.empty(), "scheduled task must hold processors");
  std::unordered_set<int> seen(processors.begin(), processors.end());
  CB_CHECK(seen.size() == processors.size(),
           "processor set contains duplicates");
  add_entry(id, start, finish, std::move(processors), 0);
}

void Schedule::add_counted(TaskId id, Time start, Time finish, int procs) {
  CB_CHECK(procs >= 1, "scheduled task must hold processors");
  add_entry(id, start, finish, {}, procs);
}

void Schedule::add_entry(TaskId id, Time start, Time finish,
                         std::vector<int> processors, int width) {
  CB_CHECK(id != kInvalidTask, "cannot schedule the invalid task id");
  CB_CHECK(finish > start, "scheduled task must have positive duration");
  CB_CHECK(start >= 0.0, "scheduled task cannot start before time 0");
  CB_CHECK(!contains(id), "task scheduled twice");

  if (index_.size() <= id) index_.resize(id + 1, npos);
  index_[id] = entries_.size();
  entries_.push_back(
      ScheduledTask{id, start, finish, std::move(processors), width});
}

void Schedule::reserve(std::size_t tasks) {
  entries_.reserve(tasks);
  if (index_.size() < tasks) index_.reserve(tasks);
}

const ScheduledTask& Schedule::entry_for(TaskId id) const {
  CB_CHECK(contains(id), "task was never scheduled");
  return entries_[index_[id]];
}

bool Schedule::contains(TaskId id) const noexcept {
  return id < index_.size() && index_[id] != npos;
}

Time Schedule::makespan() const noexcept {
  Time best = 0.0;
  for (const ScheduledTask& e : entries_) best = std::max(best, e.finish);
  return best;
}

}  // namespace catbatch
