#include "sim/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace catbatch {

namespace {

std::string task_label(const TaskGraph& graph, TaskId id) {
  std::ostringstream os;
  os << "task " << id;
  const std::string& name = graph.task(id).name;
  if (!name.empty()) os << " ('" << name << "')";
  return os.str();
}

}  // namespace

std::optional<std::string> validate_schedule(const TaskGraph& graph,
                                             const Schedule& schedule,
                                             int procs,
                                             const ValidationOptions& options) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");

  // 1. Coverage: every task scheduled exactly once (Schedule::add already
  // rejects duplicates), nothing outside the instance.
  if (schedule.size() != graph.size()) {
    std::ostringstream os;
    os << "schedule has " << schedule.size() << " entries but the instance has "
       << graph.size() << " tasks";
    return os.str();
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    if (!schedule.contains(id)) {
      return task_label(graph, id) + " was never scheduled";
    }
  }

  for (const ScheduledTask& e : schedule.entries()) {
    const Task& task = graph.task(e.id);

    // 2. Duration matches the execution time. Compared as
    // finish == start + work — the form every schedule builder uses — so
    // the check is exact even when work itself is not a binary fraction
    // (finish - start may differ from work by one ulp).
    if (std::abs(e.finish - (e.start + task.work)) >
        options.time_tolerance) {
      std::ostringstream os;
      os << task_label(graph, e.id) << " runs [" << e.start << ", "
         << e.finish << ") but its execution time is " << task.work;
      return os.str();
    }

    // 3. Holds exactly p_i processors, all within [0, P). Counted entries
    // (counting-mode engine runs) carry a width but no identities; they are
    // acceptable only when the caller opted out of processor-set checks.
    if (e.processors.empty()) {
      if (options.check_processor_sets) {
        std::ostringstream os;
        os << task_label(graph, e.id)
           << " holds no concrete processor identities (counted entry) but "
              "processor-set checking is enabled";
        return os.str();
      }
      if (e.width != task.procs) {
        std::ostringstream os;
        os << task_label(graph, e.id) << " holds " << e.width
           << " processors but requires " << task.procs;
        return os.str();
      }
    } else {
      if (static_cast<int>(e.processors.size()) != task.procs) {
        std::ostringstream os;
        os << task_label(graph, e.id) << " holds " << e.processors.size()
           << " processors but requires " << task.procs;
        return os.str();
      }
      for (const int p : e.processors) {
        if (p < 0 || p >= procs) {
          std::ostringstream os;
          os << task_label(graph, e.id) << " holds out-of-range processor "
             << p;
          return os.str();
        }
      }
    }

    // 4. Precedence: start >= max predecessor finish, under the same
    // epsilon policy as every other time comparison — an exact tie at a
    // predecessor's finish time is feasible (running intervals are open),
    // and a start within the tolerance of it is feasible up to the
    // documented slack.
    for (const TaskId pred : graph.predecessors(e.id)) {
      const ScheduledTask& pe = schedule.entry_for(pred);
      if (e.start < pe.finish - options.time_tolerance) {
        std::ostringstream os;
        os << task_label(graph, e.id) << " starts at " << e.start
           << " before its predecessor " << task_label(graph, pred)
           << " finishes at " << pe.finish;
        return os.str();
      }
    }
  }

  // 5. Capacity sweep: at any instant, Σ p_i over running tasks <= P.
  // Releases are ordered before acquisitions when they happen no later
  // than `time_tolerance` after them — running intervals are open at both
  // ends (Section 3.1: s_i < x < s_i + t_i), and a handoff within the
  // tolerance is feasible after shifting times by at most the tolerance.
  // The processor *sum* is compared exactly against P in all cases, and
  // width-carrying (counting-mode) entries forfeit the time slack too: the
  // engine emits exact event times and disjointness is unverifiable
  // without identities, so the exact sweep is the only capacity evidence.
  struct Event {
    Time at;
    int delta;
  };
  bool any_counted = false;
  std::vector<Event> acquires, releases;
  acquires.reserve(schedule.size());
  releases.reserve(schedule.size());
  for (const ScheduledTask& e : schedule.entries()) {
    const int p = graph.task(e.id).procs;
    acquires.push_back(Event{e.start, +p});
    releases.push_back(Event{e.finish, -p});
    if (e.processors.empty()) any_counted = true;
  }
  const auto by_time = [](const Event& a, const Event& b) {
    return a.at < b.at;
  };
  std::sort(acquires.begin(), acquires.end(), by_time);
  std::sort(releases.begin(), releases.end(), by_time);
  const Time capacity_tolerance = any_counted ? 0.0 : options.time_tolerance;
  int in_use = 0;
  std::size_t released = 0;
  for (const Event& acq : acquires) {
    while (released < releases.size() &&
           releases[released].at <= acq.at + capacity_tolerance) {
      in_use += releases[released].delta;
      ++released;
    }
    in_use += acq.delta;
    if (in_use > procs) {
      std::ostringstream os;
      os << "capacity exceeded at time " << acq.at << ": " << in_use
         << " of " << procs << " processors in use";
      return os.str();
    }
  }

  // 6. Per-processor disjointness: a processor never runs two tasks at once.
  if (options.check_processor_sets) {
    struct Interval {
      Time start;
      Time finish;
      TaskId id;
    };
    std::map<int, std::vector<Interval>> by_proc;
    for (const ScheduledTask& e : schedule.entries()) {
      for (const int p : e.processors) {
        by_proc[p].push_back(Interval{e.start, e.finish, e.id});
      }
    }
    for (auto& [proc, intervals] : by_proc) {
      std::sort(intervals.begin(), intervals.end(),
                [](const Interval& a, const Interval& b) {
                  return a.start < b.start;
                });
      for (std::size_t k = 1; k < intervals.size(); ++k) {
        if (intervals[k].start <
            intervals[k - 1].finish - options.time_tolerance) {
          std::ostringstream os;
          os << "processor " << proc << " runs "
             << task_label(graph, intervals[k - 1].id) << " and "
             << task_label(graph, intervals[k].id) << " concurrently";
          return os.str();
        }
      }
    }
  }

  return std::nullopt;
}

void require_valid_schedule(const TaskGraph& graph, const Schedule& schedule,
                            int procs, const ValidationOptions& options) {
  const auto error = validate_schedule(graph, schedule, procs, options);
  CB_CHECK(!error.has_value(),
           error.has_value() ? error->c_str() : "valid");
}

}  // namespace catbatch
