#include "sim/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace catbatch {

namespace {

std::string task_label(const TaskGraph& graph, TaskId id) {
  std::ostringstream os;
  os << "task " << id;
  const std::string& name = graph.task(id).name;
  if (!name.empty()) os << " ('" << name << "')";
  return os.str();
}

}  // namespace

std::optional<std::string> validate_schedule(const TaskGraph& graph,
                                             const Schedule& schedule,
                                             int procs,
                                             const ValidationOptions& options) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");

  // 1. Coverage: every task scheduled exactly once (Schedule::add already
  // rejects duplicates), nothing outside the instance.
  if (schedule.size() != graph.size()) {
    std::ostringstream os;
    os << "schedule has " << schedule.size() << " entries but the instance has "
       << graph.size() << " tasks";
    return os.str();
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    if (!schedule.contains(id)) {
      return task_label(graph, id) + " was never scheduled";
    }
  }

  for (const ScheduledTask& e : schedule.entries()) {
    const Task& task = graph.task(e.id);

    // 2. Duration matches the execution time. Compared as
    // finish == start + work — the form every schedule builder uses — so
    // the check is exact even when work itself is not a binary fraction
    // (finish - start may differ from work by one ulp).
    if (std::abs(e.finish - (e.start + task.work)) >
        options.duration_tolerance) {
      std::ostringstream os;
      os << task_label(graph, e.id) << " runs [" << e.start << ", "
         << e.finish << ") but its execution time is " << task.work;
      return os.str();
    }

    // 3. Holds exactly p_i processors, all within [0, P). Counted entries
    // (counting-mode engine runs) carry a width but no identities; they are
    // acceptable only when the caller opted out of processor-set checks.
    if (e.processors.empty()) {
      if (options.check_processor_sets) {
        std::ostringstream os;
        os << task_label(graph, e.id)
           << " holds no concrete processor identities (counted entry) but "
              "processor-set checking is enabled";
        return os.str();
      }
      if (e.width != task.procs) {
        std::ostringstream os;
        os << task_label(graph, e.id) << " holds " << e.width
           << " processors but requires " << task.procs;
        return os.str();
      }
    } else {
      if (static_cast<int>(e.processors.size()) != task.procs) {
        std::ostringstream os;
        os << task_label(graph, e.id) << " holds " << e.processors.size()
           << " processors but requires " << task.procs;
        return os.str();
      }
      for (const int p : e.processors) {
        if (p < 0 || p >= procs) {
          std::ostringstream os;
          os << task_label(graph, e.id) << " holds out-of-range processor "
             << p;
          return os.str();
        }
      }
    }

    // 4. Precedence: start >= max predecessor finish.
    for (const TaskId pred : graph.predecessors(e.id)) {
      const ScheduledTask& pe = schedule.entry_for(pred);
      if (e.start < pe.finish) {
        std::ostringstream os;
        os << task_label(graph, e.id) << " starts at " << e.start
           << " before its predecessor " << task_label(graph, pred)
           << " finishes at " << pe.finish;
        return os.str();
      }
    }
  }

  // 5. Capacity sweep: at any instant, Σ p_i over running tasks <= P.
  // Events sorted by time with releases (-p) before acquisitions (+p) at
  // equal times, because running intervals are open at both ends
  // (Section 3.1: s_i < x < s_i + t_i).
  struct Event {
    Time at;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(2 * schedule.size());
  for (const ScheduledTask& e : schedule.entries()) {
    const int p = graph.task(e.id).procs;
    events.push_back(Event{e.start, +p});
    events.push_back(Event{e.finish, -p});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.delta < b.delta;  // releases first
  });
  int in_use = 0;
  for (const Event& ev : events) {
    in_use += ev.delta;
    if (in_use > procs) {
      std::ostringstream os;
      os << "capacity exceeded at time " << ev.at << ": " << in_use << " of "
         << procs << " processors in use";
      return os.str();
    }
  }
  if (in_use != 0) return "internal error: unbalanced capacity events";

  // 6. Per-processor disjointness: a processor never runs two tasks at once.
  if (options.check_processor_sets) {
    struct Interval {
      Time start;
      Time finish;
      TaskId id;
    };
    std::map<int, std::vector<Interval>> by_proc;
    for (const ScheduledTask& e : schedule.entries()) {
      for (const int p : e.processors) {
        by_proc[p].push_back(Interval{e.start, e.finish, e.id});
      }
    }
    for (auto& [proc, intervals] : by_proc) {
      std::sort(intervals.begin(), intervals.end(),
                [](const Interval& a, const Interval& b) {
                  return a.start < b.start;
                });
      for (std::size_t k = 1; k < intervals.size(); ++k) {
        if (intervals[k].start < intervals[k - 1].finish) {
          std::ostringstream os;
          os << "processor " << proc << " runs "
             << task_label(graph, intervals[k - 1].id) << " and "
             << task_label(graph, intervals[k].id) << " concurrently";
          return os.str();
        }
      }
    }
  }

  return std::nullopt;
}

void require_valid_schedule(const TaskGraph& graph, const Schedule& schedule,
                            int procs, const ValidationOptions& options) {
  const auto error = validate_schedule(graph, schedule, procs, options);
  CB_CHECK(!error.has_value(),
           error.has_value() ? error->c_str() : "valid");
}

}  // namespace catbatch
