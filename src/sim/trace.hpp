// Schedule inspection: CSV export, ASCII Gantt charts and utilization
// profiles. Used by the examples and by every bench binary that regenerates
// one of the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

/// One step of the piecewise-constant "processors in use" function.
struct UtilizationStep {
  Time from = 0.0;
  Time to = 0.0;
  int procs_in_use = 0;
};

/// Processors-in-use over time, as maximal constant segments covering
/// [0, makespan]. Empty schedule yields an empty profile.
[[nodiscard]] std::vector<UtilizationStep> utilization_profile(
    const TaskGraph& graph, const Schedule& schedule);

/// Time-averaged utilization in [0, 1] relative to `procs` processors.
[[nodiscard]] double average_utilization(const TaskGraph& graph,
                                         const Schedule& schedule, int procs);

/// CSV with one row per scheduled task:
/// id,name,start,finish,work,procs,processor_list
/// Counting-mode entries (no processor identities) render the processor
/// column as the width marker "#<procs>" instead of an identity list.
[[nodiscard]] std::string schedule_to_csv(const TaskGraph& graph,
                                          const Schedule& schedule);

/// ASCII Gantt chart: one row per processor, `width` columns over
/// [0, makespan]. Each task is drawn with a stable printable character; '.'
/// marks idle processor-time. Counting-mode schedules are detected and
/// rendered as occupancy rows (identities re-derived lowest-free-first, a
/// header line marks the fallback); a counted schedule that exceeds the
/// platform capacity throws instead of rendering garbage.
[[nodiscard]] std::string ascii_gantt(const TaskGraph& graph,
                                      const Schedule& schedule, int procs,
                                      std::size_t width = 72);

}  // namespace catbatch
