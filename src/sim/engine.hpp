// Discrete-event simulation of online rigid-DAG scheduling.
//
// The engine owns the clock, the processor pool, and the revelation rule:
// a task is revealed to the scheduler exactly when its last predecessor
// completes (or at time 0 for roots). Decision points are time 0 and every
// task completion, matching Algorithms 2-3. The engine enforces the
// capacity constraint on every start and detects schedulers that deadlock
// (idle platform, no selection, work remaining).
//
// Hot-path layout: emitted tasks live in a flat arena (plain-old-data rows,
// CSR predecessor/successor adjacency, batch-sized buffer growth), the
// scheduler protocol exchanges spans and a reused picks buffer, and the
// event queue is a reserve-able binary heap — the steady-state loop of a
// counting-mode run performs zero heap allocations per event (see
// DESIGN.md, "Engine complexity").
//
// Observability: SimOptions::observer (obs/observer.hpp) receives every
// event-loop transition — reveal, ready, select (with wall-clock
// duration), dispatch, completion, busy-period boundaries. The contract,
// including the null-observer zero-overhead guarantee, is in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>

#include "sim/schedule.hpp"
#include "sim/scheduler.hpp"
#include "sim/source.hpp"

namespace catbatch {

/// How the engine tracks processor occupancy.
enum class ScheduleMode {
  /// Concrete processor indices per task (lowest-free-first), full Gantt /
  /// SVG / per-processor validation support.
  Identity,
  /// Only *counts* of busy processors: acquire/release is O(1), schedule
  /// entries carry the width but no processor identities. The makespan,
  /// decision sequence and every metric derived from start/finish times are
  /// bit-identical to Identity mode (schedulers never see identities).
  /// Intended for sweeps and benches that never render a Gantt chart.
  Counting,
};

class EngineObserver;  // obs/observer.hpp

struct SimOptions {
  ScheduleMode mode = ScheduleMode::Identity;
  /// Optional observability sink (obs/observer.hpp): when non-null the
  /// engine reports every event-loop transition — task reveal/ready,
  /// select() calls with wall-clock duration, dispatch, completion,
  /// busy-period boundaries — to it. The default (null) compiles each hook
  /// site down to one predictable branch, preserving the zero-alloc hot
  /// path and the perf gate (see docs/OBSERVABILITY.md, "Overhead").
  EngineObserver* observer = nullptr;
};

struct SimStats {
  std::size_t task_count = 0;
  std::size_t decision_points = 0;
  /// Events processed by the main loop (completions + delayed releases).
  std::size_t events = 0;
  /// Total processor-time actually used (Σ t_i p_i over simulated tasks).
  Time busy_area = 0.0;
};

struct SimResult {
  Schedule schedule;
  Time makespan = 0.0;
  SimStats stats;
  /// Time each task became ready (revealed to the scheduler), indexed by
  /// TaskId. Basis for waiting-time / stretch flow metrics.
  std::vector<Time> ready_times;

  /// Average fraction of the platform busy over [0, makespan].
  [[nodiscard]] double average_utilization(int procs) const {
    if (makespan <= 0.0) return 0.0;
    return static_cast<double>(stats.busy_area) /
           (static_cast<double>(procs) * static_cast<double>(makespan));
  }
};

/// Runs `scheduler` against the (possibly adaptive) instance produced by
/// `source` on `procs` processors. Throws ContractViolation on scheduler
/// protocol violations (starting an unready task, exceeding capacity,
/// deadlocking).
[[nodiscard]] SimResult simulate(InstanceSource& source,
                                 OnlineScheduler& scheduler, int procs,
                                 const SimOptions& options = {});

/// Convenience overload for static instances.
[[nodiscard]] SimResult simulate(const TaskGraph& graph,
                                 OnlineScheduler& scheduler, int procs,
                                 const SimOptions& options = {});

}  // namespace catbatch
