// Discrete-event simulation of online rigid-DAG scheduling — batch entry
// points.
//
// The engine owns the clock, the processor pool, and the revelation rule:
// a task is revealed to the scheduler exactly when its last predecessor
// completes (or at time 0 for roots). Decision points are time 0 and every
// task completion, matching Algorithms 2-3. The engine enforces the
// capacity constraint on every start and detects schedulers that deadlock
// (idle platform, no selection, work remaining).
//
// The event loop itself lives in sim/session.hpp as the stepwise
// SessionEngine; the simulate() overloads below are thin wrappers —
// submit(source) + drain() + finish() under the Simulated clock — kept as
// the convenient batch API. Service callers (catbatchd) drive the
// SessionEngine directly, one event at a time.
//
// Hot-path layout: emitted tasks live in a flat arena (plain-old-data rows,
// CSR predecessor/successor adjacency, batch-sized buffer growth), the
// scheduler protocol exchanges spans and a reused picks buffer, and the
// event queue is a reserve-able binary heap — the steady-state loop of a
// counting-mode run performs zero heap allocations per event (see
// DESIGN.md, "Engine complexity").
//
// Observability: SessionOptions::observer (obs/observer.hpp) receives
// every event-loop transition — reveal, ready, select (with wall-clock
// duration), dispatch, completion, busy-period boundaries. The contract,
// including the null-observer zero-overhead guarantee, is in
// docs/OBSERVABILITY.md.
#pragma once

#include "sim/schedule.hpp"
#include "sim/scheduler.hpp"
#include "sim/session.hpp"
#include "sim/source.hpp"

namespace catbatch {

/// Deprecated alias, kept for one release: batch and service callers now
/// share the SessionOptions surface (sim/session.hpp). simulate() ignores
/// SessionOptions::clock — a batch run always owns its own time.
using SimOptions = SessionOptions;

/// Runs `scheduler` against the (possibly adaptive) instance produced by
/// `source` on `procs` processors. Throws ContractViolation on scheduler
/// protocol violations (starting an unready task, exceeding capacity,
/// deadlocking).
[[nodiscard]] SimResult simulate(InstanceSource& source,
                                 OnlineScheduler& scheduler, int procs,
                                 const SimOptions& options = {});

/// Convenience overload for static instances.
[[nodiscard]] SimResult simulate(const TaskGraph& graph,
                                 OnlineScheduler& scheduler, int procs,
                                 const SimOptions& options = {});

}  // namespace catbatch
