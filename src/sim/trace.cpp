#include "sim/trace.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/check.hpp"
#include "support/text.hpp"

namespace catbatch {

std::vector<UtilizationStep> utilization_profile(const TaskGraph& graph,
                                                 const Schedule& schedule) {
  struct Event {
    Time at;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(2 * schedule.size());
  for (const ScheduledTask& e : schedule.entries()) {
    const int p = graph.task(e.id).procs;
    events.push_back(Event{e.start, +p});
    events.push_back(Event{e.finish, -p});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.delta < b.delta;
  });

  std::vector<UtilizationStep> profile;
  Time prev = 0.0;
  int in_use = 0;
  for (const Event& ev : events) {
    if (ev.at > prev) {
      if (!profile.empty() && profile.back().procs_in_use == in_use) {
        profile.back().to = ev.at;
      } else {
        profile.push_back(UtilizationStep{prev, ev.at, in_use});
      }
      prev = ev.at;
    }
    in_use += ev.delta;
  }
  return profile;
}

double average_utilization(const TaskGraph& graph, const Schedule& schedule,
                           int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  const Time makespan = schedule.makespan();
  if (makespan <= 0.0) return 0.0;
  Time busy = 0.0;
  for (const ScheduledTask& e : schedule.entries()) {
    busy += e.duration() * static_cast<Time>(graph.task(e.id).procs);
  }
  return static_cast<double>(busy) /
         (static_cast<double>(procs) * static_cast<double>(makespan));
}

std::string schedule_to_csv(const TaskGraph& graph, const Schedule& schedule) {
  std::ostringstream os;
  os << "id,name,start,finish,work,procs,processors\n";
  std::vector<ScheduledTask> sorted(schedule.entries().begin(),
                                    schedule.entries().end());
  std::sort(sorted.begin(), sorted.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
  for (const ScheduledTask& e : sorted) {
    const Task& t = graph.task(e.id);
    os << e.id << ',' << t.name << ',' << format_number(e.start) << ','
       << format_number(e.finish) << ',' << format_number(t.work) << ','
       << t.procs << ',';
    if (e.processors.empty()) {
      // Counting-mode entry: no identities exist. Emit the width marker
      // "#<procs>" rather than a silently empty processor list.
      os << '#' << e.procs() << '\n';
    } else {
      std::vector<std::string> procs;
      procs.reserve(e.processors.size());
      for (const int p : e.processors) procs.push_back(std::to_string(p));
      os << join(procs, " ") << '\n';
    }
  }
  return os.str();
}

namespace {
char glyph_for(const TaskGraph& graph, TaskId id) {
  const std::string& name = graph.task(id).name;
  if (!name.empty() &&
      std::isprint(static_cast<unsigned char>(name.front())) &&
      name.front() != ' ' && name.front() != '.') {
    return name.front();
  }
  static constexpr char kCycle[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return kCycle[id % (sizeof(kCycle) - 1)];
}
}  // namespace

std::string ascii_gantt(const TaskGraph& graph, const Schedule& schedule,
                        int procs, std::size_t width) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CB_CHECK(width >= 8, "Gantt chart needs at least 8 columns");
  const Time makespan = schedule.makespan();
  if (makespan <= 0.0) return "(empty schedule)\n";

  // Counting-mode schedules (ScheduleMode::Counting) carry widths but no
  // processor identities; rendering their (empty) identity lists would
  // silently draw nothing. Detect them and fall back to occupancy rows:
  // identities are re-derived with the same lowest-free-first rule the
  // identity-mode engine uses, so the chart shows each task occupying
  // procs() rows. Row labels are then occupancy slots, not processor ids.
  const bool counted = std::any_of(
      schedule.entries().begin(), schedule.entries().end(),
      [](const ScheduledTask& e) { return e.processors.empty(); });

  std::vector<std::string> rows(static_cast<std::size_t>(procs),
                                std::string(width, '.'));
  const auto columns = [&](const ScheduledTask& e) {
    // Sample-based rendering: a column covers
    // [c * makespan / width, (c+1) * makespan / width); mark it if the cell
    // midpoint lies inside the task's interval.
    auto col_begin = static_cast<std::size_t>(
        static_cast<double>(e.start) / static_cast<double>(makespan) *
        static_cast<double>(width));
    auto col_end = static_cast<std::size_t>(
        static_cast<double>(e.finish) / static_cast<double>(makespan) *
        static_cast<double>(width));
    col_begin = std::min(col_begin, width - 1);
    col_end = std::min(std::max(col_end, col_begin + 1), width);
    return std::pair<std::size_t, std::size_t>{col_begin, col_end};
  };
  const auto draw = [&](int row, const ScheduledTask& e, char g) {
    CB_CHECK(row >= 0 && row < procs, "Gantt: processor index out of range");
    const auto [col_begin, col_end] = columns(e);
    for (std::size_t c = col_begin; c < col_end; ++c) {
      rows[static_cast<std::size_t>(row)][c] = g;
    }
  };

  if (counted) {
    std::vector<const ScheduledTask*> order;
    order.reserve(schedule.size());
    for (const ScheduledTask& e : schedule.entries()) order.push_back(&e);
    std::sort(order.begin(), order.end(),
              [](const ScheduledTask* a, const ScheduledTask* b) {
                if (a->start != b->start) return a->start < b->start;
                return a->id < b->id;
              });
    std::vector<Time> free_at(static_cast<std::size_t>(procs), 0.0);
    for (const ScheduledTask* e : order) {
      int needed = e->procs();
      const char g = glyph_for(graph, e->id);
      for (int p = 0; p < procs && needed > 0; ++p) {
        if (free_at[static_cast<std::size_t>(p)] <= e->start) {
          free_at[static_cast<std::size_t>(p)] = e->finish;
          draw(p, *e, g);
          --needed;
        }
      }
      CB_CHECK(needed == 0,
               "Gantt: counted schedule exceeds platform capacity");
    }
  } else {
    for (const ScheduledTask& e : schedule.entries()) {
      const char g = glyph_for(graph, e.id);
      for (const int p : e.processors) draw(p, e, g);
    }
  }

  std::ostringstream os;
  if (counted) os << "(counting-mode schedule: rows are occupancy slots)\n";
  for (int p = procs - 1; p >= 0; --p) {
    os << "P" << pad_left(std::to_string(p), 3) << " |"
       << rows[static_cast<std::size_t>(p)] << "|\n";
  }
  os << "     0" << repeated(' ', width - 1 > 6 ? width - 6 : 1)
     << format_number(makespan, 4) << '\n';
  return os.str();
}

}  // namespace catbatch
