// SVG Gantt-chart rendering of schedules — publication-quality counterpart
// of the ASCII charts in sim/trace.hpp. One horizontal lane per processor;
// tasks are colored by an optional group key (CatBatch batches use the
// category, so the batch structure of Figure 6 is visible at a glance).
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

struct SvgGanttOptions {
  int width_px = 960;
  int lane_height_px = 28;
  bool show_labels = true;
  /// Optional color-group per task (indexed by TaskId): tasks with equal
  /// group share a color. Empty -> color by TaskId.
  std::vector<std::size_t> color_groups;
};

/// Renders the schedule as a standalone SVG document.
[[nodiscard]] std::string svg_gantt(const TaskGraph& graph,
                                    const Schedule& schedule, int procs,
                                    const SvgGanttOptions& options = {});

}  // namespace catbatch
