#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "support/check.hpp"

namespace catbatch {

void EventQueue::push(Time at, TaskId id, SimEvent::Kind kind,
                      std::uint16_t gen) {
  const SimEvent ev{at, seq_++, id, gen, kind};
  ++size_;
  if (!calendar_) [[likely]] {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    if (size_ >= kCalendarOn && size_ >= 2 * last_calendar_attempt_) {
      rebuild_calendar();
    }
    return;
  }
  insert_calendar(ev);
}

SimEvent EventQueue::pop() {
  CB_DCHECK(size_ > 0, "pop from an empty event queue");
  if (!calendar_) [[likely]] {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const SimEvent ev = heap_.back();
    heap_.pop_back();
    --size_;
    return ev;
  }
  return pop_calendar();
}

bool EventQueue::pop_until(Time until, SimEvent& out) {
  if (size_ == 0) return false;
  if (!calendar_) [[likely]] {
    if (heap_.front().at > until) return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    out = heap_.back();
    heap_.pop_back();
    --size_;
    return true;
  }
  // The calendar has no cheap peek; pop the exact minimum and, when it is
  // past `until`, put it back with its seq intact — the pop cursor still
  // sits at (or before) its day, so the observable order is unchanged.
  const SimEvent ev = pop_calendar();
  if (ev.at <= until) {
    out = ev;
    return true;
  }
  ++size_;
  if (calendar_) {
    insert_calendar(ev);
  } else {
    // pop_calendar drained below the threshold and collapsed to the heap.
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  return false;
}

void EventQueue::insert_calendar(const SimEvent& ev) {
  const std::uint64_t day = day_of(ev.at);
  // The engine only pushes at times >= the last popped time, but the queue
  // does not rely on it: an event landing before the scan cursor simply
  // pulls the cursor back.
  if (day < cur_day_) cur_day_ = day;
  std::vector<SimEvent>& bucket = buckets_[day & bucket_mask_];
  bucket.push_back(ev);
  const std::size_t nbuckets = bucket_mask_ + 1;
  if (size_ > 4 * nbuckets && nbuckets < kMaxBuckets) {
    rebuild_calendar();  // grown well past the bucket count: re-spread
  } else if (bucket.size() > kOvercrowd &&
             size_ >= 2 * last_calendar_attempt_) {
    rebuild_calendar();  // clustered times: re-measure the day width
  }
}

SimEvent EventQueue::pop_calendar() {
  constexpr auto npos = std::numeric_limits<std::size_t>::max();
  const std::size_t nbuckets = bucket_mask_ + 1;
  std::size_t scanned_days = 0;
  for (;;) {
    std::vector<SimEvent>& bucket = buckets_[cur_day_ & bucket_mask_];
    // Exact in-day minimum under (at, seq). Events of other virtual days
    // sharing this physical bucket are skipped, which is what makes the
    // pop sequence identical to the heap's.
    std::size_t best = npos;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (day_of(bucket[i].at) != cur_day_) continue;
      if (best == npos || bucket[i].before(bucket[best])) best = i;
    }
    if (best != npos) {
      const SimEvent ev = bucket[best];
      bucket[best] = bucket.back();
      bucket.pop_back();
      --size_;
      if (size_ <= kCalendarOff) collapse_to_heap(/*back_off=*/false);
      return ev;
    }
    ++cur_day_;
    if (++scanned_days >= nbuckets) {
      // A whole year of empty days: jump straight to the earliest pending
      // day instead of walking a sparse tail one day at a time.
      std::uint64_t min_day = std::numeric_limits<std::uint64_t>::max();
      for (const std::vector<SimEvent>& b : buckets_) {
        for (const SimEvent& e : b) min_day = std::min(min_day, day_of(e.at));
      }
      cur_day_ = min_day;
      scanned_days = 0;
    }
  }
}

void EventQueue::collect_all(std::vector<SimEvent>& out) {
  out.clear();
  out.reserve(size_);
  if (calendar_) {
    for (std::vector<SimEvent>& b : buckets_) {
      out.insert(out.end(), b.begin(), b.end());
    }
  } else {
    out.swap(heap_);
  }
}

void EventQueue::rebuild_calendar() {
  std::vector<SimEvent> all;
  collect_all(all);

  // Day width from the *median* inter-event gap (Brown's rule): a mean —
  // (max-min)/n — is ruined by one far-future outlier, which heavy-tailed
  // workloads always have; the median sizes days for the dense head of the
  // distribution and leaves the sparse tail to the empty-day jump.
  std::vector<Time> ats;
  ats.reserve(all.size());
  for (const SimEvent& e : all) ats.push_back(e.at);
  std::sort(ats.begin(), ats.end());
  std::vector<Time> gaps;
  gaps.reserve(ats.size());
  for (std::size_t i = 0; i + 1 < ats.size(); ++i) {
    const Time d = ats[i + 1] - ats[i];
    if (d > 0.0) gaps.push_back(d);
  }
  double width = 0.0;
  if (!gaps.empty()) {
    const auto mid =
        gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
    std::nth_element(gaps.begin(), mid, gaps.end());
    width = 2.0 * gaps[gaps.size() / 2];
  }
  const Time lo = ats.empty() ? 0.0 : ats.front();
  if (!(width > 0.0) || !std::isfinite(width)) {
    // Degenerate spread (e.g. every event at one instant): bucketing buys
    // nothing, stay on the heap and back off until the queue doubles.
    heap_ = std::move(all);
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    buckets_.clear();
    calendar_ = false;
    last_calendar_attempt_ = size_;
    return;
  }

  std::size_t nbuckets = 1;
  while (nbuckets < all.size() && nbuckets < kMaxBuckets) nbuckets <<= 1;
  buckets_.assign(nbuckets, {});
  bucket_mask_ = nbuckets - 1;
  width_ = width;
  base_ = lo;
  cur_day_ = 0;
  std::size_t max_load = 0;
  for (const SimEvent& e : all) {
    std::vector<SimEvent>& bucket = buckets_[day_of(e.at) & bucket_mask_];
    bucket.push_back(e);
    max_load = std::max(max_load, bucket.size());
  }
  heap_.clear();
  calendar_ = true;  // events now live in buckets_ (collapse reads them)
  if (max_load > all.size() / 2 && all.size() > 8) {
    // One bucket swallowed the distribution (heavy clustering): the scan
    // would be linear anyway, so the heap is strictly better.
    collapse_to_heap(/*back_off=*/true);
    return;
  }
  last_calendar_attempt_ = size_;
}

void EventQueue::collapse_to_heap(bool back_off) {
  std::vector<SimEvent> all;
  collect_all(all);
  heap_ = std::move(all);
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  buckets_.clear();
  buckets_.shrink_to_fit();
  calendar_ = false;
  last_calendar_attempt_ = back_off ? size_ : 0;
}

}  // namespace catbatch
