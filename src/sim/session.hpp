// Stepwise session engine: the event loop of the simulator, inverted.
//
// The batch `simulate()` entry points (sim/engine.hpp) own the whole run —
// ingest, event loop, result. A *session* exposes the same machinery one
// decision point at a time, so an external driver (the catbatchd service
// layer, a replay client, a test harness) can feed submissions and
// completion events and collect the scheduler's decisions as they happen:
//
//   SessionEngine session(scheduler, procs, SessionOptions{}
//                             .with_mode(ScheduleMode::Counting)
//                             .with_clock(SessionClock::External));
//   auto d0 = session.submit(tasks, /*now=*/0.0);   // t=0 decisions
//   auto d1 = session.advance(SessionEvent::completion(id, at));
//   ...
//   SimResult result = session.finish();
//
// Two clock modes (SessionClock):
//
//   Simulated — the engine owns time: dispatching a task schedules its
//               completion at start + work on the internal event queue,
//               and step()/drain() pop it. simulate() is exactly
//               bind() + drain() + finish(), so the golden-schedule
//               corpus, counting==identity, and the zero-alloc hook pin
//               this path bit-identically across the inversion.
//   External  — the caller owns time: dispatch records the decision but
//               queues nothing; completions arrive via advance(). Release
//               times still live on the internal queue and fire before any
//               external event at an equal-or-later time. The platform may
//               legitimately idle between submissions, so the
//               scheduler-deadlock check is deferred to the caller
//               (complete() tells it whether all submitted work drained).
//
// Every entry point returns the decisions made during that call as a span
// into an engine-owned buffer, valid until the next call — the same
// zero-copy discipline as the scheduler protocol itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/soa_graph.hpp"
#include "sim/schedule.hpp"
#include "sim/scheduler.hpp"
#include "sim/source.hpp"
#include "support/parallel.hpp"

namespace catbatch {

/// How the engine tracks processor occupancy.
enum class ScheduleMode {
  /// Concrete processor indices per task (lowest-free-first), full Gantt /
  /// SVG / per-processor validation support.
  Identity,
  /// Only *counts* of busy processors: acquire/release is O(1), schedule
  /// entries carry the width but no processor identities. The makespan,
  /// decision sequence and every metric derived from start/finish times are
  /// bit-identical to Identity mode (schedulers never see identities).
  /// Intended for sweeps and benches that never render a Gantt chart.
  Counting,
};

/// Who owns the clock of a session (see file comment).
enum class SessionClock {
  Simulated,
  External,
};

class EngineObserver;  // obs/observer.hpp

/// The one options surface shared by batch (simulate()) and service
/// (SessionEngine) callers. Plain aggregate — designated or positional
/// initialization keeps working — with chainable setters for call-site
/// construction. `SimOptions` remains as a deprecated alias for one
/// release (sim/engine.hpp).
struct SessionOptions {
  ScheduleMode mode = ScheduleMode::Identity;
  /// Optional observability sink (obs/observer.hpp): when non-null the
  /// engine reports every event-loop transition — task reveal/ready,
  /// select() calls with wall-clock duration, dispatch, completion,
  /// busy-period boundaries — to it. The default (null) compiles each hook
  /// site down to one predictable branch, preserving the zero-alloc hot
  /// path and the perf gate (see docs/OBSERVABILITY.md, "Overhead").
  EngineObserver* observer = nullptr;
  /// Ignored by simulate(), which always runs the Simulated clock.
  SessionClock clock = SessionClock::Simulated;
  /// Drives the ingest-side parallel passes (record fill, criticality
  /// sweep, chunk validation) — the event loop itself stays
  /// single-threaded. Results are bit-identical for any {threads, chunk}
  /// (support/parallel.hpp, determinism contract); the default runs
  /// everything serially on the calling thread.
  ParallelOptions parallel = {};

  SessionOptions& with_mode(ScheduleMode m) {
    mode = m;
    return *this;
  }
  SessionOptions& with_observer(EngineObserver* o) {
    observer = o;
    return *this;
  }
  SessionOptions& with_clock(SessionClock c) {
    clock = c;
    return *this;
  }
  SessionOptions& with_parallel(const ParallelOptions& p) {
    parallel = p;
    return *this;
  }
};

struct SimStats {
  std::size_t task_count = 0;
  std::size_t decision_points = 0;
  /// Events processed by the main loop (completions + delayed releases).
  std::size_t events = 0;
  /// Total processor-time actually used (Σ t_i p_i over simulated tasks).
  Time busy_area = 0.0;
  /// Processor-time thrown away by task kills (Σ over killed attempts of
  /// (kill − start)·p). 0 for fault-free runs (docs/SCENARIOS.md).
  Time lost_area = 0.0;
  /// Number of task_kill events applied.
  std::size_t kills = 0;
  /// Number of effective capacity changes (set_capacity calls that changed
  /// the current capacity).
  std::size_t capacity_changes = 0;
};

struct SimResult {
  Schedule schedule;
  Time makespan = 0.0;
  SimStats stats;
  /// Time each task became ready (revealed to the scheduler), indexed by
  /// TaskId. Basis for waiting-time / stretch flow metrics.
  std::vector<Time> ready_times;

  /// Average fraction of the platform busy over [0, makespan]. Returns 0
  /// for a degenerate platform (procs <= 0) instead of dividing by it.
  [[nodiscard]] double average_utilization(std::int64_t procs) const {
    if (procs <= 0 || makespan <= 0.0) return 0.0;
    return static_cast<double>(stats.busy_area) /
           (static_cast<double>(procs) * static_cast<double>(makespan));
  }
};

/// One scheduling decision: task `id` was started at time `at` on `procs`
/// processors. Decisions are reported in dispatch order, which is also the
/// order of the corresponding Schedule entries.
struct Decision {
  TaskId id = kInvalidTask;
  Time at = 0.0;
  int procs = 0;
};

/// An external event driving a session under SessionClock::External.
struct SessionEvent {
  enum class Kind : std::uint8_t {
    /// Task `id`, previously started, finished at time `at`.
    Completion,
    /// No task state change; advance the clock to `at` so pending
    /// release-time reveals at or before `at` fire.
    Tick,
  };

  Kind kind = Kind::Completion;
  TaskId id = kInvalidTask;
  Time at = 0.0;

  [[nodiscard]] static SessionEvent completion(TaskId id, Time at) {
    return SessionEvent{Kind::Completion, id, at};
  }
  [[nodiscard]] static SessionEvent tick(Time at) {
    return SessionEvent{Kind::Tick, kInvalidTask, at};
  }
};

/// The simulation engine, one decision point at a time. Single-threaded:
/// a session must be driven from one thread at a time (the service layer
/// serializes per-session traffic onto the thread pool).
class SessionEngine {
 public:
  /// The scheduler and (for Simulated-clock drains) any bound source must
  /// outlive the engine.
  SessionEngine(OnlineScheduler& scheduler, int procs,
                const SessionOptions& options = {});
  ~SessionEngine();

  SessionEngine(const SessionEngine&) = delete;
  SessionEngine& operator=(const SessionEngine&) = delete;

  /// Binds a whole instance source (using the zero-copy SoA / static-graph
  /// fast paths when the source offers them), reveals the ready roots, and
  /// runs the t=0 decision point. May be called at most once, before any
  /// submit(). Returns the t=0 decisions.
  std::span<const Decision> submit(InstanceSource& source);

  /// Ingests a batch of tasks at time `now` (generic path; predecessors
  /// may reference any previously submitted task) and runs a decision
  /// point. `now` must be >= now(). Internal release events at or before
  /// `now` fire first. Usable in both clock modes; the service layer's
  /// `submit` message lands here.
  std::span<const Decision> submit(std::vector<SourceTask> tasks, Time now);

  /// Ingests one frozen slice of a streaming instance
  /// (StreamingGraphBuilder::freeze_chunk()) at time `now` and runs a
  /// decision point. Chunks must arrive in order — `chunk.base` must equal
  /// tasks_submitted() — and may reference predecessors in any earlier
  /// chunk. Validation and record fill are parallelized per
  /// SessionOptions::parallel; criticalities follow the online f∞
  /// recurrence (chunk boundaries are revelation order, so a fixed-order
  /// replay is bit-identical to the equivalent submit() batches). Usable
  /// in both clock modes; mixing with submit(tasks, now) batches is fine.
  std::span<const Decision> submit(SoaChunk chunk, Time now);

  /// Applies one external event (External clock only). For a Completion,
  /// internal release events at or before `event.at` fire first, then the
  /// completion cascade and a decision point. Throws ContractViolation for
  /// unknown/unstarted/finished tasks or a clock moving backwards.
  std::span<const Decision> advance(const SessionEvent& event);

  /// Simulated clock: processes the next internal event (completion or
  /// release) and its decision point. Returns the decisions, or an empty
  /// span when no events are pending.
  std::span<const Decision> step();

  /// Simulated clock: runs the event loop to completion — exactly the
  /// batch simulate() loop, including the scheduler-deadlock check.
  void drain();

  /// Changes the platform's *effective* capacity to `procs` processors at
  /// time `at` (node crash/return, machine sleep/wake — docs/SCENARIOS.md).
  /// `procs` must be in [0, platform size]; `at` must be >= now(). Internal
  /// events at or before `at` fire first; running tasks are never
  /// preempted (occupancy may transiently exceed a reduced capacity until
  /// they complete — the capacity bound applies to *dispatch*), and a
  /// capacity restore immediately runs a decision point, whose decisions
  /// are returned. Works under both clocks. At full capacity the engine is
  /// bit-identical to one that never heard of capacity.
  std::span<const Decision> set_capacity(int procs, Time at);

  /// Kills the *running* task `id` at time `at` (docs/SCENARIOS.md): its
  /// attempt's work is lost (SimStats::lost_area), its processors free
  /// immediately, the schedule entry moves to Schedule::aborted(), the
  /// scheduler hears task_killed() and then a task_ready() re-reveal with
  /// ReadyTask::resubmit set — precedence intact, successors still wait
  /// for the task's eventual completion. A decision point runs at `at`
  /// (the freed processors may be re-used at once). Throws
  /// ContractViolation for unknown / not-running / already-done tasks or a
  /// clock moving backwards. Works under both clocks; under the Simulated
  /// clock the killed attempt's pending completion event is discarded.
  std::span<const Decision> kill(TaskId id, Time at);

  /// The current effective capacity (== the platform size until the first
  /// set_capacity()).
  [[nodiscard]] int capacity() const;

  /// True while `id` was started and has neither completed nor been
  /// killed. Safe for any id (out-of-range answers false) — the service
  /// layer uses it to reject bad kill/complete requests without tripping
  /// an engine contract check.
  [[nodiscard]] bool task_running(TaskId id) const;

  /// True when no internal events are pending.
  [[nodiscard]] bool idle() const;
  /// True when every submitted task has completed.
  [[nodiscard]] bool complete() const;
  /// The session clock: the time of the latest processed event.
  [[nodiscard]] Time now() const;
  [[nodiscard]] std::size_t tasks_submitted() const;
  [[nodiscard]] std::size_t tasks_completed() const;
  [[nodiscard]] std::size_t decisions_made() const;
  /// The schedule so far (entries in dispatch order).
  [[nodiscard]] const Schedule& schedule() const;

  /// Final result; the engine must not be used afterwards. Under the
  /// Simulated clock this enforces the drained-without-deadlock contract;
  /// under the External clock an incomplete session is legal (the caller
  /// decides what an abandoned session means).
  SimResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace catbatch
