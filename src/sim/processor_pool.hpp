// Concrete processor allocation for the simulation engine. Rigid-task
// scheduling allows a free (non-contiguous) choice of processors
// (Section 1's comparison with strip packing); this pool hands out the
// lowest-indexed free processors.
//
// The free set is a binary min-heap over processor indices, so acquiring k
// processors costs O(k log P) and releasing costs O(k log P) — independent
// of the platform size P, unlike the previous full-bitmap scan. A busy
// bitmap is kept solely to diagnose double-release / out-of-range bugs.
#pragma once

#include <span>
#include <vector>

namespace catbatch {

class ProcessorPool {
 public:
  /// A pool of `procs` processors, indices 0..procs-1, all initially free.
  explicit ProcessorPool(int procs);

  [[nodiscard]] int capacity() const noexcept { return procs_; }
  [[nodiscard]] int available() const noexcept {
    return static_cast<int>(free_.size());
  }
  [[nodiscard]] int in_use() const noexcept { return procs_ - available(); }

  /// Acquires `count` free processors (lowest indices first). Throws if
  /// count <= 0 or fewer than `count` are free.
  [[nodiscard]] std::vector<int> acquire(int count);

  /// As acquire(), but appends into a caller-owned buffer (no allocation
  /// once the buffer has capacity).
  void acquire_into(int count, std::vector<int>& out);

  /// Releases previously acquired processors. Throws on double-release or
  /// out-of-range indices.
  void release(std::span<const int> processors);
  void release(const std::vector<int>& processors) {
    release(std::span<const int>(processors));
  }

 private:
  int procs_;
  std::vector<int> free_;   // min-heap of free indices (std::greater order)
  std::vector<bool> busy_;  // contract checking only
};

}  // namespace catbatch
