// Concrete processor allocation for the simulation engine. Rigid-task
// scheduling allows a free (non-contiguous) choice of processors
// (Section 1's comparison with strip packing); this pool hands out the
// lowest-indexed free processors.
#pragma once

#include <vector>

namespace catbatch {

class ProcessorPool {
 public:
  /// A pool of `procs` processors, indices 0..procs-1, all initially free.
  explicit ProcessorPool(int procs);

  [[nodiscard]] int capacity() const noexcept { return procs_; }
  [[nodiscard]] int available() const noexcept { return available_; }
  [[nodiscard]] int in_use() const noexcept { return procs_ - available_; }

  /// Acquires `count` free processors (lowest indices first). Throws if
  /// count <= 0 or fewer than `count` are free.
  [[nodiscard]] std::vector<int> acquire(int count);

  /// Releases previously acquired processors. Throws on double-release or
  /// out-of-range indices.
  void release(const std::vector<int>& processors);

 private:
  int procs_;
  int available_;
  std::vector<bool> busy_;
};

}  // namespace catbatch
