#include "sim/processor_pool.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "support/check.hpp"

namespace catbatch {

ProcessorPool::ProcessorPool(int procs)
    : procs_(procs), busy_(static_cast<std::size_t>(procs), false) {
  CB_CHECK(procs >= 1, "pool needs at least one processor");
  // An ascending array is already a valid min-heap.
  free_.resize(static_cast<std::size_t>(procs));
  std::iota(free_.begin(), free_.end(), 0);
}

std::vector<int> ProcessorPool::acquire(int count) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(std::max(count, 0)));
  acquire_into(count, out);
  return out;
}

void ProcessorPool::acquire_into(int count, std::vector<int>& out) {
  CB_CHECK(count >= 1, "must acquire at least one processor");
  CB_CHECK(count <= available(), "not enough free processors");
  for (int i = 0; i < count; ++i) {
    std::pop_heap(free_.begin(), free_.end(), std::greater<>{});
    const int p = free_.back();
    free_.pop_back();
    busy_[static_cast<std::size_t>(p)] = true;
    out.push_back(p);
  }
}

void ProcessorPool::release(std::span<const int> processors) {
  for (const int p : processors) {
    CB_CHECK(p >= 0 && p < procs_, "releasing out-of-range processor");
    CB_CHECK(busy_[static_cast<std::size_t>(p)],
             "releasing a processor that is not in use");
    busy_[static_cast<std::size_t>(p)] = false;
    free_.push_back(p);  // never reallocates: capacity() was P at creation
    std::push_heap(free_.begin(), free_.end(), std::greater<>{});
  }
}

}  // namespace catbatch
