#include "sim/processor_pool.hpp"

#include "support/check.hpp"

namespace catbatch {

ProcessorPool::ProcessorPool(int procs)
    : procs_(procs), available_(procs), busy_(static_cast<std::size_t>(procs),
                                              false) {
  CB_CHECK(procs >= 1, "pool needs at least one processor");
}

std::vector<int> ProcessorPool::acquire(int count) {
  CB_CHECK(count >= 1, "must acquire at least one processor");
  CB_CHECK(count <= available_, "not enough free processors");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int p = 0; p < procs_ && static_cast<int>(out.size()) < count; ++p) {
    if (!busy_[static_cast<std::size_t>(p)]) {
      busy_[static_cast<std::size_t>(p)] = true;
      out.push_back(p);
    }
  }
  available_ -= count;
  return out;
}

void ProcessorPool::release(const std::vector<int>& processors) {
  for (const int p : processors) {
    CB_CHECK(p >= 0 && p < procs_, "releasing out-of-range processor");
    CB_CHECK(busy_[static_cast<std::size_t>(p)],
             "releasing a processor that is not in use");
    busy_[static_cast<std::size_t>(p)] = false;
  }
  available_ += static_cast<int>(processors.size());
}

}  // namespace catbatch
