// Independent machine-checking of schedules. Shares no logic with any
// scheduler: it re-derives feasibility from first principles (Section 3.1):
//   * every task of the instance is scheduled exactly once,
//   * durations match the tasks' execution times,
//   * no task starts before all its predecessors finished,
//   * at any instant the running tasks use at most P processors,
//   * each task holds exactly p_i concrete processors, and no processor is
//     held by two tasks at once.
#pragma once

#include <optional>
#include <string>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

struct ValidationOptions {
  /// When false, skip the per-processor-index disjointness check (used for
  /// schedules that track only counts, not concrete indices).
  bool check_processor_sets = true;
  /// Absolute tolerance for duration comparison (0 = exact). Kept at 0 in
  /// this repository; exposed for instances with inexact arithmetic.
  Time duration_tolerance = 0.0;
};

/// Returns std::nullopt if `schedule` is a feasible schedule of `graph` on
/// `procs` processors; otherwise a human-readable description of the first
/// violation found.
[[nodiscard]] std::optional<std::string> validate_schedule(
    const TaskGraph& graph, const Schedule& schedule, int procs,
    const ValidationOptions& options = {});

/// Throwing wrapper: CB_CHECK-fails with the violation message.
void require_valid_schedule(const TaskGraph& graph, const Schedule& schedule,
                            int procs, const ValidationOptions& options = {});

}  // namespace catbatch
