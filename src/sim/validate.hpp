// Independent machine-checking of schedules. Shares no logic with any
// scheduler: it re-derives feasibility from first principles (Section 3.1):
//   * every task of the instance is scheduled exactly once,
//   * durations match the tasks' execution times,
//   * no task starts before all its predecessors finished,
//   * at any instant the running tasks use at most P processors,
//   * each task holds exactly p_i concrete processors, and no processor is
//     held by two tasks at once.
#pragma once

#include <optional>
#include <string>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

struct ValidationOptions {
  /// When false, skip the per-processor-index disjointness check (used for
  /// schedules that track only counts, not concrete indices).
  bool check_processor_sets = true;
  /// One absolute epsilon policy for every *time* comparison the validator
  /// makes (0 = exact, the default throughout this repository; exposed for
  /// schedules built with inexact arithmetic):
  ///   * durations:   |finish - (start + work)| <= tolerance,
  ///   * precedence:  start >= pred finish - tolerance (a tie at a
  ///                  predecessor's finish time is always feasible),
  ///   * capacity:    a release within `tolerance` of an acquisition is
  ///                  ordered before it (the handoff is feasible after
  ///                  shifting times by at most the tolerance),
  ///   * disjointness: per-processor intervals may overlap by <= tolerance.
  /// Processor *counts* are never slackened: the instantaneous-capacity sum
  /// is compared exactly against P. For width-carrying (counting-mode)
  /// entries the capacity sweep also ignores the time tolerance entirely —
  /// with disjointness unverifiable, the exact sweep over exact engine
  /// event times is the only capacity evidence, so Σ p_i <= P is enforced
  /// at every width boundary with no slack of any kind.
  Time time_tolerance = 0.0;
};

/// Returns std::nullopt if `schedule` is a feasible schedule of `graph` on
/// `procs` processors; otherwise a human-readable description of the first
/// violation found.
[[nodiscard]] std::optional<std::string> validate_schedule(
    const TaskGraph& graph, const Schedule& schedule, int procs,
    const ValidationOptions& options = {});

/// Throwing wrapper: CB_CHECK-fails with the violation message.
void require_valid_schedule(const TaskGraph& graph, const Schedule& schedule,
                            int procs, const ValidationOptions& options = {});

}  // namespace catbatch
