// A concrete schedule: per-task start/finish times plus the exact set of
// processor indices each task occupied. Produced by the simulation engine
// and by the offline reference constructions; checked by sim/validate.hpp.
//
// Storage is dual-representation. Counted entries (the counting-mode hot
// path, which is what 1M-10M-task benchmark runs use) append to flat
// structure-of-arrays columns — id/start/finish/width, 24 bytes per task,
// zero per-entry allocation — and the makespan is maintained as a running
// max so finishing a run never rescans the schedule. The classic AoS
// `ScheduledTask` rows are materialized lazily, only when a consumer first
// asks for `entries()`/`entry_for()` (validators, trace/SVG exporters,
// analysis); a pure counting benchmark run never pays for them. Identity
// entries (concrete processor indices) force materialization up front and
// behave exactly as before.
#pragma once

#include <span>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

/// One scheduled task occurrence. Either `processors` holds the concrete
/// indices (identity mode) or it is empty and `width` records how many
/// processors the task occupied (counting mode, see ScheduleMode).
struct ScheduledTask {
  TaskId id = kInvalidTask;
  Time start = 0.0;
  Time finish = 0.0;
  /// Concrete processor indices held during [start, finish). Size equals the
  /// task's processor requirement — empty for counted entries.
  std::vector<int> processors;
  /// Processor count for counted entries (0 when `processors` is concrete).
  int width = 0;

  [[nodiscard]] Time duration() const noexcept { return finish - start; }
  /// Number of processors occupied, whichever representation is used.
  [[nodiscard]] int procs() const noexcept {
    return processors.empty() ? width : static_cast<int>(processors.size());
  }
};

/// An append-only record of scheduled tasks.
class Schedule {
 public:
  Schedule() = default;

  /// Records a task execution. `finish` must be > `start`, `processors`
  /// non-empty with distinct indices; a task id may appear only once.
  void add(TaskId id, Time start, Time finish, std::vector<int> processors);

  /// Records a task execution with only a processor *count* (counting-mode
  /// engine runs): no identities, no per-entry allocation. Appends to the
  /// SoA columns unless AoS rows were already materialized. The
  /// task-scheduled-once contract is enforced lazily, on the first query
  /// (contains/entry_for/entries): an eager per-add id lookup would be the
  /// single random-access write in an otherwise streaming hot path, and
  /// the engine already rejects double starts before calling this.
  void add_counted(TaskId id, Time start, Time finish, int procs);

  /// Pre-sizes internal storage for at least `tasks` entries.
  void reserve(std::size_t tasks);

  /// AoS view in insertion order. Materializes the rows from the SoA
  /// columns on first use for a counted schedule; the pointer stays valid
  /// until the next non-const call.
  [[nodiscard]] std::span<const ScheduledTask> entries() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return materialized_ ? entries_.size() : ids_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Entry for a given task. Throws if the task was never scheduled.
  [[nodiscard]] const ScheduledTask& entry_for(TaskId id) const;

  /// True iff `id` has been scheduled. May throw ContractViolation if the
  /// deferred duplicate check (see add_counted) fails while indexing.
  [[nodiscard]] bool contains(TaskId id) const;

  /// max(finish) over all entries; 0 for an empty schedule. O(1): the max
  /// is maintained on every add.
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }

  /// Aborts the recorded execution of `id` at time `at` (a task kill,
  /// docs/SCENARIOS.md): the entry leaves the live schedule — freeing the
  /// id for the restart attempt's add()/add_counted() — and moves to the
  /// aborted list with its finish truncated to `at`. `at` must be within
  /// [start, finish] of the recorded attempt. O(size) per call (ordinal
  /// compaction + makespan rescan); kills are scenario events, never the
  /// pristine hot path. The makespan keeps counting aborted occupancy —
  /// the platform really was busy until the kill.
  void supersede(TaskId id, Time at);

  /// Killed attempts, in kill order: `finish` is the kill time, so
  /// `duration()` is the lost work per attempt. Empty for fault-free runs.
  [[nodiscard]] std::span<const ScheduledTask> aborted() const noexcept {
    return aborted_;
  }

 private:
  void add_entry(TaskId id, Time start, Time finish,
                 std::vector<int> processors, int width);
  void check_new_entry(TaskId id, Time start, Time finish) const;
  /// Moves every SoA row into `entries_` (insertion order, same ordinals,
  /// so `index_` is untouched) and makes the AoS side authoritative.
  void materialize() const;
  /// Indexes every entry past `indexed_` (counted adds defer this — see
  /// add_counted); fails the scheduled-once contract on a duplicate id.
  void ensure_index() const;

  // AoS rows: authoritative once `materialized_` (identity entries or any
  // consumer having called entries()/entry_for()); mutable because
  // materialization is a caching step behind a const view.
  mutable std::vector<ScheduledTask> entries_;
  mutable bool materialized_ = false;
  // Killed attempts (supersede); never indexed, never part of entries().
  std::vector<ScheduledTask> aborted_;

  // SoA columns for counted entries, parallel by ordinal; emptied by
  // materialize().
  mutable std::vector<TaskId> ids_;
  mutable std::vector<Time> starts_;
  mutable std::vector<Time> finishes_;
  mutable std::vector<int> widths_;

  // id -> insertion ordinal, or npos. Grows with the largest id seen;
  // built lazily over ordinals [indexed_, size()) by ensure_index().
  mutable std::vector<std::size_t> index_;
  mutable std::size_t indexed_ = 0;
  Time makespan_ = 0.0;
  // Reused scratch for the duplicate-processor check in add(); member so
  // repeated identity adds don't allocate a fresh set every call.
  mutable std::vector<int> dup_scratch_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace catbatch
