// A concrete schedule: per-task start/finish times plus the exact set of
// processor indices each task occupied. Produced by the simulation engine
// and by the offline reference constructions; checked by sim/validate.hpp.
#pragma once

#include <span>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

/// One scheduled task occurrence.
struct ScheduledTask {
  TaskId id = kInvalidTask;
  Time start = 0.0;
  Time finish = 0.0;
  /// Concrete processor indices held during [start, finish). Size equals the
  /// task's processor requirement.
  std::vector<int> processors;

  [[nodiscard]] Time duration() const noexcept { return finish - start; }
};

/// An append-only record of scheduled tasks.
class Schedule {
 public:
  Schedule() = default;

  /// Records a task execution. `finish` must be > `start`, `processors`
  /// non-empty with distinct indices; a task id may appear only once.
  void add(TaskId id, Time start, Time finish, std::vector<int> processors);

  [[nodiscard]] std::span<const ScheduledTask> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Entry for a given task. Throws if the task was never scheduled.
  [[nodiscard]] const ScheduledTask& entry_for(TaskId id) const;

  /// True iff `id` has been scheduled.
  [[nodiscard]] bool contains(TaskId id) const noexcept;

  /// max(finish) over all entries; 0 for an empty schedule.
  [[nodiscard]] Time makespan() const noexcept;

 private:
  std::vector<ScheduledTask> entries_;
  // id -> index into entries_, or npos. Grows with the largest id seen.
  std::vector<std::size_t> index_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace catbatch
