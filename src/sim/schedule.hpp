// A concrete schedule: per-task start/finish times plus the exact set of
// processor indices each task occupied. Produced by the simulation engine
// and by the offline reference constructions; checked by sim/validate.hpp.
#pragma once

#include <span>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

/// One scheduled task occurrence. Either `processors` holds the concrete
/// indices (identity mode) or it is empty and `width` records how many
/// processors the task occupied (counting mode, see ScheduleMode).
struct ScheduledTask {
  TaskId id = kInvalidTask;
  Time start = 0.0;
  Time finish = 0.0;
  /// Concrete processor indices held during [start, finish). Size equals the
  /// task's processor requirement — empty for counted entries.
  std::vector<int> processors;
  /// Processor count for counted entries (0 when `processors` is concrete).
  int width = 0;

  [[nodiscard]] Time duration() const noexcept { return finish - start; }
  /// Number of processors occupied, whichever representation is used.
  [[nodiscard]] int procs() const noexcept {
    return processors.empty() ? width : static_cast<int>(processors.size());
  }
};

/// An append-only record of scheduled tasks.
class Schedule {
 public:
  Schedule() = default;

  /// Records a task execution. `finish` must be > `start`, `processors`
  /// non-empty with distinct indices; a task id may appear only once.
  void add(TaskId id, Time start, Time finish, std::vector<int> processors);

  /// Records a task execution with only a processor *count* (counting-mode
  /// engine runs): no identities, no per-entry allocation.
  void add_counted(TaskId id, Time start, Time finish, int procs);

  /// Pre-sizes internal storage for at least `tasks` entries.
  void reserve(std::size_t tasks);

  [[nodiscard]] std::span<const ScheduledTask> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Entry for a given task. Throws if the task was never scheduled.
  [[nodiscard]] const ScheduledTask& entry_for(TaskId id) const;

  /// True iff `id` has been scheduled.
  [[nodiscard]] bool contains(TaskId id) const noexcept;

  /// max(finish) over all entries; 0 for an empty schedule.
  [[nodiscard]] Time makespan() const noexcept;

 private:
  void add_entry(TaskId id, Time start, Time finish,
                 std::vector<int> processors, int width);

  std::vector<ScheduledTask> entries_;
  // id -> index into entries_, or npos. Grows with the largest id seen.
  std::vector<std::size_t> index_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace catbatch
