// The online scheduler interface (Section 3.1's information model).
//
// A scheduler learns about a task only when it becomes ready (all
// predecessors completed). At that moment it receives the task's execution
// time, processor requirement, and the identities of its predecessors —
// nothing about successors or unreleased tasks. At every decision point
// (time 0 and each task completion) it may start any subset of revealed,
// unstarted tasks that fits in the currently free processors, or none
// (deliberate idling, which CatBatch uses at batch boundaries).
//
// Zero-copy protocol: the engine owns all task storage. `ReadyTask` hands
// the scheduler *views* (std::span / std::string_view) into that storage,
// and `select` appends into an engine-owned picks buffer that is reused
// across decision points — the steady-state simulate loop performs no heap
// allocation on either side of the interface.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

/// Everything the online model reveals about a task when it becomes ready.
///
/// `predecessors` and `name` are views into engine-owned storage and are
/// valid ONLY for the duration of the task_ready() call; a scheduler that
/// needs them later must copy what it needs (all in-tree schedulers only
/// fold the predecessor list into scalars on the spot).
struct ReadyTask {
  TaskId id = kInvalidTask;
  /// Execution time as *declared* to the scheduler. Under the exact-time
  /// model this equals the simulated duration; the uncertainty extension
  /// (future-work direction in Section 7) lets the engine simulate a
  /// different actual duration.
  Time work = 0.0;
  int procs = 1;
  /// Predecessors, all already complete (Section 3.1: the predecessor set
  /// becomes known upon release).
  std::span<const TaskId> predecessors;
  std::string_view name;
  /// s∞, the task's criticality earliest start (Lemma 1: the max f∞ over
  /// the predecessors, 0 for sources). The engine maintains the f∞
  /// recurrence once, on the reveal path, and hands every scheduler the
  /// same value the scheduler-side recurrence used to produce — schedulers
  /// that batch or prioritize by criticality read it instead of keeping
  /// their own finish-time tables. Derived purely from information the
  /// online model reveals, so using it never leaks future knowledge.
  Time earliest_start = 0.0;
  /// True when this reveal is a *resubmission*: the task was started, then
  /// killed (docs/SCENARIOS.md), its partial work was lost, and it
  /// re-enters the ready set with the same id, work, width, and
  /// predecessors. Schedulers that key state on "seen this id before"
  /// (batch membership, replay plans) use this to re-admit the task
  /// instead of treating the duplicate reveal as a protocol violation.
  /// Always false on an engine that never kills tasks.
  bool resubmit = false;
};

class OnlineScheduler {
 public:
  virtual ~OnlineScheduler() = default;

  /// Human-readable algorithm name for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per simulation before any other callback.
  virtual void reset() = 0;

  /// Optional capacity hint, called right after reset() and before any
  /// task_ready() when the engine knows the instance size up front
  /// (static-graph and SoA sources). Schedulers may pre-size id-indexed
  /// state so the hot loop never reallocates; the default ignores it.
  /// Adaptive sources may never trigger it, and the hint must not change
  /// any scheduling decision.
  virtual void instance_hint(std::size_t task_count) { (void)task_count; }

  /// A task became ready at time `now`.
  virtual void task_ready(const ReadyTask& task, Time now) = 0;

  /// A previously started task completed at time `now`.
  virtual void task_finished(TaskId id, Time now) { (void)id, (void)now; }

  /// A previously started task was killed at time `now` (fault injection,
  /// docs/SCENARIOS.md): its processors are free again, its partial work is
  /// lost, and it did NOT complete — successors stay unreleased. The engine
  /// immediately re-reveals the task via task_ready() with
  /// ReadyTask::resubmit set. Schedulers that track running tasks
  /// (batch occupancy, backfill reservations) must drop this id from that
  /// state; the default ignores the callback, which is correct for
  /// schedulers whose only running-state is the engine's.
  virtual void task_killed(TaskId id, Time now) { (void)id, (void)now; }

  /// Decision point: append the ids of ready tasks to start *now* to
  /// `picks`. The engine clears the buffer before every call and reuses it
  /// across decision points; the scheduler must not keep a reference to it.
  /// The total processor requirement of the appended tasks must not exceed
  /// `available_procs`. Appending nothing means "wait for the next
  /// completion".
  virtual void select(Time now, int available_procs,
                      std::vector<TaskId>& picks) = 0;
};

}  // namespace catbatch
