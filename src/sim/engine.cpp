#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>
#include <vector>

#include "obs/observer.hpp"
#include "sim/processor_pool.hpp"
#include "support/check.hpp"

namespace catbatch {

// ---------------------------------------------------------------------------
// GraphSource

GraphSource::GraphSource(const TaskGraph& graph) : graph_(graph) {
  graph_.validate();
}

std::vector<SourceTask> GraphSource::start() {
  // Generic (copying) fallback for callers driving the InstanceSource
  // interface by hand; the engine itself uses static_graph() and never
  // materializes these copies.
  std::vector<SourceTask> out;
  out.reserve(graph_.size());
  for (TaskId id = 0; id < graph_.size(); ++id) {
    const Task& t = graph_.task(id);
    SourceTask st;
    st.work = t.work;
    st.procs = t.procs;
    st.name = t.name;
    const auto preds = graph_.predecessors(id);
    st.predecessors.assign(preds.begin(), preds.end());
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<SourceTask> GraphSource::on_complete(TaskId, Time) { return {}; }

// ---------------------------------------------------------------------------
// Engine

namespace {

/// One arena row per emitted task: plain data only, so the arena is a flat
/// std::vector with no per-task heap blocks. Predecessor lists and names
/// live in side arrays (CSR layout / shared char buffer).
struct TaskRec {
  Time actual_work = 0.0;
  Time declared_work = 0.0;
  Time release = 0.0;
  int procs = 1;
  std::uint32_t unfinished_preds = 0;
  bool revealed = false;
  bool started = false;
  bool done = false;
};

struct Event {
  enum class Kind { Completion, Release };
  Time at;
  std::uint64_t seq;  // FIFO tie-break for equal times
  TaskId id;
  Kind kind;

  bool operator>(const Event& o) const {
    if (at != o.at) return at > o.at;
    return seq > o.seq;
  }
};

class Engine {
 public:
  Engine(InstanceSource& source, OnlineScheduler& scheduler, int procs,
         const SimOptions& options)
      : source_(source),
        scheduler_(scheduler),
        procs_(procs),
        counting_(options.mode == ScheduleMode::Counting),
        obs_(options.observer),
        avail_(procs),
        pool_(counting_ ? 1 : procs) {
    CB_CHECK(procs >= 1, "platform must have at least one processor");
  }

  SimResult run() {
    scheduler_.reset();
    if ((static_graph_ = source_.static_graph()) != nullptr) {
      ingest_graph(*static_graph_);
    } else {
      ingest_batch(source_.start(), /*now=*/0.0);
    }
    decision_point(/*now=*/0.0);

    while (!events_.empty()) {
      const Event ev = pop_event();
      ++events_processed_;
      if (ev.kind == Event::Kind::Completion) {
        complete(ev.id, ev.at);
      } else {
        reveal(ev.id, ev.at);
      }
      decision_point(ev.at);
    }

    CB_CHECK(done_count_ == tasks_.size(),
             "simulation drained with unfinished tasks (scheduler deadlock)");
    SimResult result;
    result.schedule = std::move(schedule_);
    result.makespan = result.schedule.makespan();
    if (obs_ != nullptr) {
      obs_->on_run_end(result.makespan, busy_area_, procs_, tasks_.size());
    }
    result.stats.task_count = tasks_.size();
    result.stats.decision_points = decisions_;
    result.stats.events = events_processed_;
    result.stats.busy_area = busy_area_;
    result.ready_times = std::move(ready_times_);
    return result;
  }

 private:
  // -- ingestion ------------------------------------------------------------

  /// Static fast path: tasks come straight from the graph. Predecessor
  /// spans and name views point into graph-owned storage; nothing is
  /// copied except the per-task scalars.
  void ingest_graph(const TaskGraph& g) {
    const std::size_t n = g.size();
    tasks_.reserve(n);
    pred_offsets_.reserve(n + 1);
    std::size_t edges = 0;
    for (TaskId id = 0; id < n; ++id) edges += g.predecessors(id).size();
    pred_data_.reserve(edges);
    for (TaskId id = 0; id < n; ++id) {
      const Task& t = g.task(id);
      CB_CHECK(t.work > 0.0, "source emitted a task with non-positive work");
      CB_CHECK(t.procs >= 1 && t.procs <= procs_,
               "source emitted a task that cannot fit the platform");
      TaskRec rec;
      rec.actual_work = t.work;
      rec.declared_work = t.work;
      rec.procs = t.procs;
      const auto preds = g.predecessors(id);
      rec.unfinished_preds = static_cast<std::uint32_t>(preds.size());
      pred_data_.insert(pred_data_.end(), preds.begin(), preds.end());
      pred_offsets_.push_back(static_cast<std::uint32_t>(pred_data_.size()));
      tasks_.push_back(rec);
    }
    finalize_batch(/*base=*/0, /*now=*/0.0);
  }

  /// Generic path for adaptive sources. Two passes: tasks of one batch may
  /// reference each other in any order (ids need not be topological — e.g.
  /// series-parallel generators), so create every task before resolving
  /// predecessor states.
  void ingest_batch(std::vector<SourceTask> emitted, Time now) {
    if (emitted.empty() && csr_built_) return;
    const auto base = static_cast<TaskId>(tasks_.size());
    for (SourceTask& st : emitted) {
      CB_CHECK(st.work > 0.0, "source emitted a task with non-positive work");
      CB_CHECK(st.procs >= 1 && st.procs <= procs_,
               "source emitted a task that cannot fit the platform");
      CB_CHECK(st.release >= 0.0, "release time must be non-negative");
      TaskRec rec;
      rec.actual_work = st.work;
      rec.declared_work = st.declared();
      rec.release = st.release;
      rec.procs = st.procs;
      pred_data_.insert(pred_data_.end(), st.predecessors.begin(),
                        st.predecessors.end());
      pred_offsets_.push_back(static_cast<std::uint32_t>(pred_data_.size()));
      name_chars_.append(st.name);
      name_offsets_.push_back(static_cast<std::uint32_t>(name_chars_.size()));
      tasks_.push_back(rec);
    }
    for (TaskId id = base; id < tasks_.size(); ++id) {
      std::uint32_t unfinished = 0;
      for (const TaskId pred : preds_of(id)) {
        CB_CHECK(pred < tasks_.size() && pred != id,
                 "source referenced an unknown predecessor");
        if (!tasks_[pred].done) ++unfinished;
      }
      tasks_[id].unfinished_preds = unfinished;
    }
    finalize_batch(base, now);
  }

  /// Sizes every per-task buffer once for the whole batch (the per-event
  /// loop then never grows them), wires the reverse adjacency, and reveals
  /// the batch's ready tasks in id order.
  void finalize_batch(TaskId base, Time now) {
    const std::size_t n = tasks_.size();
    ready_times_.resize(n, 0.0);
    // A task has at most one pending event at any moment (its release fires
    // before it can start; its completion is pending only while running).
    events_.reserve(n);
    picks_.reserve(n);
    schedule_.reserve(n);
    if (!csr_built_) {
      build_succ_csr();
      csr_built_ = true;
    } else if (pred_offsets_[n] > pred_offsets_[base]) {
      // Later (adaptive) batches append to the overflow adjacency; ids grow
      // monotonically, so csr-then-overflow traversal stays ascending.
      if (extra_succs_.size() < n) extra_succs_.resize(n);
      for (TaskId id = base; id < n; ++id) {
        for (const TaskId pred : preds_of(id)) {
          extra_succs_[pred].push_back(id);
        }
      }
      has_extra_ = true;
    }
    if (obs_ != nullptr) {
      for (TaskId id = base; id < n; ++id) obs_->on_task_revealed(id, now);
    }
    for (TaskId id = base; id < n; ++id) {
      if (tasks_[id].unfinished_preds == 0) reveal_or_defer(id, now);
    }
  }

  /// CSR reverse adjacency over the first batch (the whole instance for
  /// static sources): counting sort of the predecessor arena, one pass, so
  /// each successor row is ascending — the same order the per-successor
  /// push_back construction produced historically.
  void build_succ_csr() {
    const std::size_t n = tasks_.size();
    csr_tasks_ = n;
    succ_offsets_.assign(n + 1, 0);
    succ_data_.resize(pred_data_.size());
    for (const TaskId pred : pred_data_) ++succ_offsets_[pred + 1];
    for (std::size_t i = 1; i <= n; ++i) succ_offsets_[i] += succ_offsets_[i - 1];
    std::vector<std::uint32_t> cursor(succ_offsets_.begin(),
                                      succ_offsets_.end() - 1);
    for (TaskId id = 0; id < n; ++id) {
      for (const TaskId pred : preds_of(id)) {
        succ_data_[cursor[pred]++] = id;
      }
    }
  }

  // -- arena views ----------------------------------------------------------

  [[nodiscard]] std::span<const TaskId> preds_of(TaskId id) const {
    return {pred_data_.data() + pred_offsets_[id],
            pred_data_.data() + pred_offsets_[id + 1]};
  }

  [[nodiscard]] std::span<const TaskId> csr_successors(TaskId id) const {
    if (id >= csr_tasks_) return {};
    return {succ_data_.data() + succ_offsets_[id],
            succ_data_.data() + succ_offsets_[id + 1]};
  }

  [[nodiscard]] std::string_view name_of(TaskId id) const {
    if (static_graph_ != nullptr) return static_graph_->task(id).name;
    const std::uint32_t from = name_offsets_[id];
    return std::string_view(name_chars_).substr(from,
                                                name_offsets_[id + 1] - from);
  }

  // -- event heap (std::priority_queue semantics, but reservable) ----------

  void push_event(Time at, TaskId id, Event::Kind kind) {
    events_.push_back(Event{at, seq_++, id, kind});
    std::push_heap(events_.begin(), events_.end(), std::greater<>{});
  }

  Event pop_event() {
    std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
    const Event ev = events_.back();
    events_.pop_back();
    return ev;
  }

  // -- simulation steps -----------------------------------------------------

  /// Reveals `id` now if its release time has passed; otherwise schedules a
  /// release event.
  void reveal_or_defer(TaskId id, Time now) {
    const TaskRec& t = tasks_[id];
    if (t.release <= now) {
      reveal(id, now);
    } else {
      push_event(t.release, id, Event::Kind::Release);
    }
  }

  void reveal(TaskId id, Time now) {
    TaskRec& t = tasks_[id];
    CB_DCHECK(!t.revealed, "task revealed twice");
    t.revealed = true;
    ready_times_[id] = now;
    ReadyTask rt;
    rt.id = id;
    rt.work = t.declared_work;
    rt.procs = t.procs;
    rt.predecessors = preds_of(id);
    rt.name = name_of(id);
    scheduler_.task_ready(rt, now);
    if (obs_ != nullptr) obs_->on_task_ready(id, now);
  }

  void decision_point(Time now) {
    ++decisions_;
    const int free_at_decision = counting_ ? avail_ : pool_.available();
    picks_.clear();
    // Wall-clock select timing only exists when someone is listening; the
    // un-observed path stays exactly the PR 2 hot loop.
    double select_wall_us = 0.0;
    if (obs_ != nullptr && obs_->wants_select_timing()) {
      const auto t0 = std::chrono::steady_clock::now();
      scheduler_.select(now, free_at_decision, picks_);
      select_wall_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    } else {
      scheduler_.select(now, free_at_decision, picks_);
    }
    if (obs_ != nullptr) {
      obs_->on_select(now, free_at_decision, select_wall_us, picks_.size());
    }
    int requested = 0;
    for (const TaskId id : picks_) {
      CB_CHECK(id < tasks_.size(), "scheduler selected an unknown task");
      TaskRec& t = tasks_[id];
      CB_CHECK(t.revealed, "scheduler selected an unrevealed task");
      CB_CHECK(!t.started, "scheduler selected an already started task");
      requested += t.procs;
      CB_CHECK(requested <= free_at_decision,
               "scheduler selection exceeds free processors");
      t.started = true;
      if (counting_) {
        avail_ -= t.procs;
        schedule_.add_counted(id, now, now + t.actual_work, t.procs);
      } else {
        schedule_.add(id, now, now + t.actual_work, pool_.acquire(t.procs));
      }
      push_event(now + t.actual_work, id, Event::Kind::Completion);
      if (obs_ != nullptr) {
        if (running_ == 0) obs_->on_busy_open(now);
        obs_->on_dispatch(id, now, now + t.actual_work, t.procs);
      }
      ++running_;
    }
    // Pending release events mean the platform may legitimately sit idle
    // waiting for future arrivals.
    CB_CHECK(running_ > 0 || !events_.empty() ||
                 done_count_ == tasks_.size(),
             "scheduler deadlock: platform idle, no selection, work remains");
  }

  void complete(TaskId id, Time now) {
    TaskRec& t = tasks_[id];
    CB_DCHECK(t.started && !t.done, "completion of a task not running");
    t.done = true;
    --running_;
    ++done_count_;
    busy_area_ += t.actual_work * static_cast<Time>(t.procs);
    if (counting_) {
      avail_ += t.procs;
    } else {
      pool_.release(schedule_.entry_for(id).processors);
    }
    if (obs_ != nullptr) {
      obs_->on_complete(id, now, t.procs);
      if (running_ == 0) obs_->on_busy_close(now);
    }
    scheduler_.task_finished(id, now);

    // Readiness cascade over the reverse adjacency (CSR span, plus the
    // overflow rows for adaptively emitted batches).
    for (const TaskId succ : csr_successors(id)) on_pred_done(succ, now);
    if (has_extra_ && id < extra_succs_.size()) {
      for (const TaskId succ : extra_succs_[id]) on_pred_done(succ, now);
    }

    // Adaptive sources may extend the instance now. Static sources promised
    // a fixed instance via static_graph().
    std::vector<SourceTask> more = source_.on_complete(id, now);
    if (!more.empty()) {
      CB_CHECK(static_graph_ == nullptr,
               "static_graph() source emitted tasks from on_complete()");
      ingest_batch(std::move(more), now);
    }
  }

  void on_pred_done(TaskId succ, Time now) {
    TaskRec& s = tasks_[succ];
    CB_DCHECK(s.unfinished_preds > 0, "readiness underflow");
    if (--s.unfinished_preds == 0) reveal_or_defer(succ, now);
  }

  InstanceSource& source_;
  OnlineScheduler& scheduler_;
  int procs_;
  bool counting_;
  EngineObserver* obs_;  // null = observability off (no hook overhead)
  int avail_;           // counting-mode occupancy (O(1) acquire/release)
  ProcessorPool pool_;  // identity-mode concrete indices (unused otherwise)
  const TaskGraph* static_graph_ = nullptr;

  // Task arena: flat rows + CSR predecessors (+ name chars for adaptive
  // sources; static sources view names through the graph).
  std::vector<TaskRec> tasks_;
  std::vector<std::uint32_t> pred_offsets_{0};
  std::vector<TaskId> pred_data_;
  std::string name_chars_;
  std::vector<std::uint32_t> name_offsets_{0};

  // Reverse adjacency: CSR over the first batch, overflow rows for later
  // adaptive batches.
  std::vector<std::uint32_t> succ_offsets_;
  std::vector<TaskId> succ_data_;
  std::size_t csr_tasks_ = 0;
  bool csr_built_ = false;
  std::vector<std::vector<TaskId>> extra_succs_;
  bool has_extra_ = false;

  std::vector<Event> events_;  // binary min-heap (push_heap/pop_heap)
  std::uint64_t seq_ = 0;
  std::vector<TaskId> picks_;  // reused select() output buffer
  std::vector<Time> ready_times_;
  std::size_t running_ = 0;
  std::size_t done_count_ = 0;
  std::size_t decisions_ = 0;
  std::size_t events_processed_ = 0;
  Time busy_area_ = 0.0;
  Schedule schedule_;
};

}  // namespace

SimResult simulate(InstanceSource& source, OnlineScheduler& scheduler,
                   int procs, const SimOptions& options) {
  Engine engine(source, scheduler, procs, options);
  return engine.run();
}

SimResult simulate(const TaskGraph& graph, OnlineScheduler& scheduler,
                   int procs, const SimOptions& options) {
  GraphSource source(graph);
  return simulate(source, scheduler, procs, options);
}

}  // namespace catbatch
