#include "sim/engine.hpp"

#include <queue>
#include <vector>

#include "sim/processor_pool.hpp"
#include "support/check.hpp"

namespace catbatch {

// ---------------------------------------------------------------------------
// GraphSource

GraphSource::GraphSource(const TaskGraph& graph) : graph_(graph) {
  graph_.validate();
}

std::vector<SourceTask> GraphSource::start() {
  std::vector<SourceTask> out;
  out.reserve(graph_.size());
  for (TaskId id = 0; id < graph_.size(); ++id) {
    const Task& t = graph_.task(id);
    SourceTask st;
    st.work = t.work;
    st.procs = t.procs;
    st.name = t.name;
    const auto preds = graph_.predecessors(id);
    st.predecessors.assign(preds.begin(), preds.end());
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<SourceTask> GraphSource::on_complete(TaskId, Time) { return {}; }

// ---------------------------------------------------------------------------
// Engine

namespace {

struct EmittedTask {
  Time actual_work = 0.0;
  Time declared_work = 0.0;
  int procs = 1;
  std::vector<TaskId> predecessors;
  std::string name;
  Time release = 0.0;
  std::size_t unfinished_preds = 0;
  bool revealed = false;
  bool started = false;
  bool done = false;
  std::vector<int> held_processors;
};

struct Event {
  enum class Kind { Completion, Release };
  Time at;
  std::uint64_t seq;  // FIFO tie-break for equal times
  TaskId id;
  Kind kind;

  bool operator>(const Event& o) const {
    if (at != o.at) return at > o.at;
    return seq > o.seq;
  }
};

class Engine {
 public:
  Engine(InstanceSource& source, OnlineScheduler& scheduler, int procs)
      : source_(source), scheduler_(scheduler), pool_(procs), procs_(procs) {
    CB_CHECK(procs >= 1, "platform must have at least one processor");
  }

  SimResult run() {
    scheduler_.reset();
    emit(source_.start(), /*now=*/0.0);
    decision_point(/*now=*/0.0);

    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      if (ev.kind == Event::Kind::Completion) {
        complete(ev.id, ev.at);
      } else {
        reveal(ev.id, ev.at);
      }
      decision_point(ev.at);
    }

    CB_CHECK(done_count_ == tasks_.size(),
             "simulation drained with unfinished tasks (scheduler deadlock)");
    SimResult result;
    result.schedule = std::move(schedule_);
    result.makespan = result.schedule.makespan();
    result.stats.task_count = tasks_.size();
    result.stats.decision_points = decisions_;
    result.stats.busy_area = busy_area_;
    ready_times_.resize(tasks_.size(), 0.0);
    result.ready_times = std::move(ready_times_);
    return result;
  }

 private:
  void emit(std::vector<SourceTask> emitted, Time now) {
    // Two passes: tasks of one batch may reference each other in any order
    // (ids need not be topological — e.g. series-parallel generators), so
    // create every task before resolving predecessor states.
    const auto base = static_cast<TaskId>(tasks_.size());
    for (SourceTask& st : emitted) {
      CB_CHECK(st.work > 0.0, "source emitted a task with non-positive work");
      CB_CHECK(st.procs >= 1 && st.procs <= procs_,
               "source emitted a task that cannot fit the platform");
      EmittedTask et;
      et.actual_work = st.work;
      et.declared_work = st.declared();
      et.procs = st.procs;
      et.name = std::move(st.name);
      et.predecessors = std::move(st.predecessors);
      CB_CHECK(st.release >= 0.0, "release time must be non-negative");
      et.release = st.release;
      tasks_.push_back(std::move(et));
    }
    for (TaskId id = base; id < tasks_.size(); ++id) {
      EmittedTask& et = tasks_[id];
      for (const TaskId pred : et.predecessors) {
        CB_CHECK(pred < tasks_.size() && pred != id,
                 "source referenced an unknown predecessor");
        if (!tasks_[pred].done) ++et.unfinished_preds;
      }
      if (et.unfinished_preds == 0) reveal_or_defer(id, now);
    }
  }

  /// Reveals `id` now if its release time has passed; otherwise schedules a
  /// release event.
  void reveal_or_defer(TaskId id, Time now) {
    const EmittedTask& et = tasks_[id];
    if (et.release <= now) {
      reveal(id, now);
    } else {
      events_.push(Event{et.release, seq_++, id, Event::Kind::Release});
    }
  }

  void reveal(TaskId id, Time now) {
    EmittedTask& et = tasks_[id];
    CB_DCHECK(!et.revealed, "task revealed twice");
    et.revealed = true;
    if (ready_times_.size() <= id) ready_times_.resize(id + 1, 0.0);
    ready_times_[id] = now;
    ReadyTask rt;
    rt.id = id;
    rt.work = et.declared_work;
    rt.procs = et.procs;
    rt.predecessors = et.predecessors;
    rt.name = et.name;
    scheduler_.task_ready(rt, now);
  }

  void decision_point(Time now) {
    ++decisions_;
    const int free_at_decision = pool_.available();
    const std::vector<TaskId> picks =
        scheduler_.select(now, free_at_decision);
    int requested = 0;
    for (const TaskId id : picks) {
      CB_CHECK(id < tasks_.size(), "scheduler selected an unknown task");
      EmittedTask& et = tasks_[id];
      CB_CHECK(et.revealed, "scheduler selected an unrevealed task");
      CB_CHECK(!et.started, "scheduler selected an already started task");
      requested += et.procs;
      CB_CHECK(requested <= free_at_decision,
               "scheduler selection exceeds free processors");
      et.started = true;
      et.held_processors = pool_.acquire(et.procs);
      schedule_.add(id, now, now + et.actual_work, et.held_processors);
      events_.push(Event{now + et.actual_work, seq_++, id,
                         Event::Kind::Completion});
      ++running_;
    }
    // Pending release events mean the platform may legitimately sit idle
    // waiting for future arrivals.
    CB_CHECK(running_ > 0 || !events_.empty() ||
                 done_count_ == tasks_.size(),
             "scheduler deadlock: platform idle, no selection, work remains");
  }

  void complete(TaskId id, Time now) {
    EmittedTask& et = tasks_[id];
    CB_DCHECK(et.started && !et.done, "completion of a task not running");
    et.done = true;
    --running_;
    ++done_count_;
    busy_area_ += et.actual_work * static_cast<Time>(et.procs);
    pool_.release(et.held_processors);
    et.held_processors.clear();
    scheduler_.task_finished(id, now);

    // Readiness cascade for already-emitted tasks.
    // (Successor lists are not stored; scan is avoided by keeping reverse
    // links below.)
    for (const TaskId succ : successors_of(id)) {
      EmittedTask& s = tasks_[succ];
      CB_DCHECK(s.unfinished_preds > 0, "readiness underflow");
      if (--s.unfinished_preds == 0) reveal_or_defer(succ, now);
    }

    // Adaptive sources may extend the instance now.
    emit(source_.on_complete(id, now), now);
  }

  // Reverse dependency links, built lazily as tasks are emitted.
  std::vector<TaskId> successors_of(TaskId id) {
    build_succ_links();
    return succs_[id];
  }

  void build_succ_links() {
    while (succ_built_ < tasks_.size()) {
      const auto id = static_cast<TaskId>(succ_built_);
      if (succs_.size() < tasks_.size()) succs_.resize(tasks_.size());
      for (const TaskId pred : tasks_[id].predecessors) {
        succs_[pred].push_back(id);
      }
      ++succ_built_;
    }
  }

  InstanceSource& source_;
  OnlineScheduler& scheduler_;
  ProcessorPool pool_;
  int procs_;

  std::vector<EmittedTask> tasks_;
  std::vector<std::vector<TaskId>> succs_;
  std::size_t succ_built_ = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  std::vector<Time> ready_times_;
  std::size_t running_ = 0;
  std::size_t done_count_ = 0;
  std::size_t decisions_ = 0;
  Time busy_area_ = 0.0;
  Schedule schedule_;
};

}  // namespace

SimResult simulate(InstanceSource& source, OnlineScheduler& scheduler,
                   int procs) {
  Engine engine(source, scheduler, procs);
  return engine.run();
}

SimResult simulate(const TaskGraph& graph, OnlineScheduler& scheduler,
                   int procs) {
  GraphSource source(graph);
  return simulate(source, scheduler, procs);
}

}  // namespace catbatch
