#include "sim/engine.hpp"

#include <utility>
#include <vector>

#include "sim/session.hpp"

namespace catbatch {

// ---------------------------------------------------------------------------
// GraphSource

GraphSource::GraphSource(const TaskGraph& graph) : graph_(graph) {
  graph_.validate();
}

std::vector<SourceTask> GraphSource::start() {
  // Generic (copying) fallback for callers driving the InstanceSource
  // interface by hand; the engine itself uses static_graph() and never
  // materializes these copies.
  std::vector<SourceTask> out;
  out.reserve(graph_.size());
  for (TaskId id = 0; id < graph_.size(); ++id) {
    const Task& t = graph_.task(id);
    SourceTask st;
    st.work = t.work;
    st.procs = t.procs;
    st.name = t.name;
    const auto preds = graph_.predecessors(id);
    st.predecessors.assign(preds.begin(), preds.end());
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<SourceTask> GraphSource::on_complete(TaskId, Time) { return {}; }

// ---------------------------------------------------------------------------
// simulate() — batch wrappers over the stepwise SessionEngine
// (sim/session.cpp owns the event loop). A batch run always drives the
// Simulated clock, whatever the options say.

SimResult simulate(InstanceSource& source, OnlineScheduler& scheduler,
                   int procs, const SimOptions& options) {
  SessionOptions session_options = options;
  session_options.clock = SessionClock::Simulated;
  SessionEngine session(scheduler, procs, session_options);
  session.submit(source);
  session.drain();
  return session.finish();
}

SimResult simulate(const TaskGraph& graph, OnlineScheduler& scheduler,
                   int procs, const SimOptions& options) {
  GraphSource source(graph);
  return simulate(source, scheduler, procs, options);
}

}  // namespace catbatch
