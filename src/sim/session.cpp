#include "sim/session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "core/criticality.hpp"
#include "core/soa_graph.hpp"
#include "obs/observer.hpp"
#include "sim/event_queue.hpp"
#include "sim/processor_pool.hpp"
#include "support/check.hpp"

namespace catbatch {

// ---------------------------------------------------------------------------
// SessionEngine::Impl
//
// Per-task state lives in one packed 32-byte TaskRec per task. The CSR
// adjacency stays columnar (it is streamed), but every scalar the event
// loop touches for a task — work, criticality finish, remaining
// predecessor count, width, lifecycle bits — shares a single cache line.
// That layout choice is what the 1M-10M tiers are gated on: task ids at
// scale arrive in data-dependent (effectively random) order, so each
// separate per-task column costs one DRAM miss per touch, and folding five
// columns into one record turns ~five misses into one at every reveal,
// start, and completion. The ingest paths differ only in how the records
// are filled:
//
//   soa      — records are filled from the source's SoaGraph in one
//              sequential pass; the CSR adjacency (both directions) is
//              *borrowed* from the frozen graph. This is the 1M-10M-task
//              path: ingest is O(n) streaming, not a copy of the instance.
//   static   — records filled from the graph's task rows, predecessors
//              copied into one CSR arena; names stay viewed through the
//              graph.
//   generic  — adaptive sources and external submit() batches append
//              records per batch; the CSR views are refreshed after every
//              batch (vector growth moves the storage).
//
// The engine also owns the f∞ recurrence (Lemma 1): at reveal it computes
// s∞ = max over predecessors of their recorded crit_finish and hands it to
// the scheduler in ReadyTask::earliest_start. Every scheduler used to
// re-derive exactly this from a private finish-time table — one random
// read per predecessor plus a random write per task, per scheduler —
// so centralizing it removes the last per-task random traffic outside the
// record itself. The max is order-independent in IEEE-754, so the values
// are bit-identical to the scheduler-side recurrence they replace.

namespace {

// Per-task lifecycle bits (TaskRec::state).
constexpr std::uint8_t kRevealed = 1;
constexpr std::uint8_t kStarted = 2;
constexpr std::uint8_t kDone = 4;

/// Hot per-task state: exactly half a cache line, so two tasks share a
/// line and one task never straddles two. The processor requirement and
/// the lifecycle bits share one word (procs in the high 24 bits), which is
/// what makes room for the ready time inside the record — keeping it here
/// instead of in a parallel column saves one DRAM miss per task at scale.
struct TaskRec {
  Time work = 0.0;  // actual (simulated) execution time
  // Criticality slot: s∞ (pre-filled at ingest) for fixed instances, or
  // f∞ = s∞ + declared work (set at reveal) under the online recurrence of
  // adaptive sources — see Impl::crit_precomputed_.
  Time crit_finish = 0.0;
  Time ready_time = 0.0;  // when the task was revealed (SimResult)
  std::uint32_t procs_state = 0;  // procs << 8 | lifecycle bits
  // Remaining-predecessor countdown, decremented by the completion
  // cascade. Keeping it inside the record (rather than a separate dense
  // column) measured at parity under interleaved A/B at 1M tasks: the
  // cascade's decrement usually shares a cache line with the reveal that
  // follows it, so splitting the countdown out buys no locality.
  std::uint32_t unfinished = 0;

  [[nodiscard]] int procs() const noexcept {
    return static_cast<int>(procs_state >> 8);
  }
  [[nodiscard]] std::uint8_t state() const noexcept {
    return static_cast<std::uint8_t>(procs_state & 0xff);
  }
  void set_procs(int procs) noexcept {
    procs_state = (static_cast<std::uint32_t>(procs) << 8) | (procs_state & 0xff);
  }
  void mark(std::uint8_t bit) noexcept { procs_state |= bit; }
};
static_assert(sizeof(TaskRec) == 32, "TaskRec must stay half a cache line");

/// Widest processor requirement that fits TaskRec's packed word. Far above
/// any simulatable platform; checked at ingest so packing can never wrap.
constexpr int kMaxProcs = (1 << 24) - 1;

/// Overflow reverse-adjacency arena node (successors appended after the
/// first batch's CSR was frozen). A per-predecessor linked list through one
/// flat arena replaces the historical vector-of-vectors: appending a chunk
/// costs O(edges) arena pushes instead of one heap block per predecessor,
/// which is what makes 10M-task chunked ingest feasible. List order is
/// append order — identical to the push_back order the vectors had.
struct ExtraNode {
  TaskId succ = kInvalidTask;
  std::uint32_t next = 0;
};
constexpr std::uint32_t kNoExtra = 0xffffffffu;

}  // namespace

struct SessionEngine::Impl {
  Impl(OnlineScheduler& scheduler, int procs, const SessionOptions& options)
      : scheduler_(scheduler),
        procs_(procs),
        capacity_(procs),
        counting_(options.mode == ScheduleMode::Counting),
        external_(options.clock == SessionClock::External),
        obs_(options.observer),
        par_(options.parallel),
        avail_(procs),
        pool_(counting_ ? 1 : procs) {
    CB_CHECK(procs >= 1, "platform must have at least one processor");
  }

  // -- public entry points ---------------------------------------------------

  std::span<const Decision> bind_source(InstanceSource& source) {
    CB_CHECK(!started_, "a session accepts one source, before any submit");
    started_ = true;
    source_ = &source;
    begin_call();
    scheduler_.reset();
    if ((soa_ = source.soa_graph()) != nullptr) {
      scheduler_.instance_hint(soa_->size());
      ingest_soa(*soa_);
    } else if ((static_graph_ = source.static_graph()) != nullptr) {
      scheduler_.instance_hint(static_graph_->size());
      ingest_graph(*static_graph_);
    } else {
      ingest_batch(source.start(), /*now=*/0.0);
    }
    decision_point(/*now=*/0.0);
    return decisions();
  }

  std::span<const Decision> submit_batch(std::vector<SourceTask> tasks,
                                         Time now) {
    CB_CHECK(source_ == nullptr,
             "a source-bound session cannot accept external submissions");
    CB_CHECK(now >= now_, "submission time moves the session clock backwards");
    begin_call();
    if (!started_) {
      started_ = true;
      scheduler_.reset();
    }
    run_internal_until(now);
    now_ = now;
    ingest_batch(std::move(tasks), now);
    decision_point(now);
    return decisions();
  }

  std::span<const Decision> submit_chunk(SoaChunk chunk, Time now) {
    CB_CHECK(source_ == nullptr,
             "a source-bound session cannot accept external submissions");
    CB_CHECK(now >= now_, "submission time moves the session clock backwards");
    begin_call();
    if (!started_) {
      started_ = true;
      scheduler_.reset();
    }
    run_internal_until(now);
    now_ = now;
    ingest_chunk(std::move(chunk), now);
    decision_point(now);
    return decisions();
  }

  std::span<const Decision> advance(const SessionEvent& event) {
    CB_CHECK(external_,
             "advance() drives the External clock; use step() under the "
             "Simulated clock");
    CB_CHECK(event.at >= now_, "event moves the session clock backwards");
    begin_call();
    run_internal_until(event.at);
    now_ = event.at;
    if (event.kind == SessionEvent::Kind::Completion) {
      const TaskId id = event.id;
      CB_CHECK(id < n_, "completion for an unknown task");
      const TaskRec& rec = records_[id];
      CB_CHECK(rec.state() & kStarted, "completion for a task never started");
      CB_CHECK(!(rec.state() & kDone), "task completed twice");
      ++events_processed_;
      complete(id, event.at);
      decision_point(event.at);
    }
    return decisions();
  }

  std::span<const Decision> step() {
    CB_CHECK(!external_,
             "step() drives the Simulated clock; use advance() under the "
             "External clock");
    begin_call();
    if (!events_.empty()) step_one();
    return decisions();
  }

  std::span<const Decision> set_capacity(int cap, Time at) {
    CB_CHECK(cap >= 0 && cap <= procs_,
             "capacity must be within [0, platform size]");
    CB_CHECK(at >= now_, "capacity change moves the session clock backwards");
    begin_call();
    if (!started_) {
      started_ = true;
      scheduler_.reset();
    }
    run_internal_until(at);
    now_ = at;
    if (cap < procs_) faults_seen_ = true;
    if (cap != capacity_) {
      capacity_ = cap;
      ++capacity_changes_;
    }
    // A restore may make room for waiting tasks; a drop never preempts, so
    // the decision point is at worst a no-op select().
    decision_point(at);
    return decisions();
  }

  std::span<const Decision> kill_task(TaskId id, Time at) {
    CB_CHECK(at >= now_, "kill moves the session clock backwards");
    begin_call();
    run_internal_until(at);
    now_ = at;
    CB_CHECK(id < n_, "kill for an unknown task");
    TaskRec& rec = records_[id];
    CB_CHECK(rec.state() & kStarted, "kill for a task never started");
    CB_CHECK(!(rec.state() & kDone), "kill for a task already completed");
    faults_seen_ = true;
    ++kills_;
    const int procs = rec.procs();
    {
      const ScheduledTask& entry = schedule_.entry_for(id);
      lost_area_ += (at - entry.start) * static_cast<Time>(procs);
      if (counting_) {
        avail_ += procs;
      } else {
        pool_.release(entry.processors);
      }
    }
    schedule_.supersede(id, at);
    --running_;
    // Invalidate the killed attempt's pending completion (Simulated clock):
    // the event still sits in the queue, but its generation no longer
    // matches and the pop paths discard it.
    if (kill_gen_.size() < n_) kill_gen_.resize(n_, 0);
    CB_CHECK(kill_gen_[id] < 0xffff, "task killed too many times");
    ++kill_gen_[id];
    // Back to the ready (revealed, unstarted) state: the re-reveal below
    // re-marks kRevealed and recomputes the same deterministic s∞.
    rec.procs_state &=
        ~static_cast<std::uint32_t>(std::uint32_t{kRevealed} | kStarted);
    scheduler_.task_killed(id, at);
    reveal(id, at, /*resubmit=*/true);
    decision_point(at);
    return decisions();
  }

  void drain() {
    CB_CHECK(!external_, "drain() requires the Simulated clock");
    while (!events_.empty()) {
      decisions_.clear();
      step_one();
    }
    CB_CHECK(done_count_ == n_,
             "simulation drained with unfinished tasks (scheduler deadlock)");
  }

  SimResult finish() {
    if (!external_) {
      CB_CHECK(done_count_ == n_,
               "simulation drained with unfinished tasks (scheduler deadlock)");
    }
    SimResult result;
    result.schedule = std::move(schedule_);
    result.makespan = result.schedule.makespan();
    if (obs_ != nullptr) {
      obs_->on_run_end(result.makespan, busy_area_, procs_, n_);
    }
    result.stats.task_count = n_;
    result.stats.decision_points = decisions_total_;
    result.stats.events = events_processed_;
    result.stats.busy_area = busy_area_;
    result.stats.lost_area = lost_area_;
    result.stats.kills = kills_;
    result.stats.capacity_changes = capacity_changes_;
    result.ready_times.resize(n_);
    for (TaskId id = 0; id < n_; ++id) {
      result.ready_times[id] = records_[id].ready_time;
    }
    return result;
  }

  [[nodiscard]] std::span<const Decision> decisions() const {
    return {decisions_.data(), decisions_.size()};
  }

  // -- stepping helpers -----------------------------------------------------

  void begin_call() { decisions_.clear(); }

  /// True for a completion event of an attempt that was killed after the
  /// event was queued (the kill bumped the task's generation). Zero cost
  /// for fault-free runs: kill_gen_ stays empty until the first kill.
  [[nodiscard]] bool stale(const SimEvent& ev) const noexcept {
    return !kill_gen_.empty() && ev.kind == SimEvent::Kind::Completion &&
           ev.id < kill_gen_.size() && kill_gen_[ev.id] != ev.gen;
  }

  /// Generation stamp for a completion pushed now; 0 until the first kill.
  [[nodiscard]] std::uint16_t gen_of(TaskId id) const noexcept {
    return id < kill_gen_.size() ? kill_gen_[id] : 0;
  }

  /// One iteration of the classic event loop: pop, prefetch the next
  /// event's record, process, decide. Exactly the batch simulate() body.
  void step_one() {
    const SimEvent ev = events_.pop();
    if (stale(ev)) return;  // killed attempt's completion: discard silently
    // Start the *next* event's record and successor row toward the cache
    // while this event is processed; at 1M+ tasks both are DRAM-cold.
    const TaskId next = events_.peek_id();
    if (next < n_) {
      __builtin_prefetch(&records_[next]);
      if (next < csr_tasks_) __builtin_prefetch(succ_off_ + next);
    }
    ++events_processed_;
    now_ = ev.at;
    if (ev.kind == SimEvent::Kind::Completion) {
      complete(ev.id, ev.at);
    } else {
      reveal(ev.id, ev.at);
    }
    decision_point(ev.at);
  }

  /// Fires internal events at or before `until` (each with its own
  /// decision point) before an external submission or event is applied.
  /// Under the External clock only release-time reveals live on the queue;
  /// under the Simulated clock a mid-run submit() also drains completions
  /// scheduled before the submission time.
  void run_internal_until(Time until) {
    SimEvent ev;
    while (events_.pop_until(until, ev)) {
      if (stale(ev)) continue;  // killed attempt's completion: discard
      ++events_processed_;
      now_ = ev.at;
      if (ev.kind == SimEvent::Kind::Completion) {
        complete(ev.id, ev.at);
      } else {
        reveal(ev.id, ev.at);
      }
      decision_point(ev.at);
    }
  }

  // -- ingestion ------------------------------------------------------------

  /// SoA fast path: borrow both CSR adjacencies from the frozen graph and
  /// fill the task records in one streaming pass. build_soa_graph already
  /// validated work/procs/adjacency; only the instance-vs-platform fit is
  /// checked here.
  void ingest_soa(const SoaGraph& g) {
    CB_CHECK(g.max_procs <= procs_,
             "source emitted a task that cannot fit the platform");
    CB_CHECK(g.max_procs <= kMaxProcs,
             "task processor requirement too large");
    const std::size_t n = g.size();
    n_ = n;
    pred_off_ = g.pred_offsets.data();
    pred_dat_ = g.pred_data.data();
    succ_off_ = g.succ_offsets.data();
    succ_dat_ = g.succ_data.data();
    csr_tasks_ = n;
    csr_built_ = true;
    records_.resize(n);
    const Time* work = g.work.data();
    const int* procs = g.procs.data();
    // Record fill is embarrassingly parallel: each task writes only its
    // own record, so the fixed chunk partition (support/parallel.hpp) is
    // race-free and the result is independent of the thread count.
    parallel_chunks(par_, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t id = lo; id < hi; ++id) {
        TaskRec& rec = records_[id];
        rec.work = work[id];
        rec.set_procs(procs[id]);
        rec.unfinished = pred_off_[id + 1] - pred_off_[id];
      }
    });
    // Lemma 1 as one level-ordered sweep (the core SoA criticality kernel,
    // inlined over the records): level k reads only finishes of levels < k.
    // Precomputing s∞ here removes the per-predecessor random reads from
    // every reveal — the exact-time model guarantees the online recurrence
    // would produce these very values (max is order-insensitive), so the
    // scheduler-visible stream is bit-identical. Wide levels fan out over
    // fixed chunk-sized blocks; graphs with topological ids whose levels
    // average below one block take a prefetched id-order scan instead —
    // the recurrence has a unique fixpoint, so every path computes the
    // same IEEE values (see compute_criticalities(SoaGraph,
    // ParallelOptions), whose structure this mirrors).
    {
      std::vector<Time> fin(n);
      const std::size_t levels = g.level_count();
      const std::size_t chunk = std::max<std::size_t>(1, par_.chunk);
      const bool level_parallel =
          !par_.serial() && levels > 0 && n / levels >= chunk;
      if (g.ids_topological && !level_parallel) {
        constexpr std::size_t kPrefetch = 16;
        for (TaskId id = 0; id < n; ++id) {
          if (id + kPrefetch < n) {
            __builtin_prefetch(&pred_dat_[pred_off_[id + kPrefetch]]);
          }
          Time s = 0.0;
          for (const TaskId pred : preds_of(id)) s = std::max(s, fin[pred]);
          records_[id].crit_finish = s;  // holds s∞ when precomputed
          fin[id] = s + work[id];
        }
      } else {
        for (std::size_t lvl = 0; lvl < levels; ++lvl) {
          const std::span<const TaskId> ids = g.level(lvl);
          parallel_chunks(par_, ids.size(),
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t k = lo; k < hi; ++k) {
                              const TaskId id = ids[k];
                              Time s = 0.0;
                              for (const TaskId pred : preds_of(id)) {
                                s = std::max(s, fin[pred]);
                              }
                              records_[id].crit_finish = s;
                              fin[id] = s + work[id];
                            }
                          });
        }
      }
    }
    crit_precomputed_ = true;
    finalize_batch(/*base=*/0, /*now=*/0.0);
  }

  /// Static fast path: tasks come straight from the graph. Scalars are
  /// copied into the task records (so the hot loop never chases the
  /// graph's AoS rows); name views keep pointing into graph-owned storage.
  void ingest_graph(const TaskGraph& g) {
    const std::size_t n = g.size();
    n_ = n;
    records_.reserve(n);
    pred_offsets_.reserve(n + 1);
    std::size_t edges = 0;
    for (TaskId id = 0; id < n; ++id) edges += g.predecessors(id).size();
    pred_data_.reserve(edges);
    for (TaskId id = 0; id < n; ++id) {
      const Task& t = g.task(id);
      CB_CHECK(t.work > 0.0, "source emitted a task with non-positive work");
      CB_CHECK(t.procs >= 1 && t.procs <= procs_,
               "source emitted a task that cannot fit the platform");
      CB_CHECK(t.procs <= kMaxProcs, "task processor requirement too large");
      const auto preds = g.predecessors(id);
      TaskRec rec;
      rec.work = t.work;
      rec.set_procs(t.procs);
      rec.unfinished = static_cast<std::uint32_t>(preds.size());
      records_.push_back(rec);
      pred_data_.insert(pred_data_.end(), preds.begin(), preds.end());
      pred_offsets_.push_back(static_cast<std::uint32_t>(pred_data_.size()));
    }
    pred_off_ = pred_offsets_.data();
    pred_dat_ = pred_data_.data();
    // Same precomputed-s∞ scheme as the SoA path (see ingest_soa); the
    // TaskGraph kernel handles the topological ordering.
    const std::vector<Criticality> crit = compute_criticalities(g);
    for (TaskId id = 0; id < n; ++id) {
      records_[id].crit_finish = crit[id].earliest_start;
    }
    crit_precomputed_ = true;
    finalize_batch(/*base=*/0, /*now=*/0.0);
  }

  /// Generic path for adaptive sources and external submissions. Two
  /// passes: tasks of one batch may reference each other in any order (ids
  /// need not be topological — e.g. series-parallel generators), so create
  /// every task before resolving predecessor states.
  void ingest_batch(std::vector<SourceTask> emitted, Time now) {
    if (emitted.empty() && csr_built_) return;
    const auto base = static_cast<TaskId>(n_);
    align_generic_stores(base);
    for (SourceTask& st : emitted) {
      CB_CHECK(st.work > 0.0, "source emitted a task with non-positive work");
      CB_CHECK(st.procs >= 1 && st.procs <= procs_,
               "source emitted a task that cannot fit the platform");
      CB_CHECK(st.release >= 0.0, "release time must be non-negative");
      CB_CHECK(st.procs <= kMaxProcs, "task processor requirement too large");
      TaskRec rec;
      rec.work = st.work;
      rec.set_procs(st.procs);
      records_.push_back(rec);
      declared_store_.push_back(st.declared());
      release_store_.push_back(st.release);
      pred_data_.insert(pred_data_.end(), st.predecessors.begin(),
                        st.predecessors.end());
      pred_offsets_.push_back(static_cast<std::uint32_t>(pred_data_.size()));
      name_chars_.append(st.name);
      name_offsets_.push_back(static_cast<std::uint32_t>(name_chars_.size()));
    }
    n_ = records_.size();
    pred_off_ = pred_offsets_.data();
    pred_dat_ = pred_data_.data();
    for (TaskId id = base; id < n_; ++id) {
      std::uint32_t unfinished = 0;
      for (const TaskId pred : preds_of(id)) {
        CB_CHECK(pred < n_ && pred != id,
                 "source referenced an unknown predecessor");
        if (!(records_[pred].state() & kDone)) ++unfinished;
      }
      records_[id].unfinished = unfinished;
    }
    finalize_batch(base, now);
  }

  /// Chunked streaming path: one frozen SoaChunk is appended to the
  /// engine-owned columns in O(size + edges), with validation and record
  /// fill parallelized over fixed chunk-sized blocks. Criticalities follow
  /// the online f∞ recurrence at reveal (crit_precomputed_ stays false),
  /// exactly as if the same tasks had arrived as submit() batches — so a
  /// fixed chunk partition replays bit-identically at any thread count.
  void ingest_chunk(SoaChunk&& chunk, Time now) {
    const auto base = static_cast<TaskId>(n_);
    CB_CHECK(chunk.base == base,
             "chunks must arrive in submission order (chunk.base != "
             "tasks_submitted())");
    const std::size_t add = chunk.size();
    CB_CHECK(chunk.procs.size() == add &&
                 chunk.pred_offsets.size() == add + 1 &&
                 chunk.pred_offsets.front() == 0 &&
                 chunk.pred_offsets.back() == chunk.pred_data.size(),
             "chunk arrays are inconsistently sized");
    if (add == 0 && csr_built_) return;
    const std::size_t n = base + add;
    records_.resize(n);
    const auto arena_base = static_cast<std::uint32_t>(pred_data_.size());
    pred_data_.insert(pred_data_.end(), chunk.pred_data.begin(),
                      chunk.pred_data.end());
    pred_offsets_.reserve(n + 1);
    for (std::size_t k = 1; k <= add; ++k) {
      pred_offsets_.push_back(arena_base + chunk.pred_offsets[k]);
    }
    pred_off_ = pred_offsets_.data();
    pred_dat_ = pred_data_.data();
    // Validate and fill in parallel. Each worker writes only its own
    // records; predecessor *records* are read only for ids below `base`
    // (frozen during this pass) — a same-chunk predecessor is by
    // definition unfinished, so its record is never inspected and the
    // pass is race-free.
    parallel_chunks(par_, add, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) {
        const auto id = static_cast<TaskId>(base + k);
        CB_CHECK(chunk.work[k] > 0.0,
                 "chunk task has non-positive work");
        CB_CHECK(chunk.procs[k] >= 1 && chunk.procs[k] <= procs_,
                 "chunk task cannot fit the platform");
        CB_CHECK(chunk.procs[k] <= kMaxProcs,
                 "task processor requirement too large");
        TaskRec& rec = records_[id];
        rec.work = chunk.work[k];
        rec.set_procs(chunk.procs[k]);
        std::uint32_t unfinished = 0;
        const std::span<const TaskId> preds = preds_of(id);
        for (std::size_t e = 0; e < preds.size(); ++e) {
          const TaskId pred = preds[e];
          CB_CHECK(pred < id, "chunk predecessor must be an earlier task");
          CB_CHECK(e == 0 || preds[e - 1] < pred,
                   "chunk predecessor rows must be strictly ascending");
          if (pred >= base || !(records_[pred].state() & kDone)) ++unfinished;
        }
        rec.unfinished = unfinished;
      }
    });
    n_ = n;
    finalize_batch(base, now);
  }

  /// Backfills the generic-path per-task columns (declared work, release
  /// times, name arena offsets) with their defaults up to `upto` tasks.
  /// Chunked submissions skip these columns entirely — a chunk task's
  /// declared work is its actual work, releases are zero, names empty — so
  /// when a generic batch lands on a session that already ingested chunks,
  /// the columns must first catch up to keep ids aligned. No-op unless
  /// chunk and generic batches were actually mixed.
  void align_generic_stores(TaskId upto) {
    while (declared_store_.size() < upto) {
      declared_store_.push_back(records_[declared_store_.size()].work);
    }
    if (release_store_.size() < upto) release_store_.resize(upto, 0.0);
    if (name_offsets_.size() < upto + 1) {
      name_offsets_.resize(upto + 1, name_offsets_.back());
    }
  }

  /// Sizes every per-task buffer once for the whole batch (the per-event
  /// loop then never grows them), wires the reverse adjacency, and reveals
  /// the batch's ready tasks in id order.
  void finalize_batch(TaskId base, Time now) {
    const std::size_t n = n_;
    // A task has at most one pending event at any moment, but the typical
    // peak is far smaller (P running tasks plus pending releases), so cap
    // the up-front reservation: at 10M tasks a full-size event buffer
    // would cost 24 bytes/task for a queue that stays kilobytes deep.
    // Release-heavy instances grow it amortized (and the calendar queue
    // takes over well before that matters).
    events_.reserve(std::min<std::size_t>(n, 65536));
    picks_.reserve(std::min<std::size_t>(n, 4096));
    decisions_.reserve(std::min<std::size_t>(n, 4096));
    schedule_.reserve(n);
    if (!csr_built_) {
      build_succ_csr();
      csr_built_ = true;
    } else if (soa_ == nullptr && pred_off_[n] > pred_off_[base]) {
      // Later (adaptive/chunked) batches append to the overflow adjacency;
      // ids grow monotonically, so csr-then-overflow traversal stays
      // ascending. Per-predecessor linked lists through one arena: append
      // order equals batch order, the order the per-pred vectors had.
      if (extra_head_.size() < n) {
        extra_head_.resize(n, kNoExtra);
        extra_tail_.resize(n, kNoExtra);
      }
      extra_nodes_.reserve(extra_nodes_.size() +
                           (pred_off_[n] - pred_off_[base]));
      for (TaskId id = base; id < n; ++id) {
        for (const TaskId pred : preds_of(id)) {
          const auto node = static_cast<std::uint32_t>(extra_nodes_.size());
          extra_nodes_.push_back(ExtraNode{id, kNoExtra});
          if (extra_tail_[pred] == kNoExtra) {
            extra_head_[pred] = node;
          } else {
            extra_nodes_[extra_tail_[pred]].next = node;
          }
          extra_tail_[pred] = node;
        }
      }
      has_extra_ = true;
    }
    if (obs_ != nullptr) {
      for (TaskId id = base; id < n; ++id) obs_->on_task_revealed(id, now);
    }
    for (TaskId id = base; id < n; ++id) {
      if (records_[id].unfinished == 0) reveal_or_defer(id, now);
    }
  }

  /// CSR reverse adjacency over the first batch (the whole instance for
  /// static sources): counting sort of the predecessor arena, one pass, so
  /// each successor row is ascending — the same order the per-successor
  /// push_back construction produced historically.
  void build_succ_csr() {
    const std::size_t n = n_;
    csr_tasks_ = n;
    succ_offsets_.assign(n + 1, 0);
    succ_data_.resize(pred_data_.size());
    for (const TaskId pred : pred_data_) ++succ_offsets_[pred + 1];
    for (std::size_t i = 1; i <= n; ++i) succ_offsets_[i] += succ_offsets_[i - 1];
    std::vector<std::uint32_t> cursor(succ_offsets_.begin(),
                                      succ_offsets_.end() - 1);
    for (TaskId id = 0; id < n; ++id) {
      for (const TaskId pred : preds_of(id)) {
        succ_data_[cursor[pred]++] = id;
      }
    }
    succ_off_ = succ_offsets_.data();
    succ_dat_ = succ_data_.data();
  }

  // -- column views ---------------------------------------------------------

  [[nodiscard]] std::span<const TaskId> preds_of(TaskId id) const {
    return {pred_dat_ + pred_off_[id], pred_dat_ + pred_off_[id + 1]};
  }

  [[nodiscard]] std::span<const TaskId> csr_successors(TaskId id) const {
    if (id >= csr_tasks_) return {};
    return {succ_dat_ + succ_off_[id], succ_dat_ + succ_off_[id + 1]};
  }

  [[nodiscard]] Time release_of(TaskId id) const {
    return release_store_.empty() ? 0.0 : release_store_[id];
  }

  [[nodiscard]] std::string_view name_of(TaskId id) const {
    if (soa_ != nullptr) return soa_->name(id);
    if (static_graph_ != nullptr) return static_graph_->task(id).name;
    // Chunked submissions never append name offsets; a pure-chunk (or
    // chunk-tail) session simply has no names.
    if (id + 1 >= name_offsets_.size()) return {};
    const std::uint32_t from = name_offsets_[id];
    return std::string_view(name_chars_).substr(from,
                                                name_offsets_[id + 1] - from);
  }

  // -- simulation steps -----------------------------------------------------

  /// Reveals `id` now if its release time has passed; otherwise schedules a
  /// release event.
  void reveal_or_defer(TaskId id, Time now) {
    const Time release = release_of(id);
    if (release <= now) {
      reveal(id, now);
    } else {
      events_.push(release, id, SimEvent::Kind::Release);
    }
  }

  void reveal(TaskId id, Time now, bool resubmit = false) {
    TaskRec& rec = records_[id];
    CB_DCHECK(!(rec.state() & kRevealed), "task revealed twice");
    rec.mark(kRevealed);
    rec.ready_time = now;
    // Lemma 1, maintained once for every scheduler. Fixed instances (SoA
    // and static paths) have s∞ precomputed into the record at ingest;
    // adaptive sources run the online recurrence — s∞ is the max f∞ over
    // the predecessors, all revealed (and their crit_finish recorded)
    // strictly earlier. Declared work feeds f∞ — the scheduler must batch
    // on the information it was shown, not the simulated truth.
    const auto preds = preds_of(id);
    const Time declared =
        declared_store_.empty() ? rec.work : declared_store_[id];
    Time s_inf;
    if (crit_precomputed_) {
      s_inf = rec.crit_finish;  // filled with s∞ at ingest
    } else {
      s_inf = 0.0;
      for (const TaskId pred : preds) {
        s_inf = std::max(s_inf, records_[pred].crit_finish);
      }
      rec.crit_finish = s_inf + declared;
    }
    ReadyTask rt;
    rt.id = id;
    rt.work = declared;
    rt.procs = rec.procs();
    rt.predecessors = preds;
    rt.name = name_of(id);
    rt.earliest_start = s_inf;
    rt.resubmit = resubmit;
    scheduler_.task_ready(rt, now);
    if (obs_ != nullptr) obs_->on_task_ready(id, now);
  }

  void decision_point(Time now) {
    ++decisions_total_;
    // Free-at-dispatch under dynamic capacity: occupancy is bounded by the
    // *platform* (pool_free counts against procs_), and new dispatches are
    // additionally bounded by the effective capacity — procs_ - capacity_
    // processors are "down" and uncountable as free. At full capacity this
    // is exactly pool_free, bit-for-bit the fault-free engine.
    const int pool_free = counting_ ? avail_ : pool_.available();
    const int free_at_decision =
        capacity_ == procs_ ? pool_free
                            : std::max(0, pool_free - (procs_ - capacity_));
    picks_.clear();
    // Wall-clock select timing only exists when someone is listening; the
    // un-observed path stays exactly the PR 2 hot loop.
    double select_wall_us = 0.0;
    if (obs_ != nullptr && obs_->wants_select_timing()) {
      const auto t0 = std::chrono::steady_clock::now();
      scheduler_.select(now, free_at_decision, picks_);
      select_wall_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    } else {
      scheduler_.select(now, free_at_decision, picks_);
    }
    if (obs_ != nullptr) {
      obs_->on_select(now, free_at_decision, select_wall_us, picks_.size());
    }
    if (picks_.size() > 1) {
      // The records were last touched at reveal time, typically long
      // evicted; fetch them all in parallel before the serial pick loop.
      for (const TaskId id : picks_) {
        if (id < n_) __builtin_prefetch(&records_[id], 1);
      }
    }
    int requested = 0;
    for (const TaskId id : picks_) {
      CB_CHECK(id < n_, "scheduler selected an unknown task");
      TaskRec& rec = records_[id];
      CB_CHECK(rec.state() & kRevealed,
               "scheduler selected an unrevealed task");
      CB_CHECK(!(rec.state() & kStarted),
               "scheduler selected an already started task");
      const int procs = rec.procs();
      const Time work = rec.work;
      requested += procs;
      CB_CHECK(requested <= free_at_decision,
               "scheduler selection exceeds free processors");
      rec.mark(kStarted);
      if (counting_) {
        avail_ -= procs;
        schedule_.add_counted(id, now, now + work, procs);
      } else {
        schedule_.add(id, now, now + work, pool_.acquire(procs));
      }
      // External sessions hear about completions from the caller; the
      // Simulated clock schedules them itself.
      if (!external_) {
        events_.push(now + work, id, SimEvent::Kind::Completion, gen_of(id));
      }
      decisions_.push_back(Decision{id, now, procs});
      if (obs_ != nullptr) {
        if (running_ == 0) obs_->on_busy_open(now);
        obs_->on_dispatch(id, now, now + work, procs);
      }
      ++running_;
    }
    // Pending release events mean the platform may legitimately sit idle
    // waiting for future arrivals — and an External-clock session may
    // always receive more submissions, so the deadlock diagnosis is only
    // decidable under the Simulated clock. Once a fault event (kill or
    // reduced capacity) has touched the session, idling is likewise
    // legitimate — the scenario driver may restore capacity later — so the
    // per-decision diagnosis defers to drain()'s final done-count check.
    if (!external_ && !faults_seen_) {
      CB_CHECK(running_ > 0 || !events_.empty() || done_count_ == n_,
               "scheduler deadlock: platform idle, no selection, work remains");
    }
  }

  void complete(TaskId id, Time now) {
    TaskRec& rec = records_[id];
    CB_DCHECK((rec.state() & kStarted) && !(rec.state() & kDone),
              "completion of a task not running");
    rec.mark(kDone);
    --running_;
    ++done_count_;
    const int procs = rec.procs();
    busy_area_ += rec.work * static_cast<Time>(procs);
    if (counting_) {
      avail_ += procs;
    } else {
      pool_.release(schedule_.entry_for(id).processors);
    }
    // The successors' records are scattered; start them all toward the
    // cache before the scheduler callback, so the cascade below finds the
    // lines in flight instead of missing serially. The predecessor CSR row
    // is fetched more gently — only the successors this completion actually
    // readies will walk it (at reveal, for the Lemma 1 fold).
    const auto succs = csr_successors(id);
    for (const TaskId succ : succs) {
      __builtin_prefetch(&records_[succ], 1);
      __builtin_prefetch(pred_off_ + succ, 0, 1);
    }
    if (obs_ != nullptr) {
      obs_->on_complete(id, now, procs);
      if (running_ == 0) obs_->on_busy_close(now);
    }
    scheduler_.task_finished(id, now);

    // Readiness cascade over the reverse adjacency (CSR span, plus the
    // overflow rows for adaptively emitted batches).
    for (const TaskId succ : succs) on_pred_done(succ, now);
    if (has_extra_ && id < extra_head_.size()) {
      for (std::uint32_t node = extra_head_[id]; node != kNoExtra;
           node = extra_nodes_[node].next) {
        on_pred_done(extra_nodes_[node].succ, now);
      }
    }

    // Adaptive sources may extend the instance now. Fixed-instance sources
    // promised otherwise via static_graph()/soa_graph(), so the per-task
    // callback (a virtual call per completion) is skipped outright;
    // externally submitted sessions have no source at all.
    if (source_ != nullptr && static_graph_ == nullptr && soa_ == nullptr) {
      std::vector<SourceTask> more = source_->on_complete(id, now);
      if (!more.empty()) ingest_batch(std::move(more), now);
    }
  }

  void on_pred_done(TaskId succ, Time now) {
    CB_DCHECK(records_[succ].unfinished > 0, "readiness underflow");
    if (--records_[succ].unfinished == 0) reveal_or_defer(succ, now);
  }

  OnlineScheduler& scheduler_;
  int procs_;
  int capacity_;  // effective capacity, in [0, procs_]; procs_ until faults
  bool counting_;
  bool external_;
  EngineObserver* obs_;  // null = observability off (no hook overhead)
  ParallelOptions par_;  // ingest-side parallelism (event loop stays serial)
  int avail_;           // counting-mode occupancy (O(1) acquire/release)
  ProcessorPool pool_;  // identity-mode concrete indices (unused otherwise)
  InstanceSource* source_ = nullptr;  // bound source, or null (submit mode)
  const TaskGraph* static_graph_ = nullptr;
  const SoaGraph* soa_ = nullptr;
  bool started_ = false;  // scheduler reset + first ingest happened

  // Packed per-task records, owned in every mode; filled at ingest.
  std::vector<TaskRec> records_;

  // Adjacency views (see the mode table above). Raw pointers, n_ (+1 for
  // the offsets) elements; refreshed whenever the backing storage may have
  // moved.
  std::size_t n_ = 0;
  const std::uint32_t* pred_off_ = nullptr;
  const TaskId* pred_dat_ = nullptr;
  const std::uint32_t* succ_off_ = nullptr;
  const TaskId* succ_dat_ = nullptr;

  // Engine-owned columns (static and generic paths; the SoA path never
  // touches them).
  std::vector<Time> declared_store_;  // generic only (may differ from actual)
  std::vector<Time> release_store_;   // generic only; empty = all zero
  std::vector<std::uint32_t> pred_offsets_{0};
  std::vector<TaskId> pred_data_;
  std::string name_chars_;
  std::vector<std::uint32_t> name_offsets_{0};

  // Reverse adjacency: CSR over the first batch, overflow rows for later
  // adaptive batches.
  std::vector<std::uint32_t> succ_offsets_;
  std::vector<TaskId> succ_data_;
  std::size_t csr_tasks_ = 0;
  bool csr_built_ = false;
  // True when TaskRec::crit_finish was pre-filled with s∞ at ingest (fixed
  // instances); false keeps the online f∞ recurrence (adaptive sources).
  bool crit_precomputed_ = false;
  // Overflow reverse adjacency: per-predecessor linked lists through one
  // flat arena (see ExtraNode above). kNoExtra-terminated.
  std::vector<std::uint32_t> extra_head_;
  std::vector<std::uint32_t> extra_tail_;
  std::vector<ExtraNode> extra_nodes_;
  bool has_extra_ = false;

  EventQueue events_;
  std::vector<TaskId> picks_;      // reused select() output buffer
  std::vector<Decision> decisions_;  // reused per-call decisions buffer
  Time now_ = 0.0;
  std::size_t running_ = 0;
  std::size_t done_count_ = 0;
  std::size_t decisions_total_ = 0;
  std::size_t events_processed_ = 0;
  Time busy_area_ = 0.0;
  // Fault-scenario state (docs/SCENARIOS.md). All of it stays at its
  // defaults — and costs nothing on the hot path — for fault-free runs.
  std::vector<std::uint16_t> kill_gen_;  // per-task attempt generation
  Time lost_area_ = 0.0;
  std::size_t kills_ = 0;
  std::size_t capacity_changes_ = 0;
  bool faults_seen_ = false;  // any kill or capacity reduction so far
  Schedule schedule_;
};

// ---------------------------------------------------------------------------
// SessionEngine — thin forwarding layer over the Impl.

SessionEngine::SessionEngine(OnlineScheduler& scheduler, int procs,
                             const SessionOptions& options)
    : impl_(std::make_unique<Impl>(scheduler, procs, options)) {}

SessionEngine::~SessionEngine() = default;

std::span<const Decision> SessionEngine::submit(InstanceSource& source) {
  return impl_->bind_source(source);
}

std::span<const Decision> SessionEngine::submit(std::vector<SourceTask> tasks,
                                                Time now) {
  return impl_->submit_batch(std::move(tasks), now);
}

std::span<const Decision> SessionEngine::submit(SoaChunk chunk, Time now) {
  return impl_->submit_chunk(std::move(chunk), now);
}

std::span<const Decision> SessionEngine::advance(const SessionEvent& event) {
  return impl_->advance(event);
}

std::span<const Decision> SessionEngine::step() { return impl_->step(); }

void SessionEngine::drain() { impl_->drain(); }

std::span<const Decision> SessionEngine::set_capacity(int procs, Time at) {
  return impl_->set_capacity(procs, at);
}

std::span<const Decision> SessionEngine::kill(TaskId id, Time at) {
  return impl_->kill_task(id, at);
}

int SessionEngine::capacity() const { return impl_->capacity_; }

bool SessionEngine::task_running(TaskId id) const {
  if (id >= impl_->n_) return false;
  const std::uint8_t state = impl_->records_[id].state();
  return (state & kStarted) != 0 && (state & kDone) == 0;
}

bool SessionEngine::idle() const { return impl_->events_.empty(); }

bool SessionEngine::complete() const {
  return impl_->done_count_ == impl_->n_;
}

Time SessionEngine::now() const { return impl_->now_; }

std::size_t SessionEngine::tasks_submitted() const { return impl_->n_; }

std::size_t SessionEngine::tasks_completed() const {
  return impl_->done_count_;
}

std::size_t SessionEngine::decisions_made() const {
  return impl_->schedule_.size();
}

const Schedule& SessionEngine::schedule() const { return impl_->schedule_; }

SimResult SessionEngine::finish() { return impl_->finish(); }

}  // namespace catbatch
