// Pending-event queue of the simulation engine: binary heap at small
// sizes, calendar queue at scale.
//
// The engine's event order is part of the determinism contract: events
// fire in increasing (time, seq), where seq is the push order — the FIFO
// tie-break every golden schedule pins. Any backing structure must
// therefore pop the *exact* global minimum under that total order, not an
// approximation.
//
// Two modes, switched automatically:
//
//   heap      — std::push_heap/pop_heap over one flat vector, exactly the
//               PR 2 layout. O(log n) ops, zero allocation after
//               reserve(). This is the steady state whenever few events
//               are pending (a DAG without release times keeps the queue
//               at most P deep), and the zero-alloc-per-event hook runs
//               entirely in this mode.
//   calendar  — classic calendar queue (Brown 1988): events bucketed by
//               floor((t - base) / width) mod nbuckets, popped by walking
//               virtual days. O(1) expected per op when event times are
//               spread, which is what release-time-heavy streaming
//               instances produce at 1M-10M tasks.
//
// Degradation is graceful in both directions: the queue only builds a
// calendar above kCalendarOn pending events when the time spread supports
// it, re-buckets as it grows, collapses back to the heap when it drains
// below kCalendarOff or when the distribution degenerates (e.g. every
// event at the same instant, where bucketing buys nothing). Pops from the
// calendar scan the current day's bucket for the (time, seq) minimum, so
// the observable pop sequence is bit-identical to the heap's in every
// mode and through every transition (cross-checked by
// tests/sim/event_queue_test.cpp under adversarial distributions).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/task.hpp"
#include "support/check.hpp"

namespace catbatch {

/// One pending simulation event. Ordered by (at, seq); seq is assigned by
/// the queue in push order and is unique, making the order total.
struct SimEvent {
  enum class Kind : std::uint8_t { Completion, Release };

  Time at = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for equal times
  TaskId id = 0;
  /// Attempt generation of the task this event belongs to. A task kill
  /// (sim/session.hpp) bumps the task's generation, so the completion of
  /// the killed attempt still sits in the queue but no longer matches and
  /// is discarded on pop. Fits in the struct's former padding — the event
  /// stays 24 bytes.
  std::uint16_t gen = 0;
  Kind kind = Kind::Completion;

  [[nodiscard]] bool before(const SimEvent& o) const noexcept {
    if (at != o.at) return at < o.at;
    return seq < o.seq;
  }
  // std::greater<> form used by the heap primitives.
  [[nodiscard]] bool operator>(const SimEvent& o) const noexcept {
    return o.before(*this);
  }
};

class EventQueue {
 public:
  /// Sizes the heap-mode vector; calendar storage is sized on activation.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Enqueues an event; the queue assigns the next seq internally. `gen`
  /// is the attempt generation carried back out by pop() (0 for engines
  /// that never kill tasks).
  void push(Time at, TaskId id, SimEvent::Kind kind, std::uint16_t gen = 0);

  /// Removes and returns the (at, seq)-minimum pending event.
  [[nodiscard]] SimEvent pop();

  /// Pops the (at, seq)-minimum event into `out` if its time is <= `until`;
  /// returns false (queue untouched in observable order, seq preserved)
  /// otherwise. This is the peek the stepwise session engine needs to fire
  /// internal releases before an external event at an equal-or-later time.
  [[nodiscard]] bool pop_until(Time until, SimEvent& out);

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True while the calendar (bucketed) representation is active —
  /// observability for tests and engine stats, not part of the contract.
  [[nodiscard]] bool calendar_active() const noexcept { return calendar_; }

  /// Id of the next event to pop when it is cheaply known (heap mode:
  /// the heap root), else kInvalidTask. Purely a prefetch hint for the
  /// engine's event loop — never part of the ordering contract, and the
  /// calendar mode legitimately answers "don't know" rather than scanning
  /// a day bucket twice.
  [[nodiscard]] TaskId peek_id() const noexcept {
    return (!calendar_ && !heap_.empty()) ? heap_.front().id : kInvalidTask;
  }

 private:
  // Mode thresholds: build a calendar only when enough events are pending
  // for O(log n) heap ops to matter; collapse well below that so the modes
  // don't thrash at the boundary.
  static constexpr std::size_t kCalendarOn = 1024;
  static constexpr std::size_t kCalendarOff = 256;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  static constexpr std::size_t kOvercrowd = 64;

  [[nodiscard]] std::uint64_t day_of(Time at) const noexcept {
    // Monotone in `at`; clamped on both sides. Below: `base_` is the
    // pending minimum at rebuild time, but a later push can legitimately
    // be earlier (a short completion scheduled from an early decision
    // point), and a negative-to-unsigned cast would fling it into the far
    // future — those events share day 0 instead. Above: a tiny day width
    // with far-future times must not overflow the cast (clamped days just
    // share one bucket).
    constexpr double kMaxDay = 9.0e18;
    const double d = (at - base_) / width_;
    if (d <= 0.0) return 0;
    return static_cast<std::uint64_t>(d < kMaxDay ? d : kMaxDay);
  }

  void insert_calendar(const SimEvent& ev);
  [[nodiscard]] SimEvent pop_calendar();
  /// Re-buckets (or first builds) the calendar from every pending event;
  /// falls back to the heap when the time distribution is degenerate.
  void rebuild_calendar();
  void collapse_to_heap(bool back_off);
  void collect_all(std::vector<SimEvent>& out);

  std::vector<SimEvent> heap_;  // heap mode storage (min-heap by >)

  std::vector<std::vector<SimEvent>> buckets_;  // calendar mode storage
  std::size_t bucket_mask_ = 0;                 // nbuckets - 1 (power of two)
  double width_ = 0.0;                          // virtual day length
  Time base_ = 0.0;                             // day 0 starts here
  std::uint64_t cur_day_ = 0;                   // next day to scan

  std::size_t size_ = 0;
  std::uint64_t seq_ = 0;
  bool calendar_ = false;
  // Size at the last calendar build/refusal: a new attempt waits until the
  // queue doubles, so degenerate inputs don't rebuild on every push.
  std::size_t last_calendar_attempt_ = 0;
};

}  // namespace catbatch
