// Minimal JSON emission: an incremental writer with correct string escaping
// and shortest round-trip double formatting. Shared by the bench report
// layer (analysis/json_report.hpp) and the observability exporters
// (obs/chrome_trace.hpp, obs/metrics_export.hpp). The dialect is
// deliberately tiny: objects, arrays, strings, bools and finite doubles.
// Non-finite doubles render as the tagged string sentinels "NaN",
// "Infinity" and "-Infinity" — never null — so strict numeric parse-back
// rejects a corrupted metric instead of silently folding it into
// aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace catbatch {

/// Incremental JSON writer with correct string escaping and shortest
/// round-trip double formatting. Keys/values must be emitted in a valid
/// order (the writer tracks comma placement, not grammar).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Emits `"name":` — must be followed by a value (or begin_*).
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);  // non-finite -> "NaN"/"Infinity"/"-Infinity"
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  void separate();
  std::string out_;
  std::vector<bool> needs_comma_;  // one level per open container
  bool after_key_ = false;
};

/// Escapes `raw` as a JSON string literal (with surrounding quotes).
[[nodiscard]] std::string json_quote(const std::string& raw);

}  // namespace catbatch
