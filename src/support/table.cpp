#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/text.hpp"

namespace catbatch {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != 'x' && c != '%') {
      return false;
    }
  }
  return digit_seen;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CB_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CB_CHECK(cells.size() == header_.size(),
           "row width must match header width");
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }

  // Right-align a column if every data cell in it looks numeric.
  std::vector<bool> numeric(header_.size(), true);
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (!row.cells[c].empty() && !looks_numeric(row.cells[c])) {
        numeric[c] = false;
      }
    }
  }

  std::size_t total = header_.size() * 3 + 1;
  for (const auto w : width) total += w;

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells,
                            bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ';
      if (align_numeric && numeric[c]) {
        os << pad_left(cells[c], width[c]);
      } else {
        os << pad_right(cells[c], width[c]);
      }
      os << " |";
    }
    os << '\n';
  };

  os << repeated('-', total) << '\n';
  emit_row(header_, false);
  os << repeated('-', total) << '\n';
  for (const Row& row : rows_) {
    if (row.separator) {
      os << repeated('-', total) << '\n';
    } else {
      emit_row(row.cells, true);
    }
  }
  os << repeated('-', total) << '\n';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

}  // namespace catbatch
