#include "support/check.hpp"

#include <sstream>

namespace catbatch {

namespace {
std::string render(std::string_view expr, std::string_view message,
                   std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " [" << loc.function_name()
     << "] check failed: (" << expr << ") — " << message;
  return os.str();
}
}  // namespace

ContractViolation::ContractViolation(std::string_view expr,
                                     std::string_view message,
                                     std::source_location loc)
    : std::logic_error(render(expr, message, loc)), expr_(expr) {}

namespace detail {
void check_failed(std::string_view expr, std::string_view message,
                  std::source_location loc) {
  throw ContractViolation(expr, message, loc);
}
}  // namespace detail

}  // namespace catbatch
