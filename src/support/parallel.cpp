#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace catbatch {
namespace {

/// Set while a global-pool worker runs a task submitted by fan_out(); the
/// serial-degrade check for nested parallel regions.
thread_local bool tls_in_parallel_worker = false;

/// Runs `claim_loop` on the calling thread plus up to `helpers` workers
/// borrowed from the global pool. The loop must claim its work items
/// atomically (each claimed exactly once across all participants). The
/// caller participates unconditionally, so completion never depends on
/// pool availability; helpers never block, so borrowed workers cannot
/// deadlock each other. Exceptions are collected per call (never in the
/// shared pool) and the first one is rethrown here after every helper has
/// finished — stack-captured state stays valid for the helpers' lifetime.
void fan_out(int helpers, const std::function<void()>& claim_loop) {
  std::mutex mutex;
  std::condition_variable done;
  int pending = 0;
  std::exception_ptr first_error;

  auto guarded = [&claim_loop, &mutex, &first_error] {
    try {
      claim_loop();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  ThreadPool& pool = global_pool();
  const int n = std::min(helpers, pool.thread_count());
  {
    const std::lock_guard<std::mutex> lock(mutex);
    pending = n;
  }
  for (int h = 0; h < n; ++h) {
    pool.submit([&guarded, &mutex, &done, &pending] {
      tls_in_parallel_worker = true;
      guarded();
      tls_in_parallel_worker = false;
      // Notify while holding the mutex: the caller destroys `done` (stack
      // storage) as soon as it observes pending == 0, which it can only do
      // after this unlock — notifying outside the lock would race the
      // destruction.
      const std::lock_guard<std::mutex> lock(mutex);
      --pending;
      done.notify_one();
    });
  }
  guarded();
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&pending] { return pending == 0; });
  std::exception_ptr error = first_error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool(ThreadPool::default_jobs());
  return pool;
}

bool in_parallel_worker() noexcept { return tls_in_parallel_worker; }

void parallel_chunks(const ParallelOptions& options, std::size_t count,
                     const std::function<void(std::size_t, std::size_t)>&
                         body) {
  CB_CHECK(body != nullptr, "parallel_chunks needs a body");
  if (count == 0) return;
  const std::size_t chunk = std::max<std::size_t>(1, options.chunk);
  const std::size_t blocks = (count + chunk - 1) / chunk;
  if (options.threads <= 1 || blocks < 2 || tls_in_parallel_worker) {
    body(0, count);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto participants =
      std::min<std::size_t>(static_cast<std::size_t>(options.threads), blocks);
  fan_out(static_cast<int>(participants) - 1, [&next, blocks, chunk, count,
                                               &body] {
    for (std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
         b < blocks; b = next.fetch_add(1, std::memory_order_relaxed)) {
      body(b * chunk, std::min(count, (b + 1) * chunk));
    }
  });
}

void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  CB_CHECK(body != nullptr, "parallel_for needs a body");
  jobs = ThreadPool::resolve_jobs(jobs);
  if (jobs <= 1 || count <= 1 || tls_in_parallel_worker) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto participants =
      std::min(static_cast<std::size_t>(jobs), count);
  fan_out(static_cast<int>(participants) - 1, [&next, count, &body] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  });
}

}  // namespace catbatch
