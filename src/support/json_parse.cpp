#include "support/json_parse.hpp"

#include <charconv>
#include <cmath>

namespace catbatch {

namespace {

/// Recursive-descent parser over one string_view; errors carry the byte
/// offset of the construct that failed.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(JsonParseError* error) {
    JsonValue out;
    if (!parse_value(out, 0)) {
      if (error != nullptr) *error = err_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing characters after the JSON value");
      if (error != nullptr) *error = err_;
      return std::nullopt;
    }
    return out;
  }

 private:
  bool fail(std::size_t at, std::string message) {
    err_.offset = at;
    err_.message = std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail(pos_, "invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxJsonDepth) {
      return fail(pos_, "nesting deeper than kMaxJsonDepth");
    }
    skip_ws();
    if (at_end()) return fail(pos_, "unexpected end of input");
    switch (peek()) {
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.bool_v = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.bool_v = false;
        return literal("false");
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.str_v);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        out.kind = JsonValue::Kind::Number;
        return parse_number(out.num_v);
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.items.push_back(std::move(element));
      skip_ws();
      if (at_end()) return fail(pos_, "unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return fail(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') {
        return fail(pos_, "expected a string object key");
      }
      const std::size_t key_at = pos_;
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr) {
        return fail(key_at, "duplicate object key '" + key + "'");
      }
      skip_ws();
      if (at_end() || text_[pos_] != ':') {
        return fail(pos_, "expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail(pos_, "unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return fail(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    for (;;) {
      if (at_end()) return fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (!parse_unicode_escape(out)) return false;
          break;
        }
        default:
          return fail(pos_ - 1, "invalid escape character");
      }
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      return fail(pos_, "truncated \\u escape");
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      std::uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A') + 10;
      } else {
        return fail(pos_ - 1, "invalid hex digit in \\u escape");
      }
      out = (out << 4) | digit;
    }
    return true;
  }

  bool parse_unicode_escape(std::string& out) {
    const std::size_t at = pos_ - 2;  // points at the backslash
    std::uint32_t cp;
    if (!parse_hex4(cp)) return false;
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate escape must follow.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return fail(at, "unpaired high surrogate");
      }
      pos_ += 2;
      std::uint32_t lo;
      if (!parse_hex4(lo)) return false;
      if (lo < 0xDC00 || lo > 0xDFFF) {
        return fail(at, "invalid low surrogate");
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return fail(at, "unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return true;
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    // Validate the JSON number grammar by hand (from_chars is laxer: it
    // accepts "inf", hex floats, leading '+').
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') {
      return fail(start, "invalid number");
    }
    if (peek() == '0') {
      ++pos_;  // a leading zero must stand alone ("01" is invalid)
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail(pos_, "digits required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail(pos_, "digits required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || ptr != last || !std::isfinite(out)) {
      return fail(start, "number out of double range");
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  JsonParseError err_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    JsonParseError* error) {
  return Parser(text).run(error);
}

std::optional<std::uint64_t> json_to_uint(double v) noexcept {
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (!(v >= 0.0) || v > kMaxExact) return std::nullopt;
  if (std::nearbyint(v) != v) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace catbatch
