// Plain-text table rendering for the bench harness. Every experiment binary
// prints its figure/table through this class so the output format is uniform
// and diffable against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace catbatch {

/// A simple column-aligned text table.
///
///   TextTable t({"Task", "t", "p"});
///   t.add_row({"A", "6", "1"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table with a header rule and column alignment (numeric-ish
  /// cells right-aligned, text left-aligned).
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace catbatch
