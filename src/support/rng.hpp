// Deterministic, seedable random-number generation for instance generators
// and experiments.
//
// We implement xoshiro256** (Blackman & Vigna) rather than relying on
// std::mt19937 so that instance streams are reproducible bit-for-bit across
// standard libraries and platforms — experiment tables in EXPERIMENTS.md
// depend on this.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace catbatch {

/// xoshiro256** 1.0 generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` using SplitMix64, as
  /// recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Bounded Pareto sample in [lo, hi] with shape alpha > 0. Used for
  /// heavy-tailed task lengths (typical of HPC job-size distributions).
  double bounded_pareto(double lo, double hi, double alpha);

  /// Picks an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace catbatch
