#include "support/cli.hpp"

#include <iostream>
#include <optional>

#include "support/text.hpp"

namespace catbatch {

bool parse_flag_value(std::string_view program, std::string_view flag,
                      std::string_view text, std::int64_t min_value,
                      std::int64_t max_value, std::int64_t& out,
                      std::ostream& err) {
  const std::optional<std::int64_t> value = parse_integer(text);
  if (!value.has_value() || *value < min_value || *value > max_value) {
    err << program << ": " << flag << " expects an integer in [" << min_value
        << ", " << max_value << "], got '" << text << "'\n";
    return false;
  }
  out = *value;
  return true;
}

bool parse_flag_value(std::string_view program, std::string_view flag,
                      std::string_view text, std::int64_t min_value,
                      std::int64_t max_value, std::int64_t& out) {
  return parse_flag_value(program, flag, text, min_value, max_value, out,
                          std::cerr);
}

bool parse_choice_flag(std::string_view program, std::string_view flag,
                       std::string_view text,
                       std::span<const std::string_view> choices,
                       std::string& out, std::ostream& err) {
  for (const std::string_view choice : choices) {
    if (text == choice) {
      out = text;
      return true;
    }
  }
  err << program << ": " << flag << " expects one of ";
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) err << '|';
    err << choices[i];
  }
  err << ", got '" << text << "'\n";
  return false;
}

bool parse_choice_flag(std::string_view program, std::string_view flag,
                       std::string_view text,
                       std::span<const std::string_view> choices,
                       std::string& out) {
  return parse_choice_flag(program, flag, text, choices, out, std::cerr);
}

}  // namespace catbatch
