#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace catbatch {

namespace {

std::string format_double(double v) {
  // Tagged sentinels instead of null: a strict numeric parse-back trips
  // over the string where it expects a number, so a non-finite metric
  // fails loudly instead of being silently folded into aggregates.
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), v);
  CB_CHECK(ec == std::errc(), "double formatting failed");
  return std::string(buffer, ptr);
}

}  // namespace

std::string json_quote(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CB_CHECK(!needs_comma_.empty(), "end_object without begin_object");
  needs_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CB_CHECK(!needs_comma_.empty(), "end_array without begin_array");
  needs_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  separate();
  out_ += json_quote(name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  out_ += json_quote(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace catbatch
