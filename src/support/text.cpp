#include "support/text.hpp"

#include <cmath>
#include <cstdio>

namespace catbatch {

std::string format_number(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string pad_left(std::string s, std::size_t w) {
  if (s.size() < w) s.insert(0, w - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t w) {
  if (s.size() < w) s.append(w - s.size(), ' ');
  return s;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeated(char c, std::size_t n) { return std::string(n, c); }

}  // namespace catbatch
