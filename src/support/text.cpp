#include "support/text.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace catbatch {

std::optional<std::int64_t> parse_integer(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (*first == '+') {  // from_chars accepts '-' but not '+'
    ++first;
    if (first == last || *first < '0' || *first > '9') return std::nullopt;
  }
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string format_number(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  // Constructing the result instead of assigning through operator=(const
  // char*) sidesteps a GCC 12 -Wrestrict false positive that breaks
  // -fsanitize=undefined builds under -Werror.
  if (s == "-0") return "0";
  return s;
}

std::string pad_left(std::string s, std::size_t w) {
  if (s.size() < w) s.insert(0, w - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t w) {
  if (s.size() < w) s.append(w - s.size(), ' ');
  return s;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeated(char c, std::size_t n) { return std::string(n, c); }

}  // namespace catbatch
