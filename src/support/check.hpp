// Error-handling primitives for the catbatch library.
//
// Two tiers, following the C++ Core Guidelines (I.6/E.12):
//   * CB_CHECK   — precondition / invariant violations that indicate misuse
//                  of the public API or a corrupted instance. Always on,
//                  throws catbatch::ContractViolation.
//   * CB_DCHECK  — internal invariants that are proven by the paper's lemmas
//                  (e.g. Lemma 2 parity of the longitude). Compiled out in
//                  NDEBUG builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace catbatch {

/// Thrown when a CB_CHECK (or enabled CB_DCHECK) fails. Carries the failing
/// expression, an explanatory message, and the source location.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(std::string_view expr, std::string_view message,
                    std::source_location loc);

  [[nodiscard]] const std::string& expression() const noexcept { return expr_; }

 private:
  std::string expr_;
};

namespace detail {
[[noreturn]] void check_failed(std::string_view expr, std::string_view message,
                               std::source_location loc);
}  // namespace detail

}  // namespace catbatch

#define CB_CHECK(expr, message)                                          \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::catbatch::detail::check_failed(#expr, (message),                 \
                                       std::source_location::current()); \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define CB_DCHECK(expr, message) \
  do {                           \
  } while (false)
#else
#define CB_DCHECK(expr, message) CB_CHECK(expr, message)
#endif
