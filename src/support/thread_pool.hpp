// Fixed-size worker pool for the parallel experiment engine.
//
// Design constraints, in order: (1) determinism of *results* — the pool only
// executes tasks, it never aggregates, so callers write into pre-sized slots
// and reduce serially afterwards; (2) exception safety — the first exception
// thrown by any task is captured and rethrown from wait() on the submitting
// thread; (3) no shutdown hazards — destroying a pool with zero submitted
// tasks, or with tasks still queued, must join cleanly.
//
// Job-count policy is centralized here: `--jobs N` knobs and the
// CATBATCH_JOBS environment variable both funnel through resolve_jobs().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace catbatch {

class ThreadPool {
 public:
  /// Spawns `threads` workers; `threads <= 0` means default_jobs().
  explicit ThreadPool(int threads = 0);

  /// Joins all workers. Tasks already queued are still executed (their
  /// exceptions, having no wait() left to surface in, are dropped).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any).
  void wait();

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// CATBATCH_JOBS environment override if set and positive, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static int default_jobs();

  /// `requested <= 0` resolves to default_jobs(), anything else passes
  /// through. The single policy point for every --jobs flag.
  [[nodiscard]] static int resolve_jobs(int requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Runs body(0) ... body(count-1) on the calling thread plus up to jobs-1
/// helpers borrowed from the shared global pool (support/parallel.hpp) —
/// no per-call pool construction, and the process thread count stays
/// bounded however many subsystems fan out at once. `jobs <= 1` (after
/// resolve_jobs for 0) executes serially on the calling thread — the
/// reference path parallel sweeps are checked against; a call made from
/// inside a pool worker also degrades to serial. Indices are claimed
/// atomically, so each is executed exactly once; completion order is
/// unspecified, which is why bodies must write to independent slots.
/// Rethrows the first exception a body raised.
void parallel_for(int jobs, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace catbatch
