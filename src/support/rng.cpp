#include "support/rng.hpp"

#include <bit>
#include <cmath>

namespace catbatch {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CB_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_real(double lo, double hi) {
  CB_CHECK(lo <= hi, "uniform_real requires lo <= hi");
  // 53 random mantissa bits -> uniform in [0, 1).
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::bernoulli(double p) {
  CB_CHECK(p >= 0.0 && p <= 1.0, "bernoulli probability out of [0,1]");
  return uniform_real(0.0, 1.0) < p;
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  CB_CHECK(lo > 0.0 && hi >= lo, "bounded_pareto requires 0 < lo <= hi");
  CB_CHECK(alpha > 0.0, "bounded_pareto requires alpha > 0");
  const double u = uniform_real(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x =
      std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return std::min(hi, std::max(lo, x));
}

std::size_t Rng::index(std::size_t n) {
  CB_CHECK(n > 0, "index requires non-empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace catbatch
