// Small text-formatting helpers shared by traces, tables and benches.
#pragma once

#include <string>
#include <vector>

namespace catbatch {

/// Formats a double compactly: trailing zeros trimmed, at most `precision`
/// digits after the decimal point ("6.8", "15.2", "2", "0.05").
std::string format_number(double value, int precision = 6);

/// Left/right pads `s` with spaces to width `w` (no-op if already wider).
std::string pad_left(std::string s, std::size_t w);
std::string pad_right(std::string s, std::size_t w);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Returns a string of `n` copies of `c`.
std::string repeated(char c, std::size_t n);

}  // namespace catbatch
