// Small text-formatting helpers shared by traces, tables and benches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace catbatch {

/// Strict whole-string integer parse: an optional sign followed by digits
/// only — no leading/trailing whitespace or junk, no empty input, and no
/// silent overflow. The single parsing policy behind every numeric CLI
/// flag (sched_cli, catbatch_fuzz), so `--trials 0x10` or `--jobs banana`
/// fail loudly at the flag instead of reaching the engine.
[[nodiscard]] std::optional<std::int64_t> parse_integer(std::string_view s);

/// Formats a double compactly: trailing zeros trimmed, at most `precision`
/// digits after the decimal point ("6.8", "15.2", "2", "0.05").
std::string format_number(double value, int precision = 6);

/// Left/right pads `s` with spaces to width `w` (no-op if already wider).
std::string pad_left(std::string s, std::size_t w);
std::string pad_right(std::string s, std::size_t w);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Returns a string of `n` copies of `c`.
std::string repeated(char c, std::size_t n);

}  // namespace catbatch
