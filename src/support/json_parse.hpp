// Minimal strict JSON parsing: the read-side counterpart of
// support/json.hpp. One line-delimited protocol message is one JSON value;
// the service layer (src/service) parses each line with parse_json() and
// walks the resulting tree.
//
// The dialect matches the writer exactly — objects, arrays, strings,
// bools, null and finite doubles — and the parser is strict where a wire
// protocol wants strictness:
//
//   - the whole input must be one value (trailing whitespace allowed,
//     trailing junk rejected);
//   - duplicate object keys are an error (a message with two "type" fields
//     has no well-defined meaning);
//   - numbers must fit a finite double; overflow to infinity is rejected
//     rather than folded;
//   - nesting deeper than kMaxJsonDepth is rejected (the parser recurses,
//     and protocol messages are shallow by design);
//   - invalid escapes and raw control characters in strings are rejected.
//
// Doubles round-trip bit-identically through the writer/parser pair: the
// writer emits shortest round-trip formatting and the parser reads with
// std::from_chars, which is what the session-vs-batch equivalence suite
// leans on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace catbatch {

/// Deepest container nesting parse_json accepts.
inline constexpr std::size_t kMaxJsonDepth = 64;

/// One parsed JSON value. A small tree, not a zero-copy view: protocol
/// messages are tiny (the bulk payload — task arrays — is a few dozen
/// bytes per element), so clarity beats arena tricks here.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> items;  // Array elements
  std::vector<std::pair<std::string, JsonValue>> members;  // Object, in order

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }

  /// Object member lookup; nullptr when absent or this is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Where and why a parse failed; offset is a byte index into the input.
struct JsonParseError {
  std::size_t offset = 0;
  std::string message;
};

/// Parses `text` as exactly one JSON value (see the strictness list in the
/// file comment). Returns nullopt and fills `*error` (when non-null) on
/// failure.
[[nodiscard]] std::optional<JsonValue> parse_json(
    std::string_view text, JsonParseError* error = nullptr);

/// Reads a non-negative integer that was carried as a JSON number: the
/// double must be integral and inside [0, 2^53] (exact-double range).
/// Returns nullopt otherwise.
[[nodiscard]] std::optional<std::uint64_t> json_to_uint(double v) noexcept;

}  // namespace catbatch
