// Shared strict CLI flag parsing and the exit-code convention for the
// example binaries.
//
// sched_cli, catbatch_fuzz, catbatchd and catbatch_loadgen (and any future
// front end) share one policy for flags: a numeric value must parse as an
// integer (support/text.hpp parse_integer — no trailing junk, no overflow)
// and fall inside the flag's documented range; an enumerated value must be
// one of the flag's documented choices. Otherwise the program prints a
// one-line diagnostic prefixed with its own name and exits with
// kExitUsage. This header is that policy's single home; the binaries only
// choose the program name.
//
// The service-facing binaries also share a flag *family* so the same
// concept always has the same spelling: `--protocol NAME` (transport or
// replay path, per-binary choice list), `--algo NAME` (registry algorithm)
// and `--session N` (concurrent session count). parse_choice_flag is the
// family's validator for the enumerated members.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

namespace catbatch {

// Exit-code convention, shared by every binary in examples/ (documented in
// each --help and docs/SERVICE.md):
//   0  success
//   1  runtime failure or findings (fuzz findings, failed run, I/O errors)
//   2  usage error (unknown flag, bad value) — the flag never ran
//   3  protocol error (malformed wire traffic the peer sent)
//   4  contract violation (a scheduler/engine invariant broke — a bug)
inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitProtocol = 3;
inline constexpr int kExitContract = 4;

/// Parses `text` as a strict integer in [min_value, max_value]. On success
/// stores the value in `out` and returns true. On failure prints
/// "<program>: <flag> expects an integer in [min, max], got '<text>'" to
/// `err` and returns false without touching `out`.
bool parse_flag_value(std::string_view program, std::string_view flag,
                      std::string_view text, std::int64_t min_value,
                      std::int64_t max_value, std::int64_t& out,
                      std::ostream& err);

/// Convenience overload writing diagnostics to std::cerr — the path every
/// real binary takes; the std::ostream overload exists for the unit tests.
bool parse_flag_value(std::string_view program, std::string_view flag,
                      std::string_view text, std::int64_t min_value,
                      std::int64_t max_value, std::int64_t& out);

/// Validates an enumerated flag value against its documented choices. On
/// success stores `text` in `out` and returns true. On failure prints
/// "<program>: <flag> expects one of a|b|c, got '<text>'" to `err` and
/// returns false without touching `out`.
bool parse_choice_flag(std::string_view program, std::string_view flag,
                       std::string_view text,
                       std::span<const std::string_view> choices,
                       std::string& out, std::ostream& err);

/// Convenience overload writing diagnostics to std::cerr.
bool parse_choice_flag(std::string_view program, std::string_view flag,
                       std::string_view text,
                       std::span<const std::string_view> choices,
                       std::string& out);

/// Small binder so argument loops stay one-liners:
///   FlagParser flags("sched_cli");
///   if (!flags.parse(arg, argv[++k], 1, 1 << 20, value)) return kExitUsage;
class FlagParser {
 public:
  explicit FlagParser(std::string_view program) : program_(program) {}

  bool parse(std::string_view flag, std::string_view text,
             std::int64_t min_value, std::int64_t max_value,
             std::int64_t& out) const {
    return parse_flag_value(program_, flag, text, min_value, max_value, out);
  }

  bool choice(std::string_view flag, std::string_view text,
              std::span<const std::string_view> choices,
              std::string& out) const {
    return parse_choice_flag(program_, flag, text, choices, out);
  }

 private:
  std::string_view program_;
};

}  // namespace catbatch
