// Shared strict CLI flag parsing for the example binaries.
//
// sched_cli and catbatch_fuzz (and any future front end) share one policy
// for numeric flags: a value must parse as an integer (support/text.hpp
// parse_integer — no trailing junk, no overflow) and fall inside the
// flag's documented range, otherwise the program prints a one-line
// diagnostic prefixed with its own name and exits nonzero. This header is
// that policy's single home; the binaries only choose the program name and
// the exit code.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace catbatch {

/// Parses `text` as a strict integer in [min_value, max_value]. On success
/// stores the value in `out` and returns true. On failure prints
/// "<program>: <flag> expects an integer in [min, max], got '<text>'" to
/// `err` and returns false without touching `out`.
bool parse_flag_value(std::string_view program, std::string_view flag,
                      std::string_view text, std::int64_t min_value,
                      std::int64_t max_value, std::int64_t& out,
                      std::ostream& err);

/// Convenience overload writing diagnostics to std::cerr — the path every
/// real binary takes; the std::ostream overload exists for the unit tests.
bool parse_flag_value(std::string_view program, std::string_view flag,
                      std::string_view text, std::int64_t min_value,
                      std::int64_t max_value, std::int64_t& out);

/// Small binder so argument loops stay one-liners:
///   FlagParser flags("sched_cli");
///   if (!flags.parse(arg, argv[++k], 1, 1 << 20, value)) return 1;
class FlagParser {
 public:
  explicit FlagParser(std::string_view program) : program_(program) {}

  bool parse(std::string_view flag, std::string_view text,
             std::int64_t min_value, std::int64_t max_value,
             std::int64_t& out) const {
    return parse_flag_value(program_, flag, text, min_value, max_value, out);
  }

 private:
  std::string_view program_;
};

}  // namespace catbatch
