// Deterministic data-parallel primitives over one process-wide worker pool.
//
// PR 1 introduced parallel_for() for the sweep engine; every call used to
// spin up (and join) a private ThreadPool, which priced each dispatch at
// thread-creation cost and — worse — let concurrent subsystems multiply
// threads: a catbatchd strand running an engine sweep would stack a fresh
// pool on top of the service pool on top of the fuzzer pool. This header
// centralizes the execution resources instead:
//
//   global_pool()     — one lazily-constructed pool, sized default_jobs()
//                       once, shared by every parallel primitive in the
//                       process. Subsystems with *blocking* workloads (the
//                       service strands, which park in poll/read) keep
//                       their own small pools; all compute fan-out lands
//                       here, so the process thread count stays bounded by
//                       pool sizes, not by call-site nesting.
//   parallel_chunks() — the ParallelOptions-driven variant used by the
//                       engine's ingest/precompute passes: [0, count) is
//                       partitioned into fixed `chunk`-sized blocks
//                       (independent of the worker count), the *caller*
//                       participates in claiming blocks, and up to
//                       threads-1 helpers are borrowed from the global
//                       pool.
//
// Determinism contract (the same discipline as the sweeps): the partition
// depends only on (count, chunk), bodies write only to their own slots,
// and any cross-block reduction is done by the caller afterwards in fixed
// block order — so results are bit-identical for any thread count,
// including 1.
//
// Deadlock freedom: the caller always claims blocks itself, so progress
// never depends on a pool worker being free; and a body that itself calls
// a parallel primitive from inside a pool worker degrades to serial (a
// thread-local in-worker flag), so borrowed workers never block on other
// borrowed workers.
#pragma once

#include <cstddef>
#include <functional>

namespace catbatch {

class ThreadPool;

/// Default block size for chunked parallel passes; the same grain the
/// intra-level sweeps have always used (core/soa_graph.cpp).
inline constexpr std::size_t kDefaultParallelChunk = 4096;

/// The engine's parallelism knob, threaded through SessionOptions and the
/// CLI/bench surfaces. `threads <= 1` means serial (the reference path all
/// parallel results are checked against); `chunk` is the fixed partition
/// grain — results are bit-identical for any `threads`, and `chunk` only
/// changes the dispatch granularity, never the values.
struct ParallelOptions {
  int threads = 1;
  std::size_t chunk = kDefaultParallelChunk;

  ParallelOptions& with_threads(int t) {
    threads = t;
    return *this;
  }
  ParallelOptions& with_chunk(std::size_t c) {
    chunk = c;
    return *this;
  }
  [[nodiscard]] bool serial() const noexcept { return threads <= 1; }
};

/// The process-wide compute pool, constructed on first use with
/// ThreadPool::default_jobs() workers (CATBATCH_JOBS overrides, as
/// everywhere). Never destroyed before exit; submit-only usage (the
/// primitives below track their own completion, so pool.wait() — which
/// would observe other callers' tasks — is never used on it).
[[nodiscard]] ThreadPool& global_pool();

/// True while the calling thread is a global-pool worker executing a task
/// submitted by one of the primitives in this header. Nested parallel
/// regions test this to degrade to serial instead of deadlocking or
/// oversubscribing.
[[nodiscard]] bool in_parallel_worker() noexcept;

/// Runs body(lo, hi) over fixed chunk-sized blocks of [0, count). The
/// serial path (threads <= 1, fewer than two blocks, or already inside a
/// pool worker) makes the single call body(0, count). Bodies must write
/// only to slots they own; the first exception any body raised is
/// rethrown on the calling thread after every helper finished.
void parallel_chunks(const ParallelOptions& options, std::size_t count,
                     const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace catbatch
