#include "support/thread_pool.hpp"

#include <cstdlib>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_jobs(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CB_CHECK(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CB_CHECK(!stopping_, "cannot submit to a stopping pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    all_done_.notify_all();
  }
}

int ThreadPool::default_jobs() {
  if (const char* env = std::getenv("CATBATCH_JOBS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ThreadPool::resolve_jobs(int requested) {
  return requested > 0 ? requested : default_jobs();
}

// parallel_for() lives in support/parallel.cpp: it claims indices on the
// calling thread plus helpers borrowed from the shared global pool, so it
// no longer constructs a private ThreadPool per call.

}  // namespace catbatch
