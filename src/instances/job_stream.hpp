// Multi-job workloads: a stream of independent DAG jobs arriving over
// time, scheduled jointly on one platform — the setting of a real HPC
// cluster front-end (each submission is a workflow DAG; the system sees
// their union with release times). Builds on the engine's release-time
// support: each job's tasks inherit the job's arrival as a release floor,
// so nothing of a job is revealed before it arrives.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"
#include "sim/engine.hpp"
#include "sim/source.hpp"
#include "support/rng.hpp"

namespace catbatch {

struct Job {
  TaskGraph graph;
  Time arrival = 0.0;
  std::string name;
};

class JobStream final : public InstanceSource {
 public:
  /// Jobs may be appended until the first start(); arrivals need not be
  /// sorted.
  void add_job(Job job);

  [[nodiscard]] std::size_t job_count() const noexcept {
    return jobs_.size();
  }
  [[nodiscard]] const Job& job(std::size_t index) const;

  /// Global TaskId of task `local` inside job `index` (valid after
  /// start()).
  [[nodiscard]] TaskId global_id(std::size_t index, TaskId local) const;

  /// Job index owning a global task id (valid after start()).
  [[nodiscard]] std::size_t job_of(TaskId global) const;

  // InstanceSource:
  [[nodiscard]] std::vector<SourceTask> start() override;
  [[nodiscard]] std::vector<SourceTask> on_complete(TaskId id,
                                                    Time now) override;
  [[nodiscard]] const TaskGraph& realized_graph() const override {
    return combined_;
  }

 private:
  std::vector<Job> jobs_;
  std::vector<TaskId> offsets_;
  std::vector<std::size_t> owner_;  // global id -> job index
  TaskGraph combined_;
};

/// Per-job response metrics for a finished stream run.
struct JobMetrics {
  std::string name;
  Time arrival = 0.0;
  Time completion = 0.0;  // latest finish over the job's tasks
  /// completion − arrival.
  Time response_time = 0.0;
  /// response / (job makespan lower bound on the full platform): ≥ 1; how
  /// much the job was slowed by sharing.
  double slowdown = 0.0;
};

[[nodiscard]] std::vector<JobMetrics> per_job_metrics(
    const JobStream& stream, const SimResult& result, int procs);

/// Random stream: `job_count` jobs drawn from the workload generators with
/// Poisson-ish arrivals of the given mean inter-arrival time.
[[nodiscard]] JobStream random_job_stream(Rng& rng, std::size_t job_count,
                                          double mean_interarrival,
                                          int max_procs);

}  // namespace catbatch
