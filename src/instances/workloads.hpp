// Synthetic HPC workload DAGs with realistic shapes, used for the
// "practical efficiency" experiments suggested by the paper's conclusion:
// tiled Cholesky and LU factorizations, a 2-D stencil wavefront, an FFT
// butterfly and a map-reduce stage graph.
//
// Kernel execution times and processor widths are configurable; defaults
// give mixes of narrow/wide tasks comparable to tiled dense linear algebra
// on a small cluster. All times are quantized (instances/random_dags.hpp)
// so the category arithmetic is exact.
#pragma once

#include "core/graph.hpp"
#include "support/rng.hpp"

namespace catbatch {

/// Per-kernel cost model. `jitter` (relative, in [0, 1)) perturbs each
/// task's time with a deterministic Rng to avoid perfectly uniform lengths.
struct KernelCosts {
  Time potrf = 1.0;   // / getrf / diagonal kernel
  Time trsm = 2.0;    // panel solve
  Time gemm = 4.0;    // trailing update (also syrk)
  int potrf_procs = 1;
  int trsm_procs = 2;
  int gemm_procs = 4;
  double jitter = 0.0;
  std::uint64_t seed = 42;
};

/// Tiled Cholesky factorization DAG over a T×T lower-triangular tile grid:
/// POTRF / TRSM / SYRK / GEMM tasks with last-writer dependencies.
[[nodiscard]] TaskGraph cholesky_dag(int tiles, const KernelCosts& costs = {});

/// Tiled LU factorization (no pivoting): GETRF / TRSM (row+column) / GEMM.
[[nodiscard]] TaskGraph lu_dag(int tiles, const KernelCosts& costs = {});

/// 2-D stencil wavefront over a rows×cols grid: task (r, c) depends on
/// (r-1, c) and (r, c-1).
[[nodiscard]] TaskGraph stencil_dag(int rows, int cols, Time task_time = 1.0,
                                    int task_procs = 1);

/// FFT butterfly on 2^log2n points: log2n stages; node (s, i) depends on
/// (s-1, i) and (s-1, i ^ 2^{s-1}).
[[nodiscard]] TaskGraph fft_dag(int log2n, Time task_time = 1.0,
                                int task_procs = 1);

/// Map-reduce: `mappers` independent map tasks, then `reducers` reduce
/// tasks each depending on every map task.
[[nodiscard]] TaskGraph map_reduce_dag(int mappers, int reducers,
                                       Time map_time = 1.0,
                                       Time reduce_time = 2.0,
                                       int map_procs = 1,
                                       int reduce_procs = 2);

/// Montage-style astronomy mosaic workflow over `images` input tiles:
/// project(i) -> difffit over adjacent pairs -> concat -> bgmodel ->
/// background(i) -> imgtbl -> add (wide) -> shrink -> jpeg. Matches the
/// canonical Pegasus/Montage DAG shape used in workflow-scheduling papers.
[[nodiscard]] TaskGraph montage_dag(int images, int add_procs = 4);

}  // namespace catbatch
