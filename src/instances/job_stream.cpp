#include "instances/job_stream.hpp"

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "support/check.hpp"

namespace catbatch {

void JobStream::add_job(Job job) {
  CB_CHECK(offsets_.empty(), "cannot add jobs after the stream started");
  CB_CHECK(job.arrival >= 0.0, "job arrival must be non-negative");
  CB_CHECK(!job.graph.empty(), "job must contain at least one task");
  job.graph.validate();
  jobs_.push_back(std::move(job));
}

const Job& JobStream::job(std::size_t index) const {
  CB_CHECK(index < jobs_.size(), "job index out of range");
  return jobs_[index];
}

TaskId JobStream::global_id(std::size_t index, TaskId local) const {
  CB_CHECK(index < offsets_.size(), "stream not started or index invalid");
  CB_CHECK(local < jobs_[index].graph.size(), "local task id out of range");
  return offsets_[index] + local;
}

std::size_t JobStream::job_of(TaskId global) const {
  CB_CHECK(global < owner_.size(), "global task id out of range");
  return owner_[global];
}

std::vector<SourceTask> JobStream::start() {
  CB_CHECK(!jobs_.empty(), "stream has no jobs");
  combined_ = TaskGraph{};
  offsets_.clear();
  owner_.clear();

  std::vector<SourceTask> out;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const Job& job = jobs_[j];
    const TaskId offset = combined_.append(job.graph);
    offsets_.push_back(offset);
    owner_.resize(combined_.size(), j);
    for (TaskId local = 0; local < job.graph.size(); ++local) {
      const Task& t = job.graph.task(local);
      SourceTask st;
      st.work = t.work;
      st.procs = t.procs;
      st.name = job.name.empty()
                    ? t.name
                    : job.name + "/" + t.name;
      // Arrival as a release floor on the job's roots is enough: interior
      // tasks are gated by their predecessors anyway, but setting it on
      // every task keeps reveal times ≥ arrival under all schedulers.
      st.release = job.arrival;
      const auto preds = job.graph.predecessors(local);
      st.predecessors.reserve(preds.size());
      for (const TaskId pred : preds) {
        st.predecessors.push_back(offset + pred);
      }
      out.push_back(std::move(st));
    }
  }
  return out;
}

std::vector<SourceTask> JobStream::on_complete(TaskId, Time) { return {}; }

std::vector<JobMetrics> per_job_metrics(const JobStream& stream,
                                        const SimResult& result, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  std::vector<JobMetrics> out;
  out.reserve(stream.job_count());
  for (std::size_t j = 0; j < stream.job_count(); ++j) {
    const Job& job = stream.job(j);
    JobMetrics m;
    m.name = job.name.empty() ? "job" + std::to_string(j) : job.name;
    m.arrival = job.arrival;
    for (TaskId local = 0; local < job.graph.size(); ++local) {
      const ScheduledTask& e =
          result.schedule.entry_for(stream.global_id(j, local));
      m.completion = std::max(m.completion, e.finish);
    }
    m.response_time = m.completion - m.arrival;
    const Time solo = makespan_lower_bound(job.graph, procs);
    m.slowdown = solo > 0.0 ? static_cast<double>(m.response_time / solo)
                            : 1.0;
    out.push_back(std::move(m));
  }
  return out;
}

JobStream random_job_stream(Rng& rng, std::size_t job_count,
                            double mean_interarrival, int max_procs) {
  CB_CHECK(job_count >= 1, "stream needs at least one job");
  CB_CHECK(mean_interarrival >= 0.0, "mean inter-arrival must be >= 0");
  CB_CHECK(max_procs >= 4, "job stream expects a platform of at least 4");

  JobStream stream;
  Time arrival = 0.0;
  RandomTaskParams params;
  params.procs.max_procs = std::max(1, max_procs / 2);
  for (std::size_t j = 0; j < job_count; ++j) {
    Job job;
    job.arrival = arrival;
    job.name = "job" + std::to_string(j);
    switch (rng.index(5)) {
      case 0:
        job.graph = cholesky_dag(
            static_cast<int>(rng.uniform_int(3, 6)));
        break;
      case 1:
        job.graph = stencil_dag(static_cast<int>(rng.uniform_int(4, 8)),
                                static_cast<int>(rng.uniform_int(4, 8)));
        break;
      case 2:
        job.graph = random_fork_join(
            rng, static_cast<std::size_t>(rng.uniform_int(2, 4)),
            static_cast<std::size_t>(rng.uniform_int(4, 10)), params);
        break;
      case 3:
        job.graph = random_layered_dag(
            rng, static_cast<std::size_t>(rng.uniform_int(20, 60)), 6,
            params);
        break;
      default:
        job.graph = montage_dag(static_cast<int>(rng.uniform_int(4, 10)),
                                std::min(4, max_procs));
        break;
    }
    stream.add_job(std::move(job));
    // Exponential-ish gaps, quantized for exact arithmetic.
    const double gap =
        -mean_interarrival * std::log(1.0 - rng.uniform_real(0.0, 1.0));
    if (gap > 0.0) arrival += quantize_time(gap);
  }
  return stream;
}

}  // namespace catbatch
