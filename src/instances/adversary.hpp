// The lower-bound constructions of Section 6:
//   * L^i_P(K): a linear chain alternating a "blue" task (length K^i, one
//     processor) and a "red" task (length ε, all P processors)
//     (Definition 6);
//   * X_P(K): P independent chains L^0..L^{P-1} (Definition 7, Figure 8) —
//     poorly schedulable: T_Opt > P·K^{P-1} − (P−1)·K^{P-2} (Lemma 8);
//   * Y^i_P(K): P identical copies of L^i (Definition 8, Figure 9) —
//     perfectly schedulable: T_Opt = K^{P-1} + P·K^{P-i-1}·ε (Lemma 9);
//   * Z^Alg_P(K): the adaptive instance of Definition 9 (Figure 10): P
//     layers of X_P(K), where layer ℓ+1 hangs off whichever task the online
//     algorithm finished *last* in layer ℓ. Any online algorithm pays
//     ≥ P²K^{P-1} − P(P−1)K^{P-2} (Lemma 10) while the offline optimum stays
//     below 2P(K^{P-1} + P·K^P·ε) (Lemma 11).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "sim/schedule.hpp"
#include "sim/source.hpp"

namespace catbatch {

/// Integer power for the K^i arithmetic of the constructions.
[[nodiscard]] std::int64_t ipow(std::int64_t base, int exp);

/// Ids of one chain L^i_P(K) inside some graph, in chain order
/// (blue, red, blue, red, ...).
struct ChainIds {
  int type = 0;  // i: blue length is K^i
  std::vector<TaskId> tasks;
};

/// X_P(K) with its chain structure. Requires P >= 1, K >= 2, eps > 0.
struct XInstance {
  TaskGraph graph;
  int procs = 0;       // P
  int base = 0;        // K
  Time epsilon = 0.0;  // ε
  std::vector<ChainIds> chains;  // chains[i] is L^i_P(K)
};

[[nodiscard]] XInstance make_x_instance(int procs, int base, Time epsilon);

/// Number of tasks in X_P(K): Σ_i 2K^{P-1-i} = 2(K^P − 1)/(K − 1).
[[nodiscard]] std::int64_t x_task_count(int procs, int base);

/// Lemma 8's strict lower bound on T_Opt(X_P(K)).
[[nodiscard]] Time x_optimal_lower_bound(int procs, int base);

/// Y^i_P(K): P identical copies of L^i_P(K).
struct YInstance {
  TaskGraph graph;
  int procs = 0;
  int type = 0;  // i
  int base = 0;
  Time epsilon = 0.0;
  std::vector<ChainIds> chains;  // P copies, all of type i
};

[[nodiscard]] YInstance make_y_instance(int procs, int type, int base,
                                        Time epsilon);

/// The optimal schedule of Lemma 9's proof: all blue tasks of a round in
/// parallel, then the round's red tasks back-to-back. Makespan
/// K^{P-1} + P·K^{P-i-1}·ε.
[[nodiscard]] Schedule y_optimal_schedule(const YInstance& instance);
[[nodiscard]] Time y_optimal_makespan(int procs, int type, int base,
                                      Time epsilon);

/// The adaptive instance Z^Alg_P(K) (Definition 9). Run it through
/// simulate() with any online scheduler; afterwards realized_graph() is the
/// instance that particular algorithm generated, and layers() records which
/// task unlocked each layer (needed by z_offline_schedule()).
class ZAdversarySource final : public InstanceSource {
 public:
  ZAdversarySource(int procs, int base, Time epsilon);

  [[nodiscard]] std::vector<SourceTask> start() override;
  [[nodiscard]] std::vector<SourceTask> on_complete(TaskId id,
                                                    Time now) override;
  [[nodiscard]] const TaskGraph& realized_graph() const override {
    return graph_;
  }

  struct Layer {
    std::vector<ChainIds> chains;
    /// Task of THIS layer whose completion released the next layer;
    /// kInvalidTask for the final layer.
    TaskId unlock_task = kInvalidTask;
    /// Chain index (== type i) containing unlock_task.
    int unlock_chain = -1;
  };

  /// Layers emitted so far (all P after a completed simulation).
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  [[nodiscard]] int procs() const noexcept { return procs_; }
  [[nodiscard]] int base() const noexcept { return base_; }
  [[nodiscard]] Time epsilon() const noexcept { return epsilon_; }

 private:
  /// Emits one X_P(K) layer; every root gains `unlock_pred` as predecessor
  /// (none for layer 0).
  std::vector<SourceTask> emit_layer(TaskId unlock_pred);

  int procs_;
  int base_;
  Time epsilon_;
  TaskGraph graph_;
  std::vector<Layer> layers_;
  std::int64_t remaining_in_layer_ = 0;
  std::vector<int> chain_of_task_;  // chain index by TaskId (within layer)
};

/// Total tasks of Z: P · x_task_count.
[[nodiscard]] std::int64_t z_task_count(int procs, int base);

/// Lemma 10: every online algorithm's makespan on Z is at least this.
[[nodiscard]] Time z_online_lower_bound(int procs, int base);

/// Lemma 11: the offline optimum is strictly below this.
[[nodiscard]] Time z_offline_upper_bound(int procs, int base, Time epsilon);

/// The explicit two-phase offline schedule from Lemma 11's proof, built on
/// the realized graph of a *finished* adversary run: first the unlock chains
/// sequentially, then the remaining chains grouped by type in Y-style
/// rounds. The result is validated by the caller via validate_schedule().
[[nodiscard]] Schedule z_offline_schedule(const ZAdversarySource& source);

}  // namespace catbatch
