#include "instances/io.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/check.hpp"
#include "support/text.hpp"

namespace catbatch {

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream os;
  os << "digraph instance {\n  rankdir=LR;\n  node [shape=box];\n";
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& t = graph.task(id);
    os << "  t" << id << " [label=\"";
    if (!t.name.empty()) os << t.name << "\\n";
    os << "t=" << format_number(t.work) << " p=" << t.procs << "\"];\n";
  }
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId succ : graph.successors(id)) {
      os << "  t" << id << " -> t" << succ << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

namespace {
/// %.17g round-trips every finite double exactly.
std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_json(const TaskGraph& graph, int procs) {
  std::ostringstream os;
  os << "{\n";
  if (procs > 0) os << "  \"procs\": " << procs << ",\n";
  os << "  \"tasks\": [\n";
  for (TaskId id = 0; id < graph.size(); ++id) {
    const Task& t = graph.task(id);
    os << "    {\"work\": " << json_number(t.work)
       << ", \"procs\": " << t.procs << ", \"name\": \""
       << escape_json(t.name) << "\"}";
    os << (id + 1 < graph.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"edges\": [\n";
  bool first = true;
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId succ : graph.successors(id)) {
      if (!first) os << ",\n";
      first = false;
      os << "    [" << id << ", " << succ << "]";
    }
  }
  os << "\n  ]\n}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent parser for the dialect written above.

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    CB_CHECK(try_consume(c), error_at(std::string("expected '") + c + "'"));
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out.push_back(c);
    }
    CB_CHECK(pos_ < text_.size(), error_at("unterminated string"));
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    CB_CHECK(end != begin, error_at("expected a number"));
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] std::string error_at(const std::string& what) const {
    return what + " at byte " + std::to_string(pos_);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ParsedInstance instance_from_json(std::string_view text) {
  JsonCursor cur(text);
  ParsedInstance parsed;
  struct PendingEdge {
    TaskId from, to;
  };
  std::vector<PendingEdge> edges;

  cur.expect('{');
  bool first_key = true;
  while (!cur.try_consume('}')) {
    if (!first_key) cur.expect(',');
    first_key = false;
    const std::string key = cur.parse_string();
    cur.expect(':');
    if (key == "procs") {
      const double p = cur.parse_number();
      CB_CHECK(p >= 1 && p == static_cast<double>(static_cast<int>(p)),
               "\"procs\" must be a positive integer");
      parsed.procs = static_cast<int>(p);
    } else if (key == "tasks") {
      cur.expect('[');
      if (!cur.try_consume(']')) {
        do {
          cur.expect('{');
          double work = 0.0;
          double procs = 1.0;
          std::string name;
          bool first_field = true;
          while (!cur.try_consume('}')) {
            if (!first_field) cur.expect(',');
            first_field = false;
            const std::string field = cur.parse_string();
            cur.expect(':');
            if (field == "work") {
              work = cur.parse_number();
            } else if (field == "procs") {
              procs = cur.parse_number();
            } else if (field == "name") {
              name = cur.parse_string();
            } else {
              CB_CHECK(false, "unknown task field: " + field);
            }
          }
          CB_CHECK(procs >= 1 &&
                       procs == static_cast<double>(static_cast<int>(procs)),
                   "task \"procs\" must be a positive integer");
          parsed.graph.add_task(work, static_cast<int>(procs),
                                std::move(name));
        } while (cur.try_consume(','));
        cur.expect(']');
      }
    } else if (key == "edges") {
      cur.expect('[');
      if (!cur.try_consume(']')) {
        do {
          cur.expect('[');
          const double u = cur.parse_number();
          cur.expect(',');
          const double v = cur.parse_number();
          cur.expect(']');
          CB_CHECK(u >= 0 && v >= 0, "edge endpoints must be non-negative");
          edges.push_back(PendingEdge{static_cast<TaskId>(u),
                                      static_cast<TaskId>(v)});
        } while (cur.try_consume(','));
        cur.expect(']');
      }
    } else {
      CB_CHECK(false, "unknown instance field: " + key);
    }
  }
  CB_CHECK(cur.at_end(), cur.error_at("trailing content"));

  for (const PendingEdge& e : edges) parsed.graph.add_edge(e.from, e.to);
  parsed.graph.validate(parsed.procs);
  return parsed;
}

// ---------------------------------------------------------------------------
// Schedule serialization.

std::string schedule_to_json(const Schedule& schedule, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  std::ostringstream os;
  os << "{\n  \"procs\": " << procs << ",\n  \"entries\": [\n";
  const auto entries = schedule.entries();
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const ScheduledTask& e = entries[k];
    os << "    {\"id\": " << e.id << ", \"start\": "
       << json_number(e.start) << ", \"finish\": " << json_number(e.finish)
       << ", \"cpus\": [";
    for (std::size_t c = 0; c < e.processors.size(); ++c) {
      if (c > 0) os << ", ";
      os << e.processors[c];
    }
    os << "]}";
    os << (k + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

ParsedSchedule schedule_from_json(std::string_view text) {
  JsonCursor cur(text);
  ParsedSchedule parsed;
  cur.expect('{');
  bool first_key = true;
  while (!cur.try_consume('}')) {
    if (!first_key) cur.expect(',');
    first_key = false;
    const std::string key = cur.parse_string();
    cur.expect(':');
    if (key == "procs") {
      const double p = cur.parse_number();
      CB_CHECK(p >= 1 && p == static_cast<double>(static_cast<int>(p)),
               "\"procs\" must be a positive integer");
      parsed.procs = static_cast<int>(p);
    } else if (key == "entries") {
      cur.expect('[');
      if (!cur.try_consume(']')) {
        do {
          cur.expect('{');
          double id = -1, start = 0, finish = 0;
          std::vector<int> cpus;
          bool first_field = true;
          while (!cur.try_consume('}')) {
            if (!first_field) cur.expect(',');
            first_field = false;
            const std::string field = cur.parse_string();
            cur.expect(':');
            if (field == "id") {
              id = cur.parse_number();
            } else if (field == "start") {
              start = cur.parse_number();
            } else if (field == "finish") {
              finish = cur.parse_number();
            } else if (field == "cpus") {
              cur.expect('[');
              if (!cur.try_consume(']')) {
                do {
                  const double cpu = cur.parse_number();
                  CB_CHECK(cpu >= 0 && cpu == std::floor(cpu),
                           "\"cpus\" entries must be non-negative integers");
                  cpus.push_back(static_cast<int>(cpu));
                } while (cur.try_consume(','));
                cur.expect(']');
              }
            } else {
              CB_CHECK(false, "unknown schedule field: " + field);
            }
          }
          CB_CHECK(id >= 0 && id == std::floor(id),
                   "schedule entry needs a non-negative integer id");
          parsed.schedule.add(static_cast<TaskId>(id), start, finish,
                              std::move(cpus));
        } while (cur.try_consume(','));
        cur.expect(']');
      }
    } else {
      CB_CHECK(false, "unknown schedule document field: " + key);
    }
  }
  CB_CHECK(cur.at_end(), cur.error_at("trailing content"));
  return parsed;
}

}  // namespace catbatch
