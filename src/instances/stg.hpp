// STG-style text format for rigid task graphs, modeled after the Standard
// Task Graph suite's layout but extended with a processor-requirement
// column (classic STG is sequential-task only):
//
//   # comment lines start with '#'
//   <task_count> <platform_procs>
//   <id> <work> <procs> <pred_count> <pred_0> <pred_1> ...
//
// Tasks must appear with ascending ids 0..n-1; predecessors must reference
// earlier-listed ids (STG files are topologically ordered).
#pragma once

#include <string>
#include <string_view>

#include "core/graph.hpp"

namespace catbatch {

/// Serializes `graph` (tasks in id order, predecessors per line).
[[nodiscard]] std::string to_stg(const TaskGraph& graph, int procs);

struct ParsedStg {
  TaskGraph graph;
  int procs = 0;
};

/// Parses the format above. Throws ContractViolation on malformed input.
[[nodiscard]] ParsedStg instance_from_stg(std::string_view text);

}  // namespace catbatch
