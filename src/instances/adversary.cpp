#include "instances/adversary.hpp"

#include <numeric>
#include <string>

#include "support/check.hpp"

namespace catbatch {

std::int64_t ipow(std::int64_t base, int exp) {
  CB_CHECK(exp >= 0, "ipow requires a non-negative exponent");
  std::int64_t out = 1;
  for (int k = 0; k < exp; ++k) {
    CB_CHECK(out <= (std::int64_t{1} << 62) / base, "ipow overflow");
    out *= base;
  }
  return out;
}

namespace {

void check_params(int procs, int base, Time epsilon) {
  CB_CHECK(procs >= 1, "construction requires P >= 1");
  CB_CHECK(base >= 2, "construction requires K >= 2");
  CB_CHECK(epsilon > 0.0, "construction requires ε > 0");
}

/// Appends one chain L^i_P(K) to `graph` (blue K^i/1-proc alternating with
/// red ε/P-proc, 2·K^{P-1-i} tasks) and returns its ids in chain order.
ChainIds append_chain(TaskGraph& graph, int procs, int type, int base,
                      Time epsilon, const std::string& tag) {
  ChainIds chain;
  chain.type = type;
  const std::int64_t pairs = ipow(base, procs - 1 - type);
  const Time blue_len = static_cast<Time>(ipow(base, type));
  TaskId prev = kInvalidTask;
  for (std::int64_t r = 0; r < pairs; ++r) {
    const TaskId blue = graph.add_task(
        blue_len, 1, tag + "b" + std::to_string(r));
    if (prev != kInvalidTask) graph.add_edge(prev, blue);
    const TaskId red =
        graph.add_task(epsilon, procs, tag + "r" + std::to_string(r));
    graph.add_edge(blue, red);
    chain.tasks.push_back(blue);
    chain.tasks.push_back(red);
    prev = red;
  }
  return chain;
}

}  // namespace

XInstance make_x_instance(int procs, int base, Time epsilon) {
  check_params(procs, base, epsilon);
  XInstance x;
  x.procs = procs;
  x.base = base;
  x.epsilon = epsilon;
  for (int i = 0; i < procs; ++i) {
    x.chains.push_back(append_chain(x.graph, procs, i, base, epsilon,
                                    "L" + std::to_string(i) + "."));
  }
  return x;
}

std::int64_t x_task_count(int procs, int base) {
  std::int64_t n = 0;
  for (int i = 0; i < procs; ++i) n += 2 * ipow(base, procs - 1 - i);
  return n;
}

Time x_optimal_lower_bound(int procs, int base) {
  // Lemma 8: T_Opt(X_P(K)) > P·K^{P-1} − (P−1)·K^{P-2}.
  const Time kp1 = static_cast<Time>(ipow(base, procs - 1));
  const Time kp2 =
      procs >= 2 ? static_cast<Time>(ipow(base, procs - 2)) : 0.0;
  return static_cast<Time>(procs) * kp1 -
         static_cast<Time>(procs - 1) * kp2;
}

YInstance make_y_instance(int procs, int type, int base, Time epsilon) {
  check_params(procs, base, epsilon);
  CB_CHECK(type >= 0 && type < procs, "chain type must be in [0, P-1]");
  YInstance y;
  y.procs = procs;
  y.type = type;
  y.base = base;
  y.epsilon = epsilon;
  for (int c = 0; c < procs; ++c) {
    y.chains.push_back(append_chain(y.graph, procs, type, base, epsilon,
                                    "Y" + std::to_string(c) + "."));
  }
  return y;
}

Schedule y_optimal_schedule(const YInstance& y) {
  const int P = y.procs;
  std::vector<int> all_procs(static_cast<std::size_t>(P));
  std::iota(all_procs.begin(), all_procs.end(), 0);
  const Time blue_len = static_cast<Time>(ipow(y.base, y.type));
  const std::int64_t rounds = ipow(y.base, P - 1 - y.type);

  Schedule schedule;
  Time t = 0.0;
  for (std::int64_t r = 0; r < rounds; ++r) {
    // Blue phase: the r-th blue of every chain, one chain per processor.
    for (int c = 0; c < P; ++c) {
      const TaskId blue =
          y.chains[static_cast<std::size_t>(c)].tasks[static_cast<std::size_t>(
              2 * r)];
      schedule.add(blue, t, t + blue_len, {c});
    }
    t += blue_len;
    // Red phase: the r-th red of every chain, back-to-back on all P.
    for (int c = 0; c < P; ++c) {
      const TaskId red =
          y.chains[static_cast<std::size_t>(c)].tasks[static_cast<std::size_t>(
              2 * r + 1)];
      schedule.add(red, t, t + y.epsilon, all_procs);
      t += y.epsilon;
    }
  }
  return schedule;
}

Time y_optimal_makespan(int procs, int type, int base, Time epsilon) {
  // Lemma 9: K^{P-1} + P·K^{P-i-1}·ε.
  return static_cast<Time>(ipow(base, procs - 1)) +
         static_cast<Time>(procs) *
             static_cast<Time>(ipow(base, procs - 1 - type)) * epsilon;
}

// ---------------------------------------------------------------------------
// Z^Alg_P(K)

ZAdversarySource::ZAdversarySource(int procs, int base, Time epsilon)
    : procs_(procs), base_(base), epsilon_(epsilon) {
  check_params(procs, base, epsilon);
}

std::vector<SourceTask> ZAdversarySource::emit_layer(TaskId unlock_pred) {
  Layer layer;
  std::vector<SourceTask> out;
  const auto layer_tag =
      "Z" + std::to_string(layers_.size()) + ".L";
  for (int i = 0; i < procs_; ++i) {
    const ChainIds chain = append_chain(graph_, procs_, i, base_, epsilon_,
                                        layer_tag + std::to_string(i) + ".");
    for (std::size_t k = 0; k < chain.tasks.size(); ++k) {
      const TaskId id = chain.tasks[k];
      chain_of_task_.resize(std::max<std::size_t>(chain_of_task_.size(),
                                                  id + std::size_t{1}),
                            -1);
      chain_of_task_[id] = i;
      SourceTask st;
      const Task& t = graph_.task(id);
      st.work = t.work;
      st.procs = t.procs;
      st.name = t.name;
      const auto preds = graph_.predecessors(id);
      st.predecessors.assign(preds.begin(), preds.end());
      if (k == 0 && unlock_pred != kInvalidTask) {
        // Definition 9: the new X_P(K) hangs off the last task the
        // algorithm completed in the previous layer.
        graph_.add_edge(unlock_pred, id);
        st.predecessors.push_back(unlock_pred);
      }
      out.push_back(std::move(st));
    }
    layer.chains.push_back(chain);
  }
  layers_.push_back(std::move(layer));
  remaining_in_layer_ = x_task_count(procs_, base_);
  return out;
}

std::vector<SourceTask> ZAdversarySource::start() {
  graph_ = TaskGraph{};
  layers_.clear();
  chain_of_task_.clear();
  return emit_layer(kInvalidTask);
}

std::vector<SourceTask> ZAdversarySource::on_complete(TaskId id, Time) {
  CB_DCHECK(remaining_in_layer_ > 0, "completion outside the current layer");
  if (--remaining_in_layer_ > 0) return {};

  // `id` is the last task of the current layer to complete: the unlock
  // task. Being last, it must be the final task of its chain.
  Layer& layer = layers_.back();
  layer.unlock_task = id;
  layer.unlock_chain = chain_of_task_[id];
  CB_CHECK(layer.chains[static_cast<std::size_t>(layer.unlock_chain)]
                   .tasks.back() == id,
           "unlock task is not the final task of its chain");

  if (layers_.size() >= static_cast<std::size_t>(procs_)) return {};
  return emit_layer(id);
}

std::int64_t z_task_count(int procs, int base) {
  return static_cast<std::int64_t>(procs) * x_task_count(procs, base);
}

Time z_online_lower_bound(int procs, int base) {
  // Lemma 10: P²·K^{P-1} − P(P−1)·K^{P-2}.
  return static_cast<Time>(procs) * x_optimal_lower_bound(procs, base);
}

Time z_offline_upper_bound(int procs, int base, Time epsilon) {
  // Lemma 11: 2P(K^{P-1} + P·K^P·ε).
  return 2.0 * static_cast<Time>(procs) *
         (static_cast<Time>(ipow(base, procs - 1)) +
          static_cast<Time>(procs) * static_cast<Time>(ipow(base, procs)) *
              epsilon);
}

Schedule z_offline_schedule(const ZAdversarySource& source) {
  const int P = source.procs();
  const int K = source.base();
  const Time eps = source.epsilon();
  const auto& layers = source.layers();
  CB_CHECK(layers.size() == static_cast<std::size_t>(P),
           "z_offline_schedule requires a completed adversary run");

  std::vector<int> all_procs(static_cast<std::size_t>(P));
  std::iota(all_procs.begin(), all_procs.end(), 0);
  Schedule schedule;
  Time t = 0.0;

  // Phase 1 (Lemma 11): the unlock chain of each non-final layer, strictly
  // in layer order — chain ℓ's first task depends on layer ℓ-1's unlock
  // task, which is exactly the previous chain's last task.
  for (std::size_t ell = 0; ell + 1 < layers.size(); ++ell) {
    const ZAdversarySource::Layer& layer = layers[ell];
    const ChainIds& chain =
        layer.chains[static_cast<std::size_t>(layer.unlock_chain)];
    const Time blue_len = static_cast<Time>(ipow(K, chain.type));
    for (std::size_t k = 0; k < chain.tasks.size(); k += 2) {
      schedule.add(chain.tasks[k], t, t + blue_len, {0});
      t += blue_len;
      schedule.add(chain.tasks[k + 1], t, t + eps, all_procs);
      t += eps;
    }
  }

  // Phase 2: remaining chains grouped by type i, each group scheduled like
  // Y^i_P(K) (blue round in parallel, red round sequential). Every group
  // has at most P chains (one per layer), so one processor per chain works.
  for (int i = 0; i < P; ++i) {
    std::vector<const ChainIds*> group;
    for (std::size_t ell = 0; ell < layers.size(); ++ell) {
      const bool used_in_phase1 =
          ell + 1 < layers.size() && layers[ell].unlock_chain == i;
      if (!used_in_phase1) {
        group.push_back(&layers[ell].chains[static_cast<std::size_t>(i)]);
      }
    }
    if (group.empty()) continue;
    const Time blue_len = static_cast<Time>(ipow(K, i));
    const std::int64_t rounds = ipow(K, P - 1 - i);
    for (std::int64_t r = 0; r < rounds; ++r) {
      for (std::size_t c = 0; c < group.size(); ++c) {
        schedule.add(group[c]->tasks[static_cast<std::size_t>(2 * r)], t,
                     t + blue_len, {static_cast<int>(c)});
      }
      t += blue_len;
      for (std::size_t c = 0; c < group.size(); ++c) {
        schedule.add(group[c]->tasks[static_cast<std::size_t>(2 * r + 1)], t,
                     t + eps, all_procs);
        t += eps;
      }
    }
  }

  return schedule;
}

}  // namespace catbatch
