// Instance serialization: Graphviz DOT export (for visual inspection) and a
// small JSON dialect for loading/saving instances (used by the sched_cli
// example). The JSON reader accepts exactly what the writer emits:
//
//   {
//     "procs": 8,
//     "tasks": [ {"work": 1.5, "procs": 2, "name": "A"}, ... ],
//     "edges": [ [0, 1], [0, 2], ... ]
//   }
//
// "procs" (platform size) is optional on read.
#pragma once

#include <string>
#include <string_view>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

/// Graphviz DOT rendering with work/procs labels.
[[nodiscard]] std::string to_dot(const TaskGraph& graph);

/// JSON rendering of the instance; `procs` <= 0 omits the platform field.
[[nodiscard]] std::string to_json(const TaskGraph& graph, int procs = 0);

struct ParsedInstance {
  TaskGraph graph;
  int procs = 0;  // 0 when the file did not specify a platform
};

/// Parses the JSON dialect above. Throws ContractViolation with a position
/// hint on malformed input.
[[nodiscard]] ParsedInstance instance_from_json(std::string_view text);

/// Schedule serialization (for persisting runs and replay-validation):
///
///   {
///     "procs": 4,
///     "entries": [ {"id": 0, "start": 0, "finish": 2, "cpus": [0, 1]},
///                  ... ]
///   }
[[nodiscard]] std::string schedule_to_json(const Schedule& schedule,
                                           int procs);

struct ParsedSchedule {
  Schedule schedule;
  int procs = 0;
};

/// Parses what schedule_to_json emits. Throws on malformed input. Validate
/// the result against its instance with validate_schedule().
[[nodiscard]] ParsedSchedule schedule_from_json(std::string_view text);

}  // namespace catbatch
