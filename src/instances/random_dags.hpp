// Random rigid-DAG families for the empirical validation of Theorems 1-2.
//
// All generators draw execution times as multiples of 2^-20 (see
// quantize_time) so that criticality sums — and therefore the category
// computation — stay exact in double precision.
#pragma once

#include "core/graph.hpp"
#include "support/rng.hpp"

namespace catbatch {

/// Rounds a positive value to the nearest multiple of 2^-20 (at least
/// 2^-20). Keeps criticality arithmetic exact (core/category.hpp).
[[nodiscard]] Time quantize_time(double value);

/// How task execution times are drawn.
struct WorkDistribution {
  enum class Law {
    Uniform,        // uniform in [min_work, max_work]
    LogUniform,     // log-uniform in [min_work, max_work]
    BoundedPareto,  // heavy tail with shape `alpha`, clipped to the range
  };
  Law law = Law::LogUniform;
  double min_work = 0.125;
  double max_work = 8.0;
  double alpha = 1.5;  // BoundedPareto only
};

/// How processor requirements are drawn.
struct ProcDistribution {
  enum class Law {
    Uniform,     // uniform integer in [1, max_procs]
    PowerOfTwo,  // uniform over {1, 2, 4, ..., <= max_procs}
    MostlyNarrow,  // geometric-ish: small p likely, occasionally up to P
  };
  Law law = Law::MostlyNarrow;
  int max_procs = 8;
};

[[nodiscard]] Time draw_work(Rng& rng, const WorkDistribution& dist);
[[nodiscard]] int draw_procs(Rng& rng, const ProcDistribution& dist);

struct RandomTaskParams {
  WorkDistribution work;
  ProcDistribution procs;
};

/// Layered DAG: tasks are placed on `layer_count` layers; each task draws
/// 1..3 predecessors uniformly from the previous layer (layer 0 tasks are
/// roots). The classic synthetic-workflow shape.
[[nodiscard]] TaskGraph random_layered_dag(Rng& rng, std::size_t task_count,
                                           std::size_t layer_count,
                                           const RandomTaskParams& params);

/// Erdős–Rényi order-DAG: for i < j, edge (i, j) with probability
/// `edge_probability`.
[[nodiscard]] TaskGraph random_order_dag(Rng& rng, std::size_t task_count,
                                         double edge_probability,
                                         const RandomTaskParams& params);

/// Series-parallel graph grown by repeated series/parallel expansions of a
/// single edge, `task_count` tasks total (series_bias in [0,1] steers the
/// shape: 1 = chain-like, 0 = wide).
[[nodiscard]] TaskGraph random_series_parallel(Rng& rng,
                                               std::size_t task_count,
                                               double series_bias,
                                               const RandomTaskParams& params);

/// Fork-join: `stages` sequential stages of `width` parallel tasks between
/// synchronization tasks.
[[nodiscard]] TaskGraph random_fork_join(Rng& rng, std::size_t stages,
                                         std::size_t width,
                                         const RandomTaskParams& params);

/// Independent chains: `chain_count` chains of `chain_length` tasks.
[[nodiscard]] TaskGraph random_chains(Rng& rng, std::size_t chain_count,
                                      std::size_t chain_length,
                                      const RandomTaskParams& params);

/// Random out-tree (root fans out, each node gets 1..max_children children
/// until task_count reached).
[[nodiscard]] TaskGraph random_out_tree(Rng& rng, std::size_t task_count,
                                        std::size_t max_children,
                                        const RandomTaskParams& params);

/// Completely independent tasks (no edges) — the Section 2.3 regime.
[[nodiscard]] TaskGraph random_independent(Rng& rng, std::size_t task_count,
                                           const RandomTaskParams& params);

}  // namespace catbatch
