#include "instances/workloads.hpp"

#include <string>
#include <vector>

#include "instances/random_dags.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

/// Applies relative jitter and quantizes.
class CostDrawer {
 public:
  explicit CostDrawer(const KernelCosts& costs)
      : costs_(costs), rng_(costs.seed) {
    CB_CHECK(costs.jitter >= 0.0 && costs.jitter < 1.0,
             "jitter must be in [0, 1)");
    CB_CHECK(costs.potrf > 0.0 && costs.trsm > 0.0 && costs.gemm > 0.0,
             "kernel times must be positive");
    CB_CHECK(costs.potrf_procs >= 1 && costs.trsm_procs >= 1 &&
                 costs.gemm_procs >= 1,
             "kernel widths must be at least 1");
  }

  Time draw(Time base) {
    if (costs_.jitter == 0.0) return quantize_time(base);
    const double factor =
        rng_.uniform_real(1.0 - costs_.jitter, 1.0 + costs_.jitter);
    return quantize_time(static_cast<double>(base) * factor);
  }

 private:
  KernelCosts costs_;
  Rng rng_;
};

/// Tracks the last task that wrote each tile, turning "read tile X" into a
/// dependency edge — the standard way these dataflow DAGs are defined.
class TileTracker {
 public:
  TileTracker(TaskGraph& graph, int tiles)
      : graph_(graph),
        tiles_(tiles),
        writer_(static_cast<std::size_t>(tiles) *
                    static_cast<std::size_t>(tiles),
                kInvalidTask) {}

  void depend_on_tile(TaskId task, int i, int j) const {
    const TaskId w = writer_at(i, j);
    if (w != kInvalidTask) graph_.add_edge(w, task);
  }

  void write_tile(TaskId task, int i, int j) {
    writer_[index(i, j)] = task;
  }

 private:
  [[nodiscard]] std::size_t index(int i, int j) const {
    CB_DCHECK(i >= 0 && i < tiles_ && j >= 0 && j < tiles_,
              "tile index out of range");
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(tiles_) +
           static_cast<std::size_t>(j);
  }
  [[nodiscard]] TaskId writer_at(int i, int j) const {
    return writer_[index(i, j)];
  }

  TaskGraph& graph_;
  int tiles_;
  std::vector<TaskId> writer_;
};

std::string tile_name(const char* kernel, int i, int j) {
  return std::string(kernel) + "(" + std::to_string(i) + "," +
         std::to_string(j) + ")";
}

}  // namespace

TaskGraph cholesky_dag(int tiles, const KernelCosts& costs) {
  CB_CHECK(tiles >= 1, "cholesky needs at least one tile");
  TaskGraph g;
  CostDrawer draw(costs);
  TileTracker tracker(g, tiles);

  for (int k = 0; k < tiles; ++k) {
    const TaskId potrf =
        g.add_task(draw.draw(costs.potrf), costs.potrf_procs,
                   tile_name("potrf", k, k));
    tracker.depend_on_tile(potrf, k, k);
    tracker.write_tile(potrf, k, k);

    for (int i = k + 1; i < tiles; ++i) {
      const TaskId trsm = g.add_task(draw.draw(costs.trsm), costs.trsm_procs,
                                     tile_name("trsm", i, k));
      tracker.depend_on_tile(trsm, k, k);  // reads the factored diagonal
      tracker.depend_on_tile(trsm, i, k);  // updates the panel tile
      tracker.write_tile(trsm, i, k);
    }

    for (int i = k + 1; i < tiles; ++i) {
      // SYRK update of the diagonal tile (i, i) with panel (i, k).
      const TaskId syrk = g.add_task(draw.draw(costs.gemm), costs.gemm_procs,
                                     tile_name("syrk", i, i));
      tracker.depend_on_tile(syrk, i, k);
      tracker.depend_on_tile(syrk, i, i);
      tracker.write_tile(syrk, i, i);
      // GEMM updates of tiles (i, j), k < j < i.
      for (int j = k + 1; j < i; ++j) {
        const TaskId gemm = g.add_task(draw.draw(costs.gemm),
                                       costs.gemm_procs,
                                       tile_name("gemm", i, j));
        tracker.depend_on_tile(gemm, i, k);
        tracker.depend_on_tile(gemm, j, k);
        tracker.depend_on_tile(gemm, i, j);
        tracker.write_tile(gemm, i, j);
      }
    }
  }
  return g;
}

TaskGraph lu_dag(int tiles, const KernelCosts& costs) {
  CB_CHECK(tiles >= 1, "lu needs at least one tile");
  TaskGraph g;
  CostDrawer draw(costs);
  TileTracker tracker(g, tiles);

  for (int k = 0; k < tiles; ++k) {
    const TaskId getrf =
        g.add_task(draw.draw(costs.potrf), costs.potrf_procs,
                   tile_name("getrf", k, k));
    tracker.depend_on_tile(getrf, k, k);
    tracker.write_tile(getrf, k, k);

    for (int j = k + 1; j < tiles; ++j) {  // row panel U
      const TaskId trsm = g.add_task(draw.draw(costs.trsm), costs.trsm_procs,
                                     tile_name("trsmU", k, j));
      tracker.depend_on_tile(trsm, k, k);
      tracker.depend_on_tile(trsm, k, j);
      tracker.write_tile(trsm, k, j);
    }
    for (int i = k + 1; i < tiles; ++i) {  // column panel L
      const TaskId trsm = g.add_task(draw.draw(costs.trsm), costs.trsm_procs,
                                     tile_name("trsmL", i, k));
      tracker.depend_on_tile(trsm, k, k);
      tracker.depend_on_tile(trsm, i, k);
      tracker.write_tile(trsm, i, k);
    }
    for (int i = k + 1; i < tiles; ++i) {
      for (int j = k + 1; j < tiles; ++j) {
        const TaskId gemm = g.add_task(draw.draw(costs.gemm),
                                       costs.gemm_procs,
                                       tile_name("gemm", i, j));
        tracker.depend_on_tile(gemm, i, k);
        tracker.depend_on_tile(gemm, k, j);
        tracker.depend_on_tile(gemm, i, j);
        tracker.write_tile(gemm, i, j);
      }
    }
  }
  return g;
}

TaskGraph stencil_dag(int rows, int cols, Time task_time, int task_procs) {
  CB_CHECK(rows >= 1 && cols >= 1, "stencil needs a non-empty grid");
  CB_CHECK(task_time > 0.0 && task_procs >= 1, "invalid stencil task shape");
  TaskGraph g;
  std::vector<TaskId> ids(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(cols));
  const auto at = [&](int r, int c) -> TaskId& {
    return ids[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
               static_cast<std::size_t>(c)];
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      at(r, c) = g.add_task(quantize_time(task_time), task_procs,
                            tile_name("cell", r, c));
      if (r > 0) g.add_edge(at(r - 1, c), at(r, c));
      if (c > 0) g.add_edge(at(r, c - 1), at(r, c));
    }
  }
  return g;
}

TaskGraph fft_dag(int log2n, Time task_time, int task_procs) {
  CB_CHECK(log2n >= 1, "fft needs at least one stage");
  CB_CHECK(task_time > 0.0 && task_procs >= 1, "invalid fft task shape");
  const int n = 1 << log2n;
  TaskGraph g;
  std::vector<TaskId> prev(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    prev[static_cast<std::size_t>(i)] =
        g.add_task(quantize_time(task_time), task_procs,
                   tile_name("fft", 0, i));
  }
  for (int s = 1; s <= log2n; ++s) {
    std::vector<TaskId> cur(static_cast<std::size_t>(n));
    const int stride = 1 << (s - 1);
    for (int i = 0; i < n; ++i) {
      const TaskId id = g.add_task(quantize_time(task_time), task_procs,
                                   tile_name("fft", s, i));
      g.add_edge(prev[static_cast<std::size_t>(i)], id);
      g.add_edge(prev[static_cast<std::size_t>(i ^ stride)], id);
      cur[static_cast<std::size_t>(i)] = id;
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph map_reduce_dag(int mappers, int reducers, Time map_time,
                         Time reduce_time, int map_procs, int reduce_procs) {
  CB_CHECK(mappers >= 1 && reducers >= 1, "map-reduce needs both stages");
  CB_CHECK(map_time > 0.0 && reduce_time > 0.0, "stage times must be > 0");
  CB_CHECK(map_procs >= 1 && reduce_procs >= 1, "stage widths must be >= 1");
  TaskGraph g;
  std::vector<TaskId> maps;
  maps.reserve(static_cast<std::size_t>(mappers));
  for (int m = 0; m < mappers; ++m) {
    maps.push_back(g.add_task(quantize_time(map_time), map_procs,
                              "map" + std::to_string(m)));
  }
  for (int r = 0; r < reducers; ++r) {
    const TaskId red = g.add_task(quantize_time(reduce_time), reduce_procs,
                                  "reduce" + std::to_string(r));
    for (const TaskId m : maps) g.add_edge(m, red);
  }
  return g;
}

TaskGraph montage_dag(int images, int add_procs) {
  CB_CHECK(images >= 2, "montage needs at least two input images");
  CB_CHECK(add_procs >= 1, "mAdd width must be at least 1");
  TaskGraph g;

  std::vector<TaskId> projects;
  projects.reserve(static_cast<std::size_t>(images));
  for (int i = 0; i < images; ++i) {
    projects.push_back(g.add_task(quantize_time(2.0), 1,
                                  "project" + std::to_string(i)));
  }

  // mDiffFit over adjacent image pairs.
  std::vector<TaskId> diffs;
  for (int i = 0; i + 1 < images; ++i) {
    const TaskId diff = g.add_task(quantize_time(0.5), 1,
                                   "difffit" + std::to_string(i));
    g.add_edge(projects[static_cast<std::size_t>(i)], diff);
    g.add_edge(projects[static_cast<std::size_t>(i + 1)], diff);
    diffs.push_back(diff);
  }

  const TaskId concat = g.add_task(quantize_time(1.0), 1, "concatfit");
  for (const TaskId d : diffs) g.add_edge(d, concat);
  const TaskId bgmodel = g.add_task(quantize_time(4.0), 1, "bgmodel");
  g.add_edge(concat, bgmodel);

  std::vector<TaskId> backgrounds;
  for (int i = 0; i < images; ++i) {
    const TaskId bg = g.add_task(quantize_time(0.5), 1,
                                 "background" + std::to_string(i));
    g.add_edge(bgmodel, bg);
    g.add_edge(projects[static_cast<std::size_t>(i)], bg);
    backgrounds.push_back(bg);
  }

  const TaskId imgtbl = g.add_task(quantize_time(0.5), 1, "imgtbl");
  for (const TaskId bg : backgrounds) g.add_edge(bg, imgtbl);
  const TaskId add = g.add_task(quantize_time(8.0), add_procs, "add");
  g.add_edge(imgtbl, add);
  const TaskId shrink = g.add_task(quantize_time(1.0), 1, "shrink");
  g.add_edge(add, shrink);
  const TaskId jpeg = g.add_task(quantize_time(0.5), 1, "jpeg");
  g.add_edge(shrink, jpeg);
  return g;
}

}  // namespace catbatch
