// Streaming/chunked instance ingest: building and simulating 1M-10M-task
// DAGs without ever materializing a TaskGraph.
//
// The TaskGraph builder costs ~5 heap blocks and a std::string per task —
// fine for the paper-scale examples, fatal at 10M tasks. This layer goes
// straight to the frozen SoA/CSR form:
//
//   StreamingGraphBuilder — append tasks chunk by chunk (scalars + a
//       predecessor span + an optional name, interned); finish() freezes
//       into a validated SoaGraph via the raw build_soa_graph overload,
//       while freeze_chunk() peels off everything appended since the last
//       freeze as a SoaChunk for incremental engine ingest
//       (SessionEngine::submit(SoaChunk, now)) — no full-graph resolve
//       pause, predecessor ids may reach into any earlier chunk.
//       Predecessor ids must reference earlier tasks only, which every
//       streaming producer satisfies by construction.
//   SoaSource — InstanceSource over a frozen SoaGraph: the engine borrows
//       the arrays via the soa_graph() fast path; realized_graph() (needed
//       only by validators/analysis) materializes a TaskGraph lazily, so
//       benchmark runs never pay for it.
//   huge_layered_soa — the layered random-DAG family emitted directly to
//       CSR: the streaming-scale counterpart of random_layered_dag with an
//       explicitly sequenced draw order (statement order, not argument
//       evaluation order), so instances are reproducible across compilers.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "core/soa_graph.hpp"
#include "instances/interner.hpp"
#include "instances/random_dags.hpp"
#include "sim/source.hpp"
#include "support/rng.hpp"

namespace catbatch {

/// Incremental SoA builder. Append-only; ids are dense and ascending in
/// call order. finish() consumes the builder.
class StreamingGraphBuilder {
 public:
  explicit StreamingGraphBuilder(std::size_t expected_tasks = 0);

  /// Adds one task and returns its id. `predecessors` may be unsorted and
  /// may contain duplicates (they are deduplicated, matching
  /// TaskGraph::add_edge); every entry must reference an earlier task —
  /// including tasks already peeled off by freeze_chunk(). Non-empty names
  /// are interned — repeated labels cost one copy total.
  TaskId add_task(Time work, int procs, std::span<const TaskId> predecessors,
                  std::string_view name = {});

  /// Total tasks ever added, across frozen chunks and the pending tail.
  [[nodiscard]] std::size_t size() const noexcept {
    return base_ + work_.size();
  }
  /// Tasks appended since the last freeze_chunk() (what the next one peels).
  [[nodiscard]] std::size_t pending() const noexcept { return work_.size(); }

  /// Freezes into a validated SoaGraph (succ CSR + levels derived there).
  /// The builder is empty afterwards. Only valid when no chunk has been
  /// peeled off — the two freeze styles do not mix.
  [[nodiscard]] SoaGraph finish(const ParallelOptions& parallel = {});

  /// Moves out every task appended since the last freeze as a SoaChunk
  /// (ids [chunk.base, chunk.base + chunk.size())) and resets the builder
  /// for the next slice; the builder keeps only the id watermark, so a
  /// 10M-task stream never holds more than one chunk of arrays. Chunks are
  /// nameless — mixing named tasks with chunked freezing is a contract
  /// violation.
  [[nodiscard]] SoaChunk freeze_chunk();

 private:
  TaskId base_ = 0;  // ids [0, base_) were peeled off by freeze_chunk()
  std::vector<Time> work_;
  std::vector<int> procs_;
  std::vector<std::uint32_t> pred_offsets_{0};
  std::vector<TaskId> pred_data_;
  std::vector<TaskId> pred_scratch_;  // reused per-task sort/dedupe buffer
  NameInterner interner_;
  std::vector<std::string_view> names_;
  bool any_names_ = false;
};

/// InstanceSource over a frozen SoaGraph (borrowed; must outlive the
/// source). The engine takes the zero-copy soa_graph() path; start() is
/// the generic copying fallback for callers driving the interface by hand.
class SoaSource final : public InstanceSource {
 public:
  explicit SoaSource(const SoaGraph& graph) : graph_(graph) {}

  [[nodiscard]] std::vector<SourceTask> start() override;
  [[nodiscard]] std::vector<SourceTask> on_complete(TaskId id,
                                                    Time now) override;
  /// Materializes a TaskGraph from the SoA arrays on first call — O(n)
  /// time and the full AoS footprint. Validation-only; benchmark runs
  /// must not call it.
  [[nodiscard]] const TaskGraph& realized_graph() const override;
  [[nodiscard]] const SoaGraph* soa_graph() const override { return &graph_; }

 private:
  const SoaGraph& graph_;
  mutable std::optional<TaskGraph> realized_;
};

/// Layered random DAG emitted straight to CSR: tasks land on
/// `layer_count` layers (the first `layer_count` tasks seed one layer
/// each, the rest draw a layer uniformly); each non-root-layer task draws
/// 1..3 predecessors from the previous layer. Same family as
/// random_layered_dag, scaled to 10M tasks in O(1) allocations per chunk
/// rather than per task.
[[nodiscard]] SoaGraph huge_layered_soa(Rng& rng, std::size_t task_count,
                                        std::size_t layer_count,
                                        const RandomTaskParams& params);

}  // namespace catbatch
