// Production workload traces: the Standard Workload Format (SWF) of the
// Parallel Workloads Archive and Batsim's JSON workload files, parsed into
// a column-oriented TraceWorkload and replayed through the session engine.
//
// An SWF/Batsim job is exactly a rigid task with a release time: it needs
// `procs` processors for `run` seconds, arrives at `submit`, and tells the
// scheduler a declared walltime (usually padded). That makes archive
// traces the natural production-shaped input for the backfilling lineup
// and for CatBatch's release-time setting (Section 2.3) — millions of real
// arrival patterns instead of synthetic DAGs.
//
// TraceWorkload is struct-of-arrays on purpose: a million-job trace is
// five flat columns, not a million Job objects. SWF jobs keep no name at
// all (their ids are line numbers); Batsim job ids are interned
// string_views backed by one shared storage block. replay_trace() feeds
// the engine in chunked submit() batches, so peak memory is one chunk of
// SourceTask plus the columns.
//
// Format notes:
//   SWF    — `;` header comments (MaxProcs is honored), 18 whitespace-
//            separated fields per job. We read submit (1), run time (3),
//            used processors (4), requested processors (7) and requested
//            walltime (8), 0-based; requested values fall back to used
//            ones when absent (-1), jobs with no positive run time or
//            processor count are dropped and counted.
//   Batsim — {"nb_res": N, "jobs": [{id, subtime, res, profile,
//            walltime?}], "profiles": {name: {"type": "delay", ...}}}.
//            Only delay profiles carry a duration; jobs with any other
//            profile type are dropped and counted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "core/task.hpp"
#include "sim/engine.hpp"
#include "sim/session.hpp"
#include "support/rng.hpp"

namespace catbatch {

class JobStream;       // instances/job_stream.hpp
class OnlineScheduler; // sim/scheduler.hpp

/// A parsed trace, jobs sorted by submit time (stable: ties keep file
/// order). Columns are parallel; `names` is empty for SWF traces (ids are
/// positions) and interned views into `name_storage` for Batsim ones.
struct TraceWorkload {
  std::vector<Time> submit;
  std::vector<Time> run;       // actual duration
  std::vector<Time> walltime;  // declared (requested) duration
  std::vector<int> procs;
  std::vector<std::string_view> names;
  std::shared_ptr<const void> name_storage;
  /// Platform size: the header's MaxProcs / nb_res, or the widest job if
  /// the header is silent.
  int max_procs = 0;
  /// Unusable records skipped during parsing (no positive run time or
  /// processor count, too few fields, non-delay profile).
  std::size_t dropped = 0;

  [[nodiscard]] std::size_t size() const noexcept { return submit.size(); }
};

/// Streaming SWF parser; tolerates comments, blank lines and short rows.
[[nodiscard]] TraceWorkload parse_swf(std::istream& in);

/// Batsim JSON workload parser. CB_CHECKs that `text` is valid JSON with
/// the fields listed in the file comment.
[[nodiscard]] TraceWorkload parse_batsim_json(std::string_view text);

/// Writes `trace` back out as SWF (unknown columns as -1). parse_swf of
/// the output reproduces the submit/run/walltime/procs columns.
void write_swf(const TraceWorkload& trace, std::ostream& out);

/// Synthesizes an SWF-shaped workload: power-of-two-leaning widths,
/// log-uniform run times, declared walltimes padded by a random factor in
/// [1, 3], Poisson arrivals scaled so the offered load (total work area
/// over the arrival span times `procs`) is about `load`. Deterministic in
/// `rng`; times are whole seconds, as in the archive.
[[nodiscard]] TraceWorkload generate_swf_workload(Rng& rng, std::size_t jobs,
                                                  int procs, double load);

/// The first min(limit, size) jobs as a JobStream of single-task jobs —
/// the simulate()/per-job-metrics path for trace excerpts. Job names are
/// "job<index>" (or the Batsim id when present).
[[nodiscard]] JobStream to_job_stream(const TraceWorkload& trace,
                                      std::size_t limit);

struct TraceReplayOptions {
  /// Counting mode by default: trace replays never render a Gantt chart.
  ScheduleMode mode = ScheduleMode::Counting;
  /// Jobs per submit() batch — bounds peak SourceTask materialization.
  std::size_t chunk = 65536;
};

/// Replays the whole trace through a SessionEngine: jobs become rigid
/// tasks with release = submit, work = run and declared_work = walltime
/// (so schedulers plan with the declared time but occupy for the actual
/// one), submitted in chunked batches and drained to completion. Widths
/// are clamped to `procs` (archive traces occasionally exceed their own
/// header's MaxProcs).
[[nodiscard]] SimResult replay_trace(const TraceWorkload& trace,
                                     OnlineScheduler& scheduler, int procs,
                                     const TraceReplayOptions& options = {});

}  // namespace catbatch
