#include "instances/interner.hpp"

#include <algorithm>

namespace catbatch {

std::string_view NameInterner::intern(std::string_view s) {
  if (s.empty()) return {};
  if (const auto it = set_.find(s); it != set_.end()) return *it;
  std::vector<std::string>& chunks = arena_->chunks;
  if (chunks.empty() ||
      chunks.back().capacity() - chunks.back().size() < s.size()) {
    chunks.emplace_back();
    chunks.back().reserve(std::max(kChunkBytes, s.size()));
  }
  std::string& chunk = chunks.back();
  const std::size_t pos = chunk.size();
  chunk.append(s);  // capacity reserved above: never reallocates
  const std::string_view view(chunk.data() + pos, s.size());
  set_.insert(view);
  bytes_ += s.size();
  return view;
}

}  // namespace catbatch
