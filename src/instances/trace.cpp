#include "instances/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>
#include <utility>

#include "instances/interner.hpp"
#include "instances/job_stream.hpp"
#include "support/check.hpp"
#include "support/json_parse.hpp"

namespace catbatch {

namespace {

/// Stable-sorts the columns by submit time via one index permutation.
/// Most archive traces are already sorted; callers check before paying.
void sort_by_submit(TraceWorkload& trace) {
  std::vector<std::size_t> order(trace.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return trace.submit[a] < trace.submit[b];
                   });
  TraceWorkload sorted;
  sorted.submit.reserve(trace.size());
  sorted.run.reserve(trace.size());
  sorted.walltime.reserve(trace.size());
  sorted.procs.reserve(trace.size());
  if (!trace.names.empty()) sorted.names.reserve(trace.size());
  for (const std::size_t i : order) {
    sorted.submit.push_back(trace.submit[i]);
    sorted.run.push_back(trace.run[i]);
    sorted.walltime.push_back(trace.walltime[i]);
    sorted.procs.push_back(trace.procs[i]);
    if (!trace.names.empty()) sorted.names.push_back(trace.names[i]);
  }
  trace.submit = std::move(sorted.submit);
  trace.run = std::move(sorted.run);
  trace.walltime = std::move(sorted.walltime);
  trace.procs = std::move(sorted.procs);
  trace.names = std::move(sorted.names);
}

void push_job(TraceWorkload& trace, Time submit, Time run, Time walltime,
              int procs) {
  trace.submit.push_back(submit < 0.0 ? 0.0 : submit);
  trace.run.push_back(run);
  trace.walltime.push_back(walltime);
  trace.procs.push_back(procs);
}

/// Case-insensitive search for "maxprocs:" in an SWF comment line;
/// returns the declared value or -1.
int parse_max_procs_comment(const std::string& line) {
  static constexpr std::string_view kKey = "maxprocs:";
  for (std::size_t i = 0; i + kKey.size() <= line.size(); ++i) {
    std::size_t k = 0;
    while (k < kKey.size() &&
           std::tolower(static_cast<unsigned char>(line[i + k])) == kKey[k]) {
      ++k;
    }
    if (k == kKey.size()) {
      return std::atoi(line.c_str() + i + kKey.size());
    }
  }
  return -1;
}

/// Prints a trace time: whole seconds without a decimal point (the archive
/// format), anything fractional via %g.
void print_time(std::ostream& out, Time value) {
  char buf[32];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%g", static_cast<double>(value));
  }
  out << buf;
}

}  // namespace

TraceWorkload parse_swf(std::istream& in) {
  TraceWorkload trace;
  std::string line;
  double fields[9];
  bool sorted = true;
  while (std::getline(in, line)) {
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0') continue;
    if (*p == ';') {
      const int declared = parse_max_procs_comment(line);
      if (declared > 0) trace.max_procs = std::max(trace.max_procs, declared);
      continue;
    }
    // First 9 whitespace-separated numbers: job, submit, wait, run,
    // used procs, avg cpu, used mem, requested procs, requested walltime.
    std::size_t n = 0;
    char* end = nullptr;
    while (n < 9) {
      const double v = std::strtod(p, &end);
      if (end == p) break;
      fields[n++] = v;
      p = end;
    }
    if (n < 9) {
      ++trace.dropped;
      continue;
    }
    const double run = fields[3];
    const double used_procs = fields[4];
    const double req_procs = fields[7];
    const double req_wall = fields[8];
    const double procs = req_procs > 0 ? req_procs : used_procs;
    if (run <= 0 || procs <= 0 || procs > 1e9) {
      ++trace.dropped;
      continue;
    }
    const double walltime = req_wall > 0 ? req_wall : run;
    if (!trace.submit.empty() && fields[1] < trace.submit.back()) {
      sorted = false;
    }
    push_job(trace, fields[1], run, walltime, static_cast<int>(procs));
  }
  if (!sorted) sort_by_submit(trace);
  for (const int p : trace.procs) {
    trace.max_procs = std::max(trace.max_procs, p);
  }
  return trace;
}

TraceWorkload parse_batsim_json(std::string_view text) {
  JsonParseError error;
  const auto root = parse_json(text, &error);
  CB_CHECK(root.has_value(),
           "Batsim workload is not valid JSON: " + error.message);
  CB_CHECK(root->is_object(), "Batsim workload must be a JSON object");

  TraceWorkload trace;
  if (const JsonValue* nb = root->find("nb_res");
      nb != nullptr && nb->is_number()) {
    trace.max_procs = static_cast<int>(nb->num_v);
  }

  // profile name -> delay duration; non-delay profiles get no entry and
  // drop the jobs that reference them.
  std::vector<std::pair<std::string_view, double>> delays;
  if (const JsonValue* profiles = root->find("profiles");
      profiles != nullptr && profiles->is_object()) {
    for (const auto& [name, profile] : profiles->members) {
      const JsonValue* type = profile.find("type");
      if (type == nullptr || !type->is_string() || type->str_v != "delay") {
        continue;
      }
      const JsonValue* delay = profile.find("delay");
      if (delay == nullptr || !delay->is_number()) continue;
      delays.emplace_back(name, delay->num_v);
    }
  }
  const auto delay_of = [&](std::string_view name) -> const double* {
    for (const auto& [key, value] : delays) {
      if (key == name) return &value;
    }
    return nullptr;
  };

  const JsonValue* jobs = root->find("jobs");
  CB_CHECK(jobs != nullptr && jobs->is_array(),
           "Batsim workload needs a jobs array");
  auto interner = std::make_shared<NameInterner>();
  bool sorted = true;
  for (const JsonValue& job : jobs->items) {
    if (!job.is_object()) {
      ++trace.dropped;
      continue;
    }
    const JsonValue* res = job.find("res");
    const JsonValue* subtime = job.find("subtime");
    const JsonValue* profile = job.find("profile");
    if (res == nullptr || !res->is_number() || res->num_v <= 0 ||
        subtime == nullptr || !subtime->is_number() || profile == nullptr ||
        !profile->is_string()) {
      ++trace.dropped;
      continue;
    }
    const double* delay = delay_of(profile->str_v);
    if (delay == nullptr || *delay <= 0) {
      ++trace.dropped;
      continue;
    }
    const JsonValue* wall = job.find("walltime");
    const double walltime =
        (wall != nullptr && wall->is_number() && wall->num_v > 0)
            ? wall->num_v
            : *delay;
    std::string id;
    if (const JsonValue* idv = job.find("id"); idv != nullptr) {
      if (idv->is_string()) {
        id = idv->str_v;
      } else if (idv->is_number()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(idv->num_v));
        id = buf;
      }
    }
    if (id.empty()) id = "job" + std::to_string(trace.size());
    if (!trace.submit.empty() && subtime->num_v < trace.submit.back()) {
      sorted = false;
    }
    push_job(trace, subtime->num_v, *delay, walltime,
             static_cast<int>(res->num_v));
    trace.names.push_back(interner->intern(id));
  }
  if (!sorted) sort_by_submit(trace);
  for (const int p : trace.procs) {
    trace.max_procs = std::max(trace.max_procs, p);
  }
  trace.name_storage = interner;
  return trace;
}

void write_swf(const TraceWorkload& trace, std::ostream& out) {
  out << "; MaxProcs: " << trace.max_procs << "\n";
  out << "; Jobs: " << trace.size() << "\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // 18 SWF columns; the ones a TraceWorkload does not carry are -1
    // (status is 1 = completed). Field order per the archive spec.
    out << (i + 1) << ' ';
    print_time(out, trace.submit[i]);
    out << " -1 ";
    print_time(out, trace.run[i]);
    out << ' ' << trace.procs[i] << " -1 -1 " << trace.procs[i] << ' ';
    print_time(out, trace.walltime[i]);
    out << " -1 1 -1 -1 -1 -1 -1 -1 -1\n";
  }
}

TraceWorkload generate_swf_workload(Rng& rng, std::size_t jobs, int procs,
                                    double load) {
  CB_CHECK(procs > 0, "platform needs at least one processor");
  CB_CHECK(load > 0.0, "offered load must be positive");
  TraceWorkload trace;
  trace.max_procs = procs;
  trace.submit.reserve(jobs);
  trace.run.reserve(jobs);
  trace.walltime.reserve(jobs);
  trace.procs.reserve(jobs);

  int max_log = 0;
  while ((1 << (max_log + 1)) <= procs) ++max_log;

  double area = 0.0;
  std::vector<double> gaps(jobs);
  double gap_total = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    // Power-of-two-leaning widths (the archive's dominant shape), with a
    // quarter of jobs uniform to keep odd widths in play.
    int width = 1 << rng.index(static_cast<std::size_t>(max_log) + 1);
    if (rng.bernoulli(0.25)) {
      width = static_cast<int>(rng.uniform_int(1, procs));
    }
    width = std::min(width, procs);
    // Log-uniform run times, ten seconds to an hour, whole seconds.
    const double run = std::max(
        1.0, std::floor(std::exp(rng.uniform_real(std::log(10.0),
                                                  std::log(3600.0)))));
    // Users pad: declared walltime is 1-3x the actual, in whole minutes.
    const double padded = run * rng.uniform_real(1.0, 3.0);
    const double walltime = std::ceil(padded / 60.0) * 60.0;
    push_job(trace, 0.0, run, walltime, width);
    area += run * width;
    gaps[i] = -std::log(1.0 - rng.uniform_real(0.0, 1.0));
    gap_total += gaps[i];
  }
  // Exponential inter-arrivals scaled so the span carries `load` of the
  // platform: span = area / (load * procs).
  const double span = area / (load * static_cast<double>(procs));
  double cum = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    cum += gaps[i];
    trace.submit[i] = std::floor(span * cum / gap_total);
  }
  return trace;
}

JobStream to_job_stream(const TraceWorkload& trace, std::size_t limit) {
  JobStream stream;
  const std::size_t count = std::min(limit, trace.size());
  for (std::size_t i = 0; i < count; ++i) {
    Job job;
    job.arrival = trace.submit[i];
    job.name = trace.names.empty() ? "job" + std::to_string(i)
                                   : std::string(trace.names[i]);
    (void)job.graph.add_task(trace.run[i], trace.procs[i], "t");
    stream.add_job(std::move(job));
  }
  return stream;
}

SimResult replay_trace(const TraceWorkload& trace,
                       OnlineScheduler& scheduler, int procs,
                       const TraceReplayOptions& options) {
  CB_CHECK(procs > 0, "platform needs at least one processor");
  CB_CHECK(options.chunk > 0, "chunk size must be positive");
  SessionEngine session(scheduler, procs,
                        SessionOptions{}.with_mode(options.mode));
  std::vector<SourceTask> batch;
  for (std::size_t base = 0; base < trace.size(); base += options.chunk) {
    const std::size_t count = std::min(options.chunk, trace.size() - base);
    batch.clear();
    batch.reserve(count);
    for (std::size_t i = base; i < base + count; ++i) {
      SourceTask task;
      task.work = trace.run[i];
      task.declared_work = trace.walltime[i];
      task.procs = std::min(trace.procs[i], procs);
      task.release = trace.submit[i];
      batch.push_back(std::move(task));
    }
    (void)session.submit(std::move(batch), 0.0);
  }
  session.drain();
  return session.finish();
}

}  // namespace catbatch
