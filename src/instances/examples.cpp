#include "instances/examples.hpp"

#include <numeric>
#include <string>

#include "support/check.hpp"

namespace catbatch {

IntroInstance make_intro_instance(int procs, Time epsilon) {
  CB_CHECK(procs >= 1, "intro instance needs at least one processor");
  CB_CHECK(epsilon > 0.0, "epsilon must be positive");

  IntroInstance inst;
  inst.procs = procs;
  inst.epsilon = epsilon;

  TaskId prev_b = kInvalidTask;
  for (int k = 1; k <= procs; ++k) {
    const std::string suffix = std::to_string(k);
    const TaskId a = inst.graph.add_task(epsilon, 1, "A" + suffix);
    const TaskId c = inst.graph.add_task(1.0, 1, "C" + suffix);
    const TaskId b = inst.graph.add_task(epsilon, procs, "B" + suffix);
    inst.graph.add_edge(a, b);
    if (prev_b != kInvalidTask) {
      // B_{k-1} releases both A_k and C_k (Figure 1's DAG).
      inst.graph.add_edge(prev_b, a);
      inst.graph.add_edge(prev_b, c);
    }
    inst.a_tasks.push_back(a);
    inst.b_tasks.push_back(b);
    inst.c_tasks.push_back(c);
    prev_b = b;
  }
  return inst;
}

Schedule intro_optimal_schedule(const IntroInstance& inst) {
  const int P = inst.procs;
  const Time eps = inst.epsilon;
  Schedule schedule;
  std::vector<int> all_procs(static_cast<std::size_t>(P));
  std::iota(all_procs.begin(), all_procs.end(), 0);

  // Phase 1 ([0, 2Pε]): the A/B chain back-to-back.
  for (int k = 1; k <= P; ++k) {
    const Time a_start = static_cast<Time>(2 * k - 2) * eps;
    schedule.add(inst.a_tasks[static_cast<std::size_t>(k - 1)], a_start,
                 a_start + eps, {0});
    const Time b_start = static_cast<Time>(2 * k - 1) * eps;
    schedule.add(inst.b_tasks[static_cast<std::size_t>(k - 1)], b_start,
                 b_start + eps, all_procs);
  }

  // Phase 2 ([2Pε, 2Pε + 1]): all C's in parallel, one per processor.
  const Time c_start = static_cast<Time>(2 * P) * eps;
  for (int k = 1; k <= P; ++k) {
    schedule.add(inst.c_tasks[static_cast<std::size_t>(k - 1)], c_start,
                 c_start + 1.0, {k - 1});
  }
  return schedule;
}

Time intro_optimal_makespan(int procs, Time epsilon) {
  CB_CHECK(procs >= 1 && epsilon > 0.0, "invalid intro parameters");
  return 1.0 + static_cast<Time>(2 * procs) * epsilon;
}

Time intro_asap_makespan(int procs, Time epsilon) {
  CB_CHECK(procs >= 1 && epsilon > 0.0, "invalid intro parameters");
  // Each repetition serializes behind the running decoy C: T_k = T_{k-1} +
  // (1 + ε) (Section 1).
  return static_cast<Time>(procs) * (1.0 + epsilon);
}

TaskGraph make_paper_example() {
  TaskGraph g;
  const TaskId a = g.add_task(6.0, 1, "A");
  const TaskId b = g.add_task(2.0, 2, "B");
  const TaskId c = g.add_task(2.5, 1, "C");
  const TaskId d = g.add_task(3.0, 3, "D");
  const TaskId e = g.add_task(2.8, 1, "E");
  const TaskId f = g.add_task(0.6, 1, "F");
  const TaskId h = g.add_task(0.8, 3, "G");  // task G
  const TaskId i = g.add_task(1.2, 2, "H");  // task H
  const TaskId j = g.add_task(0.6, 2, "I");  // task I
  const TaskId k = g.add_task(0.8, 3, "J");  // task J
  const TaskId l = g.add_task(1.4, 3, "K");  // task K

  // Edges chosen to produce the paper's criticality table (Figure 3): s∞ of
  // each task equals the max f∞ over its predecessors.
  g.add_edge(b, e);  // E starts after B:        s∞(E) = 2
  g.add_edge(c, f);  // F after C and D:         s∞(F) = max(2.5, 3) = 3
  g.add_edge(d, f);
  g.add_edge(d, h);  // G after D:               s∞(G) = 3
  g.add_edge(f, j);  // I after F:               s∞(I) = 3.6
  g.add_edge(j, l);  // K after I:               s∞(K) = 4.2
  g.add_edge(e, i);  // H after E:               s∞(H) = 4.8
  g.add_edge(a, k);  // J after A and H:         s∞(J) = 6
  g.add_edge(i, k);
  return g;
}

Time paper_example_critical_path() { return 6.8; }

}  // namespace catbatch
