#include "instances/streaming.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

StreamingGraphBuilder::StreamingGraphBuilder(std::size_t expected_tasks) {
  work_.reserve(expected_tasks);
  procs_.reserve(expected_tasks);
  pred_offsets_.reserve(expected_tasks + 1);
}

TaskId StreamingGraphBuilder::add_task(Time work, int procs,
                                       std::span<const TaskId> predecessors,
                                       std::string_view name) {
  const auto id = static_cast<TaskId>(base_ + work_.size());
  CB_CHECK(work > 0.0, "task work must be positive");
  CB_CHECK(procs >= 1, "task needs at least one processor");
  pred_scratch_.assign(predecessors.begin(), predecessors.end());
  std::sort(pred_scratch_.begin(), pred_scratch_.end());
  pred_scratch_.erase(
      std::unique(pred_scratch_.begin(), pred_scratch_.end()),
      pred_scratch_.end());
  for (const TaskId pred : pred_scratch_) {
    CB_CHECK(pred < id, "streaming predecessor must be an earlier task");
  }
  work_.push_back(work);
  procs_.push_back(procs);
  pred_data_.insert(pred_data_.end(), pred_scratch_.begin(),
                    pred_scratch_.end());
  pred_offsets_.push_back(static_cast<std::uint32_t>(pred_data_.size()));
  if (!name.empty() && !any_names_) {
    // First named task: backfill empty views for everything before it.
    names_.assign(work_.size() - 1, std::string_view{});
    any_names_ = true;
  }
  if (any_names_) names_.push_back(interner_.intern(name));
  return id;
}

SoaGraph StreamingGraphBuilder::finish(const ParallelOptions& parallel) {
  CB_CHECK(base_ == 0,
           "finish() cannot follow freeze_chunk(); drain via chunks instead");
  std::shared_ptr<const void> storage =
      any_names_ ? interner_.storage() : nullptr;
  SoaGraph g = build_soa_graph(std::move(work_), std::move(procs_),
                               std::move(pred_offsets_), std::move(pred_data_),
                               std::move(names_), std::move(storage), parallel);
  *this = StreamingGraphBuilder();
  return g;
}

SoaChunk StreamingGraphBuilder::freeze_chunk() {
  CB_CHECK(!any_names_, "chunked freezing does not support task names");
  SoaChunk chunk;
  chunk.base = base_;
  chunk.work = std::move(work_);
  chunk.procs = std::move(procs_);
  chunk.pred_offsets = std::move(pred_offsets_);
  chunk.pred_data = std::move(pred_data_);
  base_ += static_cast<TaskId>(chunk.work.size());
  work_.clear();
  procs_.clear();
  pred_offsets_.assign(1, 0);
  pred_data_.clear();
  return chunk;
}

std::vector<SourceTask> SoaSource::start() {
  std::vector<SourceTask> out;
  out.reserve(graph_.size());
  for (TaskId id = 0; id < graph_.size(); ++id) {
    SourceTask st;
    st.work = graph_.work[id];
    st.procs = graph_.procs[id];
    st.name = std::string(graph_.name(id));
    const auto preds = graph_.predecessors(id);
    st.predecessors.assign(preds.begin(), preds.end());
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<SourceTask> SoaSource::on_complete(TaskId, Time) { return {}; }

const TaskGraph& SoaSource::realized_graph() const {
  if (!realized_.has_value()) {
    TaskGraph g;
    for (TaskId id = 0; id < graph_.size(); ++id) {
      g.add_task(graph_.work[id], graph_.procs[id],
                 std::string(graph_.name(id)));
    }
    for (TaskId id = 0; id < graph_.size(); ++id) {
      for (const TaskId pred : graph_.predecessors(id)) {
        g.add_edge(pred, id);
      }
    }
    realized_ = std::move(g);
  }
  return *realized_;
}

SoaGraph huge_layered_soa(Rng& rng, std::size_t task_count,
                          std::size_t layer_count,
                          const RandomTaskParams& params) {
  CB_CHECK(task_count >= 1, "need at least one task");
  CB_CHECK(layer_count >= 1 && layer_count <= task_count,
           "layer count must be in [1, task_count]");
  StreamingGraphBuilder builder(task_count);
  std::vector<std::vector<TaskId>> layers(layer_count);
  std::vector<TaskId> preds;
  preds.reserve(3);
  for (std::size_t k = 0; k < task_count; ++k) {
    // Explicit statement order (layer, work, procs, predecessors): the
    // draw sequence is part of the instance definition, so it must not
    // depend on argument evaluation order.
    const std::size_t layer = k < layer_count ? k : rng.index(layer_count);
    const Time work = draw_work(rng, params.work);
    const int procs = draw_procs(rng, params.procs);
    preds.clear();
    if (layer > 0 && !layers[layer - 1].empty()) {
      const std::vector<TaskId>& prev = layers[layer - 1];
      const std::size_t pred_count = 1 + rng.index(3);  // 1..3
      for (std::size_t e = 0; e < pred_count; ++e) {
        preds.push_back(prev[rng.index(prev.size())]);
      }
    }
    const TaskId id = builder.add_task(work, procs, preds);
    layers[layer].push_back(id);
  }
  return builder.finish();
}

}  // namespace catbatch
