#include "instances/random_dags.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace catbatch {

Time quantize_time(double value) {
  CB_CHECK(value > 0.0, "cannot quantize a non-positive time");
  const double quantum = 0x1.0p-20;
  const double ticks = std::max(1.0, std::round(value / quantum));
  return ticks * quantum;
}

Time draw_work(Rng& rng, const WorkDistribution& dist) {
  CB_CHECK(dist.min_work > 0.0 && dist.max_work >= dist.min_work,
           "work distribution requires 0 < min <= max");
  double value = dist.min_work;
  switch (dist.law) {
    case WorkDistribution::Law::Uniform:
      value = rng.uniform_real(dist.min_work, dist.max_work);
      break;
    case WorkDistribution::Law::LogUniform: {
      const double lo = std::log(dist.min_work);
      const double hi = std::log(dist.max_work);
      value = std::exp(rng.uniform_real(lo, hi));
      break;
    }
    case WorkDistribution::Law::BoundedPareto:
      value = rng.bounded_pareto(dist.min_work, dist.max_work, dist.alpha);
      break;
  }
  return quantize_time(std::clamp(value, dist.min_work, dist.max_work));
}

int draw_procs(Rng& rng, const ProcDistribution& dist) {
  CB_CHECK(dist.max_procs >= 1, "proc distribution requires max_procs >= 1");
  switch (dist.law) {
    case ProcDistribution::Law::Uniform:
      return static_cast<int>(rng.uniform_int(1, dist.max_procs));
    case ProcDistribution::Law::PowerOfTwo: {
      int count = 0;
      for (int p = 1; p <= dist.max_procs; p *= 2) ++count;
      const auto pick = static_cast<int>(rng.uniform_int(0, count - 1));
      return 1 << pick;
    }
    case ProcDistribution::Law::MostlyNarrow: {
      // Halving ladder: p = 1 w.p. 1/2, doubled with p falling back to the
      // platform bound — yields mostly-sequential mixes typical of HPC
      // workflow traces.
      int p = 1;
      while (p * 2 <= dist.max_procs && rng.bernoulli(0.5)) p *= 2;
      return p;
    }
  }
  return 1;
}

namespace {
TaskId add_random_task(TaskGraph& g, Rng& rng, const RandomTaskParams& params) {
  return g.add_task(draw_work(rng, params.work),
                    draw_procs(rng, params.procs));
}
}  // namespace

TaskGraph random_layered_dag(Rng& rng, std::size_t task_count,
                             std::size_t layer_count,
                             const RandomTaskParams& params) {
  CB_CHECK(task_count >= 1, "need at least one task");
  CB_CHECK(layer_count >= 1 && layer_count <= task_count,
           "layer count must be in [1, task_count]");
  TaskGraph g;
  std::vector<std::vector<TaskId>> layers(layer_count);
  for (std::size_t k = 0; k < task_count; ++k) {
    // Ensure every layer is non-empty, then distribute uniformly.
    const std::size_t layer =
        k < layer_count ? k : rng.index(layer_count);
    const TaskId id = add_random_task(g, rng, params);
    layers[layer].push_back(id);
    if (layer > 0 && !layers[layer - 1].empty()) {
      const std::size_t pred_count = 1 + rng.index(3);  // 1..3
      for (std::size_t e = 0; e < pred_count; ++e) {
        g.add_edge(layers[layer - 1][rng.index(layers[layer - 1].size())],
                   id);
      }
    }
  }
  return g;
}

TaskGraph random_order_dag(Rng& rng, std::size_t task_count,
                           double edge_probability,
                           const RandomTaskParams& params) {
  CB_CHECK(task_count >= 1, "need at least one task");
  CB_CHECK(edge_probability >= 0.0 && edge_probability <= 1.0,
           "edge probability out of [0,1]");
  TaskGraph g;
  for (std::size_t k = 0; k < task_count; ++k) add_random_task(g, rng, params);
  for (TaskId i = 0; i < task_count; ++i) {
    for (TaskId j = i + 1; j < task_count; ++j) {
      if (rng.bernoulli(edge_probability)) g.add_edge(i, j);
    }
  }
  return g;
}

TaskGraph random_series_parallel(Rng& rng, std::size_t task_count,
                                 double series_bias,
                                 const RandomTaskParams& params) {
  CB_CHECK(task_count >= 1, "need at least one task");
  CB_CHECK(series_bias >= 0.0 && series_bias <= 1.0,
           "series bias out of [0,1]");
  TaskGraph g;
  // Grow by expansion: maintain a list of edges (u, v); expanding an edge
  // in series inserts a task w between u and v; in parallel adds another
  // task w with u -> w -> v. Seed with a source -> sink pair.
  const TaskId source = add_random_task(g, rng, params);
  if (task_count == 1) return g;
  const TaskId sink = add_random_task(g, rng, params);
  g.add_edge(source, sink);
  struct Edge {
    TaskId u, v;
  };
  std::vector<Edge> edges{{source, sink}};
  while (g.size() < task_count) {
    const std::size_t pick = rng.index(edges.size());
    const Edge e = edges[pick];
    const TaskId w = add_random_task(g, rng, params);
    g.add_edge(e.u, w);
    g.add_edge(w, e.v);
    if (rng.bernoulli(series_bias)) {
      // Series: replace (u,v) by (u,w) and (w,v).
      edges[pick] = Edge{e.u, w};
      edges.push_back(Edge{w, e.v});
    } else {
      // Parallel: keep (u,v) and add the new two-hop branch.
      edges.push_back(Edge{e.u, w});
      edges.push_back(Edge{w, e.v});
    }
  }
  return g;
}

TaskGraph random_fork_join(Rng& rng, std::size_t stages, std::size_t width,
                           const RandomTaskParams& params) {
  CB_CHECK(stages >= 1 && width >= 1, "fork-join needs stages, width >= 1");
  TaskGraph g;
  TaskId barrier = g.add_task(draw_work(rng, params.work), 1, "fork0");
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<TaskId> stage;
    stage.reserve(width);
    for (std::size_t w = 0; w < width; ++w) {
      const TaskId id = add_random_task(g, rng, params);
      g.add_edge(barrier, id);
      stage.push_back(id);
    }
    const TaskId join =
        g.add_task(draw_work(rng, params.work), 1,
                   "join" + std::to_string(s + 1));
    for (const TaskId id : stage) g.add_edge(id, join);
    barrier = join;
  }
  return g;
}

TaskGraph random_chains(Rng& rng, std::size_t chain_count,
                        std::size_t chain_length,
                        const RandomTaskParams& params) {
  CB_CHECK(chain_count >= 1 && chain_length >= 1,
           "chains need count, length >= 1");
  TaskGraph g;
  for (std::size_t c = 0; c < chain_count; ++c) {
    TaskId prev = kInvalidTask;
    for (std::size_t k = 0; k < chain_length; ++k) {
      const TaskId id = add_random_task(g, rng, params);
      if (prev != kInvalidTask) g.add_edge(prev, id);
      prev = id;
    }
  }
  return g;
}

TaskGraph random_out_tree(Rng& rng, std::size_t task_count,
                          std::size_t max_children,
                          const RandomTaskParams& params) {
  CB_CHECK(task_count >= 1 && max_children >= 1,
           "tree needs task_count, max_children >= 1");
  TaskGraph g;
  std::vector<TaskId> frontier{add_random_task(g, rng, params)};
  while (g.size() < task_count) {
    const std::size_t pick = rng.index(frontier.size());
    const TaskId parent = frontier[pick];
    const std::size_t children =
        std::min<std::size_t>(1 + rng.index(max_children),
                              task_count - g.size());
    for (std::size_t c = 0; c < children; ++c) {
      const TaskId id = add_random_task(g, rng, params);
      g.add_edge(parent, id);
      frontier.push_back(id);
    }
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    if (frontier.empty()) break;  // defensive; cannot happen with children>=1
  }
  return g;
}

TaskGraph random_independent(Rng& rng, std::size_t task_count,
                             const RandomTaskParams& params) {
  CB_CHECK(task_count >= 1, "need at least one task");
  TaskGraph g;
  for (std::size_t k = 0; k < task_count; ++k) add_random_task(g, rng, params);
  return g;
}

}  // namespace catbatch
