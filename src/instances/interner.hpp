// Task-name / metadata interner for streaming-scale instances.
//
// A 10M-task DAG must never hold 10M std::strings: at libstdc++'s 32-byte
// SSO footprint plus heap blocks for longer labels, names alone would
// dwarf the task arrays. Workload traces repeat a handful of labels
// ("stage-3", "reduce", ...) millions of times, so the interner stores
// each distinct spelling once in a chunked arena and hands out
// std::string_views into it. The arena is shared-ptr-owned, which is
// exactly the shape SoaGraph::name_storage wants: the views stay valid for
// as long as any graph (or the interner) keeps the handle alive.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace catbatch {

class NameInterner {
 public:
  /// Returns the canonical view for `s`, storing it on first sight. The
  /// empty string interns to the empty view without touching the arena.
  /// Views stay valid as long as the arena lives (see storage()).
  std::string_view intern(std::string_view s);

  /// Number of distinct non-empty strings interned.
  [[nodiscard]] std::size_t size() const noexcept { return set_.size(); }

  /// Total bytes of distinct string data (not arena capacity).
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Shared ownership handle for the arena, suitable for
  /// SoaGraph::name_storage: the views outlive the interner as long as
  /// someone holds this.
  [[nodiscard]] std::shared_ptr<const void> storage() const noexcept {
    return arena_;
  }

 private:
  // Chunked arena: each chunk's capacity is reserved once and never
  // exceeded, so appends never reallocate and handed-out views never dangle.
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
  struct Arena {
    std::vector<std::string> chunks;
  };

  std::shared_ptr<Arena> arena_ = std::make_shared<Arena>();
  std::unordered_set<std::string_view> set_;  // views into the arena
  std::size_t bytes_ = 0;
};

}  // namespace catbatch
