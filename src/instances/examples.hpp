// The paper's two worked examples:
//   * the introductory instance of Figure 1 (ASAP vs optimal, P repetitions
//     of A -> B with a decoy long task C), together with the optimal
//     schedule sketched in the figure's bottom-right;
//   * the 11-task example of Figure 3 (tasks A..K) whose attribute table,
//     category lengths, L-matrix and CatBatch schedule are reproduced by
//     Figures 3-6.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

/// The Figure 1 instance for a platform of `procs` processors. Repetition
/// k (1-based) has A_k (ε, 1 proc) -> B_k (ε, P procs); B_k releases A_{k+1}
/// and C_{k+1}; C_k (1, 1 proc) is a decoy successor of B_{k-1} (C_1 is a
/// root). Total 3P tasks.
struct IntroInstance {
  TaskGraph graph;
  int procs = 0;
  Time epsilon = 0.0;
  std::vector<TaskId> a_tasks;  // A_1..A_P
  std::vector<TaskId> b_tasks;  // B_1..B_P
  std::vector<TaskId> c_tasks;  // C_1..C_P
};

/// Builds the instance. `epsilon` must be an exact binary fraction for exact
/// criticalities; the default 2^-6 matches the paper's "small ε" regime.
[[nodiscard]] IntroInstance make_intro_instance(int procs,
                                                Time epsilon = 0x1.0p-6);

/// The optimal schedule of Figure 1 (bottom-right): the A/B chain runs
/// back-to-back in [0, 2Pε], then all C's in parallel. Makespan 1 + 2Pε.
[[nodiscard]] Schedule intro_optimal_schedule(const IntroInstance& instance);

/// Closed form of the above makespan.
[[nodiscard]] Time intro_optimal_makespan(int procs, Time epsilon);

/// Makespan any ASAP heuristic obtains on the instance (Figure 1 top-right):
/// P(1 + ε) + ε — each repetition serializes behind a running C.
[[nodiscard]] Time intro_asap_makespan(int procs, Time epsilon);

/// The Figure 3 example: 11 tasks A..K with the execution times, processor
/// requirements and dependencies that produce the paper's attribute table
/// (criticalities, longitudes, power levels and categories). Task ids are
/// 0..10 in order A..K; names are the single letters.
[[nodiscard]] TaskGraph make_paper_example();

/// Critical-path length of the Figure 3 example: 6.8.
[[nodiscard]] Time paper_example_critical_path();

}  // namespace catbatch
