#include "instances/stg.hpp"

#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace catbatch {

namespace {
/// %.17g round-trips every finite double exactly.
std::string stg_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}
}  // namespace

std::string to_stg(const TaskGraph& graph, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  graph.validate(procs);
  std::ostringstream os;
  os << "# catbatch STG-style instance: <id> <work> <procs> <npreds> "
        "<preds...>\n";
  os << graph.size() << ' ' << procs << '\n';
  // STG requires topological listing; our ids may not be topological, so
  // remap through a topological order.
  const auto topo = graph.topological_order();
  std::vector<TaskId> new_id(graph.size());
  for (std::size_t k = 0; k < topo.size(); ++k) {
    new_id[topo[k]] = static_cast<TaskId>(k);
  }
  for (std::size_t k = 0; k < topo.size(); ++k) {
    const TaskId original = topo[k];
    const Task& t = graph.task(original);
    os << k << ' ' << stg_number(t.work) << ' ' << t.procs << ' '
       << graph.predecessors(original).size();
    for (const TaskId pred : graph.predecessors(original)) {
      os << ' ' << new_id[pred];
    }
    os << '\n';
  }
  return os.str();
}

ParsedStg instance_from_stg(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  ParsedStg parsed;
  std::size_t expected = 0;
  bool header_seen = false;
  std::size_t next_id = 0;

  while (std::getline(in, line)) {
    // Strip comments and blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    if (!header_seen) {
      long long n = -1;
      int procs = 0;
      if (!(fields >> n >> procs)) continue;  // skip blanks before header
      CB_CHECK(n >= 0, "negative task count");
      CB_CHECK(procs >= 1, "platform must have at least one processor");
      expected = static_cast<std::size_t>(n);
      parsed.procs = procs;
      header_seen = true;
      continue;
    }
    long long id = -1;
    double work = 0.0;
    int procs = 0;
    long long npreds = -1;
    if (!(fields >> id >> work >> procs >> npreds)) continue;
    CB_CHECK(static_cast<std::size_t>(id) == next_id,
             "task ids must be ascending from 0");
    CB_CHECK(npreds >= 0, "negative predecessor count");
    const TaskId task = parsed.graph.add_task(work, procs);
    for (long long k = 0; k < npreds; ++k) {
      long long pred = -1;
      CB_CHECK(static_cast<bool>(fields >> pred),
               "missing predecessor id");
      CB_CHECK(pred >= 0 && static_cast<std::size_t>(pred) < next_id,
               "predecessor must reference an earlier task");
      parsed.graph.add_edge(static_cast<TaskId>(pred), task);
    }
    long long excess;
    CB_CHECK(!(fields >> excess), "trailing fields on task line");
    ++next_id;
  }
  CB_CHECK(header_seen, "missing STG header line");
  CB_CHECK(parsed.graph.size() == expected,
           "task count does not match the header");
  parsed.graph.validate(parsed.procs);
  return parsed;
}

}  // namespace catbatch
