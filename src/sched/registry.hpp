// The single name -> scheduler factory for the whole repo.
//
// Every algorithm the library implements — the paper's CatBatch and its
// relaxed/offline/contiguous variants, the list-scheduling family, EASY
// backfilling, upward-rank greedy, offline divide-and-conquer, and the
// Coffman shelf packers — is registered here under one canonical name (plus
// historical aliases, e.g. "relaxed" for "relaxed-catbatch"). Benches,
// examples, and tests construct schedulers exclusively through this API, so
// adding an algorithm to the registry makes it reachable from sched_cli,
// the sweep engine, and the comparison lineup in one step.
//
// Two capability tiers, mirroring the paper's information models:
//   * Online   — constructible with no instance knowledge (Section 3.1);
//                make_scheduler(name) suffices.
//   * Offline  — needs the full TaskGraph up front (rank, offline-catbatch,
//                divide-conquer, contiguous-catbatch, shelves);
//                make_scheduler(name, graph) builds an adapter that replays
//                the offline construction through the online engine, so
//                every algorithm is drivable by the same simulate() loop.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/graph.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

class MetricsRegistry;  // obs/metrics.hpp

enum class SchedulerKind {
  Online,   // no instance knowledge needed
  Offline,  // requires the full graph at construction
};

struct SchedulerEntry {
  std::string name;                  // canonical registry key
  std::vector<std::string> aliases;  // accepted alternative spellings
  std::string summary;               // one-liner for --list-algos
  SchedulerKind kind = SchedulerKind::Online;
  /// Only meaningful for shelf packers: the instance must have no
  /// precedence edges (independent rigid tasks).
  bool independent_only = false;
  /// Factory. `graph` is null for Online construction and non-null (and
  /// must outlive the scheduler) for Offline construction.
  std::function<std::unique_ptr<OnlineScheduler>(const TaskGraph* graph)>
      make;
};

/// All registered schedulers, in presentation order.
[[nodiscard]] const std::vector<SchedulerEntry>& scheduler_registry();

/// Entry for `name` (canonical or alias), or nullptr if unknown.
[[nodiscard]] const SchedulerEntry* find_scheduler(const std::string& name);

/// Canonical names, in registry order.
[[nodiscard]] std::vector<std::string> scheduler_names();

/// Constructs an Online scheduler by name. Returns nullptr for unknown
/// names and for Offline entries (which need a graph).
[[nodiscard]] std::unique_ptr<OnlineScheduler> make_scheduler(
    const std::string& name);

/// Constructs any registered scheduler; Offline entries receive `graph`,
/// which must outlive the returned scheduler and be the exact instance
/// later passed to simulate(). Returns nullptr for unknown names.
[[nodiscard]] std::unique_ptr<OnlineScheduler> make_scheduler(
    const std::string& name, const TaskGraph& graph);

/// Canonical names of the standard comparison lineup used by the benches:
/// CatBatch, RelaxedCatBatch, the online list family, EASY backfilling.
/// All entries are Online (sweeps construct them per run without a graph).
[[nodiscard]] std::vector<std::string> standard_lineup();

/// Wraps any scheduler with per-decision observability: every select()
/// call is wall-clock timed and recorded into `registry` under the
/// scheduler's own name — counter `sched.<name>.select_calls`, counter
/// `sched.<name>.picks`, histograms `sched.<name>.select_us` and
/// `sched.<name>.picks_per_call` (schemas in docs/OBSERVABILITY.md).
/// Metric registration happens here, once; the per-call updates are
/// allocation-free, so the wrapper is safe inside the engine hot loop.
/// `registry` must outlive the returned scheduler.
[[nodiscard]] std::unique_ptr<OnlineScheduler> instrument_scheduler(
    std::unique_ptr<OnlineScheduler> inner, MetricsRegistry& registry);

}  // namespace catbatch
