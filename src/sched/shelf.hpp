// Shelf algorithms for *independent* rigid tasks: Next-Fit Decreasing
// Height (NFDH, 3-approx) and First-Fit Decreasing Height (FFDH, 2.7-approx)
// of Coffman et al. [8], plus the greedy routine of Algorithm 2 run offline.
//
// Shelf packings assign contiguous processor ranges, so they double as strip
// packers (Remark 1 plugs NFDH into CatBatch for the strip-packing variant).
#pragma once

#include <span>
#include <vector>

#include "core/task.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

/// Placement of one task inside a shelf packing. Processors
/// [first_processor, first_processor + procs) are held during
/// [start, start + work).
struct ShelfPlacement {
  std::size_t task_index = 0;
  Time start = 0.0;
  int first_processor = 0;
};

struct ShelfPacking {
  std::vector<ShelfPlacement> placements;
  /// Start time of each shelf, ascending; shelf k spans
  /// [shelf_starts[k], shelf_starts[k] + shelf_heights[k]).
  std::vector<Time> shelf_starts;
  std::vector<Time> shelf_heights;
  Time total_height = 0.0;

  [[nodiscard]] std::size_t shelf_count() const {
    return shelf_heights.size();
  }
};

/// NFDH: sort by decreasing execution time; fill the current shelf left to
/// right; open a new shelf when the next task does not fit. All tasks must
/// satisfy 1 <= procs <= P.
[[nodiscard]] ShelfPacking pack_nfdh(std::span<const Task> tasks, int procs);

/// FFDH: like NFDH but each task goes to the *first* (lowest) shelf with
/// enough residual width.
[[nodiscard]] ShelfPacking pack_ffdh(std::span<const Task> tasks, int procs);

/// Converts a packing into a concrete Schedule (task ids = indices).
[[nodiscard]] Schedule packing_to_schedule(const ShelfPacking& packing,
                                           std::span<const Task> tasks);

/// Algorithm 2's greedy routine applied offline to an independent task set,
/// in arrival order. Satisfies Lemma 6: makespan <= 2·A/P + max_i t_i.
[[nodiscard]] Schedule greedy_independent(std::span<const Task> tasks,
                                          int procs);

}  // namespace catbatch
