// Shelf algorithms for the *one-by-one* online model of Section 2.3:
// independent rigid tasks are presented one at a time, and each must be
// placed irrevocably (start time + processors) before the next is revealed.
// Baker & Schwarz's Next-Fit / First-Fit shelf algorithms round each task
// height up to a geometric class r^k and keep shelves per class:
// Next-Fit only fills the most recent shelf of a class (7.46-competitive
// for r ≈ 1.61), First-Fit scans all shelves of the class
// (6.99-competitive).
#pragma once

#include <map>
#include <vector>

#include "core/task.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

enum class ShelfFit { NextFit, FirstFit };

class OnlineShelfPacker {
 public:
  /// `r` is the geometric shelf-height base (> 1).
  OnlineShelfPacker(int procs, double r = 2.0,
                    ShelfFit fit = ShelfFit::FirstFit);

  /// Irrevocably places `task`; returns its assigned id (sequential).
  /// Throws if the task is wider than the platform.
  TaskId place(const Task& task);

  [[nodiscard]] const Schedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] Time total_height() const noexcept { return top_; }
  [[nodiscard]] std::size_t shelf_count() const noexcept {
    return shelf_total_;
  }
  [[nodiscard]] int procs() const noexcept { return procs_; }

  /// Height class of a task: the smallest integer k with r^k >= height.
  [[nodiscard]] int height_class(Time height) const;

 private:
  struct Shelf {
    Time y;       // vertical position (start time)
    Time height;  // r^k
    int used;     // processors taken, left to right
  };

  int procs_;
  double r_;
  ShelfFit fit_;
  Time top_ = 0.0;
  std::size_t shelf_total_ = 0;
  TaskId next_id_ = 0;
  std::map<int, std::vector<Shelf>> shelves_by_class_;
  Schedule schedule_;
};

}  // namespace catbatch
