// Offline twin of CatBatch: given the complete instance up front, compute
// every criticality and category offline (Definitions 1-3) and run the same
// batch schedule. Lemma 1 makes the online recurrence exact, so the offline
// twin must produce the *identical* schedule — a strong end-to-end test of
// the online implementation, and the natural bridge to the offline
// divide-and-conquer algorithm of Augustine et al. [1].
#pragma once

#include "core/graph.hpp"
#include "sched/catbatch_scheduler.hpp"

namespace catbatch {

/// Builds a CatBatch scheduler whose categories are precomputed from the
/// full graph instead of derived online.
[[nodiscard]] CatBatchScheduler make_offline_catbatch(
    const TaskGraph& graph, BatchOrder order = BatchOrder::Arrival);

}  // namespace catbatch
