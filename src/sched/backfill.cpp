#include "sched/backfill.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

EasyBackfill::EasyBackfill()
    : EasyBackfill(std::make_unique<DeclaredWalltime>(), "easy-backfill") {}

EasyBackfill::EasyBackfill(std::unique_ptr<WalltimeEstimator> estimator,
                           std::string name)
    : estimator_(std::move(estimator)), name_(std::move(name)) {
  CB_CHECK(estimator_ != nullptr, "EasyBackfill needs a walltime estimator");
}

void EasyBackfill::reset() {
  queue_.clear();
  running_.clear();
  estimator_->reset();
}

void EasyBackfill::task_ready(const ReadyTask& task, Time) {
  queue_.push(task.id, task.work, task.procs);
}

void EasyBackfill::task_finished(TaskId id, Time now) {
  const auto it = running_.find(id);
  if (it != running_.end()) {
    estimator_->observe(it->second.declared_work, now - it->second.start);
    running_.erase(it);
  }
}

void EasyBackfill::task_killed(TaskId id, Time) {
  // A killed task stops holding processors, so its declared finish must
  // leave the reservation math; the resubmit reveal re-queues it FIFO.
  // Killed attempts feed the estimator nothing: their duration is the
  // fault's choice, not the task's.
  running_.erase(id);
}

void EasyBackfill::select(Time now, int available_procs,
                          std::vector<TaskId>& picks) {
  int avail = available_procs;

  const auto start = [&](std::size_t queue_index) {
    const BackfillJob& q = queue_.at(queue_index);
    picks.push_back(q.id);
    avail -= q.procs;
    running_.emplace(
        q.id, Running{now + estimator_->estimate(q.declared_work),
                      q.declared_work, now, q.procs});
    queue_.consume(queue_index);
  };

  // Start head jobs while they fit.
  std::size_t head_index = queue_.begin();
  while (head_index < queue_.end() &&
         queue_.at(head_index).procs <= avail) {
    start(head_index);
    head_index = queue_.begin();
  }
  if (head_index >= queue_.end()) {
    queue_.maybe_compact();
    return;
  }

  // Head is blocked: compute its reservation from the estimated finish
  // times of the running tasks (sorted ascending, accumulate releases).
  const BackfillJob head = queue_.at(head_index);
  by_finish_.clear();
  by_finish_.reserve(running_.size());
  for (const auto& [id, run] : running_) by_finish_.push_back(run);
  std::sort(by_finish_.begin(), by_finish_.end(),
            [](const Running& a, const Running& b) {
              return a.declared_finish < b.declared_finish;
            });
  Time reservation = now;
  int free_at_reservation = avail;
  std::size_t release = 0;
  while (release < by_finish_.size() && free_at_reservation < head.procs) {
    free_at_reservation += by_finish_[release].procs;
    reservation = by_finish_[release].declared_finish;
    ++release;
  }
  if (free_at_reservation < head.procs) {
    // Only possible under reduced effective capacity (docs/SCENARIOS.md):
    // even with every running task finished the head cannot fit, so no
    // reservation time exists. Hold the whole queue until capacity
    // returns — backfilling against an unknowable reservation could
    // starve the head. Fault-free runs always find a reservation
    // (avail + Σ running procs == P >= head.procs).
    queue_.maybe_compact();
    return;
  }
  // Every further running task whose estimated finish *ties* the
  // reservation instant also frees its processors at that moment; they
  // all count toward the spare pool, or EASY undercounts what is free at
  // the reservation and backfills less than it safely could.
  while (release < by_finish_.size() &&
         by_finish_[release].declared_finish == reservation) {
    free_at_reservation += by_finish_[release].procs;
    ++release;
  }
  int extra = free_at_reservation - head.procs;

  // Backfill pass over the rest of the queue: a job may jump ahead if it
  // fits now and either (a) its estimated completion precedes the
  // reservation, or (b) it needs no more than the processors left over at
  // the reservation. Once nothing is free the scan is pointless (every
  // job needs at least one processor), which keeps blocked decision
  // points from walking a deep queue for nothing.
  for (std::size_t k = head_index + 1; k < queue_.end() && avail > 0; ++k) {
    if (!queue_.is_live(k)) continue;
    const BackfillJob& q = queue_.at(k);
    const bool fits_now = q.procs <= avail;
    const bool ends_before_reservation =
        now + estimator_->estimate(q.declared_work) <= reservation;
    const bool spares_reservation = q.procs <= extra;
    if (fits_now && (ends_before_reservation || spares_reservation)) {
      if (spares_reservation && !ends_before_reservation) {
        extra -= q.procs;
      }
      start(k);
    }
  }
  queue_.maybe_compact();
}

}  // namespace catbatch
