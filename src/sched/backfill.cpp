#include "sched/backfill.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

void EasyBackfill::reset() {
  queue_.clear();
  running_.clear();
}

void EasyBackfill::task_ready(const ReadyTask& task, Time) {
  queue_.push_back(Queued{task.id, task.work, task.procs});
}

void EasyBackfill::task_finished(TaskId id, Time) { running_.erase(id); }

void EasyBackfill::task_killed(TaskId id, Time) {
  // A killed task stops holding processors, so its declared finish must
  // leave the reservation math; the resubmit reveal re-queues it FIFO.
  running_.erase(id);
}

void EasyBackfill::select(Time now, int available_procs,
                          std::vector<TaskId>& picks) {
  int avail = available_procs;

  const auto start = [&](std::size_t queue_index) {
    const Queued& q = queue_[queue_index];
    picks.push_back(q.id);
    avail -= q.procs;
    running_.emplace(q.id,
                     Running{now + q.declared_work, q.procs});
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(queue_index));
  };

  // Start head jobs while they fit.
  while (!queue_.empty() && queue_.front().procs <= avail) {
    start(0);
  }
  if (queue_.empty()) return;

  // Head is blocked: compute its reservation from the declared finish
  // times of the running tasks (sorted ascending, accumulate releases).
  const Queued head = queue_.front();
  std::vector<Running> by_finish;
  by_finish.reserve(running_.size());
  for (const auto& [id, run] : running_) by_finish.push_back(run);
  std::sort(by_finish.begin(), by_finish.end(),
            [](const Running& a, const Running& b) {
              return a.declared_finish < b.declared_finish;
            });
  Time reservation = now;
  int free_at_reservation = avail;
  int extra = 0;  // processors free at the reservation beyond the head's need
  for (const Running& run : by_finish) {
    if (free_at_reservation >= head.procs) break;
    free_at_reservation += run.procs;
    reservation = run.declared_finish;
  }
  if (free_at_reservation < head.procs) {
    // Only possible under reduced effective capacity (docs/SCENARIOS.md):
    // even with every running task finished the head cannot fit, so no
    // reservation time exists. Hold the whole queue until capacity
    // returns — backfilling against an unknowable reservation could
    // starve the head. Fault-free runs always find a reservation
    // (avail + Σ running procs == P >= head.procs).
    return;
  }
  extra = free_at_reservation - head.procs;

  // Backfill pass over the rest of the queue: a job may jump ahead if it
  // fits now and either (a) its declared completion precedes the
  // reservation, or (b) it needs no more than the processors left over at
  // the reservation.
  for (std::size_t k = 1; k < queue_.size();) {
    const Queued& q = queue_[k];
    const bool fits_now = q.procs <= avail;
    const bool ends_before_reservation =
        now + q.declared_work <= reservation;
    const bool spares_reservation = q.procs <= extra;
    if (fits_now && (ends_before_reservation || spares_reservation)) {
      if (spares_reservation && !ends_before_reservation) {
        extra -= q.procs;
      }
      start(k);
    } else {
      ++k;
    }
  }
}

}  // namespace catbatch
