// Conservative backfilling: per-queued-job reservations, not just the
// head's (Mu'alem & Feitelson's classic counterpart to EASY, and the
// second production baseline batsched ships as `conservative_bf`).
//
// Every decision point rebuilds a free-processor profile from the running
// tasks' estimated finishes and walks the FIFO queue in arrival order,
// giving each job the earliest reservation that fits the profile *after
// all earlier jobs' reservations were carved out of it*. A job starts now
// exactly when its reservation is `now` and it fits the actually free
// processors — so no start can ever delay the planned start of any job
// that arrived earlier, where EASY only protects the queue head. The
// trade: less backfilling, more predictability (bounded response times).
//
// Rebuilding from scratch keeps the scheduler stateless across decision
// points (reservations are plans, not commitments — exactly how the
// batsched implementation recomputes on every event). Per decision the
// walk costs O(D · B) for D queued jobs and B profile breakpoints, but it
// stops as soon as the actually-free processors are exhausted (no later
// job could start now, and plans are recomputed next time anyway), which
// keeps saturated trace replays affordable; queue maintenance itself is
// O(1) amortized per start (sched/backfill_queue.hpp).
//
// Durations are planned through the same pluggable WalltimeEstimator the
// EASY implementation uses (sched/walltime.hpp). Under reduced effective
// capacity a job may have no feasible reservation at all (wider than
// everything that can ever free up); the queue holds from that job on
// until capacity returns, mirroring EASY's hold-the-queue rule.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/backfill_queue.hpp"
#include "sched/walltime.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

class ConservativeBackfill final : public OnlineScheduler {
 public:
  /// Default: the "declared" estimator.
  ConservativeBackfill();
  ConservativeBackfill(std::unique_ptr<WalltimeEstimator> estimator,
                       std::string name);

  [[nodiscard]] std::string name() const override { return name_; }
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void task_finished(TaskId id, Time now) override;
  void task_killed(TaskId id, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

 private:
  struct Running {
    Time declared_finish;  // start + estimate(declared) at start time
    Time declared_work;
    Time start;
    int procs;
  };

  /// Earliest profile index whose window [times_[i], times_[i] + length)
  /// keeps at least `procs` free; profile_times_.size() when none exists
  /// (no feasible reservation — reduced capacity).
  [[nodiscard]] std::size_t find_reservation(int procs, Time length) const;

  /// Carves `procs` processors out of the profile over
  /// [times_[index], times_[index] + length).
  void reserve(std::size_t index, int procs, Time length);

  BackfillQueue queue_;
  std::unordered_map<TaskId, Running> running_;
  std::unique_ptr<WalltimeEstimator> estimator_;
  std::string name_;
  // Free-processor step profile, rebuilt per decision: free_[i] processors
  // are free in [times_[i], times_[i+1]) (the last entry extends forever).
  std::vector<Time> profile_times_;
  std::vector<int> profile_free_;
  std::vector<Running> by_finish_;  // reused sort buffer
};

}  // namespace catbatch
