#include "sched/shelf.hpp"

#include <algorithm>
#include <numeric>

#include "core/graph.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

std::vector<std::size_t> decreasing_height_order(std::span<const Task> tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].work > tasks[b].work;
                   });
  return order;
}

void check_widths(std::span<const Task> tasks, int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  for (const Task& t : tasks) {
    CB_CHECK(t.procs >= 1 && t.procs <= procs,
             "task width outside [1, P] cannot be shelf-packed");
    CB_CHECK(t.work > 0.0, "task with non-positive execution time");
  }
}

}  // namespace

ShelfPacking pack_nfdh(std::span<const Task> tasks, int procs) {
  check_widths(tasks, procs);
  ShelfPacking out;
  out.placements.reserve(tasks.size());
  int used_width = 0;
  for (const std::size_t idx : decreasing_height_order(tasks)) {
    const Task& t = tasks[idx];
    if (out.shelf_heights.empty() || used_width + t.procs > procs) {
      // Open a new shelf; its height is the first (tallest) task placed.
      out.shelf_starts.push_back(out.total_height);
      out.shelf_heights.push_back(t.work);
      out.total_height += t.work;
      used_width = 0;
    }
    out.placements.push_back(
        ShelfPlacement{idx, out.shelf_starts.back(), used_width});
    used_width += t.procs;
  }
  return out;
}

ShelfPacking pack_ffdh(std::span<const Task> tasks, int procs) {
  check_widths(tasks, procs);
  ShelfPacking out;
  out.placements.reserve(tasks.size());
  std::vector<int> used_width;  // per shelf
  for (const std::size_t idx : decreasing_height_order(tasks)) {
    const Task& t = tasks[idx];
    std::size_t shelf = used_width.size();
    for (std::size_t k = 0; k < used_width.size(); ++k) {
      if (used_width[k] + t.procs <= procs) {
        shelf = k;
        break;
      }
    }
    if (shelf == used_width.size()) {
      out.shelf_starts.push_back(out.total_height);
      out.shelf_heights.push_back(t.work);
      out.total_height += t.work;
      used_width.push_back(0);
    }
    out.placements.push_back(
        ShelfPlacement{idx, out.shelf_starts[shelf], used_width[shelf]});
    used_width[shelf] += t.procs;
  }
  return out;
}

Schedule packing_to_schedule(const ShelfPacking& packing,
                             std::span<const Task> tasks) {
  Schedule schedule;
  for (const ShelfPlacement& pl : packing.placements) {
    const Task& t = tasks[pl.task_index];
    std::vector<int> held(static_cast<std::size_t>(t.procs));
    std::iota(held.begin(), held.end(), pl.first_processor);
    schedule.add(static_cast<TaskId>(pl.task_index), pl.start,
                 pl.start + t.work, std::move(held));
  }
  return schedule;
}

Schedule greedy_independent(std::span<const Task> tasks, int procs) {
  check_widths(tasks, procs);
  TaskGraph graph;
  for (const Task& t : tasks) graph.add_task(t.work, t.procs, t.name);
  ListScheduler greedy(ListSchedulerOptions{ListPriority::Fifo, false});
  return simulate(graph, greedy, procs).schedule;
}

}  // namespace catbatch
