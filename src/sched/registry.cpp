#include "sched/registry.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "sched/backfill.hpp"
#include "sched/catbatch_contiguous.hpp"
#include "sched/conservative_backfill.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/divide_conquer.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/offline_catbatch.hpp"
#include "sched/rank_scheduler.hpp"
#include "sched/relaxed_catbatch.hpp"
#include "sched/shelf.hpp"
#include "sim/schedule.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

/// Drives a schedule produced by an offline construction through the online
/// engine: at every decision point it starts exactly the tasks whose
/// recorded start time has been reached. The platform width is only known
/// at simulation time, so the offline construction is deferred to the first
/// select() call (nothing has started yet, hence `available_procs` there is
/// the full platform).
class ReplayScheduler final : public OnlineScheduler {
 public:
  using Builder = std::function<Schedule(const TaskGraph&, int procs)>;

  ReplayScheduler(std::string name, const TaskGraph& graph, Builder builder)
      : name_(std::move(name)), graph_(&graph), builder_(std::move(builder)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  void reset() override {
    built_ = false;
    procs_ = 0;
    starts_.clear();
    next_ = 0;
    ready_.clear();
    restarts_.clear();
  }

  void task_ready(const ReadyTask& task, Time /*now*/) override {
    if (task.resubmit) {
      // The plan entry of a killed task was consumed when it first
      // started; the monotone `next_` cursor never revisits it. Restarted
      // attempts therefore run from a FIFO side queue instead
      // (docs/SCENARIOS.md), dispatched as soon as they fit.
      restarts_.push_back(Restart{task.id, task.procs});
      return;
    }
    if (ready_.size() <= task.id) ready_.resize(task.id + 1, 0);
    ready_[task.id] = 1;
  }

  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override {
    if (!built_) {
      procs_ = available_procs;
      build();
      built_ = true;
    }
    const Time eps = 1e-9 * std::max(1.0, now);
    int budget = available_procs;
    std::size_t i = next_;
    while (i < starts_.size() && starts_[i].start <= now + eps) {
      const Entry& e = starts_[i];
      if (!is_ready(e.id) || e.procs > budget) break;
      picks.push_back(e.id);
      budget -= e.procs;
      ++i;
    }
    next_ = i;
    // Killed-and-resubmitted tasks, FIFO, after the plan entries due now:
    // stop at the first that does not fit so the restart order is stable.
    std::size_t r = 0;
    while (r < restarts_.size() && restarts_[r].procs <= budget) {
      picks.push_back(restarts_[r].id);
      budget -= restarts_[r].procs;
      ++r;
    }
    if (r > 0) {
      restarts_.erase(restarts_.begin(),
                      restarts_.begin() + static_cast<std::ptrdiff_t>(r));
    }
    // Safety valve: the builders above produce start times that coincide
    // with completion events, so this never fires for them — but if a
    // replayed schedule ever placed a start strictly between events, the
    // earliest pending task is provably ready once the platform is fully
    // idle, and starting it keeps the simulation live (at the cost of an
    // earlier-than-recorded start).
    if (picks.empty() && budget == procs_ && next_ < starts_.size() &&
        is_ready(starts_[next_].id)) {
      picks.push_back(starts_[next_].id);
      ++next_;
    }
  }

 private:
  struct Entry {
    Time start;
    TaskId id;
    int procs;
  };

  [[nodiscard]] bool is_ready(TaskId id) const {
    return id < ready_.size() && ready_[id] != 0;
  }

  void build() {
    const Schedule schedule = builder_(*graph_, procs_);
    starts_.reserve(schedule.size());
    for (const ScheduledTask& st : schedule.entries()) {
      starts_.push_back(Entry{st.start, st.id, st.procs()});
    }
    std::sort(starts_.begin(), starts_.end(),
              [](const Entry& a, const Entry& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.id < b.id;
              });
  }

  struct Restart {
    TaskId id;
    int procs;
  };

  std::string name_;
  const TaskGraph* graph_;
  Builder builder_;
  bool built_ = false;
  int procs_ = 0;
  std::vector<Entry> starts_;
  std::size_t next_ = 0;
  std::vector<char> ready_;
  std::vector<Restart> restarts_;  // killed tasks awaiting their re-run
};

/// Decision-time metering around any scheduler: forwards every callback to
/// the wrapped instance and records select() wall-clock / pick counts into
/// a MetricsRegistry. All metric slots are registered at construction so
/// the per-call updates stay allocation-free (the engine's zero-alloc hot
/// loop runs through this wrapper unchanged).
class MeteredScheduler final : public OnlineScheduler {
 public:
  MeteredScheduler(std::unique_ptr<OnlineScheduler> inner,
                   MetricsRegistry& registry)
      : inner_(std::move(inner)), registry_(&registry) {
    const std::string prefix = "sched." + inner_->name() + ".";
    select_calls_ = registry_->counter(prefix + "select_calls");
    picks_total_ = registry_->counter(prefix + "picks");
    static constexpr double kSelectUs[] = {0.25, 0.5,  1.0,  2.0,   5.0,
                                           10.0, 25.0, 50.0, 100.0, 1000.0};
    static constexpr double kPicks[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
    select_us_ = registry_->histogram(prefix + "select_us", kSelectUs);
    picks_per_call_ =
        registry_->histogram(prefix + "picks_per_call", kPicks);
  }

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  void reset() override { inner_->reset(); }

  void task_ready(const ReadyTask& task, Time now) override {
    inner_->task_ready(task, now);
  }

  void task_finished(TaskId id, Time now) override {
    inner_->task_finished(id, now);
  }

  void task_killed(TaskId id, Time now) override {
    inner_->task_killed(id, now);
  }

  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override {
    const std::size_t before = picks.size();
    const auto t0 = std::chrono::steady_clock::now();
    inner_->select(now, available_procs, picks);
    const double wall_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    const std::size_t picked = picks.size() - before;
    registry_->add(select_calls_);
    registry_->add(picks_total_, picked);
    registry_->observe(select_us_, wall_us);
    registry_->observe(picks_per_call_, static_cast<double>(picked));
  }

 private:
  std::unique_ptr<OnlineScheduler> inner_;
  MetricsRegistry* registry_;
  MetricsRegistry::Id select_calls_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id picks_total_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id select_us_ = MetricsRegistry::kNoMetric;
  MetricsRegistry::Id picks_per_call_ = MetricsRegistry::kNoMetric;
};

std::unique_ptr<OnlineScheduler> make_replay(std::string name,
                                             const TaskGraph* graph,
                                             ReplayScheduler::Builder builder) {
  CB_CHECK(graph != nullptr, "offline scheduler needs the instance graph");
  return std::make_unique<ReplayScheduler>(std::move(name), *graph,
                                           std::move(builder));
}

std::vector<Task> tasks_of(const TaskGraph& graph) {
  std::vector<Task> tasks;
  tasks.reserve(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) tasks.push_back(graph.task(id));
  return tasks;
}

SchedulerEntry list_entry(std::string name, std::string alias,
                          std::string summary, ListPriority priority) {
  SchedulerEntry e;
  e.name = std::move(name);
  e.aliases = {std::move(alias)};
  e.summary = std::move(summary);
  e.kind = SchedulerKind::Online;
  e.make = [priority](const TaskGraph*) -> std::unique_ptr<OnlineScheduler> {
    ListSchedulerOptions options;
    options.priority = priority;
    return std::make_unique<ListScheduler>(options);
  };
  return e;
}

std::vector<SchedulerEntry> build_registry() {
  std::vector<SchedulerEntry> r;

  SchedulerEntry catbatch_entry;
  catbatch_entry.name = "catbatch";
  catbatch_entry.aliases = {"catbatch-arrival"};
  catbatch_entry.summary =
      "the paper's online algorithm: category batches, ratio log2(n)+3";
  catbatch_entry.make = [](const TaskGraph*) {
    return std::make_unique<CatBatchScheduler>();
  };
  r.push_back(std::move(catbatch_entry));

  SchedulerEntry relaxed;
  relaxed.name = "relaxed-catbatch";
  relaxed.aliases = {"relaxed"};
  relaxed.summary =
      "category priority without the batch barrier (Section 7 heuristic)";
  relaxed.make = [](const TaskGraph*) {
    return std::make_unique<RelaxedCatBatch>();
  };
  r.push_back(std::move(relaxed));

  r.push_back(list_entry("list-fifo", "fifo",
                         "greedy list scheduling in arrival order",
                         ListPriority::Fifo));
  r.push_back(list_entry("list-longest-first", "list-lpt",
                         "greedy list scheduling, longest task first",
                         ListPriority::LongestFirst));
  r.push_back(list_entry("list-shortest-first", "list-spt",
                         "greedy list scheduling, shortest task first",
                         ListPriority::ShortestFirst));
  r.push_back(list_entry("list-widest-first", "list-widest",
                         "greedy list scheduling, widest task first",
                         ListPriority::WidestFirst));
  r.push_back(list_entry("list-narrowest-first", "list-narrowest",
                         "greedy list scheduling, narrowest task first",
                         ListPriority::NarrowestFirst));
  r.push_back(list_entry("list-smallest-criticality", "list-crit",
                         "greedy list scheduling by online criticality s-inf",
                         ListPriority::SmallestCriticality));

  SchedulerEntry backfill;
  backfill.name = "easy-backfill";
  backfill.aliases = {"backfill"};
  backfill.summary = "EASY backfilling (production HPC queueing baseline)";
  backfill.make = [](const TaskGraph*) {
    return std::make_unique<EasyBackfill>();
  };
  r.push_back(std::move(backfill));

  SchedulerEntry backfill_padded;
  backfill_padded.name = "easy-backfill-padded";
  backfill_padded.aliases = {"backfill-padded"};
  backfill_padded.summary =
      "EASY backfilling planning with declared walltimes padded 1.5x";
  backfill_padded.make = [](const TaskGraph*) {
    return std::make_unique<EasyBackfill>(make_walltime_estimator("padded"),
                                          "easy-backfill-padded");
  };
  r.push_back(std::move(backfill_padded));

  SchedulerEntry backfill_adaptive;
  backfill_adaptive.name = "easy-backfill-adaptive";
  backfill_adaptive.aliases = {"backfill-adaptive"};
  backfill_adaptive.summary =
      "EASY backfilling with a running-average walltime corrector";
  backfill_adaptive.make = [](const TaskGraph*) {
    return std::make_unique<EasyBackfill>(
        make_walltime_estimator("adaptive"), "easy-backfill-adaptive");
  };
  r.push_back(std::move(backfill_adaptive));

  SchedulerEntry conservative;
  conservative.name = "conservative-backfill";
  conservative.aliases = {"conservative"};
  conservative.summary =
      "conservative backfilling: a reservation for every queued job";
  conservative.make = [](const TaskGraph*) {
    return std::make_unique<ConservativeBackfill>();
  };
  r.push_back(std::move(conservative));

  SchedulerEntry rank;
  rank.name = "rank";
  rank.aliases = {"rank-offline"};
  rank.summary = "upward-rank greedy (HEFT-style); offline knowledge";
  rank.kind = SchedulerKind::Offline;
  rank.make = [](const TaskGraph* g) -> std::unique_ptr<OnlineScheduler> {
    CB_CHECK(g != nullptr, "offline scheduler needs the instance graph");
    return std::make_unique<RankScheduler>(*g);
  };
  r.push_back(std::move(rank));

  SchedulerEntry offline_cb;
  offline_cb.name = "offline-catbatch";
  offline_cb.summary =
      "CatBatch with categories precomputed from the full graph (Lemma 1 twin)";
  offline_cb.kind = SchedulerKind::Offline;
  offline_cb.make =
      [](const TaskGraph* g) -> std::unique_ptr<OnlineScheduler> {
    CB_CHECK(g != nullptr, "offline scheduler needs the instance graph");
    return std::make_unique<CatBatchScheduler>(make_offline_catbatch(*g));
  };
  r.push_back(std::move(offline_cb));

  SchedulerEntry dc;
  dc.name = "divide-conquer";
  dc.aliases = {"dc"};
  dc.summary =
      "offline divide-and-conquer of Augustine et al., ratio log2(n+1)+2";
  dc.kind = SchedulerKind::Offline;
  dc.make = [](const TaskGraph* g) {
    return make_replay("divide-conquer", g,
                       [](const TaskGraph& graph, int procs) {
                         return divide_conquer_schedule(graph, procs).schedule;
                       });
  };
  r.push_back(std::move(dc));

  SchedulerEntry contiguous;
  contiguous.name = "contiguous-catbatch";
  contiguous.aliases = {"contiguous"};
  contiguous.summary =
      "CatBatch with contiguous processor ranges (shelf-packed batches)";
  contiguous.kind = SchedulerKind::Offline;
  contiguous.make = [](const TaskGraph* g) {
    return make_replay("contiguous-catbatch", g,
                       [](const TaskGraph& graph, int procs) {
                         return catbatch_contiguous_schedule(graph, procs)
                             .schedule;
                       });
  };
  r.push_back(std::move(contiguous));

  SchedulerEntry nfdh;
  nfdh.name = "shelf-nfdh";
  nfdh.aliases = {"nfdh"};
  nfdh.summary =
      "Next-Fit Decreasing Height shelves (independent tasks only)";
  nfdh.kind = SchedulerKind::Offline;
  nfdh.independent_only = true;
  nfdh.make = [](const TaskGraph* g) {
    return make_replay("shelf-nfdh", g,
                       [](const TaskGraph& graph, int procs) {
                         CB_CHECK(graph.edge_count() == 0,
                                  "shelf packers need independent tasks");
                         const std::vector<Task> tasks = tasks_of(graph);
                         return packing_to_schedule(pack_nfdh(tasks, procs),
                                                    tasks);
                       });
  };
  r.push_back(std::move(nfdh));

  SchedulerEntry ffdh;
  ffdh.name = "shelf-ffdh";
  ffdh.aliases = {"ffdh"};
  ffdh.summary =
      "First-Fit Decreasing Height shelves (independent tasks only)";
  ffdh.kind = SchedulerKind::Offline;
  ffdh.independent_only = true;
  ffdh.make = [](const TaskGraph* g) {
    return make_replay("shelf-ffdh", g,
                       [](const TaskGraph& graph, int procs) {
                         CB_CHECK(graph.edge_count() == 0,
                                  "shelf packers need independent tasks");
                         const std::vector<Task> tasks = tasks_of(graph);
                         return packing_to_schedule(pack_ffdh(tasks, procs),
                                                    tasks);
                       });
  };
  r.push_back(std::move(ffdh));

  return r;
}

}  // namespace

const std::vector<SchedulerEntry>& scheduler_registry() {
  static const std::vector<SchedulerEntry> registry = build_registry();
  return registry;
}

const SchedulerEntry* find_scheduler(const std::string& name) {
  for (const SchedulerEntry& entry : scheduler_registry()) {
    if (entry.name == name) return &entry;
    for (const std::string& alias : entry.aliases) {
      if (alias == name) return &entry;
    }
  }
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  std::vector<std::string> names;
  names.reserve(scheduler_registry().size());
  for (const SchedulerEntry& entry : scheduler_registry()) {
    names.push_back(entry.name);
  }
  return names;
}

std::unique_ptr<OnlineScheduler> make_scheduler(const std::string& name) {
  const SchedulerEntry* entry = find_scheduler(name);
  if (entry == nullptr || entry->kind != SchedulerKind::Online) return nullptr;
  return entry->make(nullptr);
}

std::unique_ptr<OnlineScheduler> make_scheduler(const std::string& name,
                                                const TaskGraph& graph) {
  const SchedulerEntry* entry = find_scheduler(name);
  if (entry == nullptr) return nullptr;
  return entry->make(&graph);
}

std::vector<std::string> standard_lineup() {
  return {"catbatch",          "relaxed-catbatch",
          "list-fifo",         "list-longest-first",
          "list-widest-first", "list-smallest-criticality",
          "easy-backfill"};
}

std::unique_ptr<OnlineScheduler> instrument_scheduler(
    std::unique_ptr<OnlineScheduler> inner, MetricsRegistry& registry) {
  CB_CHECK(inner != nullptr, "cannot instrument a null scheduler");
  return std::make_unique<MeteredScheduler>(std::move(inner), registry);
}

}  // namespace catbatch
