#include "sched/relaxed_catbatch.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

void RelaxedCatBatch::reset() {
  ready_.clear();
  arrivals_ = 0;
}

void RelaxedCatBatch::task_ready(const ReadyTask& task, Time) {
  // s∞ comes from the engine-maintained Lemma 1 recurrence (which uses the
  // *declared* work, exactly what the old scheduler-side table recorded).
  const Time s_inf = task.earliest_start;
  const Category cat = compute_category(Criticality{s_inf, s_inf + task.work});
  ready_.push_back(Entry{task.id, task.procs, cat.value(), arrivals_++});
}

void RelaxedCatBatch::select(Time, int available_procs,
                             std::vector<TaskId>& picks) {
  std::sort(ready_.begin(), ready_.end(), [](const Entry& a, const Entry& b) {
    if (a.category_value != b.category_value) {
      return a.category_value < b.category_value;
    }
    return a.arrival < b.arrival;
  });
  // Stop scanning once the free processors are exhausted — no later task
  // can fit, and the untouched tail keeps its order in place.
  int avail = available_procs;
  std::size_t keep = 0;
  std::size_t k = 0;
  for (; k < ready_.size() && avail > 0; ++k) {
    Entry& e = ready_[k];
    if (e.procs <= avail) {
      avail -= e.procs;
      picks.push_back(e.id);
    } else {
      ready_[keep++] = std::move(e);
    }
  }
  if (keep != k) {
    const auto tail =
        std::move(ready_.begin() + static_cast<std::ptrdiff_t>(k),
                  ready_.end(), ready_.begin() + static_cast<std::ptrdiff_t>(keep));
    ready_.erase(tail, ready_.end());
  }
}

}  // namespace catbatch
