#include "sched/relaxed_catbatch.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

void RelaxedCatBatch::reset() {
  ready_.clear();
  earliest_finish_.clear();
  arrivals_ = 0;
}

void RelaxedCatBatch::task_ready(const ReadyTask& task, Time) {
  Time s_inf = 0.0;
  for (const TaskId pred : task.predecessors) {
    s_inf = std::max(s_inf, earliest_finish_.at(pred));
  }
  earliest_finish_.record(task.id, s_inf + task.work);
  const Category cat = compute_category(Criticality{s_inf, s_inf + task.work});
  ready_.push_back(Entry{task.id, task.procs, cat.value(), arrivals_++});
}

void RelaxedCatBatch::select(Time, int available_procs,
                             std::vector<TaskId>& picks) {
  std::sort(ready_.begin(), ready_.end(), [](const Entry& a, const Entry& b) {
    if (a.category_value != b.category_value) {
      return a.category_value < b.category_value;
    }
    return a.arrival < b.arrival;
  });
  int avail = available_procs;
  std::size_t keep = 0;
  for (std::size_t k = 0; k < ready_.size(); ++k) {
    Entry& e = ready_[k];
    if (e.procs <= avail) {
      avail -= e.procs;
      picks.push_back(e.id);
    } else {
      ready_[keep++] = std::move(e);
    }
  }
  ready_.resize(keep);
}

}  // namespace catbatch
