// Greedy list scheduling for rigid task graphs (Graham [18], extended to
// rigid tasks by Li [25]) — the "ASAP" family of Figure 1. Whenever
// processors are free, the scheduler scans the ready list in priority order
// and starts every task that fits. It never idles the whole platform while
// a ready task fits, which makes it P-competitive and no better (Section 2.1)
// — the adversary benches demonstrate the lower bound.
#pragma once

#include <vector>

#include "core/criticality.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

/// Priority orders for the ready list. All are computable online from the
/// information revealed with each task.
enum class ListPriority {
  Fifo,              // arrival order (classic list scheduling)
  LongestFirst,      // decreasing t (LPT)
  ShortestFirst,     // increasing t (SPT)
  WidestFirst,       // decreasing p
  NarrowestFirst,    // increasing p
  SmallestCriticality,  // increasing s∞ (closest to the DAG root first)
};

[[nodiscard]] const char* to_string(ListPriority priority);

struct ListSchedulerOptions {
  ListPriority priority = ListPriority::Fifo;
  /// When true, the scan stops at the first ready task that does not fit
  /// (conservative FCFS, no backfilling). When false (default), the scan
  /// continues past blocked tasks, as in Algorithm 2's inner loop.
  bool strict_head = false;
};

class ListScheduler final : public OnlineScheduler {
 public:
  explicit ListScheduler(ListSchedulerOptions options = {});

  [[nodiscard]] std::string name() const override;
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void task_finished(TaskId id, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

 private:
  struct Entry {
    TaskId id;
    Time work;
    int procs;
    Time earliest_start;  // s∞, from ReadyTask (engine-maintained Lemma 1)
    std::uint64_t arrival;
  };

  /// True iff `a` should run before `b` under the configured priority.
  [[nodiscard]] bool before(const Entry& a, const Entry& b) const;

  ListSchedulerOptions options_;
  std::vector<Entry> ready_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace catbatch
