// Walltime estimators for the backfilling schedulers.
//
// Backfilling lives or dies on its walltime estimates: a reservation is
// only as good as the declared finish times it is computed from, and real
// users pad (or lowball) their requests wildly — the classic result on the
// Feitelson workload archive is that *inaccurate* estimates often help
// EASY by accident. The estimator is therefore a pluggable policy shared
// by EasyBackfill and ConservativeBackfill:
//
//   declared — trust the declared walltime verbatim (the default; with it
//              both backfill schedulers behave bit-identically to an
//              estimator-free implementation);
//   padded   — declared × a fixed factor, the "users always underestimate"
//              correction production sites apply;
//   adaptive — declared × the running mean of observed actual/declared
//              ratios, learned online from completion feedback (1.0 until
//              the first completion, so it starts out exactly `declared`).
//
// Estimators see only information the online model reveals: the declared
// walltime at reveal time and, on completion, the attempt's actual
// duration. Feedback flows through observe(); estimates must be
// deterministic functions of the feedback history.
#pragma once

#include <memory>
#include <string>

#include "core/task.hpp"

namespace catbatch {

class WalltimeEstimator {
 public:
  virtual ~WalltimeEstimator() = default;

  /// Policy name as spelled in the registry suffixes and CLI flags.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Forgets all feedback (called from the owning scheduler's reset()).
  virtual void reset() {}

  /// The walltime to plan with for a task declared to run `declared`.
  /// Must be positive whenever `declared` is.
  [[nodiscard]] virtual Time estimate(Time declared) const = 0;

  /// Completion feedback: a task declared as `declared` actually ran for
  /// `actual`. Default ignores it (stateless policies).
  virtual void observe(Time declared, Time actual) {
    (void)declared, (void)actual;
  }
};

/// Trusts the declared walltime verbatim: estimate(d) == d.
class DeclaredWalltime final : public WalltimeEstimator {
 public:
  [[nodiscard]] std::string name() const override { return "declared"; }
  [[nodiscard]] Time estimate(Time declared) const override {
    return declared;
  }
};

/// Declared × a fixed factor (>= 0, typically > 1).
class PaddedWalltime final : public WalltimeEstimator {
 public:
  explicit PaddedWalltime(double factor);
  [[nodiscard]] std::string name() const override { return "padded"; }
  [[nodiscard]] Time estimate(Time declared) const override {
    return declared * factor_;
  }
  [[nodiscard]] double factor() const noexcept { return factor_; }

 private:
  double factor_;
};

/// Declared × the running mean of observed actual/declared ratios. Before
/// any feedback the ratio is 1.0 (== DeclaredWalltime); completions with a
/// non-positive declared walltime are ignored (no ratio is defined).
class RunningAverageWalltime final : public WalltimeEstimator {
 public:
  [[nodiscard]] std::string name() const override { return "adaptive"; }
  void reset() override;
  [[nodiscard]] Time estimate(Time declared) const override;
  void observe(Time declared, Time actual) override;
  /// The current mean actual/declared ratio (1.0 before any feedback).
  [[nodiscard]] double ratio() const;

 private:
  double ratio_sum_ = 0.0;
  std::size_t observations_ = 0;
};

/// Factory over the policy names above: "declared", "padded" (factor 1.5)
/// and "adaptive". Returns nullptr for unknown names.
[[nodiscard]] std::unique_ptr<WalltimeEstimator> make_walltime_estimator(
    const std::string& name);

}  // namespace catbatch
