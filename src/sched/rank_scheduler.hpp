// Offline rank-based greedy scheduling (the HEFT family's core idea,
// specialized to identical processors): priority = *upward rank*, the
// longest path from a task to any sink including itself. Requires the full
// graph up front — it is the offline-knowledge mirror of the online
// SmallestCriticality list policy (which can only see the *downward* path)
// and quantifies in the benches what successor knowledge buys a greedy
// scheduler.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

class RankScheduler final : public OnlineScheduler {
 public:
  /// Precomputes upward ranks of `graph`; simulate() must then be called
  /// with exactly this instance.
  explicit RankScheduler(const TaskGraph& graph);

  [[nodiscard]] std::string name() const override { return "rank(offline)"; }
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

  /// Upward rank of a task (work + longest successor path).
  [[nodiscard]] Time rank(TaskId id) const;

 private:
  struct Entry {
    TaskId id;
    int procs;
    Time rank;
    std::uint64_t arrival;
  };

  std::vector<Time> ranks_;
  std::vector<Entry> ready_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace catbatch
