// EASY backfilling (Lifka/Skovira's aggressive backfilling), the de-facto
// production HPC queueing policy — included as a realistic practitioner
// baseline next to the paper's algorithms.
//
// The ready queue is FIFO. The head job starts as soon as it fits. When it
// does not fit, it receives a *reservation*: the earliest future time at
// which enough processors will be free assuming running tasks hold their
// estimated durations. Later jobs may start out of order ("backfill") only
// if doing so cannot push the reservation back — either they finish (by
// estimate) before the reserved time, or they only use processors the
// reservation does not need. All running tasks whose estimated finish
// equals the reservation instant release their processors *at* it, so the
// spare count includes every one of them, ties included.
//
// Durations are planned through a pluggable WalltimeEstimator
// (sched/walltime.hpp); the default trusts declared times verbatim, so
// under the uncertainty extension reservations can be wrong — exactly the
// real-world failure mode EASY is known for. The engine still keeps the
// schedule feasible (reservations are advisory, starts are validated
// against actual free processors).
//
// Queue maintenance is O(1) amortized per start (sched/backfill_queue.hpp)
// so trace-scale replays never pay a quadratic drain.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/backfill_queue.hpp"
#include "sched/walltime.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

class EasyBackfill final : public OnlineScheduler {
 public:
  /// Default: the "declared" estimator — bit-identical to classic EASY on
  /// exact declared times.
  EasyBackfill();
  /// Registry variants inject the estimator and the name they registered
  /// under (e.g. "easy-backfill-padded").
  EasyBackfill(std::unique_ptr<WalltimeEstimator> estimator,
               std::string name);

  [[nodiscard]] std::string name() const override { return name_; }
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void task_finished(TaskId id, Time now) override;
  void task_killed(TaskId id, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

 private:
  struct Running {
    Time declared_finish;  // start + estimate(declared) at start time
    Time declared_work;
    Time start;
    int procs;
  };

  BackfillQueue queue_;
  std::unordered_map<TaskId, Running> running_;
  std::unique_ptr<WalltimeEstimator> estimator_;
  std::string name_;
  std::vector<Running> by_finish_;  // reused sort buffer
};

}  // namespace catbatch
