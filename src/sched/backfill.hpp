// EASY backfilling (Lifka/Skovira's aggressive backfilling), the de-facto
// production HPC queueing policy — included as a realistic practitioner
// baseline next to the paper's algorithms.
//
// The ready queue is FIFO. The head job starts as soon as it fits. When it
// does not fit, it receives a *reservation*: the earliest future time at
// which enough processors will be free assuming running tasks hold their
// declared durations. Later jobs may start out of order ("backfill") only
// if doing so cannot push the reservation back — either they finish (by
// declaration) before the reserved time, or they only use processors the
// reservation does not need.
//
// Uses declared execution times, so under the uncertainty extension its
// reservations can be wrong — exactly the real-world failure mode EASY is
// known for; the engine still keeps the schedule feasible (reservations are
// advisory, starts are validated against actual free processors).
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/scheduler.hpp"

namespace catbatch {

class EasyBackfill final : public OnlineScheduler {
 public:
  EasyBackfill() = default;

  [[nodiscard]] std::string name() const override { return "easy-backfill"; }
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void task_finished(TaskId id, Time now) override;
  void task_killed(TaskId id, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

 private:
  struct Queued {
    TaskId id;
    Time declared_work;
    int procs;
  };

  struct Running {
    Time declared_finish;
    int procs;
  };

  std::vector<Queued> queue_;  // FIFO order
  std::unordered_map<TaskId, Running> running_;
};

}  // namespace catbatch
