#include "sched/catbatch_contiguous.hpp"

#include <map>
#include <vector>

#include "core/category.hpp"
#include "core/criticality.hpp"
#include "sched/shelf.hpp"
#include "support/check.hpp"

namespace catbatch {

ContiguousCatBatchResult catbatch_contiguous_schedule(const TaskGraph& graph,
                                                      int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  graph.validate(procs);
  ContiguousCatBatchResult out;
  if (graph.empty()) return out;

  const auto crit = compute_criticalities(graph);
  std::map<Time, std::vector<TaskId>> batches;  // ζ -> members
  for (TaskId id = 0; id < graph.size(); ++id) {
    batches[compute_category(crit[id]).value()].push_back(id);
  }

  Time base = 0.0;
  for (const auto& entry : batches) {
    const std::vector<TaskId>& ids = entry.second;
    std::vector<Task> tasks;
    tasks.reserve(ids.size());
    for (const TaskId id : ids) tasks.push_back(graph.task(id));
    const ShelfPacking packing = pack_nfdh(tasks, procs);
    for (const ShelfPlacement& pl : packing.placements) {
      const Task& t = tasks[pl.task_index];
      std::vector<int> held(static_cast<std::size_t>(t.procs));
      for (int k = 0; k < t.procs; ++k) held[static_cast<std::size_t>(k)] =
          pl.first_processor + k;
      out.schedule.add(ids[pl.task_index], base + pl.start,
                       base + pl.start + t.work, std::move(held));
    }
    base += packing.total_height;
    ++out.batch_count;
  }
  // The last shelf's tasks may finish before the shelf's nominal height.
  out.makespan = out.schedule.makespan();
  return out;
}

}  // namespace catbatch
