#include "sched/divide_conquer.hpp"

#include <algorithm>
#include <vector>

#include "core/criticality.hpp"
#include "sched/shelf.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

class DivideConquer {
 public:
  DivideConquer(const TaskGraph& graph, int procs)
      : graph_(graph), procs_(procs), crit_(compute_criticalities(graph)) {}

  DivideConquerResult run() {
    std::vector<TaskId> all(graph_.size());
    for (TaskId id = 0; id < graph_.size(); ++id) all[id] = id;
    const Time horizon = critical_path_length(crit_);
    recurse(std::move(all), 0.0, horizon, 1);
    return std::move(result_);
  }

 private:
  /// Schedules `tasks` (whose criticality intervals lie within [lo, hi])
  /// after everything already emitted; appends to result_.schedule.
  void recurse(std::vector<TaskId> tasks, Time lo, Time hi,
               std::size_t depth) {
    if (tasks.empty()) return;
    result_.max_depth = std::max(result_.max_depth, depth);
    CB_CHECK(depth < 200, "divide-and-conquer recursion failed to converge");

    const Time mid = lo + (hi - lo) / 2.0;
    std::vector<TaskId> left, straddle, right;
    for (const TaskId id : tasks) {
      if (crit_[id].earliest_finish <= mid) {
        left.push_back(id);
      } else if (crit_[id].earliest_start >= mid) {
        right.push_back(id);
      } else {
        straddle.push_back(id);
      }
    }
    // Guaranteed progress: a task straddles mid only if it fits neither
    // half, and every task's interval has positive length, so left/right
    // shrink strictly. If *all* tasks straddle, the batch below clears them.
    recurse(std::move(left), lo, mid, depth + 1);
    schedule_batch(straddle);
    recurse(std::move(right), mid, hi, depth + 1);
  }

  /// Greedily schedules an independent set (Algorithm 2 offline) starting
  /// at the current tail of the schedule.
  void schedule_batch(const std::vector<TaskId>& batch) {
    if (batch.empty()) return;
    ++result_.batch_count;
    const Time base = result_.schedule.makespan();
    std::vector<Task> tasks;
    tasks.reserve(batch.size());
    for (const TaskId id : batch) tasks.push_back(graph_.task(id));
    const Schedule sub = greedy_independent(tasks, procs_);
    for (const ScheduledTask& e : sub.entries()) {
      result_.schedule.add(batch[e.id], base + e.start, base + e.finish,
                           e.processors);
    }
  }

  const TaskGraph& graph_;
  int procs_;
  std::vector<Criticality> crit_;
  DivideConquerResult result_;
};

}  // namespace

DivideConquerResult divide_conquer_schedule(const TaskGraph& graph,
                                            int procs) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  graph.validate(procs);
  if (graph.empty()) return {};
  DivideConquer dc(graph, procs);
  return dc.run();
}

}  // namespace catbatch
