// Flat f∞ record for online category computation (Lemma 1).
//
// Schedulers keep the earliest-finish time f∞ of every revealed task and
// look predecessors up on each reveal. TaskIds are dense and ascending by
// construction (SourceTask contract), so a vector keyed by id beats a hash
// map on the hot path: O(1) lookups with no hashing, no per-node
// allocation, and amortized-doubling growth. The sentinel is safe because
// every valid f∞ is positive (f∞ = s∞ + work with work > 0).
#pragma once

#include <vector>

#include "core/task.hpp"
#include "support/check.hpp"

namespace catbatch {

class FinishTimeTable {
 public:
  void clear() { finish_.clear(); }

  /// Capacity hint (engine instance_hint pass-through): pre-sizes the
  /// backing vector so record() never reallocates during the run.
  void reserve(std::size_t task_count) { finish_.reserve(task_count); }

  /// Records f∞ for `id`. Re-recording overwrites (the engine reveals each
  /// task once, so this never happens in practice).
  void record(TaskId id, Time finish) {
    if (finish_.size() <= id) {
      std::size_t grow = finish_.empty() ? kMinSize : finish_.size();
      while (grow <= id) grow *= 2;
      finish_.resize(grow, kUnset);
    }
    finish_[id] = finish;
  }

  [[nodiscard]] bool contains(TaskId id) const {
    return id < finish_.size() && finish_[id] != kUnset;
  }

  /// f∞ of `id`; throws if never recorded (a predecessor the scheduler has
  /// not seen would make the online recurrence unsound).
  [[nodiscard]] Time at(TaskId id) const {
    CB_CHECK(contains(id), "predecessor revealed after its successor");
    return finish_[id];
  }

  /// f∞ of `id`, or `fallback` if never recorded.
  [[nodiscard]] Time at_or(TaskId id, Time fallback) const {
    return contains(id) ? finish_[id] : fallback;
  }

 private:
  static constexpr Time kUnset = -1.0;
  static constexpr std::size_t kMinSize = 64;
  std::vector<Time> finish_;
};

}  // namespace catbatch
