// The FIFO ready queue shared by the backfilling schedulers.
//
// Both EASY and conservative backfilling keep an arrival-ordered queue and
// remove jobs from two places: the head (jobs started in FIFO order) and
// the middle (jobs backfilled past a blocked predecessor). The original
// implementation erased from a std::vector, which is O(queue) per start —
// an O(n²) full drain that a 100k-job trace replay cannot afford (the same
// lesson batsched's `_fast` variants encode). This queue keeps the vector
// but removes lazily:
//
//   - head removals advance a cursor (`head_`);
//   - middle removals tombstone the entry (id = kInvalidTask);
//   - when at least half the vector is dead, one O(live) compaction pass
//     reclaims it.
//
// Every operation preserves arrival order exactly, so schedulers built on
// it make bit-identical decisions to the erase-based original; a full
// drain of an n-job queue is O(n) amortized plus whatever the scheduler's
// own scan costs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/task.hpp"

namespace catbatch {

struct BackfillJob {
  TaskId id = kInvalidTask;
  Time declared_work = 0.0;
  int procs = 1;
};

class BackfillQueue {
 public:
  void clear() {
    entries_.clear();
    head_ = 0;
    dead_ = 0;
  }

  void push(TaskId id, Time declared_work, int procs) {
    entries_.push_back(BackfillJob{id, declared_work, procs});
  }

  [[nodiscard]] bool empty() const noexcept {
    return live_count() == 0;
  }

  [[nodiscard]] std::size_t live_count() const noexcept {
    return entries_.size() - head_ - dead_;
  }

  /// Index of the first live entry (== end() when the queue is empty).
  /// Skipping leading tombstones here keeps head removal O(1) amortized.
  [[nodiscard]] std::size_t begin() {
    while (head_ < entries_.size() && entries_[head_].id == kInvalidTask) {
      ++head_;
      --dead_;
    }
    return head_;
  }

  [[nodiscard]] std::size_t end() const noexcept { return entries_.size(); }

  [[nodiscard]] const BackfillJob& at(std::size_t index) const {
    return entries_[index];
  }

  [[nodiscard]] bool is_live(std::size_t index) const {
    return entries_[index].id != kInvalidTask;
  }

  /// Removes the entry at `index` (the scheduler just started it). The
  /// head is consumed by cursor advance, anything later by tombstone.
  void consume(std::size_t index) {
    if (index == head_) {
      ++head_;
    } else {
      entries_[index].id = kInvalidTask;
      ++dead_;
    }
  }

  /// Reclaims dead space once it dominates. Call between select() passes
  /// only — indices obtained before compaction are invalidated by it.
  void maybe_compact() {
    const std::size_t dead_total = head_ + dead_;
    if (dead_total < 32 || dead_total * 2 < entries_.size()) return;
    std::size_t out = 0;
    for (std::size_t k = head_; k < entries_.size(); ++k) {
      if (entries_[k].id == kInvalidTask) continue;
      entries_[out++] = entries_[k];
    }
    entries_.resize(out);
    head_ = 0;
    dead_ = 0;
  }

 private:
  std::vector<BackfillJob> entries_;  // arrival order
  std::size_t head_ = 0;              // entries before this are consumed
  std::size_t dead_ = 0;              // tombstones at or after head_
};

}  // namespace catbatch
