#include "sched/conservative_backfill.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace catbatch {

ConservativeBackfill::ConservativeBackfill()
    : ConservativeBackfill(std::make_unique<DeclaredWalltime>(),
                           "conservative-backfill") {}

ConservativeBackfill::ConservativeBackfill(
    std::unique_ptr<WalltimeEstimator> estimator, std::string name)
    : estimator_(std::move(estimator)), name_(std::move(name)) {
  CB_CHECK(estimator_ != nullptr,
           "ConservativeBackfill needs a walltime estimator");
}

void ConservativeBackfill::reset() {
  queue_.clear();
  running_.clear();
  estimator_->reset();
}

void ConservativeBackfill::task_ready(const ReadyTask& task, Time) {
  queue_.push(task.id, task.work, task.procs);
}

void ConservativeBackfill::task_finished(TaskId id, Time now) {
  const auto it = running_.find(id);
  if (it != running_.end()) {
    estimator_->observe(it->second.declared_work, now - it->second.start);
    running_.erase(it);
  }
}

void ConservativeBackfill::task_killed(TaskId id, Time) {
  // Same rule as EASY: the killed attempt's duration is the fault's
  // choice, not the task's, so it never feeds the estimator.
  running_.erase(id);
}

std::size_t ConservativeBackfill::find_reservation(int procs,
                                                   Time length) const {
  const std::size_t n = profile_times_.size();
  std::size_t i = 0;
  while (i < n) {
    if (profile_free_[i] < procs) {
      ++i;
      continue;
    }
    // Candidate start at breakpoint i; the whole window must stay free.
    const Time end = profile_times_[i] + length;
    std::size_t j = i + 1;
    bool fits = true;
    while (j < n && profile_times_[j] < end) {
      if (profile_free_[j] < procs) {
        fits = false;
        break;
      }
      ++j;
    }
    if (fits) return i;
    i = j;  // restart from the breakpoint that broke the window
  }
  return n;
}

void ConservativeBackfill::reserve(std::size_t index, int procs,
                                   Time length) {
  const Time end = profile_times_[index] + length;
  // Find the breakpoint in effect at `end` and split it if needed, so the
  // free counts after the window are untouched.
  std::size_t stop = index + 1;
  while (stop < profile_times_.size() && profile_times_[stop] < end) ++stop;
  if (stop == profile_times_.size() || profile_times_[stop] != end) {
    const int free_after = profile_free_[stop - 1];
    const auto offset = static_cast<std::ptrdiff_t>(stop);
    profile_times_.insert(profile_times_.begin() + offset, end);
    profile_free_.insert(profile_free_.begin() + offset, free_after);
  }
  for (std::size_t k = index; k < stop; ++k) profile_free_[k] -= procs;
}

void ConservativeBackfill::select(Time now, int available_procs,
                                  std::vector<TaskId>& picks) {
  int avail = available_procs;
  const std::size_t head_index = queue_.begin();
  // Reservations are recomputed from scratch next decision, so when
  // nothing can start now there is nothing to decide.
  if (head_index >= queue_.end() || avail <= 0) {
    queue_.maybe_compact();
    return;
  }

  // Build the free-processor profile from running tasks' estimated
  // releases. Overdue finishes (estimate already passed) clamp to `now`:
  // those processors are *planned* free even though the task still holds
  // them, which can only delay reservations, never produce an infeasible
  // start (starting is additionally gated on the actually free count).
  by_finish_.clear();
  by_finish_.reserve(running_.size());
  for (const auto& [id, run] : running_) by_finish_.push_back(run);
  std::sort(by_finish_.begin(), by_finish_.end(),
            [](const Running& a, const Running& b) {
              return a.declared_finish < b.declared_finish;
            });
  profile_times_.clear();
  profile_free_.clear();
  profile_times_.push_back(now);
  profile_free_.push_back(avail);
  int cumulative = avail;
  for (const Running& run : by_finish_) {
    const Time release = std::max(run.declared_finish, now);
    cumulative += run.procs;
    if (release == profile_times_.back()) {
      profile_free_.back() = cumulative;
    } else {
      profile_times_.push_back(release);
      profile_free_.push_back(cumulative);
    }
  }

  // FIFO walk: every queued job gets the earliest reservation the profile
  // allows after all earlier jobs' reservations were carved out. Starting
  // requires reservation == now *and* fitting the actually free
  // processors. Once those are exhausted no later job can start and the
  // plans are moot (recomputed next decision) — stop scanning.
  for (std::size_t k = head_index; k < queue_.end() && avail > 0; ++k) {
    if (!queue_.is_live(k)) continue;
    const BackfillJob q = queue_.at(k);
    const Time length = estimator_->estimate(q.declared_work);
    const std::size_t slot = find_reservation(q.procs, length);
    if (slot == profile_times_.size()) {
      // No feasible reservation: the job is wider than everything that
      // can ever free up (reduced effective capacity, docs/SCENARIOS.md).
      // Hold from here on — later jobs must not leapfrog an earlier job
      // that cannot even be planned.
      break;
    }
    if (slot == 0 && q.procs <= avail) {
      picks.push_back(q.id);
      avail -= q.procs;
      running_.emplace(q.id, Running{now + length, q.declared_work, now,
                                     q.procs});
      queue_.consume(k);
    }
    reserve(slot, q.procs, length);
  }
  queue_.maybe_compact();
}

}  // namespace catbatch
