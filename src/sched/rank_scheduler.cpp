#include "sched/rank_scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

RankScheduler::RankScheduler(const TaskGraph& graph) {
  ranks_.resize(graph.size());
  const auto topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId id = *it;
    Time best = 0.0;
    for (const TaskId succ : graph.successors(id)) {
      best = std::max(best, ranks_[succ]);
    }
    ranks_[id] = graph.task(id).work + best;
  }
}

Time RankScheduler::rank(TaskId id) const {
  CB_CHECK(id < ranks_.size(), "task id out of range");
  return ranks_[id];
}

void RankScheduler::reset() {
  ready_.clear();
  arrivals_ = 0;
}

void RankScheduler::task_ready(const ReadyTask& task, Time) {
  CB_CHECK(task.id < ranks_.size(),
           "rank table does not cover this task (wrong instance?)");
  ready_.push_back(Entry{task.id, task.procs, ranks_[task.id], arrivals_++});
}

void RankScheduler::select(Time, int available_procs,
                           std::vector<TaskId>& picks) {
  std::sort(ready_.begin(), ready_.end(), [](const Entry& a, const Entry& b) {
    if (a.rank != b.rank) return a.rank > b.rank;  // critical tasks first
    return a.arrival < b.arrival;
  });
  int avail = available_procs;
  std::size_t keep = 0;
  for (std::size_t k = 0; k < ready_.size(); ++k) {
    Entry& e = ready_[k];
    if (e.procs <= avail) {
      avail -= e.procs;
      picks.push_back(e.id);
    } else {
      ready_[keep++] = std::move(e);
    }
  }
  ready_.resize(keep);
}

}  // namespace catbatch
