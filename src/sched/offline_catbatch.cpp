#include "sched/offline_catbatch.hpp"

namespace catbatch {

CatBatchScheduler make_offline_catbatch(const TaskGraph& graph,
                                        BatchOrder order) {
  CatBatchOptions options;
  options.batch_order = order;
  options.fixed_categories = compute_categories(graph);
  options.name_override = "offline-catbatch";
  return CatBatchScheduler(std::move(options));
}

}  // namespace catbatch
