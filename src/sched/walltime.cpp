#include "sched/walltime.hpp"

#include "support/check.hpp"

namespace catbatch {

PaddedWalltime::PaddedWalltime(double factor) : factor_(factor) {
  CB_CHECK(factor > 0.0, "walltime padding factor must be positive");
}

void RunningAverageWalltime::reset() {
  ratio_sum_ = 0.0;
  observations_ = 0;
}

double RunningAverageWalltime::ratio() const {
  if (observations_ == 0) return 1.0;
  return ratio_sum_ / static_cast<double>(observations_);
}

Time RunningAverageWalltime::estimate(Time declared) const {
  return declared * ratio();
}

void RunningAverageWalltime::observe(Time declared, Time actual) {
  if (declared <= 0.0) return;  // no ratio is defined
  ratio_sum_ += static_cast<double>(actual) / static_cast<double>(declared);
  ++observations_;
}

std::unique_ptr<WalltimeEstimator> make_walltime_estimator(
    const std::string& name) {
  if (name == "declared") return std::make_unique<DeclaredWalltime>();
  if (name == "padded") return std::make_unique<PaddedWalltime>(1.5);
  if (name == "adaptive") return std::make_unique<RunningAverageWalltime>();
  return nullptr;
}

}  // namespace catbatch
