#include "sched/list_scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

const char* to_string(ListPriority priority) {
  switch (priority) {
    case ListPriority::Fifo:
      return "fifo";
    case ListPriority::LongestFirst:
      return "longest-first";
    case ListPriority::ShortestFirst:
      return "shortest-first";
    case ListPriority::WidestFirst:
      return "widest-first";
    case ListPriority::NarrowestFirst:
      return "narrowest-first";
    case ListPriority::SmallestCriticality:
      return "smallest-criticality";
  }
  return "unknown";
}

ListScheduler::ListScheduler(ListSchedulerOptions options)
    : options_(options) {}

std::string ListScheduler::name() const {
  std::string n = "list(";
  n += to_string(options_.priority);
  if (options_.strict_head) n += ",strict";
  n += ")";
  return n;
}

void ListScheduler::reset() {
  ready_.clear();
  earliest_finish_.clear();
  arrivals_ = 0;
}

void ListScheduler::task_ready(const ReadyTask& task, Time) {
  // Maintain s∞ online (Lemma 1) so the SmallestCriticality priority has
  // the same information CatBatch uses.
  Time s_inf = 0.0;
  for (const TaskId pred : task.predecessors) {
    s_inf = std::max(s_inf, earliest_finish_.at(pred));
  }
  earliest_finish_.record(task.id, s_inf + task.work);
  ready_.push_back(Entry{task.id, task.work, task.procs, s_inf, arrivals_++});
}

void ListScheduler::task_finished(TaskId, Time) {}

bool ListScheduler::before(const Entry& a, const Entry& b) const {
  switch (options_.priority) {
    case ListPriority::Fifo:
      break;
    case ListPriority::LongestFirst:
      if (a.work != b.work) return a.work > b.work;
      break;
    case ListPriority::ShortestFirst:
      if (a.work != b.work) return a.work < b.work;
      break;
    case ListPriority::WidestFirst:
      if (a.procs != b.procs) return a.procs > b.procs;
      break;
    case ListPriority::NarrowestFirst:
      if (a.procs != b.procs) return a.procs < b.procs;
      break;
    case ListPriority::SmallestCriticality:
      if (a.earliest_start != b.earliest_start) {
        return a.earliest_start < b.earliest_start;
      }
      break;
  }
  return a.arrival < b.arrival;  // stable tie-break: arrival order
}

void ListScheduler::select(Time, int available_procs,
                           std::vector<TaskId>& picks) {
  // Fifo needs no sort: task_ready appends in arrival order and the
  // compaction below preserves relative order, so ready_ stays sorted.
  if (options_.priority != ListPriority::Fifo) {
    std::sort(ready_.begin(), ready_.end(),
              [this](const Entry& a, const Entry& b) { return before(a, b); });
  }
  int avail = available_procs;
  std::size_t keep = 0;
  bool blocked = false;
  for (std::size_t k = 0; k < ready_.size(); ++k) {
    Entry& e = ready_[k];
    const bool fits = e.procs <= avail && !(options_.strict_head && blocked);
    if (fits) {
      picks.push_back(e.id);
      avail -= e.procs;
    } else {
      blocked = true;
      ready_[keep++] = std::move(e);
    }
  }
  ready_.resize(keep);
}

}  // namespace catbatch
