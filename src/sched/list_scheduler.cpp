#include "sched/list_scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

const char* to_string(ListPriority priority) {
  switch (priority) {
    case ListPriority::Fifo:
      return "fifo";
    case ListPriority::LongestFirst:
      return "longest-first";
    case ListPriority::ShortestFirst:
      return "shortest-first";
    case ListPriority::WidestFirst:
      return "widest-first";
    case ListPriority::NarrowestFirst:
      return "narrowest-first";
    case ListPriority::SmallestCriticality:
      return "smallest-criticality";
  }
  return "unknown";
}

ListScheduler::ListScheduler(ListSchedulerOptions options)
    : options_(options) {}

std::string ListScheduler::name() const {
  std::string n = "list(";
  n += to_string(options_.priority);
  if (options_.strict_head) n += ",strict";
  n += ")";
  return n;
}

void ListScheduler::reset() {
  ready_.clear();
  arrivals_ = 0;
}

void ListScheduler::task_ready(const ReadyTask& task, Time) {
  // s∞ (Lemma 1) arrives precomputed from the engine, so the
  // SmallestCriticality priority has the same information CatBatch uses
  // without a scheduler-side finish-time table.
  ready_.push_back(
      Entry{task.id, task.work, task.procs, task.earliest_start, arrivals_++});
}

void ListScheduler::task_finished(TaskId, Time) {}

bool ListScheduler::before(const Entry& a, const Entry& b) const {
  switch (options_.priority) {
    case ListPriority::Fifo:
      break;
    case ListPriority::LongestFirst:
      if (a.work != b.work) return a.work > b.work;
      break;
    case ListPriority::ShortestFirst:
      if (a.work != b.work) return a.work < b.work;
      break;
    case ListPriority::WidestFirst:
      if (a.procs != b.procs) return a.procs > b.procs;
      break;
    case ListPriority::NarrowestFirst:
      if (a.procs != b.procs) return a.procs < b.procs;
      break;
    case ListPriority::SmallestCriticality:
      if (a.earliest_start != b.earliest_start) {
        return a.earliest_start < b.earliest_start;
      }
      break;
  }
  return a.arrival < b.arrival;  // stable tie-break: arrival order
}

void ListScheduler::select(Time, int available_procs,
                           std::vector<TaskId>& picks) {
  // Fifo needs no sort: task_ready appends in arrival order and the
  // compaction below preserves relative order, so ready_ stays sorted.
  if (options_.priority != ListPriority::Fifo) {
    std::sort(ready_.begin(), ready_.end(),
              [this](const Entry& a, const Entry& b) { return before(a, b); });
  }
  int avail = available_procs;
  std::size_t keep = 0;
  std::size_t k = 0;
  bool blocked = false;
  // Early exit once no further task can fit (every task needs >= 1
  // processor; under strict_head, any blocked head): the untouched tail
  // stays in place, so a saturated platform never pays a full-backlog
  // scan-and-move per decision point.
  for (; k < ready_.size(); ++k) {
    if (avail == 0 || (options_.strict_head && blocked)) break;
    Entry& e = ready_[k];
    if (e.procs <= avail) {
      picks.push_back(e.id);
      avail -= e.procs;
    } else {
      blocked = true;
      ready_[keep++] = std::move(e);
    }
  }
  if (keep != k) {
    const auto tail =
        std::move(ready_.begin() + static_cast<std::ptrdiff_t>(k),
                  ready_.end(), ready_.begin() + static_cast<std::ptrdiff_t>(keep));
    ready_.erase(tail, ready_.end());
  }
}

}  // namespace catbatch
