#include "sched/online_shelf.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "support/check.hpp"

namespace catbatch {

OnlineShelfPacker::OnlineShelfPacker(int procs, double r, ShelfFit fit)
    : procs_(procs), r_(r), fit_(fit) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CB_CHECK(r > 1.0, "shelf base must exceed 1");
}

int OnlineShelfPacker::height_class(Time height) const {
  CB_CHECK(height > 0.0, "task height must be positive");
  // Smallest k with r^k >= height; computed via ceil of log_r, then fixed
  // up against floating-point drift at exact powers.
  int k = static_cast<int>(
      std::ceil(std::log(static_cast<double>(height)) / std::log(r_)));
  while (std::pow(r_, k) < static_cast<double>(height)) ++k;
  while (k > std::numeric_limits<int>::min() + 1 &&
         std::pow(r_, k - 1) >= static_cast<double>(height)) {
    --k;
  }
  return k;
}

TaskId OnlineShelfPacker::place(const Task& task) {
  CB_CHECK(task.procs >= 1 && task.procs <= procs_,
           "task width outside the platform");
  CB_CHECK(task.work > 0.0, "task height must be positive");

  const int klass = height_class(task.work);
  auto& shelves = shelves_by_class_[klass];

  Shelf* target = nullptr;
  if (fit_ == ShelfFit::NextFit) {
    if (!shelves.empty() &&
        shelves.back().used + task.procs <= procs_) {
      target = &shelves.back();
    }
  } else {  // FirstFit
    for (Shelf& shelf : shelves) {
      if (shelf.used + task.procs <= procs_) {
        target = &shelf;
        break;
      }
    }
  }
  if (target == nullptr) {
    const Time shelf_height =
        static_cast<Time>(std::pow(r_, klass));
    shelves.push_back(Shelf{top_, shelf_height, 0});
    top_ += shelf_height;
    ++shelf_total_;
    target = &shelves.back();
  }

  std::vector<int> held(static_cast<std::size_t>(task.procs));
  std::iota(held.begin(), held.end(), target->used);
  const TaskId id = next_id_++;
  schedule_.add(id, target->y, target->y + task.work, std::move(held));
  target->used += task.procs;
  return id;
}

}  // namespace catbatch
