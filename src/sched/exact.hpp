// Exact (optimal) offline scheduling of small rigid-DAG instances by
// branch and bound.
//
// The search space is the set of *semi-active* schedules: there is always
// an optimal schedule in which every task starts at time 0 or at some
// task's completion time (left-shift any other schedule until each start
// is blocked by capacity or precedence; the makespan never increases). At
// every event time the search branches over all capacity-feasible subsets
// of the ready tasks — including the empty subset, because optimal
// schedules may idle deliberately (Section 1's introductory example).
//
// Pruning: a branch dies when
//     max(latest running finish,
//         now + longest tail path of any unstarted task,
//         now + remaining area / P)
// cannot beat the incumbent. With n <= ~20 tasks this is exhaustive in
// milliseconds; a node budget caps pathological cases (the result then
// carries proven_optimal = false and the best schedule found).
//
// Purpose: measuring *true* competitive ratios T_Alg / T_Opt on small
// instances, where the Lb proxy of Section 3.2 can be loose.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

struct ExactOptions {
  /// Abort the search (keeping the best incumbent) after this many search
  /// nodes.
  std::uint64_t node_budget = 20'000'000;
};

struct ExactResult {
  Schedule schedule;  // an optimal (or best-found) schedule, validated shape
  Time makespan = 0.0;
  std::uint64_t nodes_explored = 0;
  bool proven_optimal = false;
};

/// Computes an optimal schedule of `graph` on `procs` processors. Requires
/// graph.size() <= 64. Throws on invalid instances.
[[nodiscard]] ExactResult exact_schedule(const TaskGraph& graph, int procs,
                                         const ExactOptions& options = {});

/// Rebuilds a concrete Schedule (with processor indices) from start times
/// that are known to respect precedence and capacity. Exposed for reuse by
/// other offline constructions; throws if the start times are infeasible.
[[nodiscard]] Schedule schedule_from_starts(const TaskGraph& graph,
                                            const std::vector<Time>& starts,
                                            int procs);

}  // namespace catbatch
