// RelaxedCatBatch: the practical heuristic sketched in the paper's
// conclusion (Section 7) — keep CatBatch's category machinery but drop the
// batch-completion barrier. Ready tasks are greedily started in increasing
// category order (ties by arrival), backfilling tasks of later categories
// into processors the earliest category cannot use.
//
// This sacrifices the competitive-ratio proof (Corollary 2 no longer gates
// execution) in exchange for never idling processors; the workload benches
// compare it against both strict CatBatch and plain list scheduling. It is
// also the scheduler of choice for the execution-time-uncertainty extension,
// where declared and actual task lengths differ and strict batch accounting
// would be miscalibrated anyway.
#pragma once

#include <vector>

#include "core/category.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

class RelaxedCatBatch final : public OnlineScheduler {
 public:
  RelaxedCatBatch() = default;

  [[nodiscard]] std::string name() const override {
    return "relaxed-catbatch";
  }
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

 private:
  struct Entry {
    TaskId id;
    int procs;
    Time category_value;
    std::uint64_t arrival;
  };

  std::vector<Entry> ready_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace catbatch
