// CatBatch with *contiguous* processor allocation for rigid tasks — the
// bridge between the paper's two problem statements (Section 1's
// comparison): rigid scheduling allows free processor choice, strip
// packing demands a contiguous block. Replacing ScheduleIndep with a shelf
// packer (NFDH, per Remark 1) yields a schedule in which every task holds
// an interval [first, first + p) of processor indices, at the cost of the
// shelf constant: per batch, T(B) <= 2·A(B)/P + 2·L_ζ (NFDH's bound) and
// the Theorem 1 structure survives with a slightly larger constant.
//
// Offline formulation (criticalities from the full graph); by Lemma 1 the
// batch structure equals the online one, so this is exactly what the
// online algorithm would produce.
#pragma once

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

struct ContiguousCatBatchResult {
  Schedule schedule;
  Time makespan = 0.0;
  std::size_t batch_count = 0;
};

/// Builds the contiguous-allocation CatBatch schedule of `graph` on
/// `procs` processors. Every entry's processor set is a contiguous range.
[[nodiscard]] ContiguousCatBatchResult catbatch_contiguous_schedule(
    const TaskGraph& graph, int procs);

}  // namespace catbatch
