// Offline divide-and-conquer scheduling in the style of Augustine et
// al. [1] (the paper's offline comparator, approximation ratio
// log2(n+1) + 2).
//
// The criticality horizon [0, C] is split at its midpoint m. Every task
// whose criticality interval straddles m forms an independent set (their
// intervals pairwise overlap at m, so by the Section 4.1 observation no
// precedence can exist among them); it is scheduled greedily as one batch.
// Tasks entirely left of m are scheduled recursively before the batch and
// tasks entirely right of m recursively after it, which respects every
// precedence constraint (a dependency can only go from an earlier interval
// to a later one). Recursion depth is bounded by log2(C / t_min) + 1
// because a task only survives into a half whose width still exceeds its
// length.
//
// This gives the same O(log) batch structure CatBatch discovers online —
// putting the two side by side in the benches shows what the online
// restriction actually costs.
#pragma once

#include "core/graph.hpp"
#include "sim/schedule.hpp"

namespace catbatch {

struct DivideConquerResult {
  Schedule schedule;
  /// Number of greedy batches executed (one per recursion node with a
  /// non-empty straddling set).
  std::size_t batch_count = 0;
  /// Maximum recursion depth reached.
  std::size_t max_depth = 0;
};

/// Schedules `graph` on `procs` processors offline. Throws on invalid
/// instances (cycles, tasks wider than the platform).
[[nodiscard]] DivideConquerResult divide_conquer_schedule(
    const TaskGraph& graph, int procs);

}  // namespace catbatch
