#include "sched/catbatch_scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {

const char* to_string(BatchOrder order) {
  switch (order) {
    case BatchOrder::Arrival:
      return "arrival";
    case BatchOrder::WidestFirst:
      return "widest-first";
    case BatchOrder::LongestFirst:
      return "longest-first";
    case BatchOrder::ShortestFirst:
      return "shortest-first";
  }
  return "unknown";
}

CatBatchScheduler::CatBatchScheduler(CatBatchOptions options)
    : options_(std::move(options)) {}

std::string CatBatchScheduler::name() const {
  if (!options_.name_override.empty()) return options_.name_override;
  std::string n = "catbatch(";
  n += to_string(options_.batch_order);
  n += ")";
  return n;
}

void CatBatchScheduler::reset() {
  keys_.clear();
  slots_.clear();
  free_slots_.clear();
  current_category_.reset();
  current_pending_.clear();
  current_running_ = 0;
  arrivals_ = 0;
  history_.clear();
}

Category CatBatchScheduler::category_for(const ReadyTask& task) {
  if (!options_.fixed_categories.empty()) {
    CB_CHECK(task.id < options_.fixed_categories.size(),
             "fixed category table does not cover this task");
    return options_.fixed_categories[task.id];
  }
  // Algorithm 1 (ComputeCat), online: s∞ precomputed by the engine via
  // Lemma 1's recurrence over the predecessors' f∞ (all of which were
  // revealed before this task).
  CB_CHECK(options_.origin_shift >= 0.0,
           "origin shift must be non-negative");
  const Time shifted = task.earliest_start + options_.origin_shift;
  return compute_category(Criticality{shifted, shifted + task.work});
}

void CatBatchScheduler::task_ready(const ReadyTask& task, Time) {
  const Category cat = category_for(task);

  // A killed member of the running batch rejoins it (docs/SCENARIOS.md):
  // s∞ and the declared work are unchanged, so its category equals the
  // current one, and the batch barrier simply waits for the restarted
  // attempt — Algorithm 2 with the lost work re-appended. This is the one
  // legitimate reveal of a non-larger category while a batch runs.
  if (task.resubmit && current_category_.has_value() &&
      cat.value() == current_category_->value()) {
    current_pending_.push_back(
        Pending{task.id, task.work, task.procs, arrivals_++});
    return;
  }

  // Corollary 2: while a batch runs, only strictly larger categories can be
  // discovered. (Holds for the exact-time model; the uncertainty extension
  // routes through RelaxedCatBatch instead.)
  if (current_category_.has_value() && options_.fixed_categories.empty()) {
    CB_DCHECK(cat.value() > current_category_->value(),
              "Corollary 2 violated: task of current/past category revealed");
  }

  Batch& batch = batch_for(cat);
  batch.pending.push_back(Pending{task.id, task.work, task.procs, arrivals_++});
}

CatBatchScheduler::Batch& CatBatchScheduler::batch_for(const Category& cat) {
  const Time key = cat.value();
  // Hot path: Corollary 2 means reveals arrive in non-decreasing ζ, so the
  // right batch is almost always the one with the largest key.
  if (!keys_.empty() && keys_.back().first == key) {
    return slots_[keys_.back().second];
  }
  const auto it = std::lower_bound(
      keys_.begin(), keys_.end(), key,
      [](const std::pair<Time, std::uint32_t>& kv, Time k) {
        return kv.first < k;
      });
  if (it != keys_.end() && it->first == key) return slots_[it->second];
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].category = cat;
  CB_DCHECK(slots_[slot].pending.empty(), "recycled batch slot not drained");
  keys_.insert(it, {key, slot});
  return slots_[slot];
}

bool CatBatchScheduler::batch_order_before(const Pending& a,
                                           const Pending& b) const {
  switch (options_.batch_order) {
    case BatchOrder::Arrival:
      break;
    case BatchOrder::WidestFirst:
      if (a.procs != b.procs) return a.procs > b.procs;
      break;
    case BatchOrder::LongestFirst:
      if (a.work != b.work) return a.work > b.work;
      break;
    case BatchOrder::ShortestFirst:
      if (a.work != b.work) return a.work < b.work;
      break;
  }
  return a.arrival < b.arrival;
}

void CatBatchScheduler::activate_next_batch(Time now) {
  CB_DCHECK(!current_category_.has_value(), "previous batch still active");
  CB_DCHECK(current_pending_.empty() && current_running_ == 0,
            "previous batch not drained");
  if (keys_.empty()) return;
  const auto [key, slot] = keys_.front();  // B_ζmin (Algorithm 3, line 10)
  (void)key;
  current_category_ = slots_[slot].category;
  // Swap instead of move: the drained current_pending_ buffer (empty, with
  // capacity) goes back into the slab, so recycled batches reuse it.
  current_pending_.swap(slots_[slot].pending);
  keys_.erase(keys_.begin());
  free_slots_.push_back(slot);
  // Arrival order needs no sort: pending tasks were appended in arrival
  // order and never reordered.
  if (options_.batch_order != BatchOrder::Arrival) {
    std::sort(current_pending_.begin(), current_pending_.end(),
              [this](const Pending& a, const Pending& b) {
                return batch_order_before(a, b);
              });
  }
  history_.push_back(BatchRecord{*current_category_, now, now, {}});
  history_.back().tasks.reserve(current_pending_.size());
}

void CatBatchScheduler::task_finished(TaskId id, Time now) {
  if (!current_category_.has_value()) return;
  // Only tasks of the current batch can be running under strict CatBatch.
  CB_DCHECK(current_running_ > 0, "completion outside the current batch");
  (void)id;
  --current_running_;
  if (current_running_ == 0 && current_pending_.empty()) {
    history_.back().finished = now;
    current_category_.reset();  // batch complete (Algorithm 2, line 17)
  }
}

void CatBatchScheduler::task_killed(TaskId id, Time now) {
  (void)id, (void)now;
  if (!current_category_.has_value()) return;
  // Only tasks of the current batch can run under strict CatBatch, so the
  // victim occupies a current_running_ slot. The batch is deliberately NOT
  // closed even when nothing else is pending or running: the engine
  // re-reveals the victim immediately after this callback, and it rejoins
  // this very batch through the resubmit path of task_ready().
  CB_DCHECK(current_running_ > 0, "kill outside the current batch");
  --current_running_;
}

void CatBatchScheduler::select(Time now, int available_procs,
                               std::vector<TaskId>& picks) {
  if (!current_category_.has_value()) activate_next_batch(now);
  if (!current_category_.has_value()) return;

  // ScheduleIndep's greedy pass (Algorithm 2, lines 9-15): start every
  // pending task of the current batch that fits the free processors. The
  // scan stops once the free processors are exhausted (no later task can
  // fit), leaving the untouched tail in place — large batches would
  // otherwise pay a full scan-and-move on every completion.
  int avail = available_procs;
  std::size_t keep = 0;
  std::size_t k = 0;
  for (; k < current_pending_.size() && avail > 0; ++k) {
    Pending& p = current_pending_[k];
    if (p.procs <= avail) {
      avail -= p.procs;
      picks.push_back(p.id);
      history_.back().tasks.push_back(p.id);
      ++current_running_;
    } else {
      current_pending_[keep++] = std::move(p);
    }
  }
  if (keep != k) {
    const auto tail = std::move(
        current_pending_.begin() + static_cast<std::ptrdiff_t>(k),
        current_pending_.end(),
        current_pending_.begin() + static_cast<std::ptrdiff_t>(keep));
    current_pending_.erase(tail, current_pending_.end());
  }
}

}  // namespace catbatch
