#include "sched/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/bounds.hpp"
#include "sim/processor_pool.hpp"
#include "support/check.hpp"

namespace catbatch {

namespace {

using Mask = std::uint64_t;

class BranchAndBound {
 public:
  BranchAndBound(const TaskGraph& graph, int procs,
                 const ExactOptions& options)
      : graph_(graph), procs_(procs), options_(options), n_(graph.size()) {
    // Tail path lengths: t_i plus the longest chain of successors.
    tail_.resize(n_);
    const auto topo = graph_.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const TaskId id = *it;
      Time best = 0.0;
      for (const TaskId succ : graph_.successors(id)) {
        best = std::max(best, tail_[succ]);
      }
      tail_[id] = graph_.task(id).work + best;
    }
    starts_.assign(n_, -1.0);
    best_starts_.assign(n_, -1.0);
    total_area_ = graph_.total_area();
    // Any feasible schedule bounds the incumbent; seed with +inf.
    best_makespan_ = std::numeric_limits<Time>::infinity();
  }

  ExactResult run() {
    std::vector<Running> running;
    dfs(0.0, 0, 0, running, 0, 0.0);
    ExactResult result;
    result.nodes_explored = nodes_;
    result.proven_optimal = nodes_ <= options_.node_budget;
    result.makespan = best_makespan_;
    CB_CHECK(std::isfinite(best_makespan_),
             "branch and bound found no schedule (internal error)");
    result.schedule = schedule_from_starts(graph_, best_starts_, procs_);
    return result;
  }

 private:
  struct Running {
    TaskId id;
    Time finish;
  };

  [[nodiscard]] bool over_budget() const {
    return nodes_ > options_.node_budget;
  }

  /// `started_area` = total area of started tasks (for the area prune).
  void dfs(Time now, Mask started, Mask done,
           std::vector<Running>& running, int used_procs,
           Time started_area) {
    if (over_budget()) return;
    ++nodes_;

    // All started: the makespan is the latest running finish.
    if (started == full_mask()) {
      Time makespan = now;
      for (const Running& r : running) {
        makespan = std::max(makespan, r.finish);
      }
      if (makespan < best_makespan_) {
        best_makespan_ = makespan;
        best_starts_ = starts_;
      }
      return;
    }

    // Prune: optimistic completion of this branch.
    Time optimistic = now;
    for (const Running& r : running) {
      optimistic = std::max(optimistic, r.finish);
    }
    Time max_tail = 0.0;
    for (TaskId id = 0; id < n_; ++id) {
      if (!(started & bit(id))) max_tail = std::max(max_tail, tail_[id]);
    }
    const Time area_left = total_area_ - started_area;
    optimistic = std::max(
        optimistic,
        std::max(now + max_tail,
                 now + area_left / static_cast<Time>(procs_)));
    if (optimistic >= best_makespan_) return;  // ties keep the incumbent

    // Ready tasks: all predecessors done, not started.
    std::vector<TaskId> ready;
    for (TaskId id = 0; id < n_; ++id) {
      if (started & bit(id)) continue;
      bool ok = true;
      for (const TaskId pred : graph_.predecessors(id)) {
        if (!(done & bit(pred))) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(id);
    }

    // Branch over capacity-feasible subsets of `ready` (including empty if
    // something is running to advance time).
    std::vector<TaskId> chosen;
    branch_subsets(ready, 0, procs_ - used_procs, chosen, now, started,
                   done, running, used_procs, started_area);
  }

  void branch_subsets(const std::vector<TaskId>& ready, std::size_t index,
                      int avail, std::vector<TaskId>& chosen, Time now,
                      Mask started, Mask done,
                      std::vector<Running>& running, int used_procs,
                      Time started_area) {
    if (over_budget()) return;
    if (index == ready.size()) {
      commit(chosen, now, started, done, running, used_procs, started_area);
      return;
    }
    const TaskId id = ready[index];
    // Include `id` if it fits.
    if (graph_.task(id).procs <= avail) {
      chosen.push_back(id);
      branch_subsets(ready, index + 1, avail - graph_.task(id).procs,
                     chosen, now, started, done, running, used_procs,
                     started_area);
      chosen.pop_back();
    }
    // Exclude `id`.
    branch_subsets(ready, index + 1, avail, chosen, now, started, done,
                   running, used_procs, started_area);
  }

  /// Starts `chosen` at `now`, advances to the next completion event, and
  /// recurses.
  void commit(const std::vector<TaskId>& chosen, Time now, Mask started,
              Mask done, std::vector<Running>& running, int used_procs,
              Time started_area) {
    // Starting nothing is only meaningful if time can advance.
    if (chosen.empty() && running.empty()) return;

    const std::size_t base = running.size();
    for (const TaskId id : chosen) {
      starts_[id] = now;
      started |= bit(id);
      running.push_back(Running{id, now + graph_.task(id).work});
      used_procs += graph_.task(id).procs;
      started_area += graph_.task(id).area();
    }

    if (started == full_mask()) {
      // No more decisions; evaluate directly.
      dfs(now, started, done, running, used_procs, started_area);
    } else {
      // Advance to the earliest completion; all tasks finishing then
      // complete together.
      Time next = std::numeric_limits<Time>::infinity();
      for (const Running& r : running) next = std::min(next, r.finish);
      std::vector<Running> still;
      still.reserve(running.size());
      Mask new_done = done;
      int new_used = used_procs;
      for (const Running& r : running) {
        if (r.finish <= next) {
          new_done |= bit(r.id);
          new_used -= graph_.task(r.id).procs;
        } else {
          still.push_back(r);
        }
      }
      dfs(next, started, new_done, still, new_used, started_area);
    }

    // Undo.
    for (const TaskId id : chosen) starts_[id] = -1.0;
    running.resize(base);
  }

  [[nodiscard]] static Mask bit(TaskId id) { return Mask{1} << id; }
  [[nodiscard]] Mask full_mask() const {
    return n_ == 64 ? ~Mask{0} : (Mask{1} << n_) - 1;
  }

  const TaskGraph& graph_;
  int procs_;
  ExactOptions options_;
  std::size_t n_;
  std::vector<Time> tail_;
  Time total_area_ = 0.0;

  std::vector<Time> starts_;
  std::vector<Time> best_starts_;
  Time best_makespan_ = 0.0;
  std::uint64_t nodes_ = 0;
};

}  // namespace

ExactResult exact_schedule(const TaskGraph& graph, int procs,
                           const ExactOptions& options) {
  CB_CHECK(procs >= 1, "platform must have at least one processor");
  CB_CHECK(graph.size() <= 64, "exact solver is limited to 64 tasks");
  graph.validate(procs);
  if (graph.empty()) return ExactResult{{}, 0.0, 0, true};
  BranchAndBound solver(graph, procs, options);
  return solver.run();
}

Schedule schedule_from_starts(const TaskGraph& graph,
                              const std::vector<Time>& starts, int procs) {
  CB_CHECK(starts.size() == graph.size(),
           "start vector does not match the instance");
  // Assign concrete processors with a sweep in event order: releases
  // before acquisitions at equal times (open intervals).
  struct Ev {
    Time at;
    bool is_start;
    TaskId id;
  };
  std::vector<Ev> events;
  events.reserve(2 * graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    CB_CHECK(starts[id] >= 0.0, "task has no start time");
    events.push_back(Ev{starts[id], true, id});
    events.push_back(Ev{starts[id] + graph.task(id).work, false, id});
  }
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.is_start < b.is_start;  // releases first
  });

  ProcessorPool pool(procs);
  std::vector<std::vector<int>> held(graph.size());
  Schedule schedule;
  for (const Ev& ev : events) {
    if (ev.is_start) {
      held[ev.id] = pool.acquire(graph.task(ev.id).procs);
      schedule.add(ev.id, starts[ev.id],
                   starts[ev.id] + graph.task(ev.id).work, held[ev.id]);
    } else {
      pool.release(held[ev.id]);
    }
  }
  return schedule;
}

}  // namespace catbatch
