// CatBatch (Algorithms 1-3): the paper's online algorithm.
//
// Each revealed task is assigned a category ζ = λ·2^χ computed from its
// criticality interval (ComputeCat, Algorithm 1). Tasks of equal category
// form a batch of pairwise-independent tasks (Lemma 5). Batches execute in
// increasing ζ, and a batch runs to *completion* before the next batch is
// even considered (ScheduleIndep, Algorithm 2); within a batch, whenever a
// task completes every remaining task that fits the free processors is
// started greedily.
//
// The category of each task is computed purely online: the engine
// maintains the earliest-finish time f∞ of every revealed task (Lemma 1's
// recurrence, see ReadyTask::earliest_start) and hands the resulting s∞ to
// the scheduler with each reveal.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/category.hpp"
#include "sim/scheduler.hpp"

namespace catbatch {

/// Order in which ScheduleIndep considers the tasks of a batch. The paper
/// proves Lemma 6 for *any* order; the choice is exposed for experiments.
enum class BatchOrder {
  Arrival,         // insertion order (the paper's "arbitrary order")
  WidestFirst,     // decreasing p
  LongestFirst,    // decreasing t
  ShortestFirst,   // increasing t
};

[[nodiscard]] const char* to_string(BatchOrder order);

struct CatBatchOptions {
  BatchOrder batch_order = BatchOrder::Arrival;
  /// Research knob: translate every criticality interval by this offset
  /// before computing categories. The dyadic lattice of Definition 2 is
  /// anchored at time 0; a common shift re-anchors it, changing how tasks
  /// bucket into batches while preserving every lemma (all intervals move
  /// together, so overlaps and orderings are untouched). Theorem 1's bound
  /// weakens only through the critical-path term: C grows to C + shift in
  /// the L-matrix accounting. Must be >= 0; exact binary values keep the
  /// arithmetic exact. See bench_ablation.
  Time origin_shift = 0.0;
  /// Optional category override, indexed by TaskId: when non-empty the
  /// scheduler uses these instead of computing categories online. Used by
  /// the offline twin (sched/offline_catbatch.hpp) to demonstrate that
  /// offline knowledge changes nothing (Lemma 1 makes the online computation
  /// exact).
  std::vector<Category> fixed_categories;
  std::string name_override;
};

/// Record of one executed batch, for traces and the Figure 6 bench.
struct BatchRecord {
  Category category;
  Time started = 0.0;
  Time finished = 0.0;
  std::vector<TaskId> tasks;
};

class CatBatchScheduler final : public OnlineScheduler {
 public:
  explicit CatBatchScheduler(CatBatchOptions options = {});

  [[nodiscard]] std::string name() const override;
  void reset() override;
  void task_ready(const ReadyTask& task, Time now) override;
  void task_finished(TaskId id, Time now) override;
  void task_killed(TaskId id, Time now) override;
  void select(Time now, int available_procs,
              std::vector<TaskId>& picks) override;

  /// Batches executed so far, in execution order. Valid after a simulation.
  [[nodiscard]] const std::vector<BatchRecord>& batch_history() const {
    return history_;
  }

 private:
  struct Pending {
    TaskId id;
    Time work;
    int procs;
    std::uint64_t arrival;
  };

  struct Batch {
    Category category;
    std::vector<Pending> pending;
  };

  [[nodiscard]] Category category_for(const ReadyTask& task);
  [[nodiscard]] Batch& batch_for(const Category& cat);
  void activate_next_batch(Time now);
  [[nodiscard]] bool batch_order_before(const Pending& a,
                                        const Pending& b) const;

  CatBatchOptions options_;

  // Flat batch index keyed by exact ζ value (doubles are exact here because
  // Category::value() is exact, see core/category.hpp). `keys_` holds
  // (ζ, slot) pairs sorted ascending by ζ; `slots_` is a slab of batch
  // bodies recycled through `free_slots_`, so the pending vectors keep
  // their capacity across batches and the reveal hot path never allocates
  // a tree node per task the way the old std::map index did. Corollary 2
  // makes reveals arrive in non-decreasing ζ, so nearly every lookup is
  // satisfied by the largest key; mid-vector inserts are rare and shift
  // only 16-byte pairs, and the minimum batch pops from the front of a
  // vector whose length is the number of *distinct pending categories*
  // (O(log) of the time horizon, not O(tasks)).
  std::vector<std::pair<Time, std::uint32_t>> keys_;
  std::vector<Batch> slots_;
  std::vector<std::uint32_t> free_slots_;

  std::optional<Category> current_category_;
  std::vector<Pending> current_pending_;
  std::size_t current_running_ = 0;
  std::uint64_t arrivals_ = 0;
  std::vector<BatchRecord> history_;
};

}  // namespace catbatch
