#!/usr/bin/env bash
# cli_check.sh — strict numeric-flag validation contract for the CLIs.
#
# Registered as the `catbatch_cli_check` ctest target. Both binaries parse
# numeric flags through support/text.hpp parse_integer: a zero count, a
# negative thread count or a non-numeric value must produce a one-line
# error on stderr and a nonzero exit — never an atoi zero silently reaching
# the engine.
#
# Usage: cli_check.sh <path-to-sched_cli> <path-to-catbatch_fuzz>

set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <path-to-sched_cli> <path-to-catbatch_fuzz>" >&2
  exit 2
fi

sched_cli="$1"
fuzz_cli="$2"
fail=0

err() {
  echo "cli-check: $*" >&2
  fail=1
}

# expect_reject <label> <binary> <args...>: the command must exit nonzero
# and print exactly one line mentioning the offending flag on stderr.
expect_reject() {
  local label="$1" bin="$2" flag="$3"
  shift 2
  local stderr_file
  stderr_file="$(mktemp)"
  if "$bin" "$@" >/dev/null 2>"$stderr_file"; then
    err "$label: expected a nonzero exit"
  fi
  local lines
  lines="$(wc -l <"$stderr_file")"
  if [[ "$lines" -ne 1 ]]; then
    err "$label: expected a one-line error, got $lines line(s)"
  fi
  if ! grep -qF -- "$flag" "$stderr_file"; then
    err "$label: error does not mention '$flag'"
  fi
  rm -f "$stderr_file"
}

expect_reject "sched_cli --trials 0"    "$sched_cli" --trials  --demo --trials 0
expect_reject "sched_cli --jobs -3"     "$sched_cli" --jobs    --demo --jobs -3
expect_reject "sched_cli --tasks junk"  "$sched_cli" --tasks   --random layered --tasks banana
expect_reject "sched_cli --procs 0"     "$sched_cli" --procs   --demo --procs 0

expect_reject "catbatch_fuzz --iters 0"     "$fuzz_cli" --iters     --iters 0
expect_reject "catbatch_fuzz --jobs -3"     "$fuzz_cli" --jobs      --jobs -3
expect_reject "catbatch_fuzz --seed junk"   "$fuzz_cli" --seed      --seed banana
expect_reject "catbatch_fuzz --max-tasks 0" "$fuzz_cli" --max-tasks --max-tasks 0

# Sanity: valid invocations still succeed.
if ! "$fuzz_cli" --iters 2 --quiet >/dev/null 2>&1; then
  err "catbatch_fuzz --iters 2 should succeed"
fi

if [[ $fail -ne 0 ]]; then
  echo "cli-check: FAILED" >&2
  exit 1
fi
echo "cli-check: OK"
