#!/usr/bin/env bash
# cli_check.sh — flag-validation and exit-code contract for the CLIs.
#
# Registered as the `catbatch_cli_check` ctest target, covering sched_cli,
# catbatch_fuzz, catbatchd and catbatch_loadgen. Two contracts:
#
#  * strict numeric flags — a zero count, a negative thread count or a
#    non-numeric value must produce a one-line error on stderr and a usage
#    exit, never an atoi zero silently reaching the engine;
#  * exit codes — usage errors exit with code 2 (support/cli.hpp
#    kExitUsage), reserving 1 for runtime failures, 3 for protocol errors
#    and 4 for contract violations.
#
# Usage: cli_check.sh <sched_cli> <catbatch_fuzz> <catbatchd> <catbatch_loadgen>

set -euo pipefail

if [[ $# -ne 4 ]]; then
  echo "usage: $0 <sched_cli> <catbatch_fuzz> <catbatchd> <catbatch_loadgen>" >&2
  exit 2
fi

sched_cli="$1"
fuzz_cli="$2"
daemon_cli="$3"
loadgen_cli="$4"
fail=0

err() {
  echo "cli-check: $*" >&2
  fail=1
}

# expect_reject <label> <flag> <binary> <args...>: the command must exit
# with the usage code (2) and print exactly one line mentioning the
# offending flag on stderr.
expect_reject() {
  local label="$1" flag="$2" bin="$3"
  shift 3
  local stderr_file status=0
  stderr_file="$(mktemp)"
  "$bin" "$@" >/dev/null 2>"$stderr_file" || status=$?
  if [[ "$status" -ne 2 ]]; then
    err "$label: expected usage exit 2, got $status"
  fi
  local lines
  lines="$(wc -l <"$stderr_file")"
  if [[ "$lines" -ne 1 ]]; then
    err "$label: expected a one-line error, got $lines line(s)"
  fi
  if ! grep -qF -- "$flag" "$stderr_file"; then
    err "$label: error does not mention '$flag'"
  fi
  rm -f "$stderr_file"
}

expect_reject "sched_cli --trials 0"    --trials  "$sched_cli" --demo --trials 0
expect_reject "sched_cli --jobs -3"     --jobs    "$sched_cli" --demo --jobs -3
expect_reject "sched_cli --tasks junk"  --tasks   "$sched_cli" --random layered --tasks banana
expect_reject "sched_cli --procs 0"     --procs   "$sched_cli" --demo --procs 0
expect_reject "sched_cli --scenario bogus"     --scenario      "$sched_cli" --demo --scenario bogus
expect_reject "sched_cli --scenario-seed junk" --scenario-seed "$sched_cli" --demo --scenario crash --scenario-seed banana
expect_reject "sched_cli --scenario + sweep"   --scenario      "$sched_cli" --random layered --scenario crash

expect_reject "catbatch_fuzz --iters 0"     --iters     "$fuzz_cli" --iters 0
expect_reject "catbatch_fuzz --jobs -3"     --jobs      "$fuzz_cli" --jobs -3
expect_reject "catbatch_fuzz --seed junk"   --seed      "$fuzz_cli" --seed banana
expect_reject "catbatch_fuzz --max-tasks 0" --max-tasks "$fuzz_cli" --max-tasks 0
expect_reject "catbatch_fuzz --protocol 0"  --protocol  "$fuzz_cli" --protocol 0
expect_reject "catbatch_fuzz --scenario 0"  --scenario  "$fuzz_cli" --scenario 0

expect_reject "catbatchd --protocol bogus" --protocol "$daemon_cli" --protocol bogus
expect_reject "catbatchd --jobs junk"      --jobs     "$daemon_cli" --jobs banana
expect_reject "catbatchd unix, no socket"  --socket   "$daemon_cli" --protocol unix

expect_reject "catbatch_loadgen --session 0"       --session     "$loadgen_cli" --session 0
expect_reject "catbatch_loadgen --concurrency -1"  --concurrency "$loadgen_cli" --concurrency -1
expect_reject "catbatch_loadgen --clock lunar"     --clock       "$loadgen_cli" --clock lunar
expect_reject "catbatch_loadgen unix, no socket"   --socket      "$loadgen_cli" --protocol unix

# Sanity: valid invocations still succeed (exit 0).
if ! "$sched_cli" --scenario-spec >/dev/null 2>&1; then
  err "sched_cli --scenario-spec should succeed"
fi
if ! "$sched_cli" --demo --scenario crash >/dev/null 2>&1; then
  err "sched_cli --demo --scenario crash should succeed"
fi
if ! "$fuzz_cli" --iters 2 --quiet >/dev/null 2>&1; then
  err "catbatch_fuzz --iters 2 should succeed"
fi
if ! "$fuzz_cli" --scenario 3 --quiet >/dev/null 2>&1; then
  err "catbatch_fuzz --scenario 3 should succeed"
fi
if ! "$daemon_cli" --protocol-spec >/dev/null 2>&1; then
  err "catbatchd --protocol-spec should succeed"
fi
if ! "$loadgen_cli" --session 2 --concurrency 1 --tasks 4 >/dev/null 2>&1; then
  err "catbatch_loadgen --session 2 should succeed"
fi

# Exit-code convention, non-usage tiers: a loadgen pointed at a socket
# nobody serves is a runtime failure (1), not a protocol error.
status=0
"$loadgen_cli" --protocol unix --socket /nonexistent/catbatch.sock \
  --session 1 >/dev/null 2>&1 || status=$?
if [[ "$status" -ne 1 ]]; then
  err "loadgen on a dead socket: expected runtime exit 1, got $status"
fi

if [[ $fail -ne 0 ]]; then
  echo "cli-check: FAILED" >&2
  exit 1
fi
echo "cli-check: OK"
