#!/usr/bin/env bash
# docs_check.sh — fail when the docs drift from the code.
#
# Registered as the `catbatch_docs_check` ctest target. The contracts:
#
#   1. every flag printed by `sched_cli --help` is documented in README.md
#      and in the usage-derived docs (docs/OBSERVABILITY.md only needs the
#      observability flags it owns);
#   2. every bench binary (bench/bench_*.cpp) appears in docs/BENCHMARKS.md;
#   3. the perf-gate interface (bench_perf_engine modes and the gated
#      metrics) is documented in docs/BENCHMARKS.md, and DESIGN.md's
#      engine-complexity section names the hot-path structures it
#      describes — both drifted silently during past engine rewrites;
#   4. every catbatchd / catbatch_loadgen flag is documented in README.md
#      and docs/SERVICE.md, and the protocol-spec block in docs/SERVICE.md
#      is byte-identical to `catbatchd --protocol-spec`;
#   5. the scenario-contract block in docs/SCENARIOS.md is byte-identical
#      to `sched_cli --scenario-spec`, and the scenario bench/gate names
#      appear in docs/BENCHMARKS.md;
#   6. the trace-replay interface (the backfilling lineup names, the
#      estimator families, the bundled excerpt, and the smoke/gate ctest
#      entries with their CATBATCH_TRACE_GATE_DECISIONS knob) is
#      documented in docs/BENCHMARKS.md.
#
# Usage: docs_check.sh <path-to-sched_cli> <repo-source-dir> \
#            [path-to-catbatch_fuzz] [path-to-catbatchd] [path-to-catbatch_loadgen]
#
# When a catbatch_fuzz binary is given, a further contract applies: every
# flag in its --help must be documented in README.md and docs/FUZZING.md.
# When the service binaries are given, two more: every catbatchd /
# catbatch_loadgen --help flag must be documented in README.md and
# docs/SERVICE.md, and the ```protocol-spec fenced block in
# docs/SERVICE.md must be byte-identical to `catbatchd --protocol-spec`.

set -euo pipefail

if [[ $# -lt 2 || $# -gt 5 ]]; then
  echo "usage: $0 <path-to-sched_cli> <repo-source-dir>" \
       "[path-to-catbatch_fuzz] [path-to-catbatchd] [path-to-catbatch_loadgen]" >&2
  exit 2
fi

sched_cli="$1"
src="$2"
fuzz_cli="${3:-}"
daemon_cli="${4:-}"
loadgen_cli="${5:-}"
fail=0

err() {
  echo "docs-check: $*" >&2
  fail=1
}

[[ -x "$sched_cli" ]] || { echo "docs-check: not executable: $sched_cli" >&2; exit 2; }
[[ -f "$src/README.md" ]] || { echo "docs-check: missing $src/README.md" >&2; exit 2; }
[[ -f "$src/docs/BENCHMARKS.md" ]] || { echo "docs-check: missing $src/docs/BENCHMARKS.md" >&2; exit 2; }

# --- 1. sched_cli flags ----------------------------------------------------

help_text="$("$sched_cli" --help)"

# Every "--flag" token the usage text mentions, deduplicated.
flags="$(grep -oE '\-\-[a-z][a-z-]*' <<<"$help_text" | sort -u)"

if [[ -z "$flags" ]]; then
  err "sched_cli --help printed no --flags at all"
fi

for flag in $flags; do
  if ! grep -qF -- "$flag" "$src/README.md"; then
    err "sched_cli flag '$flag' is not documented in README.md"
  fi
done

# The observability flags must also be covered by their contract document.
for flag in --trace-out --metrics --metrics-json; do
  if ! grep -q -- "$flag" <<<"$flags"; then
    err "expected sched_cli --help to mention '$flag'"
  fi
  if ! grep -qF -- "$flag" "$src/docs/OBSERVABILITY.md"; then
    err "observability flag '$flag' is not documented in docs/OBSERVABILITY.md"
  fi
done

# --- 2. catbatch_fuzz flags ------------------------------------------------

fuzz_flag_count=0
if [[ -n "$fuzz_cli" ]]; then
  [[ -x "$fuzz_cli" ]] || { echo "docs-check: not executable: $fuzz_cli" >&2; exit 2; }
  [[ -f "$src/docs/FUZZING.md" ]] || { echo "docs-check: missing $src/docs/FUZZING.md" >&2; exit 2; }

  fuzz_help="$("$fuzz_cli" --help)"
  fuzz_flags="$(grep -oE '\-\-[a-z][a-z-]*' <<<"$fuzz_help" | sort -u)"

  if [[ -z "$fuzz_flags" ]]; then
    err "catbatch_fuzz --help printed no --flags at all"
  fi

  for flag in $fuzz_flags; do
    if ! grep -qF -- "$flag" "$src/README.md"; then
      err "catbatch_fuzz flag '$flag' is not documented in README.md"
    fi
    if ! grep -qF -- "$flag" "$src/docs/FUZZING.md"; then
      err "catbatch_fuzz flag '$flag' is not documented in docs/FUZZING.md"
    fi
  done
  fuzz_flag_count="$(wc -w <<<"$fuzz_flags")"
fi

# --- 3. service binaries and the wire-protocol spec ------------------------

service_flag_count=0
if [[ -n "$daemon_cli" || -n "$loadgen_cli" ]]; then
  [[ -x "$daemon_cli" ]] || { echo "docs-check: not executable: $daemon_cli" >&2; exit 2; }
  [[ -x "$loadgen_cli" ]] || { echo "docs-check: not executable: $loadgen_cli" >&2; exit 2; }
  [[ -f "$src/docs/SERVICE.md" ]] || { echo "docs-check: missing $src/docs/SERVICE.md" >&2; exit 2; }

  for pair in "catbatchd:$daemon_cli" "catbatch_loadgen:$loadgen_cli"; do
    bin_name="${pair%%:*}"
    bin_path="${pair#*:}"
    bin_help="$("$bin_path" --help)"
    bin_flags="$(grep -oE '\-\-[a-z][a-z-]*' <<<"$bin_help" | sort -u)"
    if [[ -z "$bin_flags" ]]; then
      err "$bin_name --help printed no --flags at all"
    fi
    for flag in $bin_flags; do
      if ! grep -qF -- "$flag" "$src/README.md"; then
        err "$bin_name flag '$flag' is not documented in README.md"
      fi
      if ! grep -qF -- "$flag" "$src/docs/SERVICE.md"; then
        err "$bin_name flag '$flag' is not documented in docs/SERVICE.md"
      fi
    done
    service_flag_count=$((service_flag_count + $(wc -w <<<"$bin_flags")))
  done

  # The spec block in SERVICE.md must be byte-identical to the binary's
  # --protocol-spec output — the one place the protocol is documented twice.
  documented_spec="$(awk '/^```protocol-spec$/{inside=1; next}
                          /^```$/{inside=0} inside' "$src/docs/SERVICE.md")"
  if [[ -z "$documented_spec" ]]; then
    err "docs/SERVICE.md has no \`\`\`protocol-spec fenced block"
  elif ! diff <("$daemon_cli" --protocol-spec) <(printf '%s\n' "$documented_spec") \
      >/dev/null; then
    err "docs/SERVICE.md protocol-spec block differs from 'catbatchd --protocol-spec'"
    diff <("$daemon_cli" --protocol-spec) <(printf '%s\n' "$documented_spec") >&2 || true
  fi

  # The service gate's interface, same rule as the perf gate below.
  for term in "bench_service" "BENCH_service.json" "service_baseline.txt"; do
    if ! grep -qF -- "$term" "$src/docs/BENCHMARKS.md"; then
      err "service bench term '$term' is not documented in docs/BENCHMARKS.md"
    fi
  done
fi

# --- 4. scenario contract and scenario docs --------------------------------

[[ -f "$src/docs/SCENARIOS.md" ]] || { echo "docs-check: missing $src/docs/SCENARIOS.md" >&2; exit 2; }

# Same rule as the protocol spec: the contract is documented twice — once
# in scenario_contract_text(), once in docs/SCENARIOS.md — so the fenced
# block must be byte-identical to `sched_cli --scenario-spec`.
documented_contract="$(awk '/^```scenario-contract$/{inside=1; next}
                            /^```$/{inside=0} inside' "$src/docs/SCENARIOS.md")"
if [[ -z "$documented_contract" ]]; then
  err "docs/SCENARIOS.md has no \`\`\`scenario-contract fenced block"
elif ! diff <("$sched_cli" --scenario-spec) <(printf '%s\n' "$documented_contract") \
    >/dev/null; then
  err "docs/SCENARIOS.md scenario-contract block differs from 'sched_cli --scenario-spec'"
  diff <("$sched_cli" --scenario-spec) <(printf '%s\n' "$documented_contract") >&2 || true
fi

# The scenario CLI surface must be covered by its contract document, and
# the degradation bench + its ctest gate must be named in BENCHMARKS.md.
for term in "--scenario" "--scenario-seed" "--scenario-spec" \
    "crash" "sleep" "noise" "degradation" "lost_work_ratio" \
    "recovery_latency"; do
  if ! grep -qF -- "$term" "$src/docs/SCENARIOS.md"; then
    err "scenario term '$term' is not documented in docs/SCENARIOS.md"
  fi
done
for term in "BENCH_scenarios.json" "catbatch_scenario_smoke"; do
  if ! grep -qF -- "$term" "$src/docs/BENCHMARKS.md"; then
    err "scenario bench term '$term' is not documented in docs/BENCHMARKS.md"
  fi
done

# --- 5. perf interface and engine-design docs ------------------------------

# The perf bench's modes and gated metrics, as spelled in its usage text;
# each must appear backquoted or verbatim in docs/BENCHMARKS.md.
for term in "--gate" "--smoke" "--smoke-1m" "--threads-sweep" \
    "--write-baseline" "--baseline" "bytes_per_task" "speedup_vs_pre" \
    "ingest_tasks_per_sec" "CATBATCH_PERF_GATE_FACTOR" \
    "CATBATCH_PERF_GATE_MEM_FACTOR" "CATBATCH_PERF_GATE_INGEST_SPEEDUP"; do
  if ! grep -qF -- "$term" "$src/docs/BENCHMARKS.md"; then
    err "perf interface term '$term' is not documented in docs/BENCHMARKS.md"
  fi
done

# DESIGN.md's engine-complexity section must describe the structures the
# hot path actually uses (renames here mean the section went stale).
for term in "TaskRec" "calendar" "earliest_start" "ParallelOptions" \
    "freeze_chunk"; do
  if ! grep -qF -- "$term" "$src/DESIGN.md"; then
    err "DESIGN.md no longer mentions hot-path structure '$term'"
  fi
done

# --- 6. trace-replay interface ---------------------------------------------

# The trace bench's lineup, dialects and gate knobs, same rule as the perf
# gate: each term must appear verbatim in docs/BENCHMARKS.md.
for term in "BENCH_trace_replay.json" "catbatch_trace_replay_smoke" \
    "catbatch_trace_replay_gate" "CATBATCH_TRACE_GATE_DECISIONS" \
    "easy-backfill-padded" "easy-backfill-adaptive" "conservative-backfill" \
    "tests/corpus/trace_excerpt.swf" "Batsim" "stretch_skipped"; do
  if ! grep -qF -- "$term" "$src/docs/BENCHMARKS.md"; then
    err "trace-replay term '$term' is not documented in docs/BENCHMARKS.md"
  fi
done

# --- 7. bench binaries -----------------------------------------------------

found_bench=0
for bench_src in "$src"/bench/bench_*.cpp; do
  [[ -e "$bench_src" ]] || continue
  found_bench=1
  name="$(basename "$bench_src" .cpp)"
  if ! grep -qF -- "\`$name\`" "$src/docs/BENCHMARKS.md"; then
    err "bench binary '$name' is missing from docs/BENCHMARKS.md"
  fi
done
[[ $found_bench -eq 1 ]] || err "no bench/bench_*.cpp sources found under $src"

if [[ $fail -ne 0 ]]; then
  echo "docs-check: FAILED" >&2
  exit 1
fi
echo "docs-check: OK ($(wc -w <<<"$flags") sched_cli flags, $fuzz_flag_count catbatch_fuzz flags, $service_flag_count service flags, $(ls "$src"/bench/bench_*.cpp | wc -l) bench binaries)"
