#!/usr/bin/env bash
# service_smoke.sh — end-to-end daemon smoke test over a real unix socket.
#
# Registered as the `catbatch_service_smoke` ctest target: spawns catbatchd
# --protocol unix, drives 100 mixed-clock sessions through catbatch_loadgen
# over loopback (50 simulated + 50 external), asks the daemon to shut down
# via the protocol, and requires a clean exit (code 0) plus socket-file
# cleanup. This is the deployment shape — separate processes, real
# transport — that the in-process suites cannot cover.
#
# Usage: service_smoke.sh <path-to-catbatchd> <path-to-catbatch_loadgen>

set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <path-to-catbatchd> <path-to-catbatch_loadgen>" >&2
  exit 2
fi

daemon="$1"
loadgen="$2"
sock="${TMPDIR:-/tmp}/catbatchd-smoke-$$.sock"

cleanup() {
  if [[ -n "${daemon_pid:-}" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -f "$sock"
}
trap cleanup EXIT

"$daemon" --protocol unix --socket "$sock" --jobs 4 &
daemon_pid=$!

# Wait for the listener to come up (the daemon binds before serving).
for _ in $(seq 1 500); do
  [[ -S "$sock" ]] && break
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "service-smoke: daemon died before binding $sock" >&2
    exit 1
  fi
  sleep 0.01
done
if [[ ! -S "$sock" ]]; then
  echo "service-smoke: daemon never bound $sock" >&2
  exit 1
fi

echo "service-smoke: daemon up (pid $daemon_pid), running 100 sessions"
"$loadgen" --protocol unix --socket "$sock" \
  --session 50 --concurrency 4 --tasks 32 --procs 16 --seed 11 \
  --clock simulated
"$loadgen" --protocol unix --socket "$sock" \
  --session 50 --concurrency 4 --tasks 32 --procs 16 --seed 12 \
  --clock external --shutdown

# The daemon must exit 0 on its own after serving the shutdown request.
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [[ "$status" -ne 0 ]]; then
  echo "service-smoke: daemon exited with $status, expected 0" >&2
  exit 1
fi
if [[ -e "$sock" ]]; then
  echo "service-smoke: daemon left the socket file behind" >&2
  exit 1
fi
echo "service-smoke: OK"
