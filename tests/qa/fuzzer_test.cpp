#include "qa/fuzzer.hpp"

#include <gtest/gtest.h>

namespace catbatch {
namespace {

FuzzOptions small_options() {
  FuzzOptions options;
  options.seed = 11;
  options.iterations = 60;
  options.generator.max_tasks = 16;
  options.generator.max_procs = 6;
  return options;
}

TEST(Fuzzer, SmokeRunIsClean) {
  const FuzzReport report = run_fuzzer(small_options());
  EXPECT_EQ(report.iterations_run, 60u);
  for (const FuzzFinding& finding : report.findings) {
    ADD_FAILURE() << describe_finding(finding);
  }
  EXPECT_TRUE(report.clean());
  EXPECT_NE(report.instance_fingerprint, 0u);
}

TEST(Fuzzer, ReportIsJobsInvariant) {
  FuzzOptions serial = small_options();
  serial.jobs = 1;
  FuzzOptions parallel = small_options();
  parallel.jobs = 7;
  const FuzzReport a = run_fuzzer(serial);
  const FuzzReport b = run_fuzzer(parallel);
  EXPECT_EQ(a.instance_fingerprint, b.instance_fingerprint);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.findings.size(), b.findings.size());
}

TEST(Fuzzer, FingerprintTracksSeedAndIterations) {
  const FuzzReport base = run_fuzzer(small_options());
  FuzzOptions reseeded = small_options();
  reseeded.seed = 12;
  EXPECT_NE(run_fuzzer(reseeded).instance_fingerprint,
            base.instance_fingerprint);
  FuzzOptions shorter = small_options();
  shorter.iterations = 59;
  EXPECT_NE(run_fuzzer(shorter).instance_fingerprint,
            base.instance_fingerprint);
}

}  // namespace
}  // namespace catbatch
