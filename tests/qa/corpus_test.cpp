// Corpus format round-trip and the checked-in regression corpus itself.
// CATBATCH_CORPUS_DIR is injected by tests/CMakeLists.txt and points at
// tests/corpus in the source tree.
#include "qa/corpus.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace catbatch {
namespace {

CorpusCase sample_case() {
  CorpusCase c;
  c.oracle = "feasibility";
  c.scheduler = "catbatch";
  c.seed = 77;
  c.note = "sample \"quoted\" note";
  c.instance.procs = 3;
  const TaskId a = c.instance.graph.add_task(0.6, 1, "a");
  const TaskId b = c.instance.graph.add_task(1.25, 2, "b \"x\"");
  c.instance.graph.add_edge(a, b);
  c.instance.origin = c.note;
  return c;
}

TEST(Corpus, RoundTripIsBitIdentical) {
  const CorpusCase original = sample_case();
  const std::string once = corpus_to_json(original);
  const CorpusCase parsed = corpus_from_json(once);
  EXPECT_EQ(corpus_to_json(parsed), once);

  EXPECT_EQ(parsed.schema, 1);
  EXPECT_EQ(parsed.oracle, original.oracle);
  EXPECT_EQ(parsed.scheduler, original.scheduler);
  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_EQ(parsed.note, original.note);
  EXPECT_EQ(parsed.instance.procs, original.instance.procs);
  ASSERT_EQ(parsed.instance.graph.size(), original.instance.graph.size());
  for (TaskId id = 0; id < parsed.instance.graph.size(); ++id) {
    EXPECT_EQ(parsed.instance.graph.task(id), original.instance.graph.task(id));
  }
  EXPECT_EQ(parsed.instance.graph.edge_count(),
            original.instance.graph.edge_count());
}

TEST(Corpus, FileNameIsDeterministic) {
  const CorpusCase c = sample_case();
  const std::string name = corpus_file_name(c);
  EXPECT_EQ(name, corpus_file_name(c));
  EXPECT_NE(name.find("feasibility-catbatch-"), std::string::npos);
  EXPECT_EQ(name.substr(name.size() - 5), ".json");
}

TEST(Corpus, MalformedInputRejected) {
  EXPECT_THROW((void)corpus_from_json("{"), ContractViolation);
  EXPECT_THROW((void)corpus_from_json("{\"schema\": 1}"), ContractViolation);
  EXPECT_THROW((void)corpus_from_json("{\"wat\": 1}"), ContractViolation);
  EXPECT_THROW((void)corpus_from_json(
                   "{\"schema\": 2, \"instance\": {\"tasks\": [], "
                   "\"edges\": []}}"),
               ContractViolation);
}

TEST(Corpus, CheckedInCorpusRoundTripsBitIdentically) {
  const auto cases = load_corpus(CATBATCH_CORPUS_DIR);
  ASSERT_FALSE(cases.empty()) << "tests/corpus should hold the satellite "
                                 "repros";
  for (const auto& [file, corpus_case] : cases) {
    std::ifstream in(std::string(CATBATCH_CORPUS_DIR) + "/" + file);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream raw;
    raw << in.rdbuf();
    EXPECT_EQ(corpus_to_json(corpus_case), raw.str())
        << file << " does not re-emit byte-for-byte";
  }
}

TEST(Corpus, CheckedInCorpusReplaysClean) {
  for (const auto& [file, corpus_case] : load_corpus(CATBATCH_CORPUS_DIR)) {
    const auto failures = replay_case(corpus_case);
    for (const OracleFailure& f : failures) {
      ADD_FAILURE() << file << ": [" << f.oracle << "] " << f.scheduler
                    << ": " << f.detail;
    }
  }
}

}  // namespace
}  // namespace catbatch
