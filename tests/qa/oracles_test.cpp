// The oracle battery must (a) stay silent on every registered scheduler —
// the negative space every fuzz iteration relies on — and (b) actually
// fire when handed a scheduler that breaks an invariant. The broken
// schedulers below are deliberately minimal protocol violators.
#include "qa/oracles.hpp"

#include <gtest/gtest.h>

#include "instances/workloads.hpp"
#include "sched/list_scheduler.hpp"

namespace catbatch {
namespace {

FuzzInstance small_instance() {
  FuzzInstance instance;
  instance.graph = cholesky_dag(3);
  instance.procs = 6;
  instance.origin = "cholesky-3";
  return instance;
}

TEST(Oracles, WholeRegistryCleanOnStructuredInstance) {
  const auto failures = check_all_schedulers(small_instance());
  for (const OracleFailure& f : failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.scheduler << ": "
                  << f.detail;
  }
}

TEST(Oracles, WholeRegistryCleanOnIndependentInstance) {
  FuzzInstance instance;
  for (int i = 0; i < 6; ++i) {
    (void)instance.graph.add_task(1.0 + i, 1 + i % 3);
  }
  instance.procs = 4;
  instance.origin = "independent";
  // No edges: the shelf packers participate too.
  const auto failures = check_all_schedulers(instance);
  for (const OracleFailure& f : failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.scheduler << ": "
                  << f.detail;
  }
}

/// Never starts anything: the engine must flag the deadlock and the
/// battery must surface it as an engine-contract failure.
class StallingScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "stall"; }
  void reset() override {}
  void task_ready(const ReadyTask&, Time) override {}
  void select(Time, int, std::vector<TaskId>&) override {}
};

TEST(Oracles, DeadlockSurfacesAsEngineContract) {
  SchedulerEntry entry;
  entry.name = "stall";
  entry.kind = SchedulerKind::Online;
  entry.make = [](const TaskGraph*) -> std::unique_ptr<OnlineScheduler> {
    return std::make_unique<StallingScheduler>();
  };
  const auto failures = check_scheduler(small_instance(), entry);
  ASSERT_FALSE(failures.empty());
  EXPECT_EQ(failures.front().oracle, "engine-contract");
  EXPECT_EQ(failures.front().scheduler, "stall");
}

/// FIFO on the first construction, LIFO afterwards — a scheduler whose
/// behavior depends on process history. The determinism oracle (and the
/// counting/source-parity reruns) must notice.
class FlipFlopScheduler final : public OnlineScheduler {
 public:
  explicit FlipFlopScheduler(bool reverse) : reverse_(reverse) {}
  std::string name() const override { return "flipflop"; }
  void reset() override { ready_.clear(); }
  void task_ready(const ReadyTask& task, Time) override {
    ready_.push_back({task.id, task.procs});
  }
  void task_finished(TaskId, Time) override {}
  void select(Time, int available, std::vector<TaskId>& picks) override {
    auto scan = [&](auto begin, auto end) {
      for (auto it = begin; it != end; ++it) {
        if (it->procs <= available) {
          picks.push_back(it->id);
          available -= it->procs;
          it->procs = -1;  // consumed
        }
      }
    };
    if (reverse_) {
      scan(ready_.rbegin(), ready_.rend());
    } else {
      scan(ready_.begin(), ready_.end());
    }
    std::erase_if(ready_, [](const Entry& e) { return e.procs < 0; });
  }

 private:
  struct Entry {
    TaskId id;
    int procs;
  };
  std::vector<Entry> ready_;
  bool reverse_;
};

TEST(Oracles, NondeterministicSchedulerCaught) {
  int constructions = 0;
  SchedulerEntry entry;
  entry.name = "flipflop";
  entry.kind = SchedulerKind::Online;
  entry.make = [&](const TaskGraph*) -> std::unique_ptr<OnlineScheduler> {
    return std::make_unique<FlipFlopScheduler>(constructions++ > 0);
  };
  // A wide independent set gives order-sensitive packing decisions.
  FuzzInstance instance;
  for (int i = 0; i < 8; ++i) {
    (void)instance.graph.add_task(1.0 + i, 1 + i % 4);
  }
  instance.procs = 4;
  const auto failures = check_scheduler(instance, entry);
  bool caught = false;
  for (const OracleFailure& f : failures) {
    caught |= f.oracle == "determinism" || f.oracle == "counting" ||
              f.oracle == "source-parity";
  }
  EXPECT_TRUE(caught) << "reruns with different behavior went unnoticed";
}

TEST(Oracles, EmptyGraphIsTriviallyClean) {
  FuzzInstance instance;
  instance.procs = 2;
  instance.origin = "empty";
  EXPECT_TRUE(check_all_schedulers(instance).empty());
}

}  // namespace
}  // namespace catbatch
