#include "qa/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace catbatch {
namespace {

TEST(Generator, ManySeedsProduceValidInstances) {
  GeneratorOptions options;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    const FuzzInstance instance = generate_instance(rng, options);
    EXPECT_FALSE(instance.graph.empty()) << "seed " << seed;
    EXPECT_FALSE(instance.origin.empty()) << "seed " << seed;
    EXPECT_GE(instance.procs, instance.graph.max_procs_required())
        << "seed " << seed;
    EXPECT_NO_THROW(instance.graph.validate(instance.procs))
        << "seed " << seed;
  }
}

TEST(Generator, RespectsSizeCaps) {
  GeneratorOptions options;
  options.max_tasks = 12;
  options.max_procs = 4;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const FuzzInstance instance = generate_instance(rng, options);
    // Structured families (workloads, adversaries) may exceed the soft task
    // cap slightly, but the platform cap binds unless a task forces more.
    EXPECT_LE(instance.procs,
              std::max(options.max_procs,
                       instance.graph.max_procs_required()))
        << "seed " << seed;
  }
}

TEST(Generator, DrawsFromEveryFamilyGroup) {
  GeneratorOptions options;
  std::set<std::string> origins;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(seed);
    origins.insert(generate_instance(rng, options).origin);
  }
  // At least one representative of each group over 400 seeds.
  auto any_with_prefix = [&](const std::string& prefix) {
    for (const std::string& origin : origins) {
      if (origin.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(any_with_prefix("layered") || any_with_prefix("order") ||
              any_with_prefix("series-parallel"));
  EXPECT_TRUE(any_with_prefix("cholesky") || any_with_prefix("lu") ||
              any_with_prefix("stencil") || any_with_prefix("fft") ||
              any_with_prefix("map-reduce") || any_with_prefix("montage"));
  EXPECT_TRUE(any_with_prefix("adversary-"));
  EXPECT_TRUE(any_with_prefix("degenerate-"));
  EXPECT_TRUE(any_with_prefix("swf-trace"));
}

TEST(Generator, SwfTraceFamilyProducesRigidArchiveShapedJobs) {
  GeneratorOptions options;
  options.max_tasks = 32;
  options.max_procs = 8;
  bool seen = false;
  for (std::uint64_t seed = 1; seed <= 400 && !seen; ++seed) {
    Rng rng(seed);
    const FuzzInstance instance = generate_instance(rng, options);
    if (instance.origin != "swf-trace") continue;
    seen = true;
    EXPECT_GE(instance.graph.size(), 2u);
    for (TaskId id = 0; id < instance.graph.size(); ++id) {
      EXPECT_TRUE(instance.graph.predecessors(id).empty());
      EXPECT_LE(instance.graph.task(id).procs, options.max_procs);
      EXPECT_GT(instance.graph.task(id).work, 0.0);
    }
  }
  EXPECT_TRUE(seen) << "no swf-trace draw in 400 seeds";
}

TEST(Generator, HugeFamilyStaysLinearAndValid) {
  GeneratorOptions options;
  options.huge = true;
  options.max_tasks = 3000;  // scaled-down: same shapes, fast to validate
  options.max_procs = 16;
  std::set<std::string> origins;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const FuzzInstance instance = generate_instance(rng, options);
    origins.insert(instance.origin);
    EXPECT_EQ(instance.origin.rfind("huge-", 0), 0u) << instance.origin;
    EXPECT_GE(instance.graph.size(), options.max_tasks / 4) << "seed " << seed;
    EXPECT_LE(instance.graph.size(), options.max_tasks) << "seed " << seed;
    // The whole point of the family: edges stay O(n) (bounded in-degree).
    EXPECT_LE(instance.graph.edge_count(), 4 * instance.graph.size())
        << instance.origin;
    EXPECT_NO_THROW(instance.graph.validate(instance.procs))
        << "seed " << seed;
  }
  EXPECT_GE(origins.size(), 4u) << "family mix collapsed";
}

TEST(Generator, DeterministicInSeed) {
  GeneratorOptions options;
  Rng a(42), b(42);
  const FuzzInstance x = generate_instance(a, options);
  const FuzzInstance y = generate_instance(b, options);
  EXPECT_EQ(instance_hash(x), instance_hash(y));
  EXPECT_EQ(x.origin, y.origin);
}

TEST(Generator, MixSeedDecorrelates) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_EQ(mix_seed(7, 3), mix_seed(7, 3));
}

TEST(Generator, InstanceHashSeesEveryField) {
  FuzzInstance a;
  a.procs = 4;
  (void)a.graph.add_task(1.0, 2, "t");
  FuzzInstance b = a;
  EXPECT_EQ(instance_hash(a), instance_hash(b));
  b.graph.task(0).work = 2.0;
  EXPECT_NE(instance_hash(a), instance_hash(b));
  FuzzInstance c = a;
  c.procs = 5;
  EXPECT_NE(instance_hash(a), instance_hash(c));
}

}  // namespace
}  // namespace catbatch
