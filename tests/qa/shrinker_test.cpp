#include "qa/shrinker.hpp"

#include <gtest/gtest.h>

#include "instances/random_dags.hpp"
#include "qa/mutator.hpp"

namespace catbatch {
namespace {

FuzzInstance layered_instance(std::uint64_t seed, std::size_t tasks) {
  Rng rng(seed);
  FuzzInstance instance;
  instance.graph = random_layered_dag(rng, tasks, 5, RandomTaskParams{});
  instance.procs = 8;
  instance.origin = "layered";
  return instance;
}

TEST(Shrinker, ReducesToSingleWideTask) {
  // Failure: "contains a task at least 4 wide". The unique minimal repro
  // is one such task and nothing else.
  FuzzInstance start = layered_instance(1, 40);
  start.graph.task(17).procs = 4;
  const auto still_fails = [](const FuzzInstance& candidate) {
    for (TaskId id = 0; id < candidate.graph.size(); ++id) {
      if (candidate.graph.task(id).procs >= 4) return true;
    }
    return false;
  };
  ASSERT_TRUE(still_fails(start));
  const ShrinkResult result = shrink_instance(start, still_fails);
  EXPECT_TRUE(result.minimal);
  EXPECT_TRUE(still_fails(result.instance));
  EXPECT_EQ(result.instance.graph.size(), 1u);
  EXPECT_EQ(result.instance.graph.edge_count(), 0u);
  EXPECT_GE(result.instance.graph.task(0).procs, 4);
}

TEST(Shrinker, ReducesToSingleEdge) {
  // Failure: "has at least one precedence edge" — minimal repro is two
  // tasks joined by one edge.
  const FuzzInstance start = layered_instance(2, 30);
  const auto still_fails = [](const FuzzInstance& candidate) {
    return candidate.graph.edge_count() >= 1;
  };
  ASSERT_TRUE(still_fails(start));
  const ShrinkResult result = shrink_instance(start, still_fails);
  EXPECT_TRUE(result.minimal);
  EXPECT_EQ(result.instance.graph.size(), 2u);
  EXPECT_EQ(result.instance.graph.edge_count(), 1u);
}

TEST(Shrinker, OneMinimality) {
  // Whatever the shrinker returns for a thresholded predicate, deleting
  // any single remaining task must break the predicate.
  const FuzzInstance start = layered_instance(3, 35);
  const auto still_fails = [](const FuzzInstance& candidate) {
    return candidate.graph.size() >= 7;  // needs at least 7 tasks
  };
  const ShrinkResult result = shrink_instance(start, still_fails);
  EXPECT_TRUE(result.minimal);
  EXPECT_EQ(result.instance.graph.size(), 7u);
  for (TaskId victim = 0; victim < result.instance.graph.size(); ++victim) {
    std::vector<TaskId> keep;
    for (TaskId id = 0; id < result.instance.graph.size(); ++id) {
      if (id != victim) keep.push_back(id);
    }
    FuzzInstance smaller;
    smaller.graph = induced_subgraph(result.instance.graph, keep);
    smaller.procs = result.instance.procs;
    EXPECT_FALSE(still_fails(smaller));
  }
}

TEST(Shrinker, RespectsCheckBudget) {
  const FuzzInstance start = layered_instance(4, 40);
  const auto still_fails = [](const FuzzInstance& candidate) {
    return !candidate.graph.empty();
  };
  ShrinkOptions options;
  options.max_checks = 5;
  const ShrinkResult result = shrink_instance(start, still_fails, options);
  EXPECT_LE(result.checks, 5u);
  EXPECT_TRUE(still_fails(result.instance));
}

TEST(Shrinker, NeverReturnsEmpty) {
  FuzzInstance start;
  start.graph.add_task(1.0, 1, "only");
  start.procs = 1;
  const auto still_fails = [](const FuzzInstance&) { return true; };
  const ShrinkResult result = shrink_instance(start, still_fails);
  EXPECT_EQ(result.instance.graph.size(), 1u);
}

TEST(Shrinker, TagsLineage) {
  FuzzInstance start = layered_instance(5, 20);
  const auto still_fails = [](const FuzzInstance& candidate) {
    return !candidate.graph.empty();
  };
  const ShrinkResult result = shrink_instance(start, still_fails);
  EXPECT_NE(result.instance.origin.find("+shrunk"), std::string::npos);
}

}  // namespace
}  // namespace catbatch
