#include "qa/mutator.hpp"

#include <gtest/gtest.h>

namespace catbatch {
namespace {

TEST(Mutator, MutationsPreserveWellFormedness) {
  GeneratorOptions options;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    FuzzInstance instance = generate_instance(rng, options);
    for (int m = 0; m < 5; ++m) {
      mutate_instance(rng, instance, options);
      ASSERT_FALSE(instance.graph.empty()) << "seed " << seed;
      ASSERT_NO_THROW(instance.graph.validate(instance.procs))
          << "seed " << seed << " after mutation " << m << " ("
          << instance.origin << ")";
    }
  }
}

TEST(Mutator, RecordsLineage) {
  GeneratorOptions options;
  Rng rng(3);
  FuzzInstance instance = generate_instance(rng, options);
  const std::string before = instance.origin;
  // Mutations on a multi-task instance almost always apply; allow the rare
  // all-declined case but require lineage growth when anything applied.
  for (int m = 0; m < 10; ++m) mutate_instance(rng, instance, options);
  EXPECT_GE(instance.origin.size(), before.size());
}

TEST(InducedSubgraph, RenumbersAndKeepsInnerEdges) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0, 1, "a");
  const TaskId b = g.add_task(2.0, 2, "b");
  const TaskId c = g.add_task(3.0, 1, "c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(a, c);

  const TaskGraph sub = induced_subgraph(g, {a, c});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.task(0).name, "a");
  EXPECT_EQ(sub.task(1).name, "c");
  EXPECT_EQ(sub.task(1).work, 3.0);
  // a->c survives; edges through the dropped b vanish.
  ASSERT_EQ(sub.edge_count(), 1u);
  EXPECT_EQ(sub.successors(0).size(), 1u);
  EXPECT_EQ(sub.successors(0)[0], 1u);
}

TEST(InducedSubgraph, KeepOrderIsIrrelevant) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0, 1, "a");
  const TaskId b = g.add_task(2.0, 1, "b");
  g.add_edge(a, b);
  const TaskGraph sub = induced_subgraph(g, {b, a});  // unsorted keep set
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.task(0).name, "a");  // renumbered by ascending old id
  EXPECT_EQ(sub.edge_count(), 1u);
}

TEST(WithoutEdge, RemovesExactlyOne) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0, 1, "a");
  const TaskId b = g.add_task(1.0, 1, "b");
  const TaskId c = g.add_task(1.0, 1, "c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  const TaskGraph cut = without_edge(g, a, b);
  EXPECT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut.edge_count(), 1u);
  EXPECT_TRUE(cut.predecessors(b).empty());
  EXPECT_EQ(cut.predecessors(c).size(), 1u);
}

TEST(AllEdges, SortedPairs) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0, 1, "a");
  const TaskId b = g.add_task(1.0, 1, "b");
  const TaskId c = g.add_task(1.0, 1, "c");
  g.add_edge(b, c);
  g.add_edge(a, c);
  g.add_edge(a, b);
  const auto edges = all_edges(g);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(a, b));
  EXPECT_EQ(edges[1], std::make_pair(a, c));
  EXPECT_EQ(edges[2], std::make_pair(b, c));
}

}  // namespace
}  // namespace catbatch
