#include "strip/strip_packers.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

std::vector<Rect> random_rects(Rng& rng, std::size_t count) {
  std::vector<Rect> out;
  for (std::size_t k = 0; k < count; ++k) {
    // Exact binary widths and heights.
    const double width =
        static_cast<double>(rng.uniform_int(1, 64)) / 64.0;
    const double height =
        static_cast<double>(rng.uniform_int(1, 256)) * 0x1.0p-5;
    out.push_back(Rect{width, height, ""});
  }
  return out;
}

/// No two placements overlap, everything inside the strip.
void expect_feasible(std::span<const Rect> rects,
                     const StripShelfResult& result) {
  for (const PlacedRect& p : result.placements) {
    const Rect& r = rects[p.id];
    EXPECT_GE(p.x, -1e-12);
    EXPECT_LE(p.x + r.width, 1.0 + 1e-9);
    EXPECT_GE(p.y, -1e-12);
    EXPECT_LE(p.y + r.height, result.total_height + 1e-9);
  }
  for (std::size_t a = 0; a < result.placements.size(); ++a) {
    for (std::size_t b = a + 1; b < result.placements.size(); ++b) {
      const PlacedRect& pa = result.placements[a];
      const PlacedRect& pb = result.placements[b];
      const Rect& ra = rects[pa.id];
      const Rect& rb = rects[pb.id];
      const bool overlap = pa.x + ra.width > pb.x + 1e-12 &&
                           pb.x + rb.width > pa.x + 1e-12 &&
                           pa.y + ra.height > pb.y + 1e-12 &&
                           pb.y + rb.height > pa.y + 1e-12;
      EXPECT_FALSE(overlap) << "rects " << pa.id << " and " << pb.id;
    }
  }
}

TEST(StripNfdh, FeasibleOnRandomInputs) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto rects = random_rects(rng, 40);
    const StripShelfResult result = strip_nfdh(rects);
    ASSERT_EQ(result.placements.size(), rects.size());
    expect_feasible(rects, result);
  }
}

TEST(StripFfdh, FeasibleOnRandomInputs) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto rects = random_rects(rng, 40);
    const StripShelfResult result = strip_ffdh(rects);
    ASSERT_EQ(result.placements.size(), rects.size());
    expect_feasible(rects, result);
  }
}

TEST(StripNfdh, RemarkOneBound) {
  // NFDH height <= 2*area + max height (used by Remark 1).
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rects = random_rects(rng, 50);
    double area = 0.0;
    Time max_h = 0.0;
    for (const Rect& r : rects) {
      area += r.area();
      max_h = std::max(max_h, r.height);
    }
    const StripShelfResult result = strip_nfdh(rects);
    EXPECT_LE(result.total_height, 2.0 * area + max_h + 1e-9);
  }
}

TEST(StripFfdh, NeverTallerThanNfdh) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto rects = random_rects(rng, 30);
    EXPECT_LE(strip_ffdh(rects).total_height,
              strip_nfdh(rects).total_height + 1e-12);
  }
}

TEST(StripBottomLeft, FeasibleOnRandomInputs) {
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const auto rects = random_rects(rng, 30);
    const StripShelfResult result = strip_bottom_left(rects);
    ASSERT_EQ(result.placements.size(), rects.size());
    expect_feasible(rects, result);
  }
}

TEST(StripBottomLeft, InterlocksBetterThanShelvesOnMixedWidths) {
  // A wide flat rect plus tall narrow ones: shelves waste the space above
  // the flat rect; bottom-left fills it.
  const std::vector<Rect> rects{
      {1.0, 1.0, ""}, {0.25, 3.0, ""}, {0.25, 3.0, ""}, {0.25, 3.0, ""},
      {0.25, 3.0, ""}};
  const StripShelfResult bl = strip_bottom_left(rects);
  const StripShelfResult nfdh = strip_nfdh(rects);
  expect_feasible(rects, bl);
  EXPECT_DOUBLE_EQ(bl.total_height, 4.0);   // flat on floor, talls above
  EXPECT_DOUBLE_EQ(nfdh.total_height, 4.0);  // same here (shelf 3 + 1)
  // A case where BL strictly wins: two interlocking Ls.
  const std::vector<Rect> els{
      {0.5, 4.0, ""}, {0.5, 1.0, ""}, {0.5, 1.0, ""}, {0.5, 1.0, ""},
      {0.5, 1.0, ""}};
  const StripShelfResult bl2 = strip_bottom_left(els);
  const StripShelfResult nfdh2 = strip_nfdh(els);
  expect_feasible(els, bl2);
  EXPECT_DOUBLE_EQ(bl2.total_height, 4.0);  // four 1-high stack beside tall
  EXPECT_DOUBLE_EQ(nfdh2.total_height, 6.0);  // shelf 4 (two rects) + 1 + 1
}

TEST(StripBottomLeft, DecreasingWidthBound) {
  // Baker-Coffman-Rivest: height <= 3 * OPT >= 3 * max(area, max height).
  Rng rng(12);
  for (int trial = 0; trial < 15; ++trial) {
    const auto rects = random_rects(rng, 40);
    double area = 0.0;
    Time max_h = 0.0;
    for (const Rect& r : rects) {
      area += r.area();
      max_h = std::max(max_h, r.height);
    }
    const StripShelfResult result = strip_bottom_left(rects);
    EXPECT_LE(result.total_height,
              3.0 * std::max(area, static_cast<double>(max_h)) + 1e-9);
  }
}

TEST(StripBottomLeft, SingleAndEmpty) {
  const std::vector<Rect> one{{0.5, 2.0, ""}};
  const StripShelfResult r = strip_bottom_left(one);
  EXPECT_DOUBLE_EQ(r.total_height, 2.0);
  EXPECT_DOUBLE_EQ(r.placements[0].x, 0.0);
  const std::vector<Rect> none;
  EXPECT_DOUBLE_EQ(strip_bottom_left(none).total_height, 0.0);
}

TEST(StripPackers, FullWidthRectsStackVertically) {
  const std::vector<Rect> rects{{1.0, 2.0, ""}, {1.0, 1.0, ""}};
  const StripShelfResult result = strip_nfdh(rects);
  EXPECT_EQ(result.shelf_count, 2u);
  EXPECT_DOUBLE_EQ(result.total_height, 3.0);
}

TEST(StripPackers, EmptyInput) {
  const std::vector<Rect> none;
  EXPECT_DOUBLE_EQ(strip_nfdh(none).total_height, 0.0);
  EXPECT_DOUBLE_EQ(strip_ffdh(none).total_height, 0.0);
}

TEST(StripPackers, RejectBadRects) {
  const std::vector<Rect> bad{{1.5, 1.0, ""}};
  EXPECT_THROW((void)strip_nfdh(bad), ContractViolation);
  const std::vector<Rect> flat{{0.5, 0.0, ""}};
  EXPECT_THROW((void)strip_ffdh(flat), ContractViolation);
}

}  // namespace
}  // namespace catbatch
