#include "strip/strip_adversary.hpp"

#include <gtest/gtest.h>

#include "instances/adversary.hpp"
#include "instances/examples.hpp"
#include "strip/catbatch_strip.hpp"
#include "strip/strip_validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(StripAdversary, WidthsAreFractionsOfP) {
  const XInstance x = make_x_instance(4, 2, 0x1.0p-8);
  const StripInstance strip = to_strip_instance(x.graph, 4);
  ASSERT_EQ(strip.size(), x.graph.size());
  for (TaskId id = 0; id < strip.size(); ++id) {
    const double w = strip.rect(id).width;
    // Remark 2: the Section 6 instances use only widths 1/P and 1.
    EXPECT_TRUE(w == 0.25 || w == 1.0) << "rect " << id << " width " << w;
    EXPECT_DOUBLE_EQ(strip.rect(id).height, x.graph.task(id).work);
  }
}

TEST(StripAdversary, PreservesEdges) {
  const TaskGraph g = make_paper_example();
  const StripInstance strip = to_strip_instance(g, 4);
  for (TaskId id = 0; id < g.size(); ++id) {
    const auto a = g.successors(id);
    const auto b = strip.successors(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(StripAdversary, CriticalPathAndAreaScale) {
  const TaskGraph g = make_paper_example();
  const StripInstance strip = to_strip_instance(g, 4);
  EXPECT_NEAR(strip.critical_path(), critical_path_length(g), 1e-9);
  EXPECT_NEAR(strip.total_area(), static_cast<double>(g.total_area()) / 4.0,
              1e-9);
}

TEST(StripAdversary, CatBatchStripHandlesAdversaryShape) {
  // The strip rendition of X_P(K) packs feasibly; full-width reds
  // serialize against everything, as in the rigid case.
  const XInstance x = make_x_instance(3, 2, 0x1.0p-8);
  const StripInstance strip = to_strip_instance(x.graph, 3);
  for (const StripBatchPacker packer :
       {StripBatchPacker::Nfdh, StripBatchPacker::Ffdh}) {
    const CatBatchStripResult result = catbatch_strip_pack(strip, packer);
    require_valid_strip_packing(strip, result.packing);
    EXPECT_GE(result.total_height, strip.height_lower_bound() - 1e-9);
  }
}

TEST(StripAdversary, FfdhBandNeverTallerThanNfdh) {
  const TaskGraph g = make_paper_example();
  const StripInstance strip = to_strip_instance(g, 4);
  const auto nfdh = catbatch_strip_pack(strip, StripBatchPacker::Nfdh);
  const auto ffdh = catbatch_strip_pack(strip, StripBatchPacker::Ffdh);
  require_valid_strip_packing(strip, nfdh.packing);
  require_valid_strip_packing(strip, ffdh.packing);
  EXPECT_LE(ffdh.total_height, nfdh.total_height + 1e-9);
}

TEST(StripAdversary, RejectsOversizedTasks) {
  TaskGraph g;
  g.add_task(1.0, 8);
  EXPECT_THROW((void)to_strip_instance(g, 4), ContractViolation);
}

}  // namespace
}  // namespace catbatch
