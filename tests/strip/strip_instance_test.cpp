#include "strip/strip_instance.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace catbatch {
namespace {

StripInstance small_dag() {
  StripInstance s;
  s.add_rect(0.5, 2.0, "a");
  s.add_rect(0.25, 1.0, "b");
  s.add_rect(1.0, 0.5, "c");
  s.add_edge(0, 2);
  s.add_edge(1, 2);
  return s;
}

TEST(StripInstance, AddRectValidatesShape) {
  StripInstance s;
  EXPECT_THROW((void)s.add_rect(0.0, 1.0), ContractViolation);
  EXPECT_THROW((void)s.add_rect(1.5, 1.0), ContractViolation);
  EXPECT_THROW((void)s.add_rect(0.5, 0.0), ContractViolation);
  EXPECT_EQ(s.add_rect(1.0, 1.0), 0u);
}

TEST(StripInstance, EdgesAndTopologicalOrder) {
  const StripInstance s = small_dag();
  const auto order = s.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 2u);
  EXPECT_EQ(s.predecessors(2).size(), 2u);
  EXPECT_EQ(s.successors(0).size(), 1u);
}

TEST(StripInstance, DetectsCycles) {
  StripInstance s;
  s.add_rect(0.5, 1.0);
  s.add_rect(0.5, 1.0);
  s.add_edge(0, 1);
  s.add_edge(1, 0);
  EXPECT_THROW((void)s.topological_order(), ContractViolation);
}

TEST(StripInstance, AreaAndCriticalPath) {
  const StripInstance s = small_dag();
  EXPECT_DOUBLE_EQ(s.total_area(), 0.5 * 2.0 + 0.25 * 1.0 + 1.0 * 0.5);
  EXPECT_DOUBLE_EQ(s.critical_path(), 2.5);  // a (2) then c (0.5)
  EXPECT_DOUBLE_EQ(s.height_lower_bound(), 2.5);
}

TEST(StripInstance, AreaBoundDominatesWhenDense) {
  StripInstance s;
  for (int k = 0; k < 10; ++k) s.add_rect(1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.height_lower_bound(), 10.0);  // area 10 > C 1
}

TEST(StripPacking, PlaceAndQuery) {
  StripPacking p;
  p.place(1, 0.25, 3.0);
  EXPECT_TRUE(p.contains(1));
  EXPECT_FALSE(p.contains(0));
  EXPECT_DOUBLE_EQ(p.entry_for(1).x, 0.25);
  EXPECT_THROW(p.place(1, 0.0, 0.0), ContractViolation);
  EXPECT_THROW((void)p.entry_for(5), ContractViolation);
}

TEST(StripPacking, TotalHeight) {
  const StripInstance s = small_dag();
  StripPacking p;
  p.place(0, 0.0, 0.0);   // top at 2.0
  p.place(1, 0.5, 0.0);   // top at 1.0
  p.place(2, 0.0, 2.0);   // top at 2.5
  EXPECT_DOUBLE_EQ(p.total_height(s), 2.5);
}

}  // namespace
}  // namespace catbatch
