#include "strip/catbatch_strip.hpp"

#include <gtest/gtest.h>

#include "strip/strip_validate.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

/// Strip mirror of the paper's Figure 3 example on a 4-wide platform
/// (widths p/4).
StripInstance paper_example_strip() {
  StripInstance s;
  s.add_rect(0.25, 6.0, "A");
  s.add_rect(0.5, 2.0, "B");
  s.add_rect(0.25, 2.5, "C");
  s.add_rect(0.75, 3.0, "D");
  s.add_rect(0.25, 2.8, "E");
  s.add_rect(0.25, 0.6, "F");
  s.add_rect(0.75, 0.8, "G");
  s.add_rect(0.5, 1.2, "H");
  s.add_rect(0.5, 0.6, "I");
  s.add_rect(0.75, 0.8, "J");
  s.add_rect(0.75, 1.4, "K");
  s.add_edge(1, 4);  // B -> E
  s.add_edge(2, 5);  // C -> F
  s.add_edge(3, 5);  // D -> F
  s.add_edge(3, 6);  // D -> G
  s.add_edge(5, 8);  // F -> I
  s.add_edge(8, 10);  // I -> K
  s.add_edge(4, 7);  // E -> H
  s.add_edge(0, 9);  // A -> J
  s.add_edge(7, 9);  // H -> J
  return s;
}

StripInstance random_strip(Rng& rng, std::size_t count) {
  StripInstance s;
  for (std::size_t k = 0; k < count; ++k) {
    const double width = static_cast<double>(rng.uniform_int(1, 32)) / 32.0;
    const double height =
        static_cast<double>(rng.uniform_int(1, 128)) * 0x1.0p-4;
    s.add_rect(width, height);
  }
  // Forward edges with moderate probability.
  for (TaskId i = 0; i < count; ++i) {
    for (TaskId j = i + 1; j < count; ++j) {
      if (rng.bernoulli(0.03)) s.add_edge(i, j);
    }
  }
  return s;
}

TEST(CatBatchStrip, PaperExamplePacksFeasibly) {
  const StripInstance s = paper_example_strip();
  const CatBatchStripResult result = catbatch_strip_pack(s);
  require_valid_strip_packing(s, result.packing);
  // Same six categories as the rigid-task variant (Figure 4).
  ASSERT_EQ(result.batches.size(), 6u);
  const double expected_zeta[] = {1.0, 2.0, 3.5, 4.0, 5.0, 6.5};
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(result.batches[k].category.value(), expected_zeta[k]);
  }
}

TEST(CatBatchStrip, BandsAreStackedInCategoryOrder) {
  const StripInstance s = paper_example_strip();
  const CatBatchStripResult result = catbatch_strip_pack(s);
  Time prev_top = 0.0;
  for (const StripBatchRecord& band : result.batches) {
    EXPECT_DOUBLE_EQ(band.band_bottom, prev_top);
    EXPECT_GE(band.band_top, band.band_bottom);
    prev_top = band.band_top;
  }
  EXPECT_DOUBLE_EQ(result.total_height, prev_top);
}

TEST(CatBatchStrip, FeasibleOnRandomDags) {
  Rng rng(12);
  for (int trial = 0; trial < 8; ++trial) {
    const StripInstance s = random_strip(rng, 60);
    const CatBatchStripResult result = catbatch_strip_pack(s);
    require_valid_strip_packing(s, result.packing);
    EXPECT_DOUBLE_EQ(result.packing.total_height(s), result.total_height);
  }
}

TEST(CatBatchStrip, HeightWithinRemarkOneBound) {
  // Height <= 2A + Σ L_ζ (Remark 1 + Lemma 7 analogue).
  Rng rng(14);
  for (int trial = 0; trial < 10; ++trial) {
    const StripInstance s = random_strip(rng, 50);
    const CatBatchStripResult result = catbatch_strip_pack(s);
    EXPECT_LE(result.total_height, catbatch_strip_bound(s) + 1e-9);
  }
}

TEST(CatBatchStrip, EmptyInstance) {
  const StripInstance s;
  const CatBatchStripResult result = catbatch_strip_pack(s);
  EXPECT_DOUBLE_EQ(result.total_height, 0.0);
  EXPECT_TRUE(result.batches.empty());
}

TEST(CatBatchStrip, SingleRect) {
  StripInstance s;
  s.add_rect(0.5, 3.0, "solo");
  const CatBatchStripResult result = catbatch_strip_pack(s);
  require_valid_strip_packing(s, result.packing);
  EXPECT_DOUBLE_EQ(result.total_height, 3.0);
}

TEST(CatBatchStrip, ChainStacksStrictlyAbove) {
  StripInstance s;
  s.add_rect(1.0, 1.0, "first");
  s.add_rect(1.0, 1.0, "second");
  s.add_rect(1.0, 1.0, "third");
  s.add_edge(0, 1);
  s.add_edge(1, 2);
  const CatBatchStripResult result = catbatch_strip_pack(s);
  require_valid_strip_packing(s, result.packing);
  EXPECT_DOUBLE_EQ(result.total_height, 3.0);
  EXPECT_LT(result.packing.entry_for(0).y, result.packing.entry_for(1).y);
  EXPECT_LT(result.packing.entry_for(1).y, result.packing.entry_for(2).y);
}

}  // namespace
}  // namespace catbatch
