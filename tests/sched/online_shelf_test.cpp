#include "sched/online_shelf.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/graph.hpp"
#include "instances/random_dags.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(OnlineShelf, HeightClassRoundsUpGeometrically) {
  OnlineShelfPacker packer(4, 2.0);
  EXPECT_EQ(packer.height_class(1.0), 0);   // 2^0 >= 1
  EXPECT_EQ(packer.height_class(1.5), 1);   // 2^1 >= 1.5
  EXPECT_EQ(packer.height_class(2.0), 1);
  EXPECT_EQ(packer.height_class(2.5), 2);
  EXPECT_EQ(packer.height_class(0.5), -1);  // 2^-1 >= 0.5
  EXPECT_EQ(packer.height_class(0.6), 0);
}

TEST(OnlineShelf, PacksSameClassOntoOneShelf) {
  OnlineShelfPacker packer(4, 2.0, ShelfFit::NextFit);
  for (int k = 0; k < 4; ++k) {
    (void)packer.place(Task{1.5, 1, ""});  // class 1, shelf height 2
  }
  EXPECT_EQ(packer.shelf_count(), 1u);
  EXPECT_DOUBLE_EQ(packer.total_height(), 2.0);
}

TEST(OnlineShelf, OverflowOpensNewShelf) {
  OnlineShelfPacker packer(4, 2.0, ShelfFit::NextFit);
  for (int k = 0; k < 5; ++k) (void)packer.place(Task{1.5, 1, ""});
  EXPECT_EQ(packer.shelf_count(), 2u);
  EXPECT_DOUBLE_EQ(packer.total_height(), 4.0);
}

TEST(OnlineShelf, NextFitForgetsOldShelves) {
  OnlineShelfPacker next(4, 2.0, ShelfFit::NextFit);
  OnlineShelfPacker first(4, 2.0, ShelfFit::FirstFit);
  // class-1 wide task fills most of shelf 1; a class-1 narrow task after a
  // new shelf opened lands differently.
  const Task wide{2.0, 3, ""};
  const Task narrow{2.0, 1, ""};
  for (const auto* packer : {&next, &first}) (void)packer;  // silence lints
  (void)next.place(wide);    // shelf A used 3
  (void)next.place(wide);    // opens shelf B
  (void)next.place(narrow);  // NextFit: only shelf B considered -> fits (4)
  (void)next.place(narrow);  // shelf B full -> opens shelf C
  EXPECT_EQ(next.shelf_count(), 3u);

  (void)first.place(wide);
  (void)first.place(wide);
  (void)first.place(narrow);  // FirstFit: back-fills shelf A
  (void)first.place(narrow);  // back-fills shelf B
  EXPECT_EQ(first.shelf_count(), 2u);
}

TEST(OnlineShelf, SchedulesAreValid) {
  Rng rng(17);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  const TaskGraph g = random_independent(rng, 200, params);
  for (const ShelfFit fit : {ShelfFit::NextFit, ShelfFit::FirstFit}) {
    OnlineShelfPacker packer(8, 2.0, fit);
    for (TaskId id = 0; id < g.size(); ++id) {
      (void)packer.place(g.task(id));
    }
    require_valid_schedule(g, packer.schedule(), 8);
  }
}

TEST(OnlineShelf, FirstFitNeverTallerThanNextFit) {
  Rng rng(19);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  for (int trial = 0; trial < 10; ++trial) {
    const TaskGraph g = random_independent(rng, 100, params);
    OnlineShelfPacker next(8, 2.0, ShelfFit::NextFit);
    OnlineShelfPacker first(8, 2.0, ShelfFit::FirstFit);
    for (TaskId id = 0; id < g.size(); ++id) {
      (void)next.place(g.task(id));
      (void)first.place(g.task(id));
    }
    EXPECT_LE(first.total_height(), next.total_height() + 1e-9);
  }
}

TEST(OnlineShelf, CompetitiveAgainstLowerBoundOnRandomStreams) {
  // Baker-Schwarz guarantees ~7x for r = 2; measured ratios on random
  // streams are far smaller — assert a conservative envelope.
  Rng rng(23);
  RandomTaskParams params;
  params.procs.max_procs = 16;
  for (int trial = 0; trial < 5; ++trial) {
    const TaskGraph g = random_independent(rng, 300, params);
    OnlineShelfPacker packer(16, 2.0, ShelfFit::FirstFit);
    for (TaskId id = 0; id < g.size(); ++id) (void)packer.place(g.task(id));
    const Time lb = std::max(g.total_area() / 16.0, g.max_work());
    EXPECT_LE(packer.total_height(), 8.0 * lb);
  }
}

TEST(OnlineShelf, ValidatesArguments) {
  EXPECT_THROW(OnlineShelfPacker(0, 2.0), ContractViolation);
  EXPECT_THROW(OnlineShelfPacker(4, 1.0), ContractViolation);
  OnlineShelfPacker packer(4, 2.0);
  EXPECT_THROW((void)packer.place(Task{1.0, 5, ""}), ContractViolation);
  EXPECT_THROW((void)packer.place(Task{0.0, 1, ""}), ContractViolation);
}

TEST(OnlineShelf, NonDyadicBase) {
  OnlineShelfPacker packer(4, 1.6, ShelfFit::FirstFit);
  (void)packer.place(Task{1.0, 2, ""});
  (void)packer.place(Task{1.59, 2, ""});
  (void)packer.place(Task{1.61, 2, ""});
  // Classes: 1.0 -> k=0 (1.6^0=1 >= 1); 1.59 -> k=1; 1.61 -> k=2.
  EXPECT_EQ(packer.height_class(1.0), 0);
  EXPECT_EQ(packer.height_class(1.59), 1);
  EXPECT_EQ(packer.height_class(1.61), 2);
  EXPECT_EQ(packer.shelf_count(), 3u);
}

}  // namespace
}  // namespace catbatch
