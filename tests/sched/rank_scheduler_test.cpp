#include "sched/rank_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(RankScheduler, UpwardRanksAreTailPaths) {
  TaskGraph g;
  g.add_task(1.0, 1, "a");
  g.add_task(2.0, 1, "b");
  g.add_task(4.0, 1, "c");
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const RankScheduler sched(g);
  EXPECT_DOUBLE_EQ(sched.rank(2), 4.0);
  EXPECT_DOUBLE_EQ(sched.rank(1), 6.0);
  EXPECT_DOUBLE_EQ(sched.rank(0), 7.0);
}

TEST(RankScheduler, PrefersCriticalPathTasks) {
  // Two ready tasks, room for one: the one feeding the long tail runs
  // first even though it arrived later and is shorter.
  TaskGraph g;
  const TaskId filler = g.add_task(1.0, 1, "filler");
  const TaskId head = g.add_task(0.5, 1, "head");
  const TaskId tail = g.add_task(8.0, 1, "tail");
  g.add_edge(head, tail);
  (void)filler;
  RankScheduler sched(g);
  const SimResult r = simulate(g, sched, 1);
  require_valid_schedule(g, r.schedule, 1);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(head).start, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, 9.5);  // head, tail, filler packs last? no:
  // head 0-0.5, then rank(tail)=8 > rank(filler)=1 -> tail 0.5-8.5,
  // filler 8.5-9.5.
}

TEST(RankScheduler, ValidOnRandomAndWorkloadInstances) {
  Rng rng(80);
  for (int trial = 0; trial < 6; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 100, 8, RandomTaskParams{});
    RankScheduler sched(g);
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
  const TaskGraph chol = cholesky_dag(6);
  RankScheduler sched(chol);
  require_valid_schedule(chol, simulate(chol, sched, 8).schedule, 8);
}

TEST(RankScheduler, OftenBeatsFifoOnCriticalPathHeavyDags) {
  // Deterministic instance where successor knowledge pays: a long chain
  // plus filler. FIFO may start fillers first; rank never does.
  TaskGraph g;
  TaskId prev = kInvalidTask;
  for (int k = 0; k < 6; ++k) {
    const TaskId id = g.add_task(1.0, 1, "chain" + std::to_string(k));
    if (prev != kInvalidTask) g.add_edge(prev, id);
    prev = id;
  }
  for (int k = 0; k < 6; ++k) g.add_task(1.0, 2, "fill" + std::to_string(k));
  RankScheduler rank_sched(g);
  ListScheduler fifo;
  const Time t_rank = simulate(g, rank_sched, 2).makespan;
  const Time t_fifo = simulate(g, fifo, 2).makespan;
  EXPECT_LE(t_rank, t_fifo + 1e-12);
  // Rank interleaves fillers behind the chain: optimal 6... chain 6 long,
  // fillers need 2 procs — they serialize against the chain; area bound
  // = (6*1 + 6*2)/2 = 9.
  EXPECT_GE(t_rank, makespan_lower_bound(g, 2) - 1e-12);
}

TEST(RankScheduler, RejectsForeignTasks) {
  TaskGraph small;
  small.add_task(1.0, 1);
  TaskGraph big;
  big.add_task(1.0, 1);
  big.add_task(1.0, 1);
  RankScheduler sched(small);
  EXPECT_THROW((void)simulate(big, sched, 2), ContractViolation);
}

}  // namespace
}  // namespace catbatch
