#include "sched/backfill.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(EasyBackfill, Name) { EXPECT_EQ(EasyBackfill().name(), "easy-backfill"); }

TEST(EasyBackfill, StartsHeadWhenItFits) {
  TaskGraph g;
  g.add_task(1.0, 2, "head");
  g.add_task(1.0, 2, "next");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
}

TEST(EasyBackfill, ShortJobBackfillsBeforeBlockedHead) {
  // hold(2.0, p=1) runs; head wide(p=4) blocked until t=2; short(1.0, p=1)
  // finishes before the reservation -> backfills at t=0.
  TaskGraph g;
  g.add_task(2.0, 1, "hold");
  g.add_task(1.0, 4, "wide");
  g.add_task(1.0, 1, "short");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 0.0);  // backfilled
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);  // reservation held
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(EasyBackfill, LongJobMustNotDelayReservation) {
  // long(3.0, p=1) would finish after the t=2 reservation AND the head
  // needs all processors at the reservation -> no spare -> must NOT
  // backfill ahead of the reserved head.
  TaskGraph g;
  g.add_task(2.0, 1, "hold");
  g.add_task(1.0, 4, "wide");
  g.add_task(3.0, 1, "long");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);
  EXPECT_GE(r.schedule.entry_for(2).start, 3.0);  // after wide
}

TEST(EasyBackfill, LongJobMayUseSpareProcessorsAtReservation) {
  // Head needs only 2 of 4 at its reservation; a long narrow job can run
  // on the spare processors without delaying it.
  TaskGraph g;
  g.add_task(2.0, 3, "hold");
  g.add_task(1.0, 2, "head2");  // blocked (only 1 free), reserved at t=2
  g.add_task(5.0, 1, "longnarrow");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 0.0);  // spare backfill
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);  // on time
}

TEST(EasyBackfill, TiedFinishesAllCountTowardSpareProcessors) {
  // Regression: the reservation scan used to stop at the first running
  // task that made the head fit, so further tasks whose estimated finish
  // *tied* the reservation instant were not counted as spare — and a
  // backfill that was provably safe got rejected. Here A and B both
  // finish at the reservation t=2: with the undercount extra = 0 and the
  // narrow long job waits (makespan 7); counting the tie, extra = 2 and
  // it backfills at t=0 (makespan 5).
  TaskGraph g;
  g.add_task(2.0, 2, "A");
  g.add_task(2.0, 2, "B");
  g.add_task(2.0, 3, "head");   // blocked at t=0 (1 processor free)
  g.add_task(5.0, 1, "narrow"); // ends after t=2, needs the tie's spares
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 5);
  require_valid_schedule(g, r.schedule, 5);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(3).start, 0.0);  // backfilled
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 2.0);  // head on time
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
}

TEST(EasyBackfill, PaddedEstimatorChangesBackfillDecisions) {
  // Padding only diverges from declared once the blocker is mid-run (at
  // decision time the padded finish is start + 1.5*declared, while the
  // elapsed part is spent either way). At t=1 `hold` has one declared
  // second left: the declared reservation is t=2, too early for the 1.2s
  // backfill candidate; the padded reservation is t=3, late enough.
  TaskGraph g;
  g.add_task(2.0, 2, "hold");
  g.add_task(1.0, 2, "trigger");
  const TaskId wide = g.add_task(1.0, 4, "wide");
  const TaskId narrow = g.add_task(1.2, 1, "narrow");
  g.add_edge(1, wide);
  g.add_edge(1, narrow);

  EasyBackfill declared;
  const SimResult with_declared = simulate(g, declared, 4);
  require_valid_schedule(g, with_declared.schedule, 4);
  EXPECT_DOUBLE_EQ(with_declared.schedule.entry_for(narrow).start, 3.0);

  EasyBackfill padded(make_walltime_estimator("padded"),
                      "easy-backfill-padded");
  EXPECT_EQ(padded.name(), "easy-backfill-padded");
  const SimResult with_padding = simulate(g, padded, 4);
  require_valid_schedule(g, with_padding.schedule, 4);
  EXPECT_DOUBLE_EQ(with_padding.schedule.entry_for(narrow).start, 1.0);
}

TEST(EasyBackfill, ValidOnRandomDags) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
    EasyBackfill sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(EasyBackfill, WorkConservingBound) {
  // Never idles the whole platform with a fitting job -> T <= C + A.
  Rng rng(9);
  const TaskGraph g = random_order_dag(rng, 100, 0.04, RandomTaskParams{});
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 8);
  const InstanceBounds b = compute_bounds(g, 8);
  EXPECT_LE(r.makespan, b.critical_path + b.area + 1e-9);
}

TEST(EasyBackfill, HandlesWorkloadDags) {
  for (const TaskGraph& g : {cholesky_dag(6), stencil_dag(8, 8)}) {
    EasyBackfill sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

}  // namespace
}  // namespace catbatch
