#include "sched/backfill.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(EasyBackfill, Name) { EXPECT_EQ(EasyBackfill().name(), "easy-backfill"); }

TEST(EasyBackfill, StartsHeadWhenItFits) {
  TaskGraph g;
  g.add_task(1.0, 2, "head");
  g.add_task(1.0, 2, "next");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
}

TEST(EasyBackfill, ShortJobBackfillsBeforeBlockedHead) {
  // hold(2.0, p=1) runs; head wide(p=4) blocked until t=2; short(1.0, p=1)
  // finishes before the reservation -> backfills at t=0.
  TaskGraph g;
  g.add_task(2.0, 1, "hold");
  g.add_task(1.0, 4, "wide");
  g.add_task(1.0, 1, "short");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 0.0);  // backfilled
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);  // reservation held
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(EasyBackfill, LongJobMustNotDelayReservation) {
  // long(3.0, p=1) would finish after the t=2 reservation AND the head
  // needs all processors at the reservation -> no spare -> must NOT
  // backfill ahead of the reserved head.
  TaskGraph g;
  g.add_task(2.0, 1, "hold");
  g.add_task(1.0, 4, "wide");
  g.add_task(3.0, 1, "long");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);
  EXPECT_GE(r.schedule.entry_for(2).start, 3.0);  // after wide
}

TEST(EasyBackfill, LongJobMayUseSpareProcessorsAtReservation) {
  // Head needs only 2 of 4 at its reservation; a long narrow job can run
  // on the spare processors without delaying it.
  TaskGraph g;
  g.add_task(2.0, 3, "hold");
  g.add_task(1.0, 2, "head2");  // blocked (only 1 free), reserved at t=2
  g.add_task(5.0, 1, "longnarrow");
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 0.0);  // spare backfill
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);  // on time
}

TEST(EasyBackfill, ValidOnRandomDags) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
    EasyBackfill sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(EasyBackfill, WorkConservingBound) {
  // Never idles the whole platform with a fitting job -> T <= C + A.
  Rng rng(9);
  const TaskGraph g = random_order_dag(rng, 100, 0.04, RandomTaskParams{});
  EasyBackfill sched;
  const SimResult r = simulate(g, sched, 8);
  const InstanceBounds b = compute_bounds(g, 8);
  EXPECT_LE(r.makespan, b.critical_path + b.area + 1e-9);
}

TEST(EasyBackfill, HandlesWorkloadDags) {
  for (const TaskGraph& g : {cholesky_dag(6), stencil_dag(8, 8)}) {
    EasyBackfill sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

}  // namespace
}  // namespace catbatch
