#include "sched/catbatch_contiguous.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

void expect_contiguous(const Schedule& schedule) {
  for (const ScheduledTask& e : schedule.entries()) {
    for (std::size_t k = 1; k < e.processors.size(); ++k) {
      EXPECT_EQ(e.processors[k], e.processors[k - 1] + 1)
          << "task " << e.id << " holds a non-contiguous range";
    }
  }
}

TEST(ContiguousCatBatch, PaperExampleFeasibleAndContiguous) {
  const TaskGraph g = make_paper_example();
  const ContiguousCatBatchResult r = catbatch_contiguous_schedule(g, 4);
  require_valid_schedule(g, r.schedule, 4);
  expect_contiguous(r.schedule);
  EXPECT_EQ(r.batch_count, 6u);  // same six categories as Figure 6
}

TEST(ContiguousCatBatch, RandomInstances) {
  Rng rng(64);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
    const ContiguousCatBatchResult r = catbatch_contiguous_schedule(g, 8);
    require_valid_schedule(g, r.schedule, 8);
    expect_contiguous(r.schedule);
    EXPECT_GE(r.makespan, makespan_lower_bound(g, 8) - 1e-9);
  }
}

TEST(ContiguousCatBatch, ShelfBoundPerBatchStructure) {
  // Contiguity costs at most the NFDH constant: total <= 2A/P + 2·ΣL_ζ.
  Rng rng(66);
  const int P = 8;
  const TaskGraph g = random_layered_dag(rng, 150, 12, RandomTaskParams{});
  const Time critical = critical_path_length(g);
  const auto cats = compute_categories(g);
  std::map<Time, Time> lengths;
  for (TaskId id = 0; id < g.size(); ++id) {
    lengths[cats[id].value()] = category_length(cats[id], critical);
  }
  Time sum_lengths = 0.0;
  for (const auto& entry : lengths) sum_lengths += entry.second;
  const ContiguousCatBatchResult r = catbatch_contiguous_schedule(g, P);
  EXPECT_LE(r.makespan,
            2.0 * g.total_area() / P + 2.0 * sum_lengths + 1e-9);
}

TEST(ContiguousCatBatch, NoWorseThanTwiceFreeAllocation) {
  // Empirical sanity: contiguity should cost a modest constant, never
  // blow up relative to the free-allocation CatBatch.
  Rng rng(68);
  for (int trial = 0; trial < 5; ++trial) {
    const TaskGraph g = random_order_dag(rng, 100, 0.04, RandomTaskParams{});
    const ContiguousCatBatchResult contiguous =
        catbatch_contiguous_schedule(g, 8);
    CatBatchScheduler free_alloc;
    const Time free_makespan = simulate(g, free_alloc, 8).makespan;
    EXPECT_LE(contiguous.makespan, 2.0 * free_makespan + 1e-9);
  }
}

TEST(ContiguousCatBatch, EmptyAndSingle) {
  const TaskGraph empty;
  EXPECT_DOUBLE_EQ(catbatch_contiguous_schedule(empty, 4).makespan, 0.0);
  TaskGraph single;
  single.add_task(2.0, 3, "solo");
  const ContiguousCatBatchResult r = catbatch_contiguous_schedule(single, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  expect_contiguous(r.schedule);
}

TEST(TransitiveReduction, RemovesImpliedEdges) {
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // implied by 0 -> 1 -> 2
  EXPECT_EQ(g.transitive_reduction(), 1u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.reaches(0, 2));
}

TEST(TransitiveReduction, PreservesSchedulingSemantics) {
  Rng rng(70);
  TaskGraph g = random_order_dag(rng, 60, 0.15, RandomTaskParams{});
  const auto crit_before = compute_criticalities(g);
  CatBatchScheduler before;
  const Time makespan_before = simulate(g, before, 8).makespan;

  const std::size_t removed = g.transitive_reduction();
  EXPECT_GT(removed, 0u);  // dense order-DAGs carry many implied edges
  const auto crit_after = compute_criticalities(g);
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_EQ(crit_before[id], crit_after[id]) << "task " << id;
  }
  CatBatchScheduler after;
  EXPECT_DOUBLE_EQ(simulate(g, after, 8).makespan, makespan_before);
}

TEST(TransitiveReduction, IdempotentAndNoOpOnTrees) {
  Rng rng(72);
  TaskGraph tree = random_out_tree(rng, 50, 3, RandomTaskParams{});
  EXPECT_EQ(tree.transitive_reduction(), 0u);
  TaskGraph g = random_order_dag(rng, 40, 0.2, RandomTaskParams{});
  (void)g.transitive_reduction();
  EXPECT_EQ(g.transitive_reduction(), 0u);  // second pass removes nothing
}

}  // namespace
}  // namespace catbatch
