#include "sched/divide_conquer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(DivideConquer, ValidOnPaperExample) {
  const TaskGraph g = make_paper_example();
  const DivideConquerResult r = divide_conquer_schedule(g, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_GE(r.batch_count, 1u);
  EXPECT_GE(r.schedule.makespan(), makespan_lower_bound(g, 4));
}

TEST(DivideConquer, SingleTask) {
  TaskGraph g;
  g.add_task(2.0, 3, "solo");
  const DivideConquerResult r = divide_conquer_schedule(g, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.makespan(), 2.0);
  EXPECT_EQ(r.batch_count, 1u);
}

TEST(DivideConquer, EmptyInstance) {
  const TaskGraph g;
  const DivideConquerResult r = divide_conquer_schedule(g, 4);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_EQ(r.batch_count, 0u);
}

TEST(DivideConquer, ChainSerializesInOrder) {
  TaskGraph g;
  g.add_task(1.0, 1, "a");
  g.add_task(1.0, 1, "b");
  g.add_task(1.0, 1, "c");
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const DivideConquerResult r = divide_conquer_schedule(g, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.makespan(), 3.0);
}

TEST(DivideConquer, StraddlingTasksAreIndependent) {
  // The correctness core: validation on many random DAGs exercises the
  // independence of each straddling set implicitly (a dependency inside a
  // batch would surface as a precedence violation).
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
    const DivideConquerResult r = divide_conquer_schedule(g, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(DivideConquer, RatioWithinOfflineGuaranteeOnRandomFamilies) {
  // Augustine-style bound: ratio = O(log n). Empirically check against
  // log2(n+1) + 2 on benign families.
  Rng rng(93);
  const int P = 16;
  RandomTaskParams params;
  params.procs.max_procs = P;
  for (int trial = 0; trial < 8; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 200, 14, params);
    const DivideConquerResult r = divide_conquer_schedule(g, P);
    const double ratio = static_cast<double>(r.schedule.makespan()) /
                         static_cast<double>(makespan_lower_bound(g, P));
    EXPECT_LE(ratio,
              std::log2(static_cast<double>(g.size()) + 1.0) + 2.0 + 1e-9);
  }
}

TEST(DivideConquer, DepthLogarithmicInLengthSpread) {
  Rng rng(95);
  RandomTaskParams params;
  params.work.min_work = 1.0;
  params.work.max_work = 1.0;
  const TaskGraph g = random_layered_dag(rng, 100, 10, params);
  const DivideConquerResult r = divide_conquer_schedule(g, 8);
  // Unit tasks, C <= 10ish -> depth well under 16.
  EXPECT_LE(r.max_depth, 16u);
}

TEST(DivideConquer, WorksOnWorkloadDags) {
  for (const TaskGraph& g :
       {cholesky_dag(6), lu_dag(5), stencil_dag(8, 8), fft_dag(4)}) {
    const DivideConquerResult r = divide_conquer_schedule(g, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(DivideConquer, RejectsInvalidInput) {
  TaskGraph g;
  g.add_task(1.0, 8);
  EXPECT_THROW((void)divide_conquer_schedule(g, 4), ContractViolation);
  EXPECT_THROW((void)divide_conquer_schedule(g, 0), ContractViolation);
}

TEST(DivideConquer, IntroInstanceAvoidsAsapTrap) {
  // Offline D&C also dodges the Figure 1 pathology: decoy C tasks straddle
  // high midpoints and are batched late.
  const int P = 32;
  const IntroInstance intro = make_intro_instance(P);
  const DivideConquerResult r = divide_conquer_schedule(intro.graph, P);
  require_valid_schedule(intro.graph, r.schedule, P);
  EXPECT_LT(r.schedule.makespan(),
            intro_asap_makespan(P, intro.epsilon) / 3.0);
}

}  // namespace
}  // namespace catbatch
