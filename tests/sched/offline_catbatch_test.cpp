#include "sched/offline_catbatch.hpp"

#include <gtest/gtest.h>

#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

/// Online and offline CatBatch must produce bit-identical schedules on
/// static instances: Lemma 1 makes the online criticality recurrence exact.
void expect_identical_schedules(const TaskGraph& g, int procs) {
  CatBatchScheduler online;
  CatBatchScheduler offline = make_offline_catbatch(g);
  const SimResult ro = simulate(g, online, procs);
  const SimResult rf = simulate(g, offline, procs);
  require_valid_schedule(g, ro.schedule, procs);
  require_valid_schedule(g, rf.schedule, procs);
  ASSERT_EQ(ro.schedule.size(), rf.schedule.size());
  for (TaskId id = 0; id < g.size(); ++id) {
    const ScheduledTask& a = ro.schedule.entry_for(id);
    const ScheduledTask& b = rf.schedule.entry_for(id);
    EXPECT_DOUBLE_EQ(a.start, b.start) << "task " << id;
    EXPECT_DOUBLE_EQ(a.finish, b.finish) << "task " << id;
    EXPECT_EQ(a.processors, b.processors) << "task " << id;
  }
}

TEST(OfflineCatBatch, MatchesOnlineOnPaperExample) {
  expect_identical_schedules(make_paper_example(), 4);
}

TEST(OfflineCatBatch, MatchesOnlineOnIntroInstance) {
  expect_identical_schedules(make_intro_instance(8).graph, 8);
}

TEST(OfflineCatBatch, MatchesOnlineOnRandomFamilies) {
  Rng rng(61);
  expect_identical_schedules(
      random_layered_dag(rng, 120, 10, RandomTaskParams{}), 8);
  expect_identical_schedules(
      random_order_dag(rng, 90, 0.05, RandomTaskParams{}), 8);
  expect_identical_schedules(
      random_series_parallel(rng, 100, 0.5, RandomTaskParams{}), 8);
  expect_identical_schedules(random_out_tree(rng, 80, 3, RandomTaskParams{}),
                             8);
}

TEST(OfflineCatBatch, NameDistinguishesIt) {
  const TaskGraph g = make_paper_example();
  EXPECT_EQ(make_offline_catbatch(g).name(), "offline-catbatch");
}

TEST(OfflineCatBatch, FixedCategoriesMustCoverAllTasks) {
  // Scheduler built for a small graph cannot run a larger one.
  TaskGraph small;
  small.add_task(1.0, 1);
  TaskGraph big;
  big.add_task(1.0, 1);
  big.add_task(1.0, 1);
  big.add_edge(0, 1);
  CatBatchScheduler sched = make_offline_catbatch(small);
  EXPECT_THROW((void)simulate(big, sched, 2), ContractViolation);
}

}  // namespace
}  // namespace catbatch
