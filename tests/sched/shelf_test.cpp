#include "sched/shelf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/graph.hpp"
#include "instances/random_dags.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

std::vector<Task> make_tasks(
    std::initializer_list<std::pair<double, int>> specs) {
  std::vector<Task> out;
  for (const auto& [work, procs] : specs) {
    out.push_back(Task{work, procs, ""});
  }
  return out;
}

TaskGraph edgeless_graph(std::span<const Task> tasks) {
  TaskGraph g;
  for (const Task& t : tasks) g.add_task(t.work, t.procs, t.name);
  return g;
}

TEST(Nfdh, SingleShelfWhenEverythingFits) {
  const auto tasks = make_tasks({{2.0, 1}, {1.5, 2}, {1.0, 1}});
  const ShelfPacking packing = pack_nfdh(tasks, 4);
  EXPECT_EQ(packing.shelf_count(), 1u);
  EXPECT_DOUBLE_EQ(packing.total_height, 2.0);  // tallest task
}

TEST(Nfdh, OpensNewShelfOnOverflow) {
  const auto tasks = make_tasks({{3.0, 3}, {2.0, 3}, {1.0, 2}});
  const ShelfPacking packing = pack_nfdh(tasks, 4);
  // Decreasing height: each task overflows the previous shelf on P=4.
  EXPECT_EQ(packing.shelf_count(), 3u);
  EXPECT_DOUBLE_EQ(packing.total_height, 6.0);
}

TEST(Nfdh, ShelfHeightIsFirstTaskHeight) {
  const auto tasks = make_tasks({{4.0, 2}, {3.0, 2}, {2.0, 2}, {1.0, 2}});
  const ShelfPacking packing = pack_nfdh(tasks, 4);
  ASSERT_EQ(packing.shelf_count(), 2u);
  EXPECT_DOUBLE_EQ(packing.shelf_heights[0], 4.0);
  EXPECT_DOUBLE_EQ(packing.shelf_heights[1], 2.0);
}

TEST(Nfdh, ThreeApproxBoundHolds) {
  // Height <= 2*A/P + t_max (the Lemma 6-style bound for shelves).
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTaskParams params;
    params.procs.max_procs = 8;
    const TaskGraph g = random_independent(rng, 60, params);
    std::vector<Task> tasks;
    for (TaskId id = 0; id < g.size(); ++id) tasks.push_back(g.task(id));
    const ShelfPacking packing = pack_nfdh(tasks, 8);
    EXPECT_LE(packing.total_height,
              2.0 * g.total_area() / 8.0 + g.max_work() + 1e-9);
  }
}

TEST(Ffdh, NeverTallerThanNfdh) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTaskParams params;
    params.procs.max_procs = 8;
    const TaskGraph g = random_independent(rng, 40, params);
    std::vector<Task> tasks;
    for (TaskId id = 0; id < g.size(); ++id) tasks.push_back(g.task(id));
    EXPECT_LE(pack_ffdh(tasks, 8).total_height,
              pack_nfdh(tasks, 8).total_height + 1e-12);
  }
}

TEST(Ffdh, ReusesEarlierShelves) {
  // NFDH closes shelves; FFDH goes back. Heights 4,3,1 with widths 3,3,2 on
  // P=4: NFDH -> shelves 4,3,1; FFDH puts the 1-high task beside the
  // 4-high one -> shelves 4,3.
  const auto tasks = make_tasks({{4.0, 3}, {3.0, 3}, {1.0, 1}});
  EXPECT_DOUBLE_EQ(pack_nfdh(tasks, 4).total_height, 7.0);
  EXPECT_DOUBLE_EQ(pack_ffdh(tasks, 4).total_height, 7.0);
  const auto tasks2 = make_tasks({{4.0, 3}, {3.0, 4}, {1.0, 1}});
  EXPECT_DOUBLE_EQ(pack_ffdh(tasks2, 4).total_height, 7.0);
  EXPECT_DOUBLE_EQ(pack_nfdh(tasks2, 4).total_height, 8.0);
}

TEST(ShelfPacking, ConvertsToValidSchedule) {
  Rng rng(7);
  RandomTaskParams params;
  params.procs.max_procs = 6;
  const TaskGraph g = random_independent(rng, 50, params);
  std::vector<Task> tasks;
  for (TaskId id = 0; id < g.size(); ++id) tasks.push_back(g.task(id));
  for (const bool use_ffdh : {false, true}) {
    const ShelfPacking packing =
        use_ffdh ? pack_ffdh(tasks, 6) : pack_nfdh(tasks, 6);
    const Schedule schedule = packing_to_schedule(packing, tasks);
    require_valid_schedule(edgeless_graph(tasks), schedule, 6);
    EXPECT_DOUBLE_EQ(schedule.makespan(), packing.total_height);
  }
}

TEST(ShelfPacking, ProcessorRangesAreContiguous) {
  const auto tasks = make_tasks({{2.0, 2}, {2.0, 2}, {1.0, 3}});
  const ShelfPacking packing = pack_nfdh(tasks, 4);
  const Schedule schedule = packing_to_schedule(packing, tasks);
  for (const ScheduledTask& e : schedule.entries()) {
    for (std::size_t k = 1; k < e.processors.size(); ++k) {
      EXPECT_EQ(e.processors[k], e.processors[k - 1] + 1);
    }
  }
}

TEST(GreedyIndependent, SatisfiesLemma6Bound) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTaskParams params;
    params.procs.max_procs = 8;
    const TaskGraph g = random_independent(rng, 50, params);
    std::vector<Task> tasks;
    for (TaskId id = 0; id < g.size(); ++id) tasks.push_back(g.task(id));
    const Schedule schedule = greedy_independent(tasks, 8);
    require_valid_schedule(edgeless_graph(tasks), schedule, 8);
    EXPECT_LE(schedule.makespan(),
              2.0 * g.total_area() / 8.0 + g.max_work() + 1e-9);
  }
}

TEST(Shelf, RejectsOversizedTasks) {
  const auto tasks = make_tasks({{1.0, 5}});
  EXPECT_THROW((void)pack_nfdh(tasks, 4), ContractViolation);
  EXPECT_THROW((void)pack_ffdh(tasks, 4), ContractViolation);
  EXPECT_THROW((void)greedy_independent(tasks, 4), ContractViolation);
}

TEST(Shelf, EmptyInput) {
  const std::vector<Task> none;
  EXPECT_DOUBLE_EQ(pack_nfdh(none, 4).total_height, 0.0);
  EXPECT_EQ(pack_ffdh(none, 4).shelf_count(), 0u);
}

}  // namespace
}  // namespace catbatch
