#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

TaskGraph independent_instance() {
  Rng rng(7);
  RandomTaskParams params;
  params.procs.max_procs = 4;
  return random_independent(rng, 24, params);
}

TEST(Registry, EveryNameConstructs) {
  const TaskGraph indep = independent_instance();
  const TaskGraph dag = make_paper_example();
  for (const SchedulerEntry& entry : scheduler_registry()) {
    const TaskGraph& g = entry.independent_only ? indep : dag;
    const auto sched = make_scheduler(entry.name, g);
    ASSERT_NE(sched, nullptr) << entry.name;
    EXPECT_FALSE(sched->name().empty()) << entry.name;
    if (entry.kind == SchedulerKind::Online) {
      EXPECT_NE(make_scheduler(entry.name), nullptr) << entry.name;
    } else {
      // Offline entries need a graph.
      EXPECT_EQ(make_scheduler(entry.name), nullptr) << entry.name;
    }
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(find_scheduler("no-such-algorithm"), nullptr);
  EXPECT_EQ(make_scheduler("no-such-algorithm"), nullptr);
  const TaskGraph g = make_paper_example();
  EXPECT_EQ(make_scheduler("no-such-algorithm", g), nullptr);
}

TEST(Registry, AliasesResolveToTheSameEntry) {
  for (const SchedulerEntry& entry : scheduler_registry()) {
    for (const std::string& alias : entry.aliases) {
      EXPECT_EQ(find_scheduler(alias), find_scheduler(entry.name)) << alias;
    }
  }
  // Historical sched_cli spellings keep working.
  for (const char* alias :
       {"relaxed", "list-lpt", "list-spt", "list-widest", "list-crit"}) {
    EXPECT_NE(find_scheduler(alias), nullptr) << alias;
  }
}

TEST(Registry, NamesAreUniqueAcrossAliases) {
  std::set<std::string> seen;
  for (const SchedulerEntry& entry : scheduler_registry()) {
    EXPECT_TRUE(seen.insert(entry.name).second) << entry.name;
    for (const std::string& alias : entry.aliases) {
      EXPECT_TRUE(seen.insert(alias).second) << alias;
    }
  }
}

TEST(Registry, EveryEntrySimulatesToAValidSchedule) {
  const TaskGraph indep = independent_instance();
  const TaskGraph dag = make_paper_example();
  const int procs = 4;
  for (const SchedulerEntry& entry : scheduler_registry()) {
    const TaskGraph& g = entry.independent_only ? indep : dag;
    const auto sched = make_scheduler(entry.name, g);
    ASSERT_NE(sched, nullptr) << entry.name;
    const SimResult r = simulate(g, *sched, procs);
    require_valid_schedule(g, r.schedule, procs);
    EXPECT_EQ(r.schedule.size(), g.size()) << entry.name;
    EXPECT_GT(r.makespan, 0.0) << entry.name;
  }
}

TEST(Registry, OfflineRepliesMatchTheirOfflineConstructions) {
  // The replay adapter must reproduce the offline makespan exactly.
  Rng rng(11);
  RandomTaskParams params;
  params.procs.max_procs = 8;
  const TaskGraph g = random_layered_dag(rng, 60, 6, params);
  const int procs = 8;
  for (const char* name : {"divide-conquer", "contiguous-catbatch"}) {
    const auto sched = make_scheduler(name, g);
    ASSERT_NE(sched, nullptr) << name;
    const SimResult first = simulate(g, *sched, procs);
    // Re-simulating with the same adapter (after reset) is deterministic.
    const SimResult second = simulate(g, *sched, procs);
    EXPECT_DOUBLE_EQ(static_cast<double>(first.makespan),
                     static_cast<double>(second.makespan))
        << name;
  }
}

TEST(Registry, StandardLineupReadsFromRegistry) {
  const std::vector<std::string> names = standard_lineup();
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names.front(), "catbatch");
  for (const std::string& name : names) {
    const SchedulerEntry* entry = find_scheduler(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->kind, SchedulerKind::Online) << name;
    EXPECT_EQ(entry->name, name) << name;  // canonical, not an alias
  }
}

TEST(Registry, SchedulerNamesMatchEntries) {
  const auto names = scheduler_names();
  EXPECT_EQ(names.size(), scheduler_registry().size());
  EXPECT_NE(std::find(names.begin(), names.end(), "catbatch"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "divide-conquer"),
            names.end());
}

}  // namespace
}  // namespace catbatch
