// Backfilling under a dynamic platform (docs/SCENARIOS.md): capacity
// drops must make both backfill schedulers hold their queues instead of
// backfilling against a reservation that cannot exist, and killed tasks
// must leave the reservation math and re-enter the FIFO order on
// resubmission.
#include <gtest/gtest.h>

#include <vector>

#include "scenario/runner.hpp"
#include "sched/backfill.hpp"
#include "sched/conservative_backfill.hpp"
#include "sim/session.hpp"
#include "sim/source.hpp"

namespace catbatch {
namespace {

std::vector<SourceTask> one_task(Time work, int procs) {
  SourceTask task;
  task.work = work;
  task.procs = procs;
  return {task};
}

template <typename Scheduler>
void capacity_drop_holds_queue() {
  Scheduler sched;
  SessionEngine session(sched, 4);
  // A narrow long task starts; capacity then drops to 1 (fully occupied
  // by it). A 3-wide arrival cannot fit even after every running task
  // finishes — no reservation time exists — so the queue must hold.
  const auto at0 = session.submit(one_task(10.0, 1), 0.0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(session.set_capacity(1, 0.5).size(), 0u);
  const auto blocked = session.submit(one_task(1.0, 3), 1.0);
  EXPECT_EQ(blocked.size(), 0u);

  // Capacity returns: the held job starts at the restore instant.
  const auto restored = session.set_capacity(4, 2.0);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].id, 1u);
  EXPECT_DOUBLE_EQ(restored[0].at, 2.0);
  EXPECT_EQ(restored[0].procs, 3);

  session.drain();
  const SimResult r = session.finish();
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_EQ(r.stats.capacity_changes, 2u);
}

TEST(BackfillDynamic, EasyHoldsQueueUnderCapacityDrop) {
  capacity_drop_holds_queue<EasyBackfill>();
}

TEST(BackfillDynamic, ConservativeHoldsQueueUnderCapacityDrop) {
  capacity_drop_holds_queue<ConservativeBackfill>();
}

template <typename Scheduler>
void kill_requeues_fifo() {
  Scheduler sched;
  SessionEngine session(sched, 4);
  // wide(p=4) takes the platform; narrow(p=1) queues behind it.
  auto tasks = one_task(10.0, 4);
  tasks.push_back(one_task(5.0, 1)[0]);
  const auto at0 = session.submit(std::move(tasks), 0.0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0].id, 0u);

  // Kill the wide task at t=1: its attempt leaves the reservation math,
  // and the resubmission queues FIFO *behind* narrow — so narrow starts
  // immediately and wide is reserved at narrow's estimated finish (t=6).
  const auto after_kill = session.kill(0, 1.0);
  ASSERT_EQ(after_kill.size(), 1u);
  EXPECT_EQ(after_kill[0].id, 1u);
  EXPECT_DOUBLE_EQ(after_kill[0].at, 1.0);

  session.drain();
  const SimResult r = session.finish();
  EXPECT_EQ(r.stats.kills, 1u);
  EXPECT_GT(r.stats.lost_area, 0.0);
  EXPECT_EQ(r.schedule.aborted().size(), 1u);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 6.0);
  EXPECT_DOUBLE_EQ(r.makespan, 16.0);
}

TEST(BackfillDynamic, EasyKillResubmitsBehindQueuedWork) {
  kill_requeues_fifo<EasyBackfill>();
}

TEST(BackfillDynamic, ConservativeKillResubmitsBehindQueuedWork) {
  kill_requeues_fifo<ConservativeBackfill>();
}

TEST(BackfillDynamic, NewSchedulersSurviveCrashScenarios) {
  // The registry-wide no-op parity and fuzz batteries cover these names
  // dynamically; this pins an explicit faulty run per new scheduler.
  TaskGraph g;
  for (int k = 0; k < 24; ++k) {
    (void)g.add_task(1.0 + 0.25 * static_cast<double>(k % 4), 1 + k % 3,
                     "t");
  }
  for (const char* name : {"conservative-backfill", "easy-backfill-padded",
                           "easy-backfill-adaptive"}) {
    const Scenario scenario = make_scenario("crash", 6, 12.0, 99);
    ScenarioRunOptions options;
    options.mode = ScheduleMode::Counting;
    const ScenarioOutcome outcome =
        run_scenario(g, name, 6, scenario, options);
    check_scenario_feasible(outcome.result, g, scenario, 6);
    EXPECT_GT(outcome.result.makespan, 0.0) << name;
  }
}

}  // namespace
}  // namespace catbatch
