#include "sched/catbatch_scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(CatBatch, NameReflectsOrder) {
  EXPECT_EQ(CatBatchScheduler().name(), "catbatch(arrival)");
  CatBatchOptions options;
  options.batch_order = BatchOrder::WidestFirst;
  EXPECT_EQ(CatBatchScheduler(options).name(), "catbatch(widest-first)");
}

TEST(CatBatch, PaperExampleScheduleMatchesFigure6) {
  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_NEAR(r.makespan, 15.2, 1e-9);

  // Batch sequence: ζ = 1, 2, 3.5, 4, 5, 6.5 (Figure 6).
  const auto& history = sched.batch_history();
  ASSERT_EQ(history.size(), 6u);
  const double expected_zeta[] = {1.0, 2.0, 3.5, 4.0, 5.0, 6.5};
  const double expected_end[] = {2.0, 5.0, 5.8, 11.8, 14.4, 15.2};
  for (std::size_t k = 0; k < history.size(); ++k) {
    EXPECT_DOUBLE_EQ(history[k].category.value(), expected_zeta[k]);
    EXPECT_NEAR(history[k].finished, expected_end[k], 1e-9) << "batch " << k;
  }

  // Batch membership (names A..K at ids 0..10).
  EXPECT_EQ(history[0].tasks, (std::vector<TaskId>{1}));        // B
  EXPECT_EQ(history[1].tasks, (std::vector<TaskId>{2, 3}));     // C, D
  EXPECT_EQ(history[2].tasks, (std::vector<TaskId>{5, 6}));     // F, G
  EXPECT_EQ(history[3].tasks, (std::vector<TaskId>{0, 4, 8}));  // A, E, I
  EXPECT_EQ(history[5].tasks, (std::vector<TaskId>{9}));        // J
}

TEST(CatBatch, BatchesRunBackToBack) {
  // Lemma 7: no idle time between batches.
  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  (void)simulate(g, sched, 4);
  const auto& history = sched.batch_history();
  EXPECT_DOUBLE_EQ(history.front().started, 0.0);
  for (std::size_t k = 1; k < history.size(); ++k) {
    EXPECT_DOUBLE_EQ(history[k].started, history[k - 1].finished);
  }
}

TEST(CatBatch, BeatsAsapOnIntroInstance) {
  // Figure 1's motivation: CatBatch must stay near 1 while ASAP pays ~P.
  const int P = 32;
  const IntroInstance intro = make_intro_instance(P);
  CatBatchScheduler sched;
  const SimResult r = simulate(intro.graph, sched, P);
  require_valid_schedule(intro.graph, r.schedule, P);
  const Time asap = intro_asap_makespan(P, intro.epsilon);
  EXPECT_LT(r.makespan, asap / 3.0)
      << "CatBatch should decisively beat ASAP on the adversarial intro DAG";
  // And stays within the Theorem 1 guarantee.
  const Time lb = makespan_lower_bound(intro.graph, P);
  EXPECT_LE(static_cast<double>(r.makespan / lb),
            theorem1_bound(intro.graph.size()) + 1e-9);
}

TEST(CatBatch, BatchBarrierIsRespected) {
  // No task of a later batch may start before the previous batch finishes.
  Rng rng(17);
  const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 8);
  const auto& history = sched.batch_history();
  Time prev_end = 0.0;
  for (const BatchRecord& batch : history) {
    for (const TaskId id : batch.tasks) {
      EXPECT_GE(r.schedule.entry_for(id).start, prev_end - 1e-12);
      EXPECT_LE(r.schedule.entry_for(id).finish, batch.finished + 1e-12);
    }
    prev_end = batch.finished;
  }
}

TEST(CatBatch, BatchCategoriesStrictlyIncrease) {
  Rng rng(23);
  const TaskGraph g = random_series_parallel(rng, 150, 0.5,
                                             RandomTaskParams{});
  CatBatchScheduler sched;
  (void)simulate(g, sched, 8);
  const auto& history = sched.batch_history();
  for (std::size_t k = 1; k < history.size(); ++k) {
    EXPECT_LT(history[k - 1].category.value(), history[k].category.value());
  }
}

TEST(CatBatch, EveryTaskInExactlyOneBatch) {
  Rng rng(29);
  const TaskGraph g = random_order_dag(rng, 100, 0.04, RandomTaskParams{});
  CatBatchScheduler sched;
  (void)simulate(g, sched, 8);
  std::vector<int> seen(g.size(), 0);
  for (const BatchRecord& batch : sched.batch_history()) {
    for (const TaskId id : batch.tasks) ++seen[id];
  }
  for (TaskId id = 0; id < g.size(); ++id) EXPECT_EQ(seen[id], 1);
}

TEST(CatBatch, Lemma6HoldsPerBatch) {
  // T(B_ζ) <= 2 A(B_ζ)/P + L_ζ for every executed batch.
  Rng rng(31);
  const int P = 8;
  for (int trial = 0; trial < 5; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 100, 8, RandomTaskParams{});
    const Time critical = critical_path_length(g);
    CatBatchScheduler sched;
    (void)simulate(g, sched, P);
    for (const BatchRecord& batch : sched.batch_history()) {
      Time area = 0.0;
      for (const TaskId id : batch.tasks) area += g.task(id).area();
      const Time len = category_length(batch.category, critical);
      const Time duration = batch.finished - batch.started;
      EXPECT_LE(duration, 2.0 * area / P + len + 1e-9)
          << "batch ζ=" << batch.category.value();
    }
  }
}

TEST(CatBatch, Lemma7MakespanDecomposition) {
  // Makespan <= 2 A/P + Σ L_ζ over executed batches.
  Rng rng(37);
  const int P = 8;
  const TaskGraph g = random_layered_dag(rng, 150, 12, RandomTaskParams{});
  const Time critical = critical_path_length(g);
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, P);
  Time sum_lengths = 0.0;
  for (const BatchRecord& batch : sched.batch_history()) {
    sum_lengths += category_length(batch.category, critical);
  }
  EXPECT_LE(r.makespan,
            2.0 * g.total_area() / P + sum_lengths + 1e-9);
}

TEST(CatBatch, SingleTaskInstance) {
  TaskGraph g;
  g.add_task(3.0, 2, "only");
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  ASSERT_EQ(sched.batch_history().size(), 1u);
}

TEST(CatBatch, IndependentEqualTasksFormOneBatch) {
  TaskGraph g;
  for (int k = 0; k < 6; ++k) g.add_task(1.0, 2);
  CatBatchScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  // All share criticality (0,1) -> ζ = 0.5, one batch, two at a time.
  ASSERT_EQ(sched.batch_history().size(), 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

class CatBatchOrderParam : public ::testing::TestWithParam<BatchOrder> {};

TEST_P(CatBatchOrderParam, AnyInBatchOrderIsValidAndBounded) {
  // Lemma 6 holds for any in-batch order; so does Theorem 1.
  Rng rng(43);
  const int P = 8;
  for (int trial = 0; trial < 4; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 80, 8, RandomTaskParams{});
    CatBatchOptions options;
    options.batch_order = GetParam();
    CatBatchScheduler sched(options);
    const SimResult r = simulate(g, sched, P);
    require_valid_schedule(g, r.schedule, P);
    const Time lb = makespan_lower_bound(g, P);
    EXPECT_LE(static_cast<double>(r.makespan / lb),
              theorem1_bound(g.size()) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, CatBatchOrderParam,
                         ::testing::Values(BatchOrder::Arrival,
                                           BatchOrder::WidestFirst,
                                           BatchOrder::LongestFirst,
                                           BatchOrder::ShortestFirst),
                         [](const ::testing::TestParamInfo<BatchOrder>& param_info) {
                           std::string name = to_string(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CatBatch, OriginShiftPreservesValidityAndBounds) {
  // Translating the dyadic lattice re-buckets tasks but keeps every
  // schedule feasible; the Theorem 1 bound holds with C + shift.
  Rng rng(47);
  const int P = 8;
  const TaskGraph g = random_layered_dag(rng, 100, 8, RandomTaskParams{});
  for (const Time shift : {0.0, 0.25, 1.0, 7.5}) {
    CatBatchOptions options;
    options.origin_shift = shift;
    CatBatchScheduler sched(options);
    const SimResult r = simulate(g, sched, P);
    require_valid_schedule(g, r.schedule, P);
  }
}

TEST(CatBatch, OriginShiftChangesBatchStructure) {
  // Two independent unit tasks at s∞ = 0: ζ = 0.5 unshifted. Shift by
  // 0.5: intervals (0.5, 1.5) -> ζ = 1 — a different lattice anchor.
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(1.0, 1);
  CatBatchScheduler plain;
  (void)simulate(g, plain, 2);
  ASSERT_EQ(plain.batch_history().size(), 1u);
  EXPECT_DOUBLE_EQ(plain.batch_history()[0].category.value(), 0.5);

  CatBatchOptions options;
  options.origin_shift = 0.5;
  CatBatchScheduler shifted(options);
  (void)simulate(g, shifted, 2);
  ASSERT_EQ(shifted.batch_history().size(), 1u);
  EXPECT_DOUBLE_EQ(shifted.batch_history()[0].category.value(), 1.0);
}

TEST(CatBatch, NegativeOriginShiftRejected) {
  TaskGraph g;
  g.add_task(1.0, 1);
  CatBatchOptions options;
  options.origin_shift = -1.0;
  CatBatchScheduler sched(options);
  EXPECT_THROW((void)simulate(g, sched, 1), ContractViolation);
}

TEST(CatBatch, ResetClearsStateBetweenRuns) {
  const TaskGraph g = make_paper_example();
  CatBatchScheduler sched;
  const SimResult first = simulate(g, sched, 4);
  const SimResult second = simulate(g, sched, 4);  // reset() re-invoked
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(sched.batch_history().size(), 6u);
}

}  // namespace
}  // namespace catbatch
