#include "sched/relaxed_catbatch.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(RelaxedCatBatch, ValidOnRandomInstances) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 100, 8, RandomTaskParams{});
    RelaxedCatBatch sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(RelaxedCatBatch, NeverIdlesWithFittingWork) {
  // No barrier: with only narrow independent tasks it behaves like greedy
  // list scheduling and fills the platform.
  TaskGraph g;
  for (int k = 0; k < 8; ++k) g.add_task(1.0, 1);
  RelaxedCatBatch sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(RelaxedCatBatch, NoSlowerThanStrictOnWorkloadMixes) {
  // Dropping the barrier can only help on these independent-heavy mixes.
  Rng rng(15);
  for (int trial = 0; trial < 6; ++trial) {
    const TaskGraph g = random_fork_join(rng, 4, 12, RandomTaskParams{});
    RelaxedCatBatch relaxed;
    CatBatchScheduler strict;
    const Time relaxed_makespan = simulate(g, relaxed, 8).makespan;
    const Time strict_makespan = simulate(g, strict, 8).makespan;
    EXPECT_LE(relaxed_makespan, strict_makespan + 1e-9);
  }
}

TEST(RelaxedCatBatch, StillBeatsAsapOnIntroInstance) {
  // The category priority alone (without the barrier) already avoids the
  // Figure 1 trap: the decoy C has a much larger category than the A/B
  // chain, so the chain is preferred... but without idling, C is started
  // anyway when processors are free. The relaxed variant therefore behaves
  // like ASAP here — this test documents that the *barrier* is what buys
  // the competitive ratio.
  const int P = 16;
  const IntroInstance intro = make_intro_instance(P);
  RelaxedCatBatch sched;
  const SimResult r = simulate(intro.graph, sched, P);
  require_valid_schedule(intro.graph, r.schedule, P);
  EXPECT_NEAR(r.makespan, intro_asap_makespan(P, intro.epsilon), 1e-9);
}

TEST(RelaxedCatBatch, PrefersSmallerCategories) {
  // Two ready tasks, capacity for one: the smaller-category task runs
  // first even if it arrived later.
  TaskGraph g;
  const TaskId late_small = g.add_task(1.0, 2, "small");   // ζ = 0.5
  const TaskId early_big = g.add_task(4.0, 2, "big");      // ζ = 2
  (void)late_small;
  (void)early_big;
  RelaxedCatBatch sched;
  const SimResult r = simulate(g, sched, 2);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 1.0);
}

TEST(RelaxedCatBatch, Name) {
  EXPECT_EQ(RelaxedCatBatch().name(), "relaxed-catbatch");
}

}  // namespace
}  // namespace catbatch
