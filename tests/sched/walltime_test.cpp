#include "sched/walltime.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Walltime, DeclaredIsIdentity) {
  DeclaredWalltime est;
  EXPECT_EQ(est.name(), "declared");
  EXPECT_DOUBLE_EQ(est.estimate(7.5), 7.5);
  est.observe(10.0, 2.0);  // stateless: feedback changes nothing
  EXPECT_DOUBLE_EQ(est.estimate(7.5), 7.5);
}

TEST(Walltime, PaddedMultipliesByFactor) {
  PaddedWalltime est(1.5);
  EXPECT_EQ(est.name(), "padded");
  EXPECT_DOUBLE_EQ(est.estimate(10.0), 15.0);
  EXPECT_DOUBLE_EQ(est.factor(), 1.5);
  EXPECT_THROW(PaddedWalltime(0.0), ContractViolation);
  EXPECT_THROW(PaddedWalltime(-1.0), ContractViolation);
}

TEST(Walltime, AdaptiveStartsAtDeclaredAndLearnsTheMeanRatio) {
  RunningAverageWalltime est;
  EXPECT_EQ(est.name(), "adaptive");
  EXPECT_DOUBLE_EQ(est.ratio(), 1.0);  // no feedback yet
  EXPECT_DOUBLE_EQ(est.estimate(10.0), 10.0);
  est.observe(10.0, 5.0);  // ratio 0.5
  est.observe(10.0, 2.5);  // ratio 0.25
  EXPECT_DOUBLE_EQ(est.ratio(), 0.375);
  EXPECT_DOUBLE_EQ(est.estimate(8.0), 3.0);
}

TEST(Walltime, AdaptiveIgnoresUndefinedRatiosAndResets) {
  RunningAverageWalltime est;
  est.observe(0.0, 5.0);   // declared <= 0: no ratio defined
  est.observe(-1.0, 5.0);
  EXPECT_DOUBLE_EQ(est.ratio(), 1.0);
  est.observe(4.0, 2.0);
  EXPECT_DOUBLE_EQ(est.ratio(), 0.5);
  est.reset();
  EXPECT_DOUBLE_EQ(est.ratio(), 1.0);
}

TEST(Walltime, FactoryCoversThePolicyFamilies) {
  const auto declared = make_walltime_estimator("declared");
  ASSERT_NE(declared, nullptr);
  EXPECT_EQ(declared->name(), "declared");
  const auto padded = make_walltime_estimator("padded");
  ASSERT_NE(padded, nullptr);
  EXPECT_DOUBLE_EQ(padded->estimate(2.0), 3.0);  // factor 1.5
  const auto adaptive = make_walltime_estimator("adaptive");
  ASSERT_NE(adaptive, nullptr);
  EXPECT_EQ(adaptive->name(), "adaptive");
  EXPECT_EQ(make_walltime_estimator("nonsense"), nullptr);
}

}  // namespace
}  // namespace catbatch
