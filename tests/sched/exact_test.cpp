#include "sched/exact.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/lmatrix.hpp"
#include "instances/adversary.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Exact, TrivialInstances) {
  TaskGraph single;
  single.add_task(3.0, 2, "solo");
  const ExactResult r = exact_schedule(single, 4);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  require_valid_schedule(single, r.schedule, 4);

  const TaskGraph empty;
  EXPECT_DOUBLE_EQ(exact_schedule(empty, 2).makespan, 0.0);
}

TEST(Exact, ChainIsSerial) {
  TaskGraph g;
  g.add_task(1.0, 1);
  g.add_task(2.0, 1);
  g.add_task(3.0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const ExactResult r = exact_schedule(g, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_TRUE(r.proven_optimal);
}

TEST(Exact, IndependentTasksPackPerfectly) {
  TaskGraph g;
  for (int k = 0; k < 4; ++k) g.add_task(1.0, 2);
  const ExactResult r = exact_schedule(g, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(Exact, DeliberateIdlingIsFound) {
  // The Figure 1 phenomenon at P=2: the optimum delays the decoy C tasks
  // behind the A/B chain (makespan 1 + 4ε); any greedy schedule starts the
  // decoys immediately and pays 2(1 + ε). The solver must find the idling
  // schedule — proof that the search space includes non-greedy schedules.
  const Time eps = 0.125;
  const IntroInstance intro = make_intro_instance(2, eps);
  const ExactResult r = exact_schedule(intro.graph, 2);
  ASSERT_TRUE(r.proven_optimal);
  require_valid_schedule(intro.graph, r.schedule, 2);
  EXPECT_DOUBLE_EQ(r.makespan, intro_optimal_makespan(2, eps));  // 1 + 4ε
  ListScheduler greedy;
  const SimResult greedy_run = simulate(intro.graph, greedy, 2);
  EXPECT_GT(greedy_run.makespan, r.makespan);
}

TEST(Exact, MatchesClosedFormOnIntroInstance) {
  for (const int P : {2, 3}) {
    const IntroInstance intro = make_intro_instance(P, 0.25);
    const ExactResult r = exact_schedule(intro.graph, P);
    ASSERT_TRUE(r.proven_optimal);
    require_valid_schedule(intro.graph, r.schedule, P);
    EXPECT_DOUBLE_EQ(r.makespan, intro_optimal_makespan(P, 0.25));
  }
}

TEST(Exact, MatchesLemma9OnSmallY) {
  const YInstance y = make_y_instance(3, 1, 2, 0.0625);
  const ExactResult r = exact_schedule(y.graph, 3);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.makespan, y_optimal_makespan(3, 1, 2, 0.0625));
}

TEST(Exact, NeverAboveAnyHeuristicNorBelowLb) {
  Rng rng(55);
  RandomTaskParams params;
  params.procs.max_procs = 4;
  for (int trial = 0; trial < 10; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 9, 3, params);
    const ExactResult exact = exact_schedule(g, 4);
    ASSERT_TRUE(exact.proven_optimal);
    require_valid_schedule(g, exact.schedule, 4);
    EXPECT_GE(exact.makespan, makespan_lower_bound(g, 4) - 1e-9);

    CatBatchScheduler cat;
    ListScheduler fifo;
    EXPECT_LE(exact.makespan, simulate(g, cat, 4).makespan + 1e-9);
    EXPECT_LE(exact.makespan, simulate(g, fifo, 4).makespan + 1e-9);
  }
}

TEST(Exact, TrueRatioOfCatBatchWithinTheorem1OnSmallInstances) {
  Rng rng(57);
  RandomTaskParams params;
  params.procs.max_procs = 3;
  for (int trial = 0; trial < 10; ++trial) {
    const TaskGraph g = random_out_tree(rng, 8, 2, params);
    const ExactResult exact = exact_schedule(g, 3);
    ASSERT_TRUE(exact.proven_optimal);
    CatBatchScheduler cat;
    const Time cat_makespan = simulate(g, cat, 3).makespan;
    const double true_ratio = static_cast<double>(cat_makespan) /
                              static_cast<double>(exact.makespan);
    EXPECT_LE(true_ratio, theorem1_bound(g.size()) + 1e-9);
  }
}

TEST(Exact, NodeBudgetDegradesGracefully) {
  Rng rng(59);
  RandomTaskParams params;
  params.procs.max_procs = 4;
  const TaskGraph g = random_layered_dag(rng, 12, 4, params);
  ExactOptions options;
  options.node_budget = 50;  // absurdly small
  const ExactResult r = exact_schedule(g, 4, options);
  EXPECT_FALSE(r.proven_optimal);
  // Still a feasible schedule.
  require_valid_schedule(g, r.schedule, 4);
}

TEST(Exact, RejectsOversizedInstances) {
  TaskGraph g;
  for (int k = 0; k < 65; ++k) g.add_task(1.0, 1);
  EXPECT_THROW((void)exact_schedule(g, 2), ContractViolation);
}

TEST(ScheduleFromStarts, RebuildsConcreteProcessors) {
  TaskGraph g;
  g.add_task(2.0, 1, "a");
  g.add_task(1.0, 2, "b");
  g.add_edge(0, 1);
  const Schedule s = schedule_from_starts(g, {0.0, 2.0}, 2);
  require_valid_schedule(g, s, 2);
}

TEST(ScheduleFromStarts, ThrowsOnCapacityViolation) {
  TaskGraph g;
  g.add_task(1.0, 2, "a");
  g.add_task(1.0, 2, "b");
  EXPECT_THROW((void)schedule_from_starts(g, {0.0, 0.5}, 2),
               ContractViolation);
}

}  // namespace
}  // namespace catbatch
