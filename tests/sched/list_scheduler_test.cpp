#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "instances/examples.hpp"
#include "instances/random_dags.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(ListScheduler, NamesDescribePolicy) {
  EXPECT_EQ(ListScheduler().name(), "list(fifo)");
  EXPECT_EQ(
      ListScheduler(ListSchedulerOptions{ListPriority::LongestFirst, false})
          .name(),
      "list(longest-first)");
  EXPECT_EQ(ListScheduler(ListSchedulerOptions{ListPriority::Fifo, true})
                .name(),
            "list(fifo,strict)");
}

TEST(ListScheduler, IndependentTasksPackGreedily) {
  TaskGraph g;
  g.add_task(1.0, 2);
  g.add_task(1.0, 2);
  g.add_task(1.0, 2);
  ListScheduler sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);  // two at a time
  require_valid_schedule(g, r.schedule, 4);
}

TEST(ListScheduler, GreedyBackfillsPastBlockedHead) {
  // FIFO order: wide(4) first, narrow(1) second on 4 procs with 1 busy.
  TaskGraph g;
  g.add_task(2.0, 1, "hold");   // keeps one processor busy
  g.add_task(1.0, 4, "wide");   // blocked while hold runs
  g.add_task(1.0, 1, "narrow");  // can backfill
  ListScheduler greedy;
  const SimResult r = simulate(g, greedy, 4);
  // narrow runs alongside hold; wide runs after hold finishes.
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);
}

TEST(ListScheduler, StrictHeadDoesNotBackfill) {
  TaskGraph g;
  g.add_task(2.0, 1, "hold");
  g.add_task(1.0, 4, "wide");
  g.add_task(1.0, 1, "narrow");
  ListScheduler strict(ListSchedulerOptions{ListPriority::Fifo, true});
  const SimResult r = simulate(g, strict, 4);
  // narrow waits behind the blocked wide head.
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 3.0);
}

TEST(ListScheduler, LongestFirstOrdersByWork) {
  TaskGraph g;
  g.add_task(1.0, 2, "short");
  g.add_task(5.0, 2, "long");
  ListScheduler lpt(ListSchedulerOptions{ListPriority::LongestFirst, false});
  const SimResult r = simulate(g, lpt, 2);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 5.0);
}

TEST(ListScheduler, ShortestFirstOrdersByWork) {
  TaskGraph g;
  g.add_task(5.0, 2, "long");
  g.add_task(1.0, 2, "short");
  ListScheduler spt(ListSchedulerOptions{ListPriority::ShortestFirst, false});
  const SimResult r = simulate(g, spt, 2);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
}

TEST(ListScheduler, WidestFirstOrdersByProcs) {
  TaskGraph g;
  g.add_task(1.0, 1, "narrow");
  g.add_task(1.0, 3, "wide");
  ListScheduler widest(ListSchedulerOptions{ListPriority::WidestFirst, false});
  const SimResult r = simulate(g, widest, 3);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 1.0);
}

TEST(ListScheduler, IntroInstanceSuffersAsapPathology) {
  // Figure 1 (top right): any ASAP heuristic pays P(1+ε).
  for (const int P : {2, 4, 8}) {
    const IntroInstance intro = make_intro_instance(P);
    for (const ListPriority priority :
         {ListPriority::Fifo, ListPriority::LongestFirst,
          ListPriority::WidestFirst, ListPriority::SmallestCriticality}) {
      ListScheduler sched(ListSchedulerOptions{priority, false});
      const SimResult r = simulate(intro.graph, sched, P);
      EXPECT_DOUBLE_EQ(r.makespan, intro_asap_makespan(P, intro.epsilon))
          << "P=" << P << " priority=" << to_string(priority);
      require_valid_schedule(intro.graph, r.schedule, P);
    }
  }
}

TEST(ListScheduler, NeverIdlesWhenFittingTaskIsReady) {
  // Work-conservation implies the P-competitive bound T <= C + A (loose
  // check: T <= n * Lb on random instances).
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 60, 6, RandomTaskParams{});
    ListScheduler sched;
    const SimResult r = simulate(g, sched, 16);
    require_valid_schedule(g, r.schedule, 16);
    const InstanceBounds b = compute_bounds(g, 16);
    EXPECT_LE(r.makespan,
              b.critical_path + b.area + 1e-9);  // Graham-style bound
  }
}

class ListPriorityParam : public ::testing::TestWithParam<ListPriority> {};

TEST_P(ListPriorityParam, ValidOnRandomInstances) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const TaskGraph g = random_order_dag(rng, 80, 0.05, RandomTaskParams{});
    ListScheduler sched(ListSchedulerOptions{GetParam(), false});
    const SimResult r = simulate(g, sched, 16);
    require_valid_schedule(g, r.schedule, 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPriorities, ListPriorityParam,
    ::testing::Values(ListPriority::Fifo, ListPriority::LongestFirst,
                      ListPriority::ShortestFirst, ListPriority::WidestFirst,
                      ListPriority::NarrowestFirst,
                      ListPriority::SmallestCriticality),
    [](const ::testing::TestParamInfo<ListPriority>& param_info) {
      std::string name = to_string(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace catbatch
