#include "sched/conservative_backfill.hpp"

#include <gtest/gtest.h>

#include "instances/random_dags.hpp"
#include "instances/workloads.hpp"
#include "sched/backfill.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"

namespace catbatch {
namespace {

TEST(ConservativeBackfill, Name) {
  EXPECT_EQ(ConservativeBackfill().name(), "conservative-backfill");
}

TEST(ConservativeBackfill, StartsEverythingThatFitsNow) {
  TaskGraph g;
  g.add_task(1.0, 2, "a");
  g.add_task(1.0, 2, "b");
  ConservativeBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 0.0);
}

TEST(ConservativeBackfill, BackfillsWhenNoReservationIsDelayed) {
  // hold(2.0, p=1) runs; head wide(p=4) reserved at t=2; short(1.0, p=1)
  // fits before that reservation on untouched processors -> starts now.
  TaskGraph g;
  g.add_task(2.0, 1, "hold");
  g.add_task(1.0, 4, "wide");
  g.add_task(1.0, 1, "short");
  ConservativeBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(2).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(ConservativeBackfill, ProtectsEveryReservationWhereEasyOnlyHeadsOne) {
  // The distinguishing instance: EASY reserves only for the head, so the
  // 100-second narrow job backfills at t=0 on spare processors and the
  // p=4 job D — third in line, not the head — waits until t=100.
  // Conservative gives D its own reservation; the narrow job would
  // collide with it, so it must wait its FIFO turn and D runs at t=5.
  TaskGraph g;
  g.add_task(4.0, 3, "A");
  g.add_task(1.0, 2, "B");
  const TaskId d = g.add_task(1.0, 4, "D");
  const TaskId narrow = g.add_task(100.0, 1, "narrow");

  EasyBackfill easy;
  const SimResult with_easy = simulate(g, easy, 4);
  require_valid_schedule(g, with_easy.schedule, 4);
  EXPECT_DOUBLE_EQ(with_easy.schedule.entry_for(narrow).start, 0.0);
  EXPECT_DOUBLE_EQ(with_easy.schedule.entry_for(d).start, 100.0);

  ConservativeBackfill conservative;
  const SimResult r = simulate(g, conservative, 4);
  require_valid_schedule(g, r.schedule, 4);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(d).start, 5.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(narrow).start, 6.0);
  EXPECT_DOUBLE_EQ(r.makespan, 106.0);
}

TEST(ConservativeBackfill, FifoOrderAmongEqualJobs) {
  // All-identical jobs leave nothing to backfill: pure FIFO waves.
  TaskGraph g;
  for (int k = 0; k < 6; ++k) g.add_task(1.0, 2, "j");
  ConservativeBackfill sched;
  const SimResult r = simulate(g, sched, 4);
  require_valid_schedule(g, r.schedule, 4);
  for (TaskId id = 0; id < g.size(); ++id) {
    EXPECT_DOUBLE_EQ(r.schedule.entry_for(id).start,
                     static_cast<Time>(id / 2));
  }
}

TEST(ConservativeBackfill, ValidOnRandomDags) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const TaskGraph g = random_layered_dag(rng, 120, 10, RandomTaskParams{});
    ConservativeBackfill sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

TEST(ConservativeBackfill, HandlesWorkloadDags) {
  for (const TaskGraph& g : {cholesky_dag(6), stencil_dag(8, 8)}) {
    ConservativeBackfill sched;
    const SimResult r = simulate(g, sched, 8);
    require_valid_schedule(g, r.schedule, 8);
  }
}

}  // namespace
}  // namespace catbatch
