#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sched/list_scheduler.hpp"
#include "sim/validate.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

/// Greedy FIFO scheduler that records the time each task was revealed.
class RecordingScheduler final : public OnlineScheduler {
 public:
  std::string name() const override { return "recording"; }
  void reset() override {
    revealed_at.clear();
    finished_at.clear();
    ready_.clear();
  }
  void task_ready(const ReadyTask& task, Time now) override {
    revealed_at[task.id] = now;
    ready_.push_back({task.id, task.procs});
  }
  void task_finished(TaskId id, Time now) override { finished_at[id] = now; }
  void select(Time, int available, std::vector<TaskId>& picks) override {
    std::size_t keep = 0;
    for (auto& e : ready_) {
      if (e.procs <= available) {
        available -= e.procs;
        picks.push_back(e.id);
      } else {
        ready_[keep++] = e;
      }
    }
    ready_.resize(keep);
  }

  std::map<TaskId, Time> revealed_at;
  std::map<TaskId, Time> finished_at;

 private:
  struct Entry {
    TaskId id;
    int procs;
  };
  std::vector<Entry> ready_;
};

/// Scheduler that deliberately breaks the protocol in a chosen way.
class MisbehavingScheduler final : public OnlineScheduler {
 public:
  enum class Mode { StartUnrevealed, ExceedCapacity, StartTwice, Deadlock };
  explicit MisbehavingScheduler(Mode mode) : mode_(mode) {}
  std::string name() const override { return "misbehaving"; }
  void reset() override { ready_.clear(); }
  void task_ready(const ReadyTask& task, Time) override {
    ready_.push_back(task.id);
  }
  void select(Time, int, std::vector<TaskId>& picks) override {
    switch (mode_) {
      case Mode::StartUnrevealed:
        picks.push_back(static_cast<TaskId>(999));
        return;
      case Mode::ExceedCapacity:
        picks.insert(picks.end(), ready_.begin(), ready_.end());
        ready_.clear();
        return;
      case Mode::StartTwice:
        if (ready_.empty()) return;
        picks.push_back(ready_.front());
        picks.push_back(ready_.front());
        ready_.clear();
        return;
      case Mode::Deadlock:
        return;
    }
  }

 private:
  Mode mode_;
  std::vector<TaskId> ready_;
};

TaskGraph chain_graph() {
  TaskGraph g;
  g.add_task(1.0, 1, "a");
  g.add_task(2.0, 1, "b");
  g.add_task(0.5, 2, "c");
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(Engine, RunsChainToCompletion) {
  RecordingScheduler sched;
  const SimResult result = simulate(chain_graph(), sched, 2);
  EXPECT_DOUBLE_EQ(result.makespan, 3.5);
  EXPECT_EQ(result.stats.task_count, 3u);
  require_valid_schedule(chain_graph(), result.schedule, 2);
}

TEST(Engine, RevealsTasksOnlyWhenReady) {
  RecordingScheduler sched;
  (void)simulate(chain_graph(), sched, 2);
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(0), 0.0);
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(1), 1.0);  // after a completes
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(2), 3.0);  // after b completes
}

TEST(Engine, ReportsCompletionsToScheduler) {
  RecordingScheduler sched;
  (void)simulate(chain_graph(), sched, 2);
  EXPECT_DOUBLE_EQ(sched.finished_at.at(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.finished_at.at(1), 3.0);
  EXPECT_DOUBLE_EQ(sched.finished_at.at(2), 3.5);
}

TEST(Engine, BusyAreaAccountsAllWork) {
  RecordingScheduler sched;
  const SimResult result = simulate(chain_graph(), sched, 2);
  EXPECT_DOUBLE_EQ(result.stats.busy_area, 1.0 + 2.0 + 0.5 * 2);
  EXPECT_NEAR(result.average_utilization(2),
              result.stats.busy_area / (2 * 3.5), 1e-12);
}

TEST(Engine, ParallelTasksShareThePlatform) {
  TaskGraph g;
  g.add_task(1.0, 1, "x");
  g.add_task(1.0, 1, "y");
  g.add_task(1.0, 2, "z");
  RecordingScheduler sched;
  const SimResult result = simulate(g, sched, 2);
  // x and y run together in [0,1); z needs both processors -> [1,2).
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
  require_valid_schedule(g, result.schedule, 2);
}

TEST(Engine, EmptyInstance) {
  const TaskGraph g;
  RecordingScheduler sched;
  const SimResult result = simulate(g, sched, 4);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
  EXPECT_EQ(result.stats.task_count, 0u);
}

TEST(Engine, RejectsUnrevealedStart) {
  MisbehavingScheduler sched(MisbehavingScheduler::Mode::StartUnrevealed);
  EXPECT_THROW((void)simulate(chain_graph(), sched, 2), ContractViolation);
}

TEST(Engine, RejectsCapacityOverflow) {
  TaskGraph g;
  g.add_task(1.0, 2, "x");
  g.add_task(1.0, 2, "y");
  MisbehavingScheduler sched(MisbehavingScheduler::Mode::ExceedCapacity);
  EXPECT_THROW((void)simulate(g, sched, 2), ContractViolation);
}

TEST(Engine, RejectsDoubleStart) {
  MisbehavingScheduler sched(MisbehavingScheduler::Mode::StartTwice);
  EXPECT_THROW((void)simulate(chain_graph(), sched, 2), ContractViolation);
}

TEST(Engine, DetectsDeadlock) {
  MisbehavingScheduler sched(MisbehavingScheduler::Mode::Deadlock);
  EXPECT_THROW((void)simulate(chain_graph(), sched, 2), ContractViolation);
}

TEST(Engine, RejectsTaskWiderThanPlatform) {
  TaskGraph g;
  g.add_task(1.0, 4, "wide");
  RecordingScheduler sched;
  EXPECT_THROW((void)simulate(g, sched, 2), ContractViolation);
}

// ---------------------------------------------------------------------------
// Dynamic sources.

/// Emits one root, then a follow-up task every time a task completes, up to
/// a limit — a minimal adaptive instance.
class GrowingSource final : public InstanceSource {
 public:
  explicit GrowingSource(int extra) : extra_(extra) {}

  std::vector<SourceTask> start() override {
    graph_ = TaskGraph{};
    emitted_ = 1;
    graph_.add_task(1.0, 1, "root");
    SourceTask st;
    st.work = 1.0;
    st.procs = 1;
    st.name = "root";
    return {st};
  }

  std::vector<SourceTask> on_complete(TaskId id, Time) override {
    if (emitted_ > extra_) return {};
    ++emitted_;
    const TaskId nid = graph_.add_task(1.0, 1, "grown");
    graph_.add_edge(id, nid);
    SourceTask st;
    st.work = 1.0;
    st.procs = 1;
    st.name = "grown";
    st.predecessors = {id};
    return {st};
  }

  const TaskGraph& realized_graph() const override { return graph_; }

 private:
  int extra_;
  int emitted_ = 0;
  TaskGraph graph_;
};

TEST(Engine, AdaptiveSourceGrowsChain) {
  GrowingSource source(3);
  RecordingScheduler sched;
  const SimResult result = simulate(source, sched, 1);
  EXPECT_EQ(result.stats.task_count, 4u);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  require_valid_schedule(source.realized_graph(), result.schedule, 1);
}

/// Declared work differs from actual work (uncertainty extension).
class LyingSource final : public InstanceSource {
 public:
  std::vector<SourceTask> start() override {
    graph_ = TaskGraph{};
    graph_.add_task(3.0, 1, "surprise");  // actual duration
    SourceTask st;
    st.work = 3.0;
    st.declared_work = 1.0;  // scheduler is told 1.0
    st.procs = 1;
    st.name = "surprise";
    return {st};
  }
  std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
  const TaskGraph& realized_graph() const override { return graph_; }

 private:
  TaskGraph graph_;
};

class DeclaredWorkProbe final : public OnlineScheduler {
 public:
  std::string name() const override { return "probe"; }
  void reset() override {}
  void task_ready(const ReadyTask& task, Time) override {
    declared = task.work;
    pending_ = task.id;
  }
  void select(Time, int, std::vector<TaskId>& picks) override {
    if (pending_ == kInvalidTask) return;
    picks.push_back(pending_);
    pending_ = kInvalidTask;
  }
  Time declared = 0.0;

 private:
  TaskId pending_ = kInvalidTask;
};

TEST(Engine, DeclaredAndActualWorkCanDiffer) {
  LyingSource source;
  DeclaredWorkProbe probe;
  const SimResult result = simulate(source, probe, 1);
  EXPECT_DOUBLE_EQ(probe.declared, 1.0);   // what the scheduler saw
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);  // what actually happened
  require_valid_schedule(source.realized_graph(), result.schedule, 1);
}

TEST(Engine, DecisionPointsAreCounted) {
  RecordingScheduler sched;
  const SimResult result = simulate(chain_graph(), sched, 2);
  // t=0 plus one per completion.
  EXPECT_EQ(result.stats.decision_points, 4u);
}

// ---------------------------------------------------------------------------
// Release times (Section 2.3's online-arrival model).

/// Independent tasks with explicit release times.
class ReleaseSource final : public InstanceSource {
 public:
  struct Spec {
    Time work;
    int procs;
    Time release;
  };
  explicit ReleaseSource(std::vector<Spec> specs) : specs_(std::move(specs)) {}

  std::vector<SourceTask> start() override {
    graph_ = TaskGraph{};
    std::vector<SourceTask> out;
    for (const Spec& spec : specs_) {
      graph_.add_task(spec.work, spec.procs);
      SourceTask st;
      st.work = spec.work;
      st.procs = spec.procs;
      st.release = spec.release;
      out.push_back(std::move(st));
    }
    return out;
  }
  std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
  const TaskGraph& realized_graph() const override { return graph_; }

 private:
  std::vector<Spec> specs_;
  TaskGraph graph_;
};

TEST(Engine, ReleaseTimeDelaysRevelation) {
  ReleaseSource source({{1.0, 1, 0.0}, {1.0, 1, 5.0}});
  RecordingScheduler sched;
  const SimResult r = simulate(source, sched, 2);
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(0), 0.0);
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(1), 5.0);
  EXPECT_DOUBLE_EQ(r.schedule.entry_for(1).start, 5.0);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(Engine, IdlePlatformWaitsForFutureRelease) {
  // Only one task, released at t = 3: the platform legitimately sits idle
  // until then — this must NOT trip the deadlock detector.
  ReleaseSource source({{2.0, 1, 3.0}});
  RecordingScheduler sched;
  const SimResult r = simulate(source, sched, 1);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
}

TEST(Engine, ReleaseAfterPredecessorsStillWaits) {
  // Predecessor finishes at 1 but the successor is embargoed until 4.
  class ChainedRelease final : public InstanceSource {
   public:
    std::vector<SourceTask> start() override {
      graph_ = TaskGraph{};
      graph_.add_task(1.0, 1, "first");
      graph_.add_task(1.0, 1, "second");
      graph_.add_edge(0, 1);
      SourceTask first;
      first.work = 1.0;
      first.procs = 1;
      SourceTask second;
      second.work = 1.0;
      second.procs = 1;
      second.predecessors = {0};
      second.release = 4.0;
      return {first, second};
    }
    std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
    const TaskGraph& realized_graph() const override { return graph_; }

   private:
    TaskGraph graph_;
  };
  ChainedRelease source;
  RecordingScheduler sched;
  const SimResult r = simulate(source, sched, 1);
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(1), 4.0);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
}

TEST(Engine, ReleaseBeforePredecessorsIsMoot) {
  // Release already passed by the time the predecessor completes.
  class EarlyRelease final : public InstanceSource {
   public:
    std::vector<SourceTask> start() override {
      graph_ = TaskGraph{};
      graph_.add_task(3.0, 1, "first");
      graph_.add_task(1.0, 1, "second");
      graph_.add_edge(0, 1);
      SourceTask first;
      first.work = 3.0;
      first.procs = 1;
      SourceTask second;
      second.work = 1.0;
      second.procs = 1;
      second.predecessors = {0};
      second.release = 1.0;
      return {first, second};
    }
    std::vector<SourceTask> on_complete(TaskId, Time) override { return {}; }
    const TaskGraph& realized_graph() const override { return graph_; }

   private:
    TaskGraph graph_;
  };
  EarlyRelease source;
  RecordingScheduler sched;
  const SimResult r = simulate(source, sched, 1);
  EXPECT_DOUBLE_EQ(sched.revealed_at.at(1), 3.0);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(Engine, NegativeReleaseRejected) {
  ReleaseSource source({{1.0, 1, -1.0}});
  RecordingScheduler sched;
  EXPECT_THROW((void)simulate(source, sched, 1), ContractViolation);
}

}  // namespace
}  // namespace catbatch
