#include "sim/svg.hpp"

#include <gtest/gtest.h>

#include "sched/catbatch_scheduler.hpp"
#include "instances/examples.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"

namespace catbatch {
namespace {

std::size_t count_substr(const std::string& haystack,
                         const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct Rendered {
  TaskGraph graph;
  Schedule schedule;
};

Rendered render_paper_example() {
  Rendered out;
  out.graph = make_paper_example();
  CatBatchScheduler sched;
  out.schedule = simulate(out.graph, sched, 4).schedule;
  return out;
}

TEST(SvgGantt, ProducesWellFormedDocument) {
  const Rendered r = render_paper_example();
  const std::string svg = svg_gantt(r.graph, r.schedule, 4);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_substr(svg, "<svg"), 1u);
}

TEST(SvgGantt, OneRectPerTaskProcessorPair) {
  const Rendered r = render_paper_example();
  const std::string svg = svg_gantt(r.graph, r.schedule, 4);
  std::size_t proc_slots = 0;
  for (const ScheduledTask& e : r.schedule.entries()) {
    proc_slots += e.processors.size();
  }
  // background + 4 lanes + one per (task, processor).
  EXPECT_EQ(count_substr(svg, "<rect"), 1 + 4 + proc_slots);
}

TEST(SvgGantt, LabelsAppearWhenEnabled) {
  const Rendered r = render_paper_example();
  const std::string with = svg_gantt(r.graph, r.schedule, 4);
  EXPECT_NE(with.find(">A</text>"), std::string::npos);
  SvgGanttOptions options;
  options.show_labels = false;
  const std::string without = svg_gantt(r.graph, r.schedule, 4, options);
  EXPECT_EQ(without.find(">A</text>"), std::string::npos);
}

TEST(SvgGantt, ColorGroupsControlFill) {
  const Rendered r = render_paper_example();
  SvgGanttOptions options;
  options.color_groups.assign(r.graph.size(), 0);  // all one group
  const std::string svg = svg_gantt(r.graph, r.schedule, 4, options);
  // Every task rect shares the first palette color.
  EXPECT_GE(count_substr(svg, "#4e79a7"), r.schedule.size());
}

TEST(SvgGantt, MakespanPrintedOnAxis) {
  const Rendered r = render_paper_example();
  const std::string svg = svg_gantt(r.graph, r.schedule, 4);
  EXPECT_NE(svg.find("15.2"), std::string::npos);
}

TEST(SvgGantt, EmptyScheduleStillRenders) {
  const TaskGraph g;
  const Schedule s;
  const std::string svg = svg_gantt(g, s, 2);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgGantt, ValidatesArguments) {
  const Rendered r = render_paper_example();
  EXPECT_THROW((void)svg_gantt(r.graph, r.schedule, 0), ContractViolation);
  SvgGanttOptions tiny;
  tiny.width_px = 10;
  EXPECT_THROW((void)svg_gantt(r.graph, r.schedule, 4, tiny),
               ContractViolation);
  SvgGanttOptions short_groups;
  short_groups.color_groups = {0};  // does not cover 11 tasks
  EXPECT_THROW((void)svg_gantt(r.graph, r.schedule, 4, short_groups),
               ContractViolation);
}

TEST(SvgGantt, EscapesMarkupInNames) {
  TaskGraph g;
  g.add_task(1.0, 1, "a<b>&\"c\"");
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  const std::string svg = svg_gantt(g, s, 1);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;&quot;c&quot;"), std::string::npos);
}

}  // namespace
}  // namespace catbatch
