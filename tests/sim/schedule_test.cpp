#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(Schedule, AddAndQuery) {
  Schedule s;
  s.add(3, 0.0, 2.0, {0, 1});
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(0));
  const ScheduledTask& e = s.entry_for(3);
  EXPECT_DOUBLE_EQ(e.start, 0.0);
  EXPECT_DOUBLE_EQ(e.finish, 2.0);
  EXPECT_DOUBLE_EQ(e.duration(), 2.0);
  EXPECT_EQ(e.processors, (std::vector<int>{0, 1}));
}

TEST(Schedule, MakespanIsMaxFinish) {
  Schedule s;
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  s.add(0, 0.0, 2.0, {0});
  s.add(1, 1.0, 5.0, {1});
  s.add(2, 4.0, 4.5, {2});
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Schedule, RejectsDoubleScheduling) {
  Schedule s;
  s.add(0, 0.0, 1.0, {0});
  EXPECT_THROW(s.add(0, 2.0, 3.0, {1}), ContractViolation);
}

TEST(Schedule, RejectsMalformedEntries) {
  Schedule s;
  EXPECT_THROW(s.add(0, 1.0, 1.0, {0}), ContractViolation);   // zero length
  EXPECT_THROW(s.add(0, 2.0, 1.0, {0}), ContractViolation);   // negative
  EXPECT_THROW(s.add(0, -1.0, 1.0, {0}), ContractViolation);  // before 0
  EXPECT_THROW(s.add(0, 0.0, 1.0, {}), ContractViolation);    // no procs
  EXPECT_THROW(s.add(0, 0.0, 1.0, {1, 1}), ContractViolation);  // dup procs
  EXPECT_THROW(s.add(kInvalidTask, 0.0, 1.0, {0}), ContractViolation);
}

TEST(Schedule, EntryForMissingTaskThrows) {
  const Schedule s;
  EXPECT_THROW((void)s.entry_for(0), ContractViolation);
}

TEST(Schedule, SparseTaskIdsSupported) {
  Schedule s;
  s.add(1000, 0.0, 1.0, {0});
  EXPECT_TRUE(s.contains(1000));
  EXPECT_FALSE(s.contains(999));
  EXPECT_EQ(s.entries().size(), 1u);
}

}  // namespace
}  // namespace catbatch
