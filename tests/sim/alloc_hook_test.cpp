// Steady-state allocation accounting for the simulate() hot path.
//
// This binary replaces the global allocation operators with counting
// wrappers (which is why it is its own test executable — the hooks are
// process-wide). The zero-copy engine's claim: once per-batch buffers are
// sized, the per-event loop of a counting-mode run performs no heap
// allocation. Total allocation *count* must therefore grow like O(log n)
// (vector doubling during setup), not O(n) — doubling the instance size
// may only add a handful of allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>

#include "instances/random_dags.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/tracer.hpp"
#include "sched/catbatch_scheduler.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace catbatch {
namespace {

TaskGraph alloc_test_graph(std::size_t n) {
  Rng rng(555 + n);
  RandomTaskParams params;
  params.procs.max_procs = 16;
  return random_layered_dag(rng, n, std::max<std::size_t>(2, n / 8), params);
}

template <typename Scheduler>
std::size_t allocations_during_simulate(const TaskGraph& g,
                                        ScheduleMode mode) {
  Scheduler sched;
  const SimOptions options{mode};
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  const SimResult result = simulate(g, sched, 16, options);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(result.makespan, 0.0);
  return after - before;
}

TEST(AllocHook, CountingModeListFifoSteadyStateAllocatesNothingPerEvent) {
  const TaskGraph small = alloc_test_graph(2000);
  const TaskGraph large = alloc_test_graph(4000);
  const std::size_t small_allocs = allocations_during_simulate<ListScheduler>(
      small, ScheduleMode::Counting);
  const std::size_t large_allocs = allocations_during_simulate<ListScheduler>(
      large, ScheduleMode::Counting);
  // 2000 additional tasks => >= 2000 additional events. If any per-event
  // step allocated, the difference would be in the thousands; buffer
  // doubling during setup accounts for only a few dozen.
  ASSERT_GE(large_allocs, small_allocs);
  EXPECT_LT(large_allocs - small_allocs, 64u)
      << "per-event heap allocation crept into the counting-mode hot path";
}

TEST(AllocHook, CountingModeCatBatchAllocationsScaleWithBatchesNotEvents) {
  // CatBatch's remaining allocations are per *batch* (a std::map node, the
  // batch's pending vector, the BatchRecord's task list), not per event:
  // the engine side of the loop is allocation-free, so the growth in
  // allocation count must be explained by the growth in batch count with a
  // small constant, staying below one allocation per event.
  const TaskGraph small = alloc_test_graph(2000);
  const TaskGraph large = alloc_test_graph(4000);
  const SimOptions options{ScheduleMode::Counting};

  const auto run = [&](const TaskGraph& g) {
    CatBatchScheduler sched;
    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    const SimResult result = simulate(g, sched, 16, options);
    const std::size_t allocs =
        g_allocations.load(std::memory_order_relaxed) - before;
    EXPECT_GT(result.makespan, 0.0);
    return std::pair(allocs, sched.batch_history().size());
  };
  const auto [small_allocs, small_batches] = run(small);
  const auto [large_allocs, large_batches] = run(large);

  ASSERT_GE(large_allocs, small_allocs);
  ASSERT_GT(large_batches, small_batches);
  const std::size_t alloc_growth = large_allocs - small_allocs;
  const std::size_t batch_growth = large_batches - small_batches;
  EXPECT_LT(alloc_growth, 4 * batch_growth + 64)
      << "allocations grew faster than the batch structure explains";
  // And in absolute terms: batches on this instance are small (a few tasks
  // each), so per-batch bookkeeping costs under 2 allocations per added
  // task — the pre-rewrite engine's per-task nodes, strings and adjacency
  // vectors were 6+ and would trip this immediately.
  EXPECT_LT(alloc_growth, 2u * 2000u)
      << "per-event heap allocation crept into the counting-mode hot path";
}

TEST(AllocHook, NullObserverAddsNoAllocations) {
  // The default SimOptions (observer == nullptr) must cost exactly what the
  // pre-observability engine cost: each hook site is one untaken branch.
  const TaskGraph g = alloc_test_graph(2000);
  const std::size_t first = allocations_during_simulate<ListScheduler>(
      g, ScheduleMode::Counting);
  const std::size_t second = allocations_during_simulate<ListScheduler>(
      g, ScheduleMode::Counting);
  EXPECT_EQ(first, second)
      << "the null-observer path is not allocation-deterministic";
}

TEST(AllocHook, InstalledObserverAllocatesNothingDuringTheRun) {
  // Observability's allocation budget is spent entirely up front: the
  // tracer's ring is preallocated, the observer registers every metric in
  // its constructor. The run itself — record(), add(), observe() on every
  // event — must add zero heap allocations over the bare run.
  const TaskGraph g = alloc_test_graph(2000);
  const std::size_t bare = allocations_during_simulate<ListScheduler>(
      g, ScheduleMode::Counting);

  MetricsRegistry metrics;
  EventTracer tracer;  // default capacity comfortably holds the run
  EngineObserver observer(&tracer, &metrics);
  ListScheduler sched;
  SimOptions options{ScheduleMode::Counting};
  options.observer = &observer;
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  const SimResult result = simulate(g, sched, 16, options);
  const std::size_t observed =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(observed, bare)
      << "an observability hook allocates inside the simulate() hot loop";
}

TEST(AllocHook, NullSinkObserverAllocatesNothingDuringTheRun) {
  const TaskGraph g = alloc_test_graph(2000);
  const std::size_t bare = allocations_during_simulate<ListScheduler>(
      g, ScheduleMode::Counting);

  EngineObserver observer(nullptr, nullptr);
  ListScheduler sched;
  SimOptions options{ScheduleMode::Counting};
  options.observer = &observer;
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  const SimResult result = simulate(g, sched, 16, options);
  const std::size_t observed =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(observed, bare);
}

TEST(AllocHook, IdentityModeAllocatesPerTaskProcessorSets) {
  const TaskGraph g = alloc_test_graph(2000);
  const std::size_t counting = allocations_during_simulate<ListScheduler>(
      g, ScheduleMode::Counting);
  const std::size_t identity = allocations_during_simulate<ListScheduler>(
      g, ScheduleMode::Identity);
  // Identity mode materializes one processor-index vector per task; the
  // counting run must stay well below that.
  EXPECT_GT(identity, counting + 1000u);
}

}  // namespace
}  // namespace catbatch
