#include "sim/processor_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/check.hpp"

namespace catbatch {
namespace {

TEST(ProcessorPool, AcquiresLowestIndicesFirst) {
  ProcessorPool pool(4);
  EXPECT_EQ(pool.capacity(), 4);
  EXPECT_EQ(pool.available(), 4);
  const auto a = pool.acquire(2);
  EXPECT_EQ(a, (std::vector<int>{0, 1}));
  EXPECT_EQ(pool.available(), 2);
  EXPECT_EQ(pool.in_use(), 2);
}

TEST(ProcessorPool, ReleaseMakesProcessorsReusable) {
  ProcessorPool pool(3);
  const auto a = pool.acquire(2);  // {0,1}
  const auto b = pool.acquire(1);  // {2}
  pool.release(a);
  EXPECT_EQ(pool.available(), 2);
  const auto c = pool.acquire(2);
  EXPECT_EQ(c, (std::vector<int>{0, 1}));
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.available(), 3);
}

TEST(ProcessorPool, FillsHolesAfterRelease) {
  ProcessorPool pool(4);
  const auto a = pool.acquire(1);  // {0}
  const auto b = pool.acquire(1);  // {1}
  const auto c = pool.acquire(1);  // {2}
  pool.release(b);
  const auto d = pool.acquire(2);  // lowest free: {1, 3}
  EXPECT_EQ(d, (std::vector<int>{1, 3}));
  pool.release(a);
  pool.release(c);
  pool.release(d);
}

TEST(ProcessorPool, RejectsOverAcquire) {
  ProcessorPool pool(2);
  (void)pool.acquire(2);
  EXPECT_THROW((void)pool.acquire(1), ContractViolation);
  EXPECT_THROW((void)pool.acquire(0), ContractViolation);
}

TEST(ProcessorPool, RejectsDoubleRelease) {
  ProcessorPool pool(2);
  const auto a = pool.acquire(1);
  pool.release(a);
  EXPECT_THROW(pool.release(a), ContractViolation);
  EXPECT_THROW(pool.release({7}), ContractViolation);
}

TEST(ProcessorPool, RejectsEmptyPool) {
  EXPECT_THROW(ProcessorPool(0), ContractViolation);
}

}  // namespace
}  // namespace catbatch
