#include "sim/processor_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace catbatch {
namespace {

TEST(ProcessorPool, AcquiresLowestIndicesFirst) {
  ProcessorPool pool(4);
  EXPECT_EQ(pool.capacity(), 4);
  EXPECT_EQ(pool.available(), 4);
  const auto a = pool.acquire(2);
  EXPECT_EQ(a, (std::vector<int>{0, 1}));
  EXPECT_EQ(pool.available(), 2);
  EXPECT_EQ(pool.in_use(), 2);
}

TEST(ProcessorPool, ReleaseMakesProcessorsReusable) {
  ProcessorPool pool(3);
  const auto a = pool.acquire(2);  // {0,1}
  const auto b = pool.acquire(1);  // {2}
  pool.release(a);
  EXPECT_EQ(pool.available(), 2);
  const auto c = pool.acquire(2);
  EXPECT_EQ(c, (std::vector<int>{0, 1}));
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.available(), 3);
}

TEST(ProcessorPool, FillsHolesAfterRelease) {
  ProcessorPool pool(4);
  const auto a = pool.acquire(1);  // {0}
  const auto b = pool.acquire(1);  // {1}
  const auto c = pool.acquire(1);  // {2}
  pool.release(b);
  const auto d = pool.acquire(2);  // lowest free: {1, 3}
  EXPECT_EQ(d, (std::vector<int>{1, 3}));
  pool.release(a);
  pool.release(c);
  pool.release(d);
}

TEST(ProcessorPool, RejectsOverAcquire) {
  ProcessorPool pool(2);
  (void)pool.acquire(2);
  EXPECT_THROW((void)pool.acquire(1), ContractViolation);
  EXPECT_THROW((void)pool.acquire(0), ContractViolation);
}

TEST(ProcessorPool, RejectsDoubleRelease) {
  ProcessorPool pool(2);
  const auto a = pool.acquire(1);
  pool.release(a);
  EXPECT_THROW(pool.release(a), ContractViolation);
  EXPECT_THROW(pool.release({7}), ContractViolation);
}

TEST(ProcessorPool, RejectsEmptyPool) {
  EXPECT_THROW(ProcessorPool(0), ContractViolation);
}

TEST(ProcessorPool, AcquireIntoAppendsWithoutClearing) {
  ProcessorPool pool(4);
  std::vector<int> out{42};
  pool.acquire_into(2, out);
  EXPECT_EQ(out, (std::vector<int>{42, 0, 1}));
  pool.acquire_into(1, out);
  EXPECT_EQ(out, (std::vector<int>{42, 0, 1, 2}));
}

TEST(ProcessorPool, ReleaseAcceptsSpans) {
  ProcessorPool pool(3);
  const auto a = pool.acquire(3);
  pool.release(std::span<const int>(a.data(), 2));
  EXPECT_EQ(pool.available(), 2);
  pool.release(std::span<const int>(a.data() + 2, 1));
  EXPECT_EQ(pool.available(), 3);
}

TEST(ProcessorPool, ExhaustionAndRefillRestoresFullSet) {
  ProcessorPool pool(5);
  const auto all = pool.acquire(5);
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.available(), 0);
  EXPECT_THROW((void)pool.acquire(1), ContractViolation);
  pool.release(all);
  EXPECT_EQ(pool.available(), 5);
  EXPECT_EQ(pool.acquire(5), all);
}

/// Differential check of the free-list pool against a naive bitmap
/// reference: random interleaved acquires/releases must hand out identical
/// processor sets (both are specified as lowest-free-index-first).
TEST(ProcessorPool, InterleavedMatchesBitmapReference) {
  constexpr int kProcs = 23;
  ProcessorPool pool(kProcs);
  std::vector<bool> busy(kProcs, false);
  const auto reference_acquire = [&](int count) {
    std::vector<int> out;
    for (int p = 0; p < kProcs && static_cast<int>(out.size()) < count; ++p) {
      if (!busy[static_cast<std::size_t>(p)]) {
        busy[static_cast<std::size_t>(p)] = true;
        out.push_back(p);
      }
    }
    return out;
  };

  Rng rng(2024);
  std::vector<std::vector<int>> held;
  int free = kProcs;
  for (int step = 0; step < 2000; ++step) {
    const bool do_acquire =
        free > 0 && (held.empty() || rng.bernoulli(0.55));
    if (do_acquire) {
      const int count = static_cast<int>(rng.uniform_int(1, free));
      const auto got = pool.acquire(count);
      EXPECT_EQ(got, reference_acquire(count));
      free -= count;
      held.push_back(got);
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      for (const int p : held[pick]) busy[static_cast<std::size_t>(p)] = false;
      free += static_cast<int>(held[pick].size());
      pool.release(held[pick]);
      held[pick] = std::move(held.back());
      held.pop_back();
    }
    EXPECT_EQ(pool.available(), free);
  }
}

}  // namespace
}  // namespace catbatch
